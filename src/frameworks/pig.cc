#include "frameworks/pig.h"

namespace swim::frameworks {
namespace {

bool IsBlocking(PigOp::Kind kind) {
  return kind == PigOp::Kind::kGroup || kind == PigOp::Kind::kCogroup ||
         kind == PigOp::Kind::kDistinct;
}

}  // namespace

StatusOr<JobChain> CompilePigScript(const PigScriptSpec& spec) {
  if (spec.ops.size() < 2) {
    return InvalidArgumentError("script needs at least LOAD and STORE");
  }
  if (spec.ops.front().kind != PigOp::Kind::kLoad) {
    return InvalidArgumentError("script must start with LOAD");
  }
  if (spec.ops.back().kind != PigOp::Kind::kStore) {
    return InvalidArgumentError("script must end with STORE");
  }
  for (const auto& op : spec.ops) {
    if (op.keep_ratio <= 0.0 || op.keep_ratio > 1.5) {
      return InvalidArgumentError("keep_ratio must be in (0, 1.5]");
    }
  }

  JobChain chain;
  chain.framework = trace::Framework::kPig;
  chain.name_word = "piglatin";
  chain.program = "pig script, " + std::to_string(spec.ops.size()) + " ops";

  // Fuse map-side operators; cut a stage at each blocking operator.
  double pending_map_keep = 1.0;  // map-side reduction accumulated so far
  for (size_t i = 1; i < spec.ops.size(); ++i) {
    const PigOp& op = spec.ops[i];
    if (op.kind == PigOp::Kind::kFilter ||
        op.kind == PigOp::Kind::kForEach) {
      pending_map_keep *= op.keep_ratio;
    } else if (IsBlocking(op.kind)) {
      StageSpec stage;
      stage.role = op.kind == PigOp::Kind::kCogroup ? "cogroup" : "group";
      stage.shuffle_ratio = pending_map_keep;
      stage.output_ratio = pending_map_keep * op.keep_ratio;
      stage.map_seconds_per_gb = 24.0;
      stage.reduce_seconds_per_gb = 30.0;
      chain.stages.push_back(stage);
      pending_map_keep = 1.0;
    }
  }
  if (chain.stages.empty()) {
    StageSpec stage;
    stage.role = "map-only pipeline";
    stage.map_only = true;
    stage.output_ratio = pending_map_keep;
    stage.map_seconds_per_gb = 20.0;
    chain.stages.push_back(stage);
  } else if (pending_map_keep != 1.0) {
    // Trailing map-side ops fold into the last stage's output.
    chain.stages.back().output_ratio *= pending_map_keep;
  }
  return chain;
}

PigScriptSpec SimplePigPipeline(double filter_keep, double group_keep) {
  PigScriptSpec spec;
  spec.ops = {{PigOp::Kind::kLoad, 1.0},
              {PigOp::Kind::kFilter, filter_keep},
              {PigOp::Kind::kGroup, group_keep},
              {PigOp::Kind::kStore, 1.0}};
  return spec;
}

PigScriptSpec PigJoinScript(double filter_keep, double join_keep,
                            double group_keep) {
  PigScriptSpec spec;
  spec.ops = {{PigOp::Kind::kLoad, 1.0},
              {PigOp::Kind::kFilter, filter_keep},
              {PigOp::Kind::kCogroup, join_keep},
              {PigOp::Kind::kForEach, 0.8},
              {PigOp::Kind::kGroup, group_keep},
              {PigOp::Kind::kStore, 1.0}};
  return spec;
}

}  // namespace swim::frameworks

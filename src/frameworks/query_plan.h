#ifndef SWIM_FRAMEWORKS_QUERY_PLAN_H_
#define SWIM_FRAMEWORKS_QUERY_PLAN_H_

#include <string>
#include <vector>

#include "trace/frameworks.h"

namespace swim::frameworks {

/// One MapReduce stage produced by compiling a query-layer program. Data
/// flow is expressed relative to the stage's input bytes, so a chain can
/// be instantiated at any input scale.
struct StageSpec {
  /// Human-readable role, e.g. "filter+project", "shuffle-join".
  std::string role;
  bool map_only = false;
  /// Shuffle bytes as a fraction of stage input (0 for map-only stages).
  double shuffle_ratio = 0.0;
  /// Output bytes as a fraction of stage input.
  double output_ratio = 1.0;
  /// Compute cost: task-seconds per GB of stage input (map side).
  double map_seconds_per_gb = 20.0;
  /// Reduce task-seconds per GB of shuffle data.
  double reduce_seconds_per_gb = 25.0;
};

/// A compiled program: an ordered chain of MapReduce stages. Stage k+1
/// consumes stage k's output - the multi-job workflow structure the paper
/// says future tracing should expose (section 8: "tracing capabilities at
/// the Hive, Pig, and HBase level should be improved").
struct JobChain {
  trace::Framework framework = trace::Framework::kNative;
  /// First word of the job names this chain emits ("insert", "select",
  /// "from", "piglatin", "oozie", ...), matching section 6.1's analysis.
  std::string name_word;
  /// Free-text description of the source program, for reports.
  std::string program;
  std::vector<StageSpec> stages;
};

/// End-to-end data flow of a chain: output of the last stage as a
/// fraction of the chain's input.
double ChainOutputRatio(const JobChain& chain);

/// Total shuffle volume across stages per byte of chain input.
double ChainShuffleRatio(const JobChain& chain);

}  // namespace swim::frameworks

#endif  // SWIM_FRAMEWORKS_QUERY_PLAN_H_

#include "frameworks/query_plan.h"

namespace swim::frameworks {

double ChainOutputRatio(const JobChain& chain) {
  double ratio = 1.0;
  for (const auto& stage : chain.stages) ratio *= stage.output_ratio;
  return ratio;
}

double ChainShuffleRatio(const JobChain& chain) {
  double input_scale = 1.0;
  double shuffle = 0.0;
  for (const auto& stage : chain.stages) {
    shuffle += input_scale * stage.shuffle_ratio;
    input_scale *= stage.output_ratio;
  }
  return shuffle;
}

}  // namespace swim::frameworks

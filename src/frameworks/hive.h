#ifndef SWIM_FRAMEWORKS_HIVE_H_
#define SWIM_FRAMEWORKS_HIVE_H_

#include <string>

#include "common/statusor.h"
#include "frameworks/query_plan.h"

namespace swim::frameworks {

/// A simplified Hive query. The compiler turns it into the MapReduce
/// stage chain Hive's planner of the trace era (0.x) would emit: one
/// stage per blocking operator (shuffle join, GROUP BY, ORDER BY), with
/// map-side filtering and projection fused into the adjacent stage.
struct HiveQuerySpec {
  enum class Kind {
    /// SELECT ... [WHERE] - interactive exploration.
    kSelect,
    /// INSERT OVERWRITE TABLE ... SELECT ... - materializing pipelines.
    kInsert,
    /// Multi-table FROM ... INSERT - the warehouse-wide scans that carry
    /// much of FB-2009's I/O under the "from" name.
    kFromInsert,
  };

  Kind kind = Kind::kSelect;
  /// Fraction of scanned rows surviving the WHERE clause, in (0, 1].
  double selectivity = 1.0;
  /// Fraction of row width kept by the SELECT list, in (0, 1].
  double projection = 1.0;
  /// Number of shuffle joins in the query (each adds a stage).
  int joins = 0;
  /// True when the query aggregates (GROUP BY / COUNT / SUM).
  bool group_by = false;
  /// Aggregation output as a fraction of its input (cardinality of the
  /// grouping keys), in (0, 1]. Ignored unless group_by.
  double aggregation_ratio = 0.01;
  /// True adds a final single-wave ORDER BY stage.
  bool order_by = false;
};

/// Compiles a Hive query to its MapReduce stage chain. Fails on
/// out-of-range ratios. The resulting chain's name word is "select",
/// "insert", or "from" per the query kind - the first words Figure 10
/// attributes to Hive.
StatusOr<JobChain> CompileHiveQuery(const HiveQuerySpec& spec);

/// Renders the (approximate) HiveQL text of a spec, for job names and
/// reports.
std::string HiveQueryText(const HiveQuerySpec& spec);

}  // namespace swim::frameworks

#endif  // SWIM_FRAMEWORKS_HIVE_H_

#ifndef SWIM_FRAMEWORKS_WORKFLOW_H_
#define SWIM_FRAMEWORKS_WORKFLOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/statusor.h"
#include "frameworks/query_plan.h"
#include "trace/trace.h"

namespace swim::frameworks {

/// A workflow-structured trace: the jobs plus the inter-job dependency
/// edges that Hadoop's per-job logs do not record - exactly the
/// information the paper's section 6.1 asks future tracing to expose
/// ("it will be beneficial to have UUIDs to identify jobs belonging to
/// the same workflow").
struct WorkflowTrace {
  trace::Trace trace;
  /// job_id -> prerequisite job_ids; feed to sim::ReplayOptions.
  FlatHashMap<uint64_t, std::vector<uint64_t>> dependencies;
  /// job_id -> workflow ordinal.
  FlatHashMap<uint64_t, uint64_t> workflow_of;
  size_t workflow_count = 0;
};

struct WorkflowGeneratorOptions {
  size_t workflows = 200;
  double span_seconds = 24 * 3600.0;
  uint64_t seed = 21;
  /// Lognormal parameters for per-workflow input size (natural log of
  /// bytes); defaults center around ~3 GB with a heavy tail.
  double input_log_mean = 21.8;
  double input_log_sigma = 2.0;
  /// Mix of program shapes (relative weights).
  double hive_select_weight = 4.0;
  double hive_insert_weight = 3.0;
  double hive_from_weight = 1.0;
  double pig_weight = 3.0;
  /// Fraction of workflows wrapped in an Oozie coordinator (adds a
  /// launcher job ahead of the chain, as Oozie does).
  double oozie_fraction = 0.25;
};

/// Generates a trace of multi-stage workflows: each workflow is a random
/// Hive query or Pig script, compiled to its stage chain and instantiated
/// at a sampled input size. Stage k+1's input path is stage k's output
/// path (producing the output->input re-access chains of Figure 5), job
/// names carry a "W=<id>" workflow tag, and the dependency map mirrors the
/// chain order. Deterministic in options.
StatusOr<WorkflowTrace> GenerateWorkflowTrace(
    const WorkflowGeneratorOptions& options = {});

/// Reconstructed view of one workflow from a trace (grouped by the W= tag
/// in job names).
struct WorkflowSummary {
  uint64_t workflow_id = 0;
  std::vector<uint64_t> job_ids;  // in submit order
  trace::Framework framework = trace::Framework::kNative;
  size_t stages = 0;
  double input_bytes = 0.0;   // first stage input
  double output_bytes = 0.0;  // last stage output
  double span_seconds = 0.0;  // first submit to last finish
  double total_task_seconds = 0.0;
  /// Sum of stage durations: the sequential critical path (stages of one
  /// chain cannot overlap).
  double critical_path_seconds = 0.0;
};

struct WorkflowReport {
  std::vector<WorkflowSummary> workflows;
  size_t tagged_jobs = 0;
  size_t untagged_jobs = 0;
  double mean_stages = 0.0;
  double max_stages = 0.0;
  /// Fraction of workflows with more than one stage - multi-job queries
  /// that single-job microbenchmarks cannot represent (section 7).
  double multi_stage_fraction = 0.0;
};

/// Groups a trace's jobs into workflows via the "W=<number>" token in job
/// names and summarizes each. Jobs without a tag are counted but not
/// grouped.
WorkflowReport ReconstructWorkflows(const trace::Trace& trace);

/// Parses the workflow tag from a job name; returns false when absent.
bool ParseWorkflowTag(const std::string& name, uint64_t* workflow_id);

}  // namespace swim::frameworks

#endif  // SWIM_FRAMEWORKS_WORKFLOW_H_

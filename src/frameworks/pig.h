#ifndef SWIM_FRAMEWORKS_PIG_H_
#define SWIM_FRAMEWORKS_PIG_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "frameworks/query_plan.h"

namespace swim::frameworks {

/// One operator of a simplified Pig Latin dataflow script.
struct PigOp {
  enum class Kind {
    kLoad,      // LOAD 'path'
    kFilter,    // FILTER ... BY ... (map-side)
    kForEach,   // FOREACH ... GENERATE ... (map-side projection)
    kGroup,     // GROUP ... BY ...        (blocking: new MR stage)
    kCogroup,   // COGROUP / JOIN          (blocking: new MR stage)
    kDistinct,  // DISTINCT                (blocking)
    kStore,     // STORE ... INTO 'path'
  };
  Kind kind = Kind::kLoad;
  /// Data kept by this operator relative to its input (selectivity for
  /// FILTER, width for FOREACH, key cardinality for GROUP/DISTINCT).
  double keep_ratio = 1.0;
};

/// An ordered operator list: LOAD ... STORE.
struct PigScriptSpec {
  std::vector<PigOp> ops;
};

/// Compiles a script the way Pig's MRCompiler of the era did: map-side
/// operators (FILTER/FOREACH) fuse into the current stage; each blocking
/// operator (GROUP/COGROUP/DISTINCT) cuts a stage boundary and becomes
/// that stage's shuffle. A script with no blocking operator compiles to
/// one map-only job. The script must start with LOAD and end with STORE.
StatusOr<JobChain> CompilePigScript(const PigScriptSpec& spec);

/// Convenience builders for common shapes.
PigScriptSpec SimplePigPipeline(double filter_keep, double group_keep);
PigScriptSpec PigJoinScript(double filter_keep, double join_keep,
                            double group_keep);

}  // namespace swim::frameworks

#endif  // SWIM_FRAMEWORKS_PIG_H_

#include "frameworks/workflow.h"

#include <algorithm>
#include <cmath>

#include "common/flat_hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/units.h"
#include "frameworks/hive.h"
#include "frameworks/pig.h"

namespace swim::frameworks {
namespace {

/// Builds a randomized program for one workflow.
JobChain SampleChain(const WorkflowGeneratorOptions& options, Pcg32& rng) {
  std::vector<double> weights = {
      options.hive_select_weight, options.hive_insert_weight,
      options.hive_from_weight, options.pig_weight};
  switch (rng.NextDiscrete(weights)) {
    case 0: {
      HiveQuerySpec spec;
      spec.kind = HiveQuerySpec::Kind::kSelect;
      spec.selectivity = rng.NextDouble(0.01, 0.8);
      spec.projection = rng.NextDouble(0.1, 1.0);
      spec.group_by = rng.NextBernoulli(0.5);
      spec.aggregation_ratio = rng.NextDouble(0.001, 0.1);
      auto chain = CompileHiveQuery(spec);
      SWIM_CHECK_OK(chain.status());
      return *std::move(chain);
    }
    case 1: {
      HiveQuerySpec spec;
      spec.kind = HiveQuerySpec::Kind::kInsert;
      spec.selectivity = rng.NextDouble(0.1, 1.0);
      spec.projection = rng.NextDouble(0.3, 1.0);
      spec.joins = static_cast<int>(rng.NextBounded(3));
      spec.group_by = rng.NextBernoulli(0.6);
      spec.aggregation_ratio = rng.NextDouble(0.001, 0.2);
      auto chain = CompileHiveQuery(spec);
      SWIM_CHECK_OK(chain.status());
      return *std::move(chain);
    }
    case 2: {
      HiveQuerySpec spec;
      spec.kind = HiveQuerySpec::Kind::kFromInsert;
      spec.joins = 1 + static_cast<int>(rng.NextBounded(2));
      spec.group_by = true;
      spec.aggregation_ratio = rng.NextDouble(0.001, 0.05);
      spec.order_by = rng.NextBernoulli(0.3);
      auto chain = CompileHiveQuery(spec);
      SWIM_CHECK_OK(chain.status());
      return *std::move(chain);
    }
    default: {
      PigScriptSpec spec =
          rng.NextBernoulli(0.4)
              ? PigJoinScript(rng.NextDouble(0.05, 0.8),
                              rng.NextDouble(0.2, 1.0),
                              rng.NextDouble(0.01, 0.3))
              : SimplePigPipeline(rng.NextDouble(0.05, 0.8),
                                  rng.NextDouble(0.01, 0.3));
      auto chain = CompilePigScript(spec);
      SWIM_CHECK_OK(chain.status());
      return *std::move(chain);
    }
  }
}

std::string StageJobName(const JobChain& chain, uint64_t workflow_id,
                         size_t stage_index, bool oozie_wrapped) {
  std::string tag = "W=" + std::to_string(workflow_id);
  if (chain.framework == trace::Framework::kPig) {
    return "PigLatin:wf" + std::to_string(workflow_id) + "_s" +
           std::to_string(stage_index + 1) + ".pig " + tag;
  }
  std::string upper = chain.name_word;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  std::string name = upper + " OVERWRITE TABLE t(Stage-" +
                     std::to_string(stage_index + 1) + ") " + tag;
  if (oozie_wrapped) name += " via-oozie";
  return name;
}

}  // namespace

StatusOr<WorkflowTrace> GenerateWorkflowTrace(
    const WorkflowGeneratorOptions& options) {
  if (options.workflows == 0) {
    return InvalidArgumentError("workflows must be >= 1");
  }
  if (options.span_seconds <= 0.0) {
    return InvalidArgumentError("span_seconds must be positive");
  }
  if (options.oozie_fraction < 0.0 || options.oozie_fraction > 1.0) {
    return InvalidArgumentError("oozie_fraction must be in [0, 1]");
  }

  Pcg32 rng(options.seed, /*stream=*/0xf10d);
  WorkflowTrace result;
  result.workflow_count = options.workflows;
  uint64_t next_job_id = 1;

  for (uint64_t w = 0; w < options.workflows; ++w) {
    JobChain chain = SampleChain(options, rng);
    bool oozie_wrapped = rng.NextBernoulli(options.oozie_fraction);
    double submit = rng.NextDouble() * options.span_seconds;
    uint64_t previous_job = 0;

    if (oozie_wrapped) {
      // The Oozie launcher: a one-map bookkeeping job that precedes the
      // chain (the "oozie" first words in Figure 10).
      trace::JobRecord launcher;
      launcher.job_id = next_job_id++;
      launcher.name = "oozie:launcher:T=map-reduce:W=" + std::to_string(w);
      launcher.submit_time = submit;
      launcher.duration = rng.NextDouble(5.0, 20.0);
      launcher.input_bytes = 10 * kKB;
      launcher.output_bytes = 1 * kKB;
      launcher.map_tasks = 1;
      launcher.map_task_seconds = launcher.duration;
      result.workflow_of[launcher.job_id] = w;
      previous_job = launcher.job_id;
      submit += launcher.duration + rng.NextDouble(1.0, 5.0);
      result.trace.AddJob(std::move(launcher));
    }

    double stage_input =
        rng.NextLognormal(options.input_log_mean, options.input_log_sigma);
    std::string input_path = "warehouse/t" +
                             std::to_string(rng.NextBounded(500));
    for (size_t s = 0; s < chain.stages.size(); ++s) {
      const StageSpec& stage = chain.stages[s];
      trace::JobRecord job;
      job.job_id = next_job_id++;
      job.name = StageJobName(chain, w, s, oozie_wrapped);
      job.submit_time = submit;
      job.input_bytes = stage_input;
      job.shuffle_bytes = stage_input * stage.shuffle_ratio;
      job.output_bytes = stage_input * stage.output_ratio;
      job.map_task_seconds =
          std::max(1.0, stage.map_seconds_per_gb * stage_input / kGB);
      if (!stage.map_only) {
        job.reduce_task_seconds = std::max(
            1.0, stage.reduce_seconds_per_gb * job.shuffle_bytes / kGB);
      }
      double typical_task = rng.NextDouble(20.0, 60.0);
      job.map_tasks = std::max<int64_t>(
          1, static_cast<int64_t>(job.map_task_seconds / typical_task));
      if (job.reduce_task_seconds > 0.0) {
        job.reduce_tasks = std::max<int64_t>(
            1, static_cast<int64_t>(job.reduce_task_seconds / typical_task));
      }
      // Duration: a simple slot-throughput model (one wave per ~50 slots).
      job.duration = std::max(
          10.0, job.TotalTaskSeconds() / std::max<double>(
                    50.0, static_cast<double>(job.map_tasks)));
      job.input_path = input_path;
      job.output_path = (s + 1 < chain.stages.size())
                            ? "tmp/wf" + std::to_string(w) + "_s" +
                                  std::to_string(s + 1)
                            : "warehouse/out_wf" + std::to_string(w);
      input_path = job.output_path;

      if (previous_job != 0) {
        result.dependencies[job.job_id].push_back(previous_job);
      }
      result.workflow_of[job.job_id] = w;
      previous_job = job.job_id;

      stage_input = job.output_bytes;
      submit += job.duration + rng.NextDouble(1.0, 10.0);
      result.trace.AddJob(std::move(job));
    }
  }
  return result;
}

bool ParseWorkflowTag(const std::string& name, uint64_t* workflow_id) {
  size_t position = name.find("W=");
  if (position == std::string::npos) return false;
  size_t begin = position + 2;
  size_t end = begin;
  while (end < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[end]))) {
    ++end;
  }
  if (end == begin) return false;
  int64_t value = 0;
  if (!ParseInt64(name.substr(begin, end - begin), &value) || value < 0) {
    return false;
  }
  *workflow_id = static_cast<uint64_t>(value);
  return true;
}

WorkflowReport ReconstructWorkflows(const trace::Trace& trace) {
  WorkflowReport report;
  FlatHashMap<uint64_t, WorkflowSummary> grouped;
  for (const auto& job : trace.jobs()) {
    uint64_t workflow_id = 0;
    if (!ParseWorkflowTag(job.name, &workflow_id)) {
      ++report.untagged_jobs;
      continue;
    }
    ++report.tagged_jobs;
    WorkflowSummary& summary = grouped[workflow_id];
    if (summary.job_ids.empty()) {
      summary.workflow_id = workflow_id;
      summary.input_bytes = job.input_bytes;
      summary.framework =
          trace::ClassifyFramework(FirstWordOfJobName(job.name));
      summary.span_seconds = job.submit_time;  // temporarily: first submit
    }
    summary.job_ids.push_back(job.job_id);
    summary.output_bytes = job.output_bytes;
    summary.total_task_seconds += job.TotalTaskSeconds();
    summary.critical_path_seconds += job.duration;
    summary.span_seconds =
        std::min(summary.span_seconds, job.submit_time);  // keep min submit
    ++summary.stages;
  }
  // Second pass for spans (need max finish per workflow).
  FlatHashMap<uint64_t, double> last_finish;
  last_finish.reserve(grouped.size());
  for (const auto& job : trace.jobs()) {
    uint64_t workflow_id = 0;
    if (!ParseWorkflowTag(job.name, &workflow_id)) continue;
    double& finish = last_finish[workflow_id];
    finish = std::max(finish, job.FinishTime());
  }

  // Emit in ascending workflow-id order (the order the std::map-based
  // implementation produced).
  std::vector<uint64_t> ordered_ids;
  ordered_ids.reserve(grouped.size());
  for (const auto& [workflow_id, summary] : grouped) {
    ordered_ids.push_back(workflow_id);
  }
  std::sort(ordered_ids.begin(), ordered_ids.end());

  double stage_sum = 0.0;
  size_t multi = 0;
  report.workflows.reserve(ordered_ids.size());
  for (uint64_t workflow_id : ordered_ids) {
    WorkflowSummary& summary = grouped.at(workflow_id);
    summary.span_seconds = last_finish[workflow_id] - summary.span_seconds;
    stage_sum += static_cast<double>(summary.stages);
    report.max_stages =
        std::max(report.max_stages, static_cast<double>(summary.stages));
    if (summary.stages > 1) ++multi;
    report.workflows.push_back(std::move(summary));
  }
  if (!report.workflows.empty()) {
    report.mean_stages = stage_sum / static_cast<double>(report.workflows.size());
    report.multi_stage_fraction =
        static_cast<double>(multi) /
        static_cast<double>(report.workflows.size());
  }
  return report;
}

}  // namespace swim::frameworks

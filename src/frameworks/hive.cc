#include "frameworks/hive.h"

namespace swim::frameworks {
namespace {

bool InUnit(double v) { return v > 0.0 && v <= 1.0; }

}  // namespace

StatusOr<JobChain> CompileHiveQuery(const HiveQuerySpec& spec) {
  if (!InUnit(spec.selectivity)) {
    return InvalidArgumentError("selectivity must be in (0, 1]");
  }
  if (!InUnit(spec.projection)) {
    return InvalidArgumentError("projection must be in (0, 1]");
  }
  if (spec.joins < 0) return InvalidArgumentError("joins must be >= 0");
  if (spec.group_by && !InUnit(spec.aggregation_ratio)) {
    return InvalidArgumentError("aggregation_ratio must be in (0, 1]");
  }

  JobChain chain;
  chain.framework = trace::Framework::kHive;
  switch (spec.kind) {
    case HiveQuerySpec::Kind::kSelect:
      chain.name_word = "select";
      break;
    case HiveQuerySpec::Kind::kInsert:
      chain.name_word = "insert";
      break;
    case HiveQuerySpec::Kind::kFromInsert:
      chain.name_word = "from";
      break;
  }
  chain.program = HiveQueryText(spec);

  const double filtered = spec.selectivity * spec.projection;

  // Shuffle joins: each is its own stage. The first fuses the scan's
  // filter/projection into its map side.
  for (int j = 0; j < spec.joins; ++j) {
    StageSpec stage;
    stage.role = "shuffle-join";
    double survive = (j == 0) ? filtered : 1.0;
    stage.shuffle_ratio = survive;       // all surviving rows repartition
    stage.output_ratio = survive * 1.2;  // join output slightly widens
    stage.map_seconds_per_gb = 25.0;
    stage.reduce_seconds_per_gb = 35.0;
    chain.stages.push_back(stage);
  }

  if (spec.group_by) {
    StageSpec stage;
    stage.role = "group-by";
    double survive = chain.stages.empty() ? filtered : 1.0;
    stage.shuffle_ratio = survive;
    stage.output_ratio = survive * spec.aggregation_ratio;
    stage.map_seconds_per_gb = 22.0;
    stage.reduce_seconds_per_gb = 28.0;
    chain.stages.push_back(stage);
  }

  if (chain.stages.empty()) {
    // Pure scan: a single map-only stage.
    StageSpec stage;
    stage.role = "filter+project";
    stage.map_only = true;
    stage.output_ratio = filtered;
    stage.map_seconds_per_gb = 18.0;
    chain.stages.push_back(stage);
  }

  if (spec.order_by) {
    // Hive's trace-era total order: one single-reducer stage.
    StageSpec stage;
    stage.role = "order-by";
    stage.shuffle_ratio = 1.0;
    stage.output_ratio = 1.0;
    stage.map_seconds_per_gb = 15.0;
    stage.reduce_seconds_per_gb = 45.0;
    chain.stages.push_back(stage);
  }
  return chain;
}

std::string HiveQueryText(const HiveQuerySpec& spec) {
  std::string text;
  switch (spec.kind) {
    case HiveQuerySpec::Kind::kSelect:
      text = "SELECT ... FROM src";
      break;
    case HiveQuerySpec::Kind::kInsert:
      text = "INSERT OVERWRITE TABLE dst SELECT ... FROM src";
      break;
    case HiveQuerySpec::Kind::kFromInsert:
      text = "FROM src INSERT OVERWRITE TABLE dst SELECT ...";
      break;
  }
  for (int j = 0; j < spec.joins; ++j) text += " JOIN t" + std::to_string(j);
  if (spec.selectivity < 1.0) text += " WHERE ...";
  if (spec.group_by) text += " GROUP BY ...";
  if (spec.order_by) text += " ORDER BY ...";
  return text;
}

}  // namespace swim::frameworks

#include "core/analysis/compute.h"

#include <algorithm>
#include <cmath>

#include "common/interner.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/units.h"
#include "stats/kmeans.h"
#include "stats/sampling.h"

namespace swim::core {
namespace {

constexpr size_t kDims = 6;

std::vector<double> JobFeatures(const trace::JobRecord& job) {
  // log10(1 + x) compresses the ~10 orders of magnitude spanned by job
  // dimensions; +1 keeps exact zeros (map-only shuffle) meaningful.
  auto f = [](double x) { return std::log10(1.0 + x); };
  return {f(job.input_bytes),      f(job.shuffle_bytes),
          f(job.output_bytes),     f(job.duration),
          f(job.map_task_seconds), f(job.reduce_task_seconds)};
}

double InverseFeature(double value) {
  return std::max(0.0, std::pow(10.0, value) - 1.0);
}

JobClass CentroidToClass(const std::vector<double>& centroid) {
  JobClass jc;
  jc.input_bytes = InverseFeature(centroid[0]);
  jc.shuffle_bytes = InverseFeature(centroid[1]);
  jc.output_bytes = InverseFeature(centroid[2]);
  jc.duration_seconds = InverseFeature(centroid[3]);
  jc.map_task_seconds = InverseFeature(centroid[4]);
  jc.reduce_task_seconds = InverseFeature(centroid[5]);
  return jc;
}

}  // namespace

double JobNameReport::TopTwoFrameworkJobShare() const {
  std::array<double, trace::kFrameworkCount> shares = framework_by_jobs;
  std::sort(shares.begin(), shares.end(), std::greater<double>());
  return shares[0] + shares[1];
}

uint32_t JobNameAccumulator::WordIdForName(std::string_view name) {
  // Words are interned to dense ids in first-appearance order (only the
  // short lowercased word is hashed per job, never the full name) and
  // accumulated into an id-indexed vector — the emission order in Report()
  // is deterministic by construction.
  if (words_.empty()) words_.Reserve(64);
  std::string word = FirstWordOfJobName(name);
  if (word.empty()) word = "[identifier]";
  return words_.Intern(word);
}

void JobNameAccumulator::ObserveWord(uint32_t word_id, double total_bytes,
                                     double total_task_seconds) {
  if (word_id >= by_word_.size()) by_word_.resize(words_.size());
  Accumulator& acc = by_word_[word_id];
  acc.jobs += 1.0;
  acc.bytes += total_bytes;
  acc.task_seconds += total_task_seconds;
  total_jobs_ += 1.0;
  total_bytes_ += total_bytes;
  total_task_seconds_ += total_task_seconds;
  ++named_jobs_;
}

void JobNameAccumulator::Observe(std::string_view name, double total_bytes,
                                 double total_task_seconds) {
  if (name.empty()) return;
  ObserveWord(WordIdForName(name), total_bytes, total_task_seconds);
}

JobNameReport JobNameAccumulator::Report() const {
  JobNameReport report;
  report.named_jobs = named_jobs_;
  if (total_jobs_ == 0.0) return report;

  report.words.reserve(by_word_.size());
  for (uint32_t w = 0; w < by_word_.size(); ++w) {
    const Accumulator& acc = by_word_[w];
    std::string_view word = words_.NameOf(w);
    NameShare share;
    share.word = std::string(word);
    share.framework = trace::ClassifyFramework(share.word);
    share.by_jobs = acc.jobs / total_jobs_;
    share.by_bytes = total_bytes_ > 0.0 ? acc.bytes / total_bytes_ : 0.0;
    share.by_task_seconds = total_task_seconds_ > 0.0
                                ? acc.task_seconds / total_task_seconds_
                                : 0.0;
    int fw = static_cast<int>(share.framework);
    report.framework_by_jobs[fw] += share.by_jobs;
    report.framework_by_bytes[fw] += share.by_bytes;
    report.framework_by_task_seconds[fw] += share.by_task_seconds;
    report.words.push_back(std::move(share));
  }
  std::sort(report.words.begin(), report.words.end(),
            [](const NameShare& a, const NameShare& b) {
              return a.by_jobs > b.by_jobs;
            });
  return report;
}

JobNameReport AnalyzeJobNames(const trace::Trace& trace) {
  JobNameAccumulator accumulator;
  for (const auto& job : trace.jobs()) {
    accumulator.Observe(job.name, job.TotalBytes(), job.TotalTaskSeconds());
  }
  return accumulator.Report();
}

std::string LabelForCentroid(const JobClass& c) {
  const double total = c.TotalBytes();
  const bool map_only = c.reduce_task_seconds < 1.0 && c.shuffle_bytes < kMB;

  // Small interactive jobs: little data, minutes-at-most duration, modest
  // task time. The byte bound is looser than the paper's 10 GB dichotomy
  // because k-means may carve the small-job mass into adjacent
  // sub-clusters whose upper centroid sits somewhat above the class
  // median (CC-c centers its small class at ~8.9 GB).
  if (total < 30 * kGB && c.duration_seconds < 10 * kMinute &&
      c.map_task_seconds < 60000) {
    return "Small jobs";
  }
  // Data-loading pattern: negligible input, sizable output, no reduce.
  if (map_only && c.input_bytes < 10 * kMB && c.output_bytes > 100 * kMB) {
    return "Load data";
  }

  std::string verb;
  double in = std::max(c.input_bytes, 1.0);
  double out_ratio = c.output_bytes / in;
  double shuffle_ratio = c.shuffle_bytes / in;
  if (out_ratio < 0.05) {
    verb = shuffle_ratio > 1.5 ? "Expand and aggregate" : "Aggregate";
  } else if (out_ratio > 2.0) {
    verb = "Expand";
  } else if (shuffle_ratio > 2.0 && out_ratio < 0.5) {
    verb = "Expand and aggregate";
  } else {
    verb = "Transform";
  }
  if (map_only) verb = "Map only " + ToLower(verb);

  std::string qualifier;
  if (total >= 50 * kTB) {
    qualifier = ", huge";
  } else if (total >= 5 * kTB) {
    qualifier = ", very large";
  } else if (c.duration_seconds >= 12 * kHour) {
    qualifier = ", long";
  }
  return verb + qualifier;
}

StatusOr<JobClassification> ClassifyJobs(const trace::Trace& trace,
                                         const ClassificationOptions& options) {
  if (trace.empty()) return InvalidArgumentError("empty trace");

  // Subsample for fitting.
  Pcg32 rng(options.seed, /*stream=*/0xc1a55);
  stats::ReservoirSampler<std::vector<double>> sampler(
      std::max<size_t>(1, options.sample_cap), rng.Fork());
  for (const auto& job : trace.jobs()) sampler.Add(JobFeatures(job));
  std::vector<std::vector<double>> sample = sampler.sample();

  stats::ColumnScaling scaling = stats::StandardizeColumns(sample);
  stats::KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;
  kmeans_options.threads = options.threads;
  SWIM_ASSIGN_OR_RETURN(
      stats::ChooseKResult elbow,
      stats::ChooseKByElbow(sample, options.max_k, options.min_improvement,
                            kmeans_options));
  SWIM_ASSIGN_OR_RETURN(stats::KMeansResult fit,
                        stats::KMeansFit(sample, elbow.k, kmeans_options));

  JobClassification result;
  result.k = elbow.k;
  result.elbow_residuals = elbow.residuals;

  // Assign every job (not just the sample) to its nearest centroid, and
  // accumulate log-space means per cluster for reporting. Chunked over the
  // trace with per-chunk partials merged in chunk order, so the reported
  // class means are identical at any thread count.
  const std::vector<trace::JobRecord>& jobs = trace.jobs();
  const size_t num_clusters = fit.centroids.size();
  constexpr size_t kAssignGrain = 8192;
  const size_t chunk_count = (jobs.size() + kAssignGrain - 1) / kAssignGrain;
  struct AssignPartial {
    std::vector<size_t> counts;
    std::vector<std::vector<double>> log_sums;
  };
  std::vector<AssignPartial> partials(chunk_count);
  ParallelFor(
      0, jobs.size(), kAssignGrain,
      [&](size_t lo, size_t hi) {
        AssignPartial& part = partials[lo / kAssignGrain];
        part.counts.assign(num_clusters, 0);
        part.log_sums.assign(num_clusters, std::vector<double>(kDims, 0.0));
        for (size_t i = lo; i < hi; ++i) {
          std::vector<double> features = JobFeatures(jobs[i]);
          // Standardize with the sample's scaling.
          for (size_t d = 0; d < kDims; ++d) {
            features[d] -= scaling.mean[d];
            if (scaling.stddev[d] > 0.0) features[d] /= scaling.stddev[d];
          }
          size_t best = 0;
          double best_dist = std::numeric_limits<double>::max();
          for (size_t c = 0; c < num_clusters; ++c) {
            double dist = 0.0;
            for (size_t d = 0; d < kDims; ++d) {
              double diff = features[d] - fit.centroids[c][d];
              dist += diff * diff;
            }
            if (dist < best_dist) {
              best_dist = dist;
              best = c;
            }
          }
          ++part.counts[best];
          for (size_t d = 0; d < kDims; ++d) {
            part.log_sums[best][d] +=
                features[d] *
                    (scaling.stddev[d] > 0.0 ? scaling.stddev[d] : 1.0) +
                scaling.mean[d];
          }
        }
      },
      options.threads);
  std::vector<size_t> counts(num_clusters, 0);
  std::vector<std::vector<double>> log_sums(
      num_clusters, std::vector<double>(kDims, 0.0));
  for (const AssignPartial& part : partials) {
    for (size_t c = 0; c < num_clusters; ++c) {
      counts[c] += part.counts[c];
      for (size_t d = 0; d < kDims; ++d) log_sums[c][d] += part.log_sums[c][d];
    }
  }

  for (size_t c = 0; c < fit.centroids.size(); ++c) {
    if (counts[c] == 0) continue;
    std::vector<double> mean_log(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      mean_log[d] = log_sums[c][d] / static_cast<double>(counts[c]);
    }
    JobClass jc = CentroidToClass(mean_log);
    jc.count = counts[c];
    jc.label = LabelForCentroid(jc);
    result.classes.push_back(std::move(jc));
  }
  std::sort(result.classes.begin(), result.classes.end(),
            [](const JobClass& a, const JobClass& b) {
              return a.count > b.count;
            });
  result.largest_class_fraction =
      static_cast<double>(result.classes.front().count) /
      static_cast<double>(trace.size());
  size_t small_labeled = 0;
  size_t under_10gb = 0;
  for (const auto& jc : result.classes) {
    if (jc.label == "Small jobs") small_labeled += jc.count;
    // The paper's "<10 GB" dichotomy is a class-granularity statement
    // (sum of Table 2 cluster sizes whose centers touch <10 GB); small-job
    // sub-clusters count wholesale.
    if (jc.TotalBytes() < 10 * kGB || jc.label == "Small jobs") {
      under_10gb += jc.count;
    }
  }
  result.small_label_fraction =
      static_cast<double>(small_labeled) / static_cast<double>(trace.size());
  result.fraction_under_10gb =
      static_cast<double>(under_10gb) / static_cast<double>(trace.size());
  return result;
}

}  // namespace swim::core

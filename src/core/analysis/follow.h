#ifndef SWIM_CORE_ANALYSIS_FOLLOW_H_
#define SWIM_CORE_ANALYSIS_FOLLOW_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "core/analysis/streaming.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"

namespace swim::core {

// ---------------------------------------------------------------------------
// Trace following — incremental analysis of a growing trace file.
//
// TraceFollower tails one trace file (STF1 or CSV, auto-sniffed) and folds
// newly appended jobs into a StreamingAnalyzer, so each Poll() costs
// O(new rows) analysis work instead of a full re-read:
//
//  - STF1: producers grow an STF1 trace by rewriting the snapshot with more
//    rows (the format is a single checksummed image, not a log). Poll()
//    re-opens the file — O(header + dictionaries), the columns are mmap'd
//    and never scanned — verifies the already-consumed prefix is intact via
//    spot checks (first/last consumed job id + submit time unchanged,
//    dictionaries only ever grow), and streams only rows past the consumed
//    mark. Section checksums are NOT re-verified per poll (that is O(file);
//    run `swim_trace_tool verify` out of band for integrity audits).
//  - CSV: Poll() reads bytes past the consumed offset and cuts at the last
//    record boundary — a newline at even quote parity, so a half-flushed
//    quoted field is never split — parses just that chunk (with the
//    canonical header prepended after the first chunk), and streams the
//    parsed rows.
//
// Either way a poll that observes a malformed state (shrunk file, mutated
// prefix, corrupt header, unparseable chunk, out-of-order appends) returns
// a structured error WITHOUT disturbing the analyzer: the already-folded
// report stays valid, and a later poll retries from the same consumed mark
// — so a producer crash mid-write only delays the tail, never poisons the
// analysis.
// ---------------------------------------------------------------------------

struct FollowOptions {
  StreamingOptions streaming;
  /// Row admission for CSV chunks (strict by default; kSkip tolerates torn
  /// producers at the cost of silently dropping rows).
  trace::ParseOptions csv_parse;
};

/// Outcome of one Poll().
struct FollowPoll {
  /// Rows folded by this poll (0 when the file has not grown).
  size_t new_jobs = 0;
  /// Total rows folded since Open().
  size_t total_jobs = 0;
};

class TraceFollower {
 public:
  /// Binds to `path` (which must exist; its format is sniffed once — a
  /// follow target never changes format). No rows are consumed yet: the
  /// first Poll() picks up everything present.
  static StatusOr<TraceFollower> Open(const std::string& path,
                                      FollowOptions options = {});

  /// Consumes any complete rows appended since the last poll. O(new rows)
  /// plus O(header + dictionaries) re-open for STF1 / O(new bytes) read
  /// for CSV. On error the consumed mark and analyzer are unchanged.
  StatusOr<FollowPoll> Poll();

  /// Renders the report over everything consumed so far (error when no
  /// rows have been consumed yet). Hot-file paths resolve through the
  /// live STF1 dictionaries or the CSV interner.
  StatusOr<StreamingReport> Report() const;

  const std::string& path() const { return path_; }
  trace::TraceFormat format() const { return format_; }
  size_t jobs_consumed() const { return analyzer_.jobs_observed(); }
  const StreamingAnalyzer& analyzer() const { return analyzer_; }

 private:
  TraceFollower(std::string path, trace::TraceFormat format,
                FollowOptions options);

  StatusOr<FollowPoll> PollStf1();
  StatusOr<FollowPoll> PollCsv();

  std::string path_;
  trace::TraceFormat format_ = trace::TraceFormat::kCsv;
  FollowOptions options_;
  StreamingAnalyzer analyzer_;

  // STF1 state: the live view (kept for Report's dictionary lookups) and
  // the consumed-prefix fingerprint checked on every re-open.
  trace::ColumnarTraceView view_;
  bool has_view_ = false;
  size_t consumed_rows_ = 0;
  uint64_t first_job_id_ = 0;
  double first_submit_ = 0.0;
  uint64_t last_job_id_ = 0;
  double last_submit_ = 0.0;
  size_t seen_name_count_ = 0;
  size_t seen_path_count_ = 0;

  // CSV state: byte offset of the first unconsumed byte (always a record
  // boundary, so the cross-poll quote-parity state is always "outside").
  uint64_t consumed_bytes_ = 0;
  bool csv_header_consumed_ = false;
  bool csv_metadata_set_ = false;
};

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_FOLLOW_H_

#include "core/analysis/diversity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/descriptive.h"

namespace swim::core {
namespace {

DiversityMetric MakeMetric(std::string name, std::vector<double> values) {
  DiversityMetric metric;
  metric.name = std::move(name);
  metric.values = std::move(values);
  if (metric.values.empty()) return metric;
  metric.min = stats::Min(metric.values);
  metric.max = stats::Max(metric.values);
  if (metric.min > 0.0) metric.spread_ratio = metric.max / metric.min;
  double mean = stats::Mean(metric.values);
  if (mean != 0.0) metric.cv = stats::StdDev(metric.values) / mean;
  return metric;
}

}  // namespace

std::vector<const DiversityMetric*> CrossWorkloadReport::RankedByDiversity()
    const {
  std::vector<const DiversityMetric*> ranked;
  ranked.reserve(metrics.size());
  for (const auto& metric : metrics) ranked.push_back(&metric);
  std::sort(ranked.begin(), ranked.end(),
            [](const DiversityMetric* a, const DiversityMetric* b) {
              return a->cv > b->cv;
            });
  return ranked;
}

StatusOr<CrossWorkloadReport> CompareWorkloads(
    const std::vector<WorkloadReport>& reports) {
  if (reports.size() < 2) {
    return InvalidArgumentError("need at least two workloads to compare");
  }
  CrossWorkloadReport result;
  std::vector<double> median_input, median_shuffle, median_output,
      median_duration, jobs_per_hour, peak_to_median, bytes_compute,
      diurnal, small_share, reaccess, zipf_slope;
  for (const auto& report : reports) {
    result.workload_names.push_back(report.summary.name);
    median_input.push_back(report.data_sizes.input.median());
    median_shuffle.push_back(report.data_sizes.shuffle.median());
    median_output.push_back(report.data_sizes.output.median());
    median_duration.push_back(report.summary.median_duration);
    double hours = std::max(report.summary.span_seconds / 3600.0, 1.0);
    jobs_per_hour.push_back(static_cast<double>(report.summary.jobs) / hours);
    peak_to_median.push_back(report.burstiness.task_seconds.PeakToMedian());
    bytes_compute.push_back(report.correlations.bytes_task_seconds);
    diurnal.push_back(report.diurnal_strength);
    small_share.push_back(report.classes.small_label_fraction);
    if (report.input_popularity.distinct_files > 0) {
      reaccess.push_back(report.reaccess_fractions.input_reaccess +
                         report.reaccess_fractions.output_reaccess);
      zipf_slope.push_back(report.input_popularity.zipf.slope);
    }
  }
  result.metrics.push_back(MakeMetric("median input bytes", median_input));
  result.metrics.push_back(
      MakeMetric("median shuffle bytes", median_shuffle));
  result.metrics.push_back(MakeMetric("median output bytes", median_output));
  result.metrics.push_back(
      MakeMetric("median duration (s)", median_duration));
  result.metrics.push_back(MakeMetric("jobs per hour", jobs_per_hour));
  result.metrics.push_back(
      MakeMetric("peak-to-median task-secs", peak_to_median));
  result.metrics.push_back(
      MakeMetric("bytes-compute correlation", bytes_compute));
  result.metrics.push_back(MakeMetric("diurnal strength", diurnal));
  result.metrics.push_back(MakeMetric("small-job class share", small_share));
  result.metrics.push_back(MakeMetric("combined re-access", reaccess));
  result.metrics.push_back(MakeMetric("Zipf popularity slope", zipf_slope));
  return result;
}

std::string FormatDiversity(const CrossWorkloadReport& report) {
  std::ostringstream os;
  char line[200];
  std::snprintf(line, sizeof(line), "%-28s %10s %10s %12s %8s\n", "metric",
                "min", "max", "max/min", "CV");
  os << line;
  for (const DiversityMetric* metric : report.RankedByDiversity()) {
    if (metric->values.empty()) continue;
    std::snprintf(line, sizeof(line), "%-28s %10.3g %10.3g %12.3g %8.2f\n",
                  metric->name.c_str(), metric->min, metric->max,
                  metric->spread_ratio, metric->cv);
    os << line;
  }
  return os.str();
}

}  // namespace swim::core

#include "core/analysis/temporal.h"

#include <algorithm>

#include "stats/correlation.h"

namespace swim::core {

SubmissionSeries ComputeSubmissionSeries(const trace::Trace& trace) {
  SubmissionSeries series;
  series.jobs_per_hour = trace.HourlyJobCounts();
  series.bytes_per_hour = trace.HourlyBytes();
  series.task_seconds_per_hour = trace.HourlyTaskSeconds();
  return series;
}

std::vector<double> WeekWindow(const std::vector<double>& series,
                               size_t start_hour) {
  constexpr size_t kWeekHours = 168;
  if (series.empty()) return {};
  start_hour = std::min(start_hour, series.size() - 1);
  size_t end = std::min(series.size(), start_hour + kWeekHours);
  return std::vector<double>(series.begin() + start_hour,
                             series.begin() + end);
}

BurstinessReport ComputeBurstiness(const trace::Trace& trace) {
  SubmissionSeries series = ComputeSubmissionSeries(trace);
  return BurstinessReport{
      stats::BurstinessProfile(series.jobs_per_hour),
      stats::BurstinessProfile(series.bytes_per_hour),
      stats::BurstinessProfile(series.task_seconds_per_hour)};
}

SeriesCorrelations ComputeSeriesCorrelations(const trace::Trace& trace) {
  SubmissionSeries series = ComputeSubmissionSeries(trace);
  // One all-pairs kernel call (Figure 9's shape); each pair runs the same
  // PearsonCorrelation as before, so the values are bit-identical to the
  // old three explicit calls.
  stats::CorrelationMatrix matrix = stats::PearsonMatrix(
      {series.jobs_per_hour, series.bytes_per_hour,
       series.task_seconds_per_hour});
  SeriesCorrelations result;
  result.jobs_bytes = matrix.at(0, 1);
  result.jobs_task_seconds = matrix.at(0, 2);
  result.bytes_task_seconds = matrix.at(1, 2);
  return result;
}

double DiurnalStrength(const trace::Trace& trace) {
  return stats::PeriodStrength(trace.HourlyJobCounts(), /*period=*/24.0);
}

}  // namespace swim::core

#include "core/analysis/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/parallel.h"
#include "common/units.h"
#include "stats/correlation.h"
#include "stats/fourier.h"

namespace swim::core {
namespace {

/// Fixed chunk size for the parallel sketch build. Chunk boundaries depend
/// only on the batch size (never on thread count), and chunk sketches are
/// merged in chunk order, so the folded sketches are byte-identical at any
/// SWIM_THREADS.
constexpr size_t kSketchGrain = 65536;

std::string HotFileLabel(uint64_t key) {
  return "path#" + std::to_string(key);
}

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions options)
    : options_(options),
      gk_input_(options.quantile_epsilon),
      gk_shuffle_(options.quantile_epsilon),
      gk_output_(options.quantile_epsilon),
      gk_duration_(options.quantile_epsilon),
      gk_reaccess_in_(options.quantile_epsilon),
      gk_reaccess_out_(options.quantile_epsilon),
      hot_inputs_(options.hot_file_capacity),
      window_jobs_(3600.0, options.window_hours),
      window_bytes_(3600.0, options.window_hours),
      window_task_seconds_(3600.0, options.window_hours) {}

void StreamingAnalyzer::SetMetadata(const trace::TraceMetadata& metadata) {
  metadata_ = metadata;
  metadata_set_ = true;
}

void StreamingAnalyzer::EnsurePathTables(size_t path_count) {
  if (path_count <= last_read_.size()) return;
  last_read_.resize(path_count, -1.0);
  last_written_.resize(path_count, -1.0);
  seen_inputs_.resize(path_count, 0);
  seen_outputs_.resize(path_count, 0);
}

void StreamingAnalyzer::PopWritesBefore(double time, uint64_t seq) {
  auto after = [](const PendingWrite& a, const PendingWrite& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  };
  while (!pending_writes_.empty()) {
    const PendingWrite& top = pending_writes_.front();
    if (top.time > time || (top.time == time && top.seq >= seq)) break;
    // Apply the write's effect exactly where the batch chronological scan
    // would: mark the path as a produced output and stamp its write time.
    seen_outputs_[top.path_id] = 1;
    last_written_[top.path_id] = top.time;
    std::pop_heap(pending_writes_.begin(), pending_writes_.end(), after);
    pending_writes_.pop_back();
  }
}

void StreamingAnalyzer::ObserveRowSerial(
    double submit, double duration, double input_bytes, double shuffle_bytes,
    double output_bytes, int64_t reduce_tasks, double map_task_seconds,
    double reduce_task_seconds, uint32_t input_path_id,
    uint32_t output_path_id) {
  const uint64_t row = jobs_;
  if (jobs_ == 0) first_submit_ = submit;
  last_submit_ = submit;
  const double finish = submit + duration;
  if (finish > max_finish_) max_finish_ = finish;

  // Same expression shapes as the batch accumulators (TotalBytes is
  // (input + shuffle) + output, left-associated) so floating sums match
  // bit for bit.
  const double total_bytes = input_bytes + shuffle_bytes + output_bytes;
  const double task_seconds = map_task_seconds + reduce_task_seconds;
  bytes_moved_ += total_bytes;
  if (reduce_tasks == 0 && shuffle_bytes == 0.0 && reduce_task_seconds == 0.0) {
    ++map_only_;
  }
  if (total_bytes < 10.0 * kGB) ++under_10gb_;

  // Hourly series, bucketed exactly like Trace::HourlySeries.
  const auto hour =
      static_cast<size_t>((submit - first_submit_) / 3600.0);
  if (hour >= hourly_jobs_.size()) {
    hourly_jobs_.resize(hour + 1, 0.0);
    hourly_bytes_.resize(hour + 1, 0.0);
    hourly_task_seconds_.resize(hour + 1, 0.0);
  }
  hourly_jobs_[hour] += 1.0;
  hourly_bytes_[hour] += total_bytes;
  hourly_task_seconds_[hour] += task_seconds;

  window_jobs_.Observe(submit, 1.0);
  window_bytes_.Observe(submit, total_bytes);
  window_task_seconds_.Observe(submit, task_seconds);

  auto after = [](const PendingWrite& a, const PendingWrite& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  };
  if (input_path_id != kNoStringId) {
    input_popularity_.Add(input_path_id);
    hot_inputs_.Add(input_path_id);
    EnsurePathTables(static_cast<size_t>(input_path_id) + 1);
    // Drain writes that the batch access stream orders before this read
    // (earlier time, or same time with an earlier stream position).
    PopWritesBefore(submit, 2 * row);
    ++jobs_with_paths_;
    if (seen_outputs_[input_path_id]) {
      ++output_hits_;
    } else if (seen_inputs_[input_path_id]) {
      ++input_hits_;
    }
    seen_inputs_[input_path_id] = 1;
    if (last_read_[input_path_id] >= 0.0) {
      gk_reaccess_in_.Add(submit - last_read_[input_path_id]);
    }
    if (last_written_[input_path_id] >= 0.0) {
      const double interval = submit - last_written_[input_path_id];
      if (interval >= 0.0) gk_reaccess_out_.Add(interval);
    }
    last_read_[input_path_id] = submit;
  }
  if (output_path_id != kNoStringId) {
    output_popularity_.Add(output_path_id);
    EnsurePathTables(static_cast<size_t>(output_path_id) + 1);
    pending_writes_.push_back(PendingWrite{finish, 2 * row + 1, output_path_id});
    std::push_heap(pending_writes_.begin(), pending_writes_.end(), after);
  }
  ++jobs_;
}

void StreamingAnalyzer::ObserveNameColumnar(const trace::ColumnarTraceView& view,
                                            uint32_t name_id,
                                            double total_bytes,
                                            double total_task_seconds) {
  if (name_id >= word_of_name_.size()) {
    word_of_name_.resize(view.name_count(), kNoStringId);
  }
  uint32_t& word_id = word_of_name_[name_id];
  if (word_id == kNoStringId) {
    word_id = names_.WordIdForName(view.NameAt(name_id));
  }
  names_.ObserveWord(word_id, total_bytes, total_task_seconds);
}

Status StreamingAnalyzer::ValidateColumns(const trace::ColumnarTraceView& view,
                                          size_t begin, size_t end) const {
  const auto submits = view.submit_times();
  const auto durations = view.durations();
  const auto inputs = view.input_bytes();
  const auto shuffles = view.shuffle_bytes();
  const auto outputs = view.output_bytes();
  const auto map_tasks = view.map_tasks();
  const auto reduce_tasks = view.reduce_tasks();
  const auto map_secs = view.map_task_seconds();
  const auto reduce_secs = view.reduce_task_seconds();
  const auto name_ids = view.name_ids();
  const auto input_ids = view.input_path_ids();
  const auto output_ids = view.output_path_ids();
  auto bad = [&](size_t row, const std::string& what) {
    return InvalidArgumentError("streaming batch row " + std::to_string(row) +
                                ": " + what);
  };
  double prev_submit = jobs_ > 0 ? last_submit_
                                 : -std::numeric_limits<double>::infinity();
  for (size_t i = begin; i < end; ++i) {
    // The same admission bar as ColumnarTraceView::Materialize: finite
    // non-negative values and in-range dictionary ids, plus the streaming
    // contract that submit times never run backwards.
    const double values[7] = {submits[i],  durations[i],   inputs[i],
                              shuffles[i], outputs[i],     map_secs[i],
                              reduce_secs[i]};
    for (double v : values) {
      if (!std::isfinite(v)) return bad(i, "non-finite value");
      if (v < 0.0) return bad(i, "negative value");
    }
    if (map_tasks[i] < 0 || reduce_tasks[i] < 0) {
      return bad(i, "negative task count");
    }
    if (map_tasks[i] == 0 && map_secs[i] > 0.0) {
      return bad(i, "map_task_seconds > 0 with zero map_tasks");
    }
    if (reduce_tasks[i] == 0 && reduce_secs[i] > 0.0) {
      return bad(i, "reduce_task_seconds > 0 with zero reduce_tasks");
    }
    if (submits[i] < prev_submit) {
      return bad(i, "submit time runs backwards (append not submit-ordered)");
    }
    prev_submit = submits[i];
    if (name_ids[i] != kNoStringId && name_ids[i] >= view.name_count()) {
      return bad(i, "name id out of dictionary range");
    }
    if (input_ids[i] != kNoStringId && input_ids[i] >= view.path_count()) {
      return bad(i, "input path id out of dictionary range");
    }
    if (output_ids[i] != kNoStringId && output_ids[i] >= view.path_count()) {
      return bad(i, "output path id out of dictionary range");
    }
  }
  return Status::Ok();
}

Status StreamingAnalyzer::ObserveColumns(const trace::ColumnarTraceView& view,
                                         size_t begin, size_t end) {
  if (mode_ == Mode::kJobs) {
    return FailedPreconditionError(
        "streaming analyzer already bound to parsed-row input");
  }
  if (begin > end || end > view.job_count()) {
    return InvalidArgumentError("streaming batch range out of bounds");
  }
  if (mode_ == Mode::kUnset) {
    mode_ = Mode::kColumnar;
    if (!metadata_set_) SetMetadata(view.metadata());
  }
  if (begin == end) return Status::Ok();
  // Validate the whole batch before touching any accumulator, so a corrupt
  // append can never poison the analyzer's state.
  SWIM_RETURN_IF_ERROR(ValidateColumns(view, begin, end));

  const auto submits = view.submit_times();
  const auto durations = view.durations();
  const auto inputs = view.input_bytes();
  const auto shuffles = view.shuffle_bytes();
  const auto outputs = view.output_bytes();
  const auto reduce_tasks = view.reduce_tasks();
  const auto map_secs = view.map_task_seconds();
  const auto reduce_secs = view.reduce_task_seconds();
  const auto name_ids = view.name_ids();
  const auto input_ids = view.input_path_ids();
  const auto output_ids = view.output_path_ids();

  EnsurePathTables(view.path_count());
  for (size_t i = begin; i < end; ++i) {
    ObserveRowSerial(submits[i], durations[i], inputs[i], shuffles[i],
                     outputs[i], reduce_tasks[i], map_secs[i], reduce_secs[i],
                     input_ids[i], output_ids[i]);
    if (name_ids[i] != kNoStringId) {
      ObserveNameColumnar(view, name_ids[i],
                          inputs[i] + shuffles[i] + outputs[i],
                          map_secs[i] + reduce_secs[i]);
    }
  }

  // Parallel sketch build over fixed-size chunks, merged in chunk order.
  const size_t rows = end - begin;
  const size_t chunk_count = (rows + kSketchGrain - 1) / kSketchGrain;
  std::vector<stats::GkQuantileSketch> chunks(
      4 * chunk_count, stats::GkQuantileSketch(options_.quantile_epsilon));
  ParallelFor(
      0, rows, kSketchGrain,
      [&](size_t chunk_begin, size_t chunk_end) {
        stats::GkQuantileSketch* lane = &chunks[4 * (chunk_begin / kSketchGrain)];
        for (size_t i = begin + chunk_begin; i < begin + chunk_end; ++i) {
          lane[0].Add(inputs[i]);
          lane[1].Add(shuffles[i]);
          lane[2].Add(outputs[i]);
          lane[3].Add(durations[i]);
        }
      },
      options_.threads);
  for (size_t c = 0; c < chunk_count; ++c) {
    gk_input_.Merge(chunks[4 * c]);
    gk_shuffle_.Merge(chunks[4 * c + 1]);
    gk_output_.Merge(chunks[4 * c + 2]);
    gk_duration_.Merge(chunks[4 * c + 3]);
  }
  ++batches_;
  return Status::Ok();
}

Status StreamingAnalyzer::ObserveJobs(Span<const trace::JobRecord> jobs) {
  if (mode_ == Mode::kColumnar) {
    return FailedPreconditionError(
        "streaming analyzer already bound to columnar input");
  }
  mode_ = Mode::kJobs;
  if (jobs.empty()) return Status::Ok();

  double prev_submit = jobs_ > 0 ? last_submit_
                                 : -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const trace::JobRecord& job = jobs[i];
    const double values[7] = {job.submit_time,      job.duration,
                              job.input_bytes,      job.shuffle_bytes,
                              job.output_bytes,     job.map_task_seconds,
                              job.reduce_task_seconds};
    for (double v : values) {
      if (!std::isfinite(v)) {
        return InvalidArgumentError("streaming batch job " +
                                    std::to_string(job.job_id) +
                                    ": non-finite value");
      }
    }
    std::string violation = trace::ValidateJobRecord(job);
    if (!violation.empty()) {
      return InvalidArgumentError("streaming batch job " +
                                  std::to_string(job.job_id) + ": " +
                                  violation);
    }
    if (job.submit_time < prev_submit) {
      return InvalidArgumentError(
          "streaming batch not in submit order at job " +
          std::to_string(job.job_id));
    }
    prev_submit = job.submit_time;
  }

  for (const trace::JobRecord& job : jobs) {
    // Intern in the trace index build's order — input path before output
    // path per job — so CSV-mode ids match the batch trace's ids exactly.
    const uint32_t input_id = job.input_path.empty()
                                  ? kNoStringId
                                  : path_interner_.Intern(job.input_path);
    const uint32_t output_id = job.output_path.empty()
                                   ? kNoStringId
                                   : path_interner_.Intern(job.output_path);
    ObserveRowSerial(job.submit_time, job.duration, job.input_bytes,
                     job.shuffle_bytes, job.output_bytes, job.reduce_tasks,
                     job.map_task_seconds, job.reduce_task_seconds, input_id,
                     output_id);
    names_.Observe(job.name, job.TotalBytes(), job.TotalTaskSeconds());
  }

  const size_t rows = jobs.size();
  const size_t chunk_count = (rows + kSketchGrain - 1) / kSketchGrain;
  std::vector<stats::GkQuantileSketch> chunks(
      4 * chunk_count, stats::GkQuantileSketch(options_.quantile_epsilon));
  ParallelFor(
      0, rows, kSketchGrain,
      [&](size_t chunk_begin, size_t chunk_end) {
        stats::GkQuantileSketch* lane = &chunks[4 * (chunk_begin / kSketchGrain)];
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          lane[0].Add(jobs[i].input_bytes);
          lane[1].Add(jobs[i].shuffle_bytes);
          lane[2].Add(jobs[i].output_bytes);
          lane[3].Add(jobs[i].duration);
        }
      },
      options_.threads);
  for (size_t c = 0; c < chunk_count; ++c) {
    gk_input_.Merge(chunks[4 * c]);
    gk_shuffle_.Merge(chunks[4 * c + 1]);
    gk_output_.Merge(chunks[4 * c + 2]);
    gk_duration_.Merge(chunks[4 * c + 3]);
  }
  ++batches_;
  return Status::Ok();
}

StatusOr<StreamingReport> StreamingAnalyzer::Report(
    const trace::ColumnarTraceView* dictionaries) const {
  if (jobs_ == 0) return InvalidArgumentError("empty trace");
  StreamingReport report;
  report.batches = batches_;
  report.quantile_epsilon = options_.quantile_epsilon;

  report.summary.name = metadata_.name;
  report.summary.machines = metadata_.machines;
  report.summary.year = metadata_.year;
  report.summary.jobs = jobs_;
  report.summary.bytes_moved = bytes_moved_;
  report.summary.map_only_jobs = map_only_;
  report.summary.span_seconds = max_finish_ - first_submit_;
  report.summary.median_duration = gk_duration_.Quantile(0.5);

  auto quantiles = [](const stats::GkQuantileSketch& gk) {
    StreamingQuantiles q;
    q.p25 = gk.Quantile(0.25);
    q.p50 = gk.Quantile(0.50);
    q.p75 = gk.Quantile(0.75);
    q.p90 = gk.Quantile(0.90);
    q.p99 = gk.Quantile(0.99);
    return q;
  };
  report.input_bytes = quantiles(gk_input_);
  report.shuffle_bytes = quantiles(gk_shuffle_);
  report.output_bytes = quantiles(gk_output_);
  report.duration = quantiles(gk_duration_);

  auto popularity = [](const stats::OnlineZipf& tracker) {
    stats::OnlineZipf::Snapshot snapshot = tracker.Fit();
    FilePopularity pop;
    pop.frequencies = std::move(snapshot.frequencies);
    pop.zipf = snapshot.fit;
    pop.distinct_files = snapshot.distinct_items;
    pop.total_accesses = static_cast<size_t>(snapshot.total_accesses);
    return pop;
  };
  report.input_popularity = popularity(input_popularity_);
  report.output_popularity = popularity(output_popularity_);

  report.reaccess_fractions.jobs_with_paths = jobs_with_paths_;
  if (jobs_with_paths_ > 0) {
    report.reaccess_fractions.input_reaccess =
        static_cast<double>(input_hits_) /
        static_cast<double>(jobs_with_paths_);
    report.reaccess_fractions.output_reaccess =
        static_cast<double>(output_hits_) /
        static_cast<double>(jobs_with_paths_);
  }
  report.reaccess_p75_interval =
      gk_reaccess_in_.empty() ? -1.0 : gk_reaccess_in_.Quantile(0.75);

  // Pad the hourly series to the full span, matching Trace::HourlySeries'
  // sizing (span includes job durations, so the tail hours past the last
  // submission are genuine zero buckets the batch series also carries).
  const size_t hours =
      static_cast<size_t>(report.summary.span_seconds / 3600.0) + 1;
  auto padded = [&](const std::vector<double>& series) {
    std::vector<double> out = series;
    if (out.size() < hours) out.resize(hours, 0.0);
    return out;
  };
  const std::vector<double> jobs_series = padded(hourly_jobs_);
  const std::vector<double> bytes_series = padded(hourly_bytes_);
  const std::vector<double> task_series = padded(hourly_task_seconds_);
  report.burstiness =
      BurstinessReport{stats::BurstinessProfile(jobs_series),
                       stats::BurstinessProfile(bytes_series),
                       stats::BurstinessProfile(task_series)};
  stats::CorrelationMatrix matrix =
      stats::PearsonMatrix({jobs_series, bytes_series, task_series});
  report.correlations.jobs_bytes = matrix.at(0, 1);
  report.correlations.jobs_task_seconds = matrix.at(0, 2);
  report.correlations.bytes_task_seconds = matrix.at(1, 2);
  report.diurnal_strength = stats::PeriodStrength(jobs_series, /*period=*/24.0);

  report.names = names_.Report();
  report.fraction_under_10gb =
      static_cast<double>(under_10gb_) / static_cast<double>(jobs_);

  for (const auto& entry : hot_inputs_.TopK(8)) {
    StreamingHotFile hot;
    hot.count = entry.count;
    hot.error = entry.error;
    if (mode_ == Mode::kJobs && entry.key < path_interner_.size()) {
      hot.path = std::string(
          path_interner_.NameOf(static_cast<uint32_t>(entry.key)));
    } else if (dictionaries != nullptr &&
               entry.key < dictionaries->path_count()) {
      hot.path = std::string(
          dictionaries->PathAt(static_cast<uint32_t>(entry.key)));
    } else {
      hot.path = HotFileLabel(entry.key);
    }
    report.hot_inputs.push_back(std::move(hot));
  }

  report.window.jobs_peak_to_median = window_jobs_.PeakToMedian();
  report.window.bytes_peak_to_median = window_bytes_.PeakToMedian();
  report.window.task_seconds_peak_to_median =
      window_task_seconds_.PeakToMedian();
  report.window.live_hours = window_jobs_.Window().size();
  return report;
}

std::string FormatStreamingReport(const StreamingReport& report) {
  std::ostringstream os;
  char line[256];
  os << "=== Workload: " << report.summary.name << " (streaming) ===\n";
  std::snprintf(line, sizeof(line),
                "jobs=%s  bytes_moved=%s  span=%s  machines=%d\n",
                FormatCount(report.summary.jobs).c_str(),
                FormatBytes(report.summary.bytes_moved).c_str(),
                FormatDuration(report.summary.span_seconds).c_str(),
                report.summary.machines);
  os << line;
  std::snprintf(line, sizeof(line),
                "batches=%zu  quantile sketch eps=%.2f%% of ranks\n",
                report.batches, 100.0 * report.quantile_epsilon);
  os << line;

  os << "\n-- Data access (sec. 4) --\n";
  auto size_row = [&](const char* label, const StreamingQuantiles& q) {
    std::snprintf(line, sizeof(line),
                  "%-8s p25=%-9s p50=%-9s p75=%-9s p90=%-9s p99=%s\n", label,
                  FormatBytes(q.p25).c_str(), FormatBytes(q.p50).c_str(),
                  FormatBytes(q.p75).c_str(), FormatBytes(q.p90).c_str(),
                  FormatBytes(q.p99).c_str());
    os << line;
  };
  os << "per-job size quantiles (GK sketch):\n";
  size_row("  input", report.input_bytes);
  size_row("  shuffle", report.shuffle_bytes);
  size_row("  output", report.output_bytes);
  std::snprintf(line, sizeof(line),
                "  duration p25=%-9s p50=%-9s p75=%-9s p99=%s\n",
                FormatDuration(report.duration.p25).c_str(),
                FormatDuration(report.duration.p50).c_str(),
                FormatDuration(report.duration.p75).c_str(),
                FormatDuration(report.duration.p99).c_str());
  os << line;
  if (report.input_popularity.distinct_files > 0) {
    std::snprintf(line, sizeof(line),
                  "input file popularity: %zu files, Zipf slope=%.2f "
                  "(r2=%.2f)\n",
                  report.input_popularity.distinct_files,
                  report.input_popularity.zipf.slope,
                  report.input_popularity.zipf.r_squared);
    os << line;
    std::snprintf(line, sizeof(line),
                  "re-access: %.0f%% of jobs read pre-existing inputs, "
                  "%.0f%% read pre-existing outputs\n",
                  100 * report.reaccess_fractions.input_reaccess,
                  100 * report.reaccess_fractions.output_reaccess);
    os << line;
    if (report.reaccess_p75_interval >= 0.0) {
      std::snprintf(line, sizeof(line),
                    "75%% of input re-accesses within %s\n",
                    FormatDuration(report.reaccess_p75_interval).c_str());
      os << line;
    }
    if (!report.hot_inputs.empty()) {
      os << "hot inputs (space-saving): ";
      for (const auto& hot : report.hot_inputs) {
        std::snprintf(line, sizeof(line), "%s=%llu(+/-%llu) ",
                      hot.path.c_str(),
                      static_cast<unsigned long long>(hot.count),
                      static_cast<unsigned long long>(hot.error));
        os << line;
      }
      os << "\n";
    }
  } else {
    os << "(no file paths in this trace)\n";
  }

  os << "\n-- Temporal (sec. 5) --\n";
  std::snprintf(line, sizeof(line),
                "burstiness peak:median  jobs=%.0f:1  bytes=%.0f:1  "
                "task-secs=%.0f:1\n",
                report.burstiness.jobs.PeakToMedian(),
                report.burstiness.bytes.PeakToMedian(),
                report.burstiness.task_seconds.PeakToMedian());
  os << line;
  std::snprintf(line, sizeof(line),
                "window(%zuh live) peak:median  jobs=%.0f:1  bytes=%.0f:1  "
                "task-secs=%.0f:1\n",
                report.window.live_hours, report.window.jobs_peak_to_median,
                report.window.bytes_peak_to_median,
                report.window.task_seconds_peak_to_median);
  os << line;
  std::snprintf(line, sizeof(line),
                "correlations: jobs-bytes=%.2f jobs-compute=%.2f "
                "bytes-compute=%.2f   diurnal=%.2f\n",
                report.correlations.jobs_bytes,
                report.correlations.jobs_task_seconds,
                report.correlations.bytes_task_seconds,
                report.diurnal_strength);
  os << line;

  os << "\n-- Compute (sec. 6) --\n";
  if (report.names.named_jobs > 0) {
    os << "top job-name words (by jobs): ";
    size_t shown = 0;
    for (const auto& w : report.names.words) {
      if (shown++ >= 5) break;
      std::snprintf(line, sizeof(line), "%s=%.0f%% ", w.word.c_str(),
                    100 * w.by_jobs);
      os << line;
    }
    os << "\n";
    std::snprintf(line, sizeof(line),
                  "framework share of jobs: Hive=%.0f%% Pig=%.0f%% "
                  "Oozie=%.0f%% Native=%.0f%%\n",
                  100 * report.names.framework_by_jobs[0],
                  100 * report.names.framework_by_jobs[1],
                  100 * report.names.framework_by_jobs[2],
                  100 * report.names.framework_by_jobs[3]);
    os << line;
  } else {
    os << "(no job names in this trace)\n";
  }
  std::snprintf(line, sizeof(line),
                "%.0f%% of jobs < 10GB total data (exact streaming count; "
                "k-means needs a batch pass)\n",
                100 * report.fraction_under_10gb);
  os << line;
  return os.str();
}

}  // namespace swim::core

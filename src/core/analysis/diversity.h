#ifndef SWIM_CORE_ANALYSIS_DIVERSITY_H_
#define SWIM_CORE_ANALYSIS_DIVERSITY_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/analysis/workload_report.h"

namespace swim::core {

/// One scalar characteristic measured across a suite of workloads.
struct DiversityMetric {
  std::string name;
  /// Per-workload values, aligned with CrossWorkloadReport::workload_names.
  std::vector<double> values;
  double min = 0.0;
  double max = 0.0;
  /// max/min for strictly positive metrics (0 when undefined) - the
  /// "orders of magnitude" spread the paper keeps pointing at.
  double spread_ratio = 0.0;
  /// Coefficient of variation (stddev / mean; 0 when mean is 0).
  double cv = 0.0;
};

/// Cross-workload comparison: the quantitative form of the paper's
/// conclusion that "there is sufficient diversity between workloads that
/// we should be cautious in claiming any behavior as typical", and of its
/// one counter-example (the Zipf slope, which is stable everywhere).
struct CrossWorkloadReport {
  std::vector<std::string> workload_names;
  std::vector<DiversityMetric> metrics;

  /// Metrics ranked most-diverse first (by CV).
  std::vector<const DiversityMetric*> RankedByDiversity() const;
};

/// Builds the comparison from per-workload analysis reports.
/// Metrics covered: median input/shuffle/output bytes, median duration,
/// jobs per hour, burstiness peak-to-median, bytes-compute correlation,
/// diurnal strength, small-job class share, re-access fraction, and the
/// Zipf popularity slope (the stability control).
StatusOr<CrossWorkloadReport> CompareWorkloads(
    const std::vector<WorkloadReport>& reports);

std::string FormatDiversity(const CrossWorkloadReport& report);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_DIVERSITY_H_

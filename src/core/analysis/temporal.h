#ifndef SWIM_CORE_ANALYSIS_TEMPORAL_H_
#define SWIM_CORE_ANALYSIS_TEMPORAL_H_

#include <vector>

#include "stats/burstiness.h"
#include "stats/fourier.h"
#include "trace/trace.h"

namespace swim::core {

/// Hourly submission time series in the paper's three submission
/// dimensions (Figure 7 columns 1-3; column 4, cluster occupancy, comes
/// from replaying on the simulator - see sim/replay.h).
struct SubmissionSeries {
  std::vector<double> jobs_per_hour;
  std::vector<double> bytes_per_hour;          // input + shuffle + output
  std::vector<double> task_seconds_per_hour;   // map + reduce
};

SubmissionSeries ComputeSubmissionSeries(const trace::Trace& trace);

/// Restriction of a series to one week starting at `start_hour` (clamped
/// to the series length), for Figure 7's weekly plots.
std::vector<double> WeekWindow(const std::vector<double>& series,
                               size_t start_hour = 0);

/// Burstiness profiles per dimension (Figure 8 uses task-seconds/hour).
struct BurstinessReport {
  stats::BurstinessProfile jobs;
  stats::BurstinessProfile bytes;
  stats::BurstinessProfile task_seconds;
};

BurstinessReport ComputeBurstiness(const trace::Trace& trace);

/// Pairwise Pearson correlations of the hourly submission series (Figure
/// 9). The paper's averages: jobs-bytes 0.21, jobs-compute 0.14,
/// bytes-compute 0.62 (the strongest - "MapReduce workloads remain
/// data-centric rather than compute-centric").
struct SeriesCorrelations {
  double jobs_bytes = 0.0;
  double jobs_task_seconds = 0.0;
  double bytes_task_seconds = 0.0;
};

SeriesCorrelations ComputeSeriesCorrelations(const trace::Trace& trace);

/// Diurnal (24-hour) signal strength of job submissions in [0, 1]: the
/// fraction of non-DC spectral power at the daily frequency. Supports the
/// paper's Figure 7 observation that some workloads (FB-2010 submissions,
/// CC-e utilization) show visible diurnal patterns.
double DiurnalStrength(const trace::Trace& trace);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_TEMPORAL_H_

#ifndef SWIM_CORE_ANALYSIS_COMPUTE_H_
#define SWIM_CORE_ANALYSIS_COMPUTE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "trace/frameworks.h"
#include "trace/trace.h"

namespace swim::core {

/// Share of activity attributed to one job-name first word, under the
/// paper's three weightings (Figure 10: by job count, by total I/O bytes,
/// by task-time).
struct NameShare {
  std::string word;
  trace::Framework framework = trace::Framework::kNative;
  double by_jobs = 0.0;
  double by_bytes = 0.0;
  double by_task_seconds = 0.0;
};

struct JobNameReport {
  /// All observed first words, sorted by descending job share.
  std::vector<NameShare> words;
  /// Aggregate shares per framework (indexed by trace::Framework),
  /// weighted by jobs / bytes / task-seconds.
  std::array<double, trace::kFrameworkCount> framework_by_jobs{};
  std::array<double, trace::kFrameworkCount> framework_by_bytes{};
  std::array<double, trace::kFrameworkCount> framework_by_task_seconds{};
  size_t named_jobs = 0;

  /// Combined share of the two most active frameworks by job count; the
  /// paper observes "two frameworks account for a dominant majority of
  /// jobs" in every workload.
  double TopTwoFrameworkJobShare() const;
};

/// Tokenizes job names to their first word (section 6.1) and accumulates
/// the three weightings. Jobs without names are excluded.
JobNameReport AnalyzeJobNames(const trace::Trace& trace);

/// The incremental core of AnalyzeJobNames, shared by the batch analyzer
/// and the streaming fast path so both produce byte-identical reports:
/// words are interned to dense ids in first-appearance order and
/// accumulated per id; Report() emits shares in id order and sorts, exactly
/// as the batch pipeline always has. Feed jobs in submit order (only named
/// jobs; Observe skips empty names itself).
class JobNameAccumulator {
 public:
  /// Tokenizes `name` and returns its dense word id (stable across calls).
  /// Callers that can cache the id per distinct name (e.g. the columnar
  /// path, keyed by dictionary id) skip re-tokenizing hot names.
  uint32_t WordIdForName(std::string_view name);

  /// Accumulates one named job under `word_id` (from WordIdForName).
  void ObserveWord(uint32_t word_id, double total_bytes,
                   double total_task_seconds);

  /// Convenience: tokenize + accumulate. Empty names are ignored.
  void Observe(std::string_view name, double total_bytes,
               double total_task_seconds);

  /// Renders the report (share emission in word-id order + final sort),
  /// identical to AnalyzeJobNames over the same job sequence.
  JobNameReport Report() const;

  size_t named_jobs() const { return named_jobs_; }

 private:
  struct Accumulator {
    double jobs = 0.0;
    double bytes = 0.0;
    double task_seconds = 0.0;
  };

  StringInterner words_;
  std::vector<Accumulator> by_word_;
  double total_jobs_ = 0.0;
  double total_bytes_ = 0.0;
  double total_task_seconds_ = 0.0;
  size_t named_jobs_ = 0;
};

/// One k-means job class - a reproduced Table 2 row. Dimension values are
/// geometric means (the centroid exponentiated back from log space).
struct JobClass {
  std::string label;
  size_t count = 0;
  double input_bytes = 0.0;
  double shuffle_bytes = 0.0;
  double output_bytes = 0.0;
  double duration_seconds = 0.0;
  double map_task_seconds = 0.0;
  double reduce_task_seconds = 0.0;

  double TotalBytes() const {
    return input_bytes + shuffle_bytes + output_bytes;
  }
};

struct ClassificationOptions {
  /// Upper bound for the elbow search over k.
  int max_k = 10;
  /// Elbow rule threshold: stop when adding a cluster recovers less than
  /// this fraction of total variance (paper: "diminishing return").
  double min_improvement = 0.05;
  uint64_t seed = 1;
  /// Fit on at most this many jobs (uniform subsample) for tractability;
  /// all jobs are still assigned to the fitted centroids.
  size_t sample_cap = 60000;
  /// Worker lanes for k-means and the full-trace assignment pass: 0 =
  /// default (SWIM_THREADS / hardware), 1 = serial. Output is identical
  /// at any thread count.
  int threads = 0;
};

struct JobClassification {
  std::vector<JobClass> classes;  // descending by count
  int k = 0;
  /// Residual variance per candidate k from the elbow search.
  std::vector<double> elbow_residuals;
  /// Fraction of jobs in the most numerous class; the paper finds the
  /// "Small jobs" class holds > 90% in every workload.
  double largest_class_fraction = 0.0;
  /// Fraction of jobs across all classes labeled "Small jobs" (k-means may
  /// legitimately carve the small-job mass into adjacent sub-clusters).
  double small_label_fraction = 0.0;
  /// Fraction of jobs in classes that sit on the small side of the
  /// paper's 10 GB dichotomy (class centroid < 10 GB, or labeled "Small
  /// jobs" - sub-clusters of the small mass count wholesale). The paper
  /// measures >= 92% everywhere, summing Table 2 cluster sizes.
  double fraction_under_10gb = 0.0;
};

/// Reproduces the paper's section 6.2 methodology: each job is a
/// six-dimensional vector (input, shuffle, output, duration, map time,
/// reduce time); features are log-transformed (they span ~10 orders of
/// magnitude) and standardized; k is chosen by diminishing residual
/// variance; clusters get human-readable labels derived from their
/// centroids ("Small jobs", "Map only transform", "Aggregate", ...).
StatusOr<JobClassification> ClassifyJobs(
    const trace::Trace& trace, const ClassificationOptions& options = {});

/// Centroid-to-label heuristic, exposed for tests: mirrors the paper's
/// Table 2 vocabulary.
std::string LabelForCentroid(const JobClass& centroid);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_COMPUTE_H_

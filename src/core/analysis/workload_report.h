#ifndef SWIM_CORE_ANALYSIS_WORKLOAD_REPORT_H_
#define SWIM_CORE_ANALYSIS_WORKLOAD_REPORT_H_

#include <string>

#include "common/statusor.h"
#include "core/analysis/compute.h"
#include "core/analysis/data_access.h"
#include "core/analysis/temporal.h"
#include "trace/summary.h"
#include "trace/trace.h"

namespace swim::core {

/// Everything the paper computes for one workload, in one struct: the
/// data / temporal / compute decomposition of section 1's methodology.
struct WorkloadReport {
  trace::TraceSummary summary;           // Table 1 row
  DataSizeCdfs data_sizes;               // Figure 1
  FilePopularity input_popularity;       // Figure 2 (top)
  FilePopularity output_popularity;      // Figure 2 (bottom)
  ReaccessIntervals reaccess_intervals;  // Figure 5
  ReaccessFractions reaccess_fractions;  // Figure 6
  BurstinessReport burstiness;           // Figure 8
  SeriesCorrelations correlations;       // Figure 9
  double diurnal_strength = 0.0;         // Figure 7 observation
  JobNameReport names;                   // Figure 10
  JobClassification classes;             // Table 2
};

struct AnalysisOptions {
  ClassificationOptions classification;
  /// Worker lanes for the stage fan-out and k-means: 0 = default
  /// (SWIM_THREADS env var, else hardware concurrency), 1 = serial.
  /// Results are identical at any thread count.
  int threads = 0;
};

/// Runs the full analysis pipeline over a trace. The ~10 independent
/// stages (sizes, popularity, re-access, burstiness, correlations,
/// diurnality, names) run concurrently on the shared pool, then job
/// classification (which parallelizes internally) runs on the caller.
StatusOr<WorkloadReport> AnalyzeWorkload(const trace::Trace& trace,
                                         const AnalysisOptions& options = {});

/// Human-readable multi-section rendering of a report.
std::string FormatReport(const WorkloadReport& report);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_WORKLOAD_REPORT_H_

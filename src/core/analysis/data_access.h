#ifndef SWIM_CORE_ANALYSIS_DATA_ACCESS_H_
#define SWIM_CORE_ANALYSIS_DATA_ACCESS_H_

#include <string>
#include <vector>

#include "stats/empirical_cdf.h"
#include "stats/zipf.h"
#include "trace/trace.h"

namespace swim::core {

/// Per-job data size distributions (paper Figure 1).
struct DataSizeCdfs {
  stats::EmpiricalCdf input;
  stats::EmpiricalCdf shuffle;
  stats::EmpiricalCdf output;
};

/// Distributions of per-job input/shuffle/output bytes. Zero-byte
/// dimensions (e.g. shuffle of map-only jobs) are included, matching the
/// paper's CDFs which start at a nonzero fraction for x=0.
DataSizeCdfs ComputeDataSizeCdfs(const trace::Trace& trace);

/// File popularity analysis (paper Figure 2): access counts per distinct
/// path, sorted descending, with the fitted Zipf slope. The paper finds
/// slope ~ 5/6 for every workload, for both inputs and outputs.
struct FilePopularity {
  std::vector<double> frequencies;  // descending access counts
  stats::ZipfFitResult zipf;
  size_t distinct_files = 0;
  size_t total_accesses = 0;
};

FilePopularity ComputeInputPopularity(const trace::Trace& trace);
FilePopularity ComputeOutputPopularity(const trace::Trace& trace);

/// Access-vs-size skew (paper Figures 3/4): for each file-size threshold,
/// the fraction of jobs touching files below it and the fraction of stored
/// bytes those files hold.
struct SizeSkewPoint {
  double file_bytes = 0.0;
  double fraction_of_jobs = 0.0;
  double fraction_of_stored_bytes = 0.0;
};
struct SizeSkewCurve {
  std::vector<SizeSkewPoint> points;  // ascending by file_bytes
  double total_stored_bytes = 0.0;
  size_t jobs_with_paths = 0;
};

/// `use_output` selects Figure 4 (output files) over Figure 3 (inputs).
SizeSkewCurve ComputeSizeSkew(const trace::Trace& trace, bool use_output,
                              size_t curve_points = 64);

/// The paper's "80-X rule" (section 4.2), derived from Figures 3/4's two
/// CDFs: find the file size S below which `job_fraction` of jobs' accesses
/// fall, and return the fraction X of stored bytes held by files of size
/// <= S. The paper measures X in [0.01, 0.08] at job_fraction = 0.8
/// (RDBMS folklore says 80-20; MapReduce is 80-1 .. 80-8).
double StoredBytesFractionForJobCoverage(const trace::Trace& trace,
                                         double job_fraction,
                                         bool use_output);

/// Temporal locality (paper Figure 5): intervals between successive reads
/// of the same input path, and between an output being written and later
/// read as an input.
struct ReaccessIntervals {
  stats::EmpiricalCdf input_input;   // seconds
  stats::EmpiricalCdf output_input;  // seconds
};
ReaccessIntervals ComputeReaccessIntervals(const trace::Trace& trace);

/// Re-access job fractions (paper Figure 6): of all jobs with an input
/// path, the fraction whose input was previously read by another job
/// (pre-existing input) or previously written by another job (pre-existing
/// output). The paper measures up to 78% combined.
struct ReaccessFractions {
  double input_reaccess = 0.0;
  double output_reaccess = 0.0;
  size_t jobs_with_paths = 0;
};
ReaccessFractions ComputeReaccessFractions(const trace::Trace& trace);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_DATA_ACCESS_H_

#include "core/analysis/follow.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/span.h"

namespace swim::core {
namespace {

/// Reads [offset, end) of `path`. A shrink below `offset` is a structured
/// error (the producer truncated or replaced the file under us).
StatusOr<std::string> ReadFileTail(const std::string& path, uint64_t offset) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoError("cannot open trace file: " + path);
  }
  std::string bytes;
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IoError("cannot seek in trace file: " + path);
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return IoError("cannot size trace file: " + path);
  }
  if (static_cast<uint64_t>(size) < offset) {
    std::fclose(file);
    return FailedPreconditionError(
        "followed trace shrank from " + std::to_string(offset) + " to " +
        std::to_string(size) + " bytes: " + path);
  }
  const uint64_t want = static_cast<uint64_t>(size) - offset;
  bytes.resize(want);
  if (want > 0) {
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(bytes.data(), 1, want, file) != want) {
      std::fclose(file);
      return IoError("short read of trace file tail: " + path);
    }
  }
  std::fclose(file);
  return bytes;
}

/// Length of the longest prefix of `chunk` ending at a record boundary: a
/// newline at even quote parity. A half-flushed quoted field (odd parity)
/// is left for the next poll. Returns 0 when no complete record is
/// available yet.
size_t CompleteRecordPrefix(const std::string& chunk) {
  bool in_quote = false;
  size_t cut = 0;
  for (size_t i = 0; i < chunk.size(); ++i) {
    const char c = chunk[i];
    if (c == '"') {
      in_quote = !in_quote;
    } else if (c == '\n' && !in_quote) {
      cut = i + 1;
    }
  }
  return cut;
}

}  // namespace

TraceFollower::TraceFollower(std::string path, trace::TraceFormat format,
                             FollowOptions options)
    : path_(std::move(path)),
      format_(format),
      options_(options),
      analyzer_(options.streaming) {}

StatusOr<TraceFollower> TraceFollower::Open(const std::string& path,
                                            FollowOptions options) {
  SWIM_ASSIGN_OR_RETURN(trace::TraceFormat format,
                        trace::SniffTraceFormat(path));
  return TraceFollower(path, format, options);
}

StatusOr<FollowPoll> TraceFollower::Poll() {
  return format_ == trace::TraceFormat::kStf1 ? PollStf1() : PollCsv();
}

StatusOr<FollowPoll> TraceFollower::PollStf1() {
  trace::ColumnarOptions open_options;
  SWIM_ASSIGN_OR_RETURN(trace::ColumnarTraceView view,
                        trace::ColumnarTraceView::Open(path_, open_options));
  FollowPoll poll;
  poll.total_jobs = analyzer_.jobs_observed();
  if (view.job_count() < consumed_rows_) {
    return FailedPreconditionError(
        "followed STF1 trace shrank from " + std::to_string(consumed_rows_) +
        " to " + std::to_string(view.job_count()) + " jobs: " + path_);
  }
  if (view.name_count() < seen_name_count_ ||
      view.path_count() < seen_path_count_) {
    return FailedPreconditionError(
        "followed STF1 trace's dictionaries shrank (append-only contract "
        "violated): " +
        path_);
  }
  if (consumed_rows_ > 0) {
    // Spot-check the consumed prefix: an append-only producer rewrites the
    // snapshot with the old rows bit-identical in place, so the first and
    // last consumed rows pin both ends of the prefix cheaply (two column
    // elements each; no O(consumed) rescan).
    if (view.job_ids()[0] != first_job_id_ ||
        view.submit_times()[0] != first_submit_ ||
        view.job_ids()[consumed_rows_ - 1] != last_job_id_ ||
        view.submit_times()[consumed_rows_ - 1] != last_submit_) {
      return FailedPreconditionError(
          "followed STF1 trace's consumed prefix changed (not an append): " +
          path_);
    }
  }
  if (view.job_count() == consumed_rows_) {
    // No growth; keep the existing view (its dictionaries already cover
    // every consumed row).
    return poll;
  }
  SWIM_RETURN_IF_ERROR(
      analyzer_.ObserveColumns(view, consumed_rows_, view.job_count()));
  poll.new_jobs = view.job_count() - consumed_rows_;
  consumed_rows_ = view.job_count();
  first_job_id_ = view.job_ids()[0];
  first_submit_ = view.submit_times()[0];
  last_job_id_ = view.job_ids()[consumed_rows_ - 1];
  last_submit_ = view.submit_times()[consumed_rows_ - 1];
  seen_name_count_ = view.name_count();
  seen_path_count_ = view.path_count();
  view_ = std::move(view);
  has_view_ = true;
  poll.total_jobs = analyzer_.jobs_observed();
  return poll;
}

StatusOr<FollowPoll> TraceFollower::PollCsv() {
  SWIM_ASSIGN_OR_RETURN(std::string chunk,
                        ReadFileTail(path_, consumed_bytes_));
  FollowPoll poll;
  poll.total_jobs = analyzer_.jobs_observed();
  const size_t cut = CompleteRecordPrefix(chunk);
  if (cut == 0) return poll;
  chunk.resize(cut);

  // The first consumed chunk carries the "#key=value" metadata comments and
  // the header line itself; later chunks are bare records and get the
  // canonical header prepended so the row parser sees a complete document.
  std::string document;
  if (csv_header_consumed_) {
    document.reserve(sizeof(trace::kTraceCsvHeader) + chunk.size());
    document.append(trace::kTraceCsvHeader);
    document.push_back('\n');
    document.append(chunk);
  } else {
    document = std::move(chunk);
  }
  trace::ParseReport report;
  SWIM_ASSIGN_OR_RETURN(
      trace::Trace parsed,
      trace::TraceFromCsv(document, options_.csv_parse, &report));
  if (!parsed.empty()) {
    SWIM_RETURN_IF_ERROR(analyzer_.ObserveJobs(
        Span<const trace::JobRecord>(parsed.jobs().data(),
                                     parsed.jobs().size())));
  }
  // Only now that the chunk is fully folded does the consumed mark move.
  consumed_bytes_ += cut;
  csv_header_consumed_ = true;
  if (!csv_metadata_set_) {
    analyzer_.SetMetadata(parsed.metadata());
    csv_metadata_set_ = true;
  }
  poll.new_jobs = parsed.size();
  poll.total_jobs = analyzer_.jobs_observed();
  return poll;
}

StatusOr<StreamingReport> TraceFollower::Report() const {
  return analyzer_.Report(has_view_ ? &view_ : nullptr);
}

}  // namespace swim::core

#include "core/analysis/data_access.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.h"
#include "storage/access_stream.h"

namespace swim::core {
namespace {

FilePopularity PopularityFromCounts(
    const std::unordered_map<std::string, size_t>& counts) {
  FilePopularity result;
  result.distinct_files = counts.size();
  result.frequencies.reserve(counts.size());
  for (const auto& [path, count] : counts) {
    result.frequencies.push_back(static_cast<double>(count));
    result.total_accesses += count;
  }
  std::sort(result.frequencies.begin(), result.frequencies.end(),
            std::greater<double>());
  result.zipf = stats::FitZipf(result.frequencies);
  return result;
}

}  // namespace

DataSizeCdfs ComputeDataSizeCdfs(const trace::Trace& trace) {
  std::vector<double> input, shuffle, output;
  input.reserve(trace.size());
  shuffle.reserve(trace.size());
  output.reserve(trace.size());
  for (const auto& job : trace.jobs()) {
    input.push_back(job.input_bytes);
    shuffle.push_back(job.shuffle_bytes);
    output.push_back(job.output_bytes);
  }
  return DataSizeCdfs{stats::EmpiricalCdf(std::move(input)),
                      stats::EmpiricalCdf(std::move(shuffle)),
                      stats::EmpiricalCdf(std::move(output))};
}

FilePopularity ComputeInputPopularity(const trace::Trace& trace) {
  std::unordered_map<std::string, size_t> counts;
  for (const auto& job : trace.jobs()) {
    if (!job.input_path.empty()) ++counts[job.input_path];
  }
  return PopularityFromCounts(counts);
}

FilePopularity ComputeOutputPopularity(const trace::Trace& trace) {
  std::unordered_map<std::string, size_t> counts;
  for (const auto& job : trace.jobs()) {
    if (!job.output_path.empty()) ++counts[job.output_path];
  }
  return PopularityFromCounts(counts);
}

SizeSkewCurve ComputeSizeSkew(const trace::Trace& trace, bool use_output,
                              size_t curve_points) {
  SizeSkewCurve curve;
  // Per-job file size and per-file stored size.
  std::vector<double> job_file_sizes;
  std::unordered_map<std::string, double> file_sizes;
  for (const auto& job : trace.jobs()) {
    const std::string& path = use_output ? job.output_path : job.input_path;
    double bytes = use_output ? job.output_bytes : job.input_bytes;
    if (path.empty()) continue;
    auto [it, inserted] = file_sizes.emplace(path, bytes);
    if (!inserted) it->second = std::max(it->second, bytes);
  }
  // Second pass: attribute to each job the (final) size of its file.
  for (const auto& job : trace.jobs()) {
    const std::string& path = use_output ? job.output_path : job.input_path;
    if (path.empty()) continue;
    job_file_sizes.push_back(file_sizes[path]);
  }
  curve.jobs_with_paths = job_file_sizes.size();
  if (job_file_sizes.empty()) return curve;

  std::vector<double> stored;
  stored.reserve(file_sizes.size());
  for (const auto& [path, bytes] : file_sizes) {
    stored.push_back(bytes);
    curve.total_stored_bytes += bytes;
  }
  std::sort(job_file_sizes.begin(), job_file_sizes.end());
  std::sort(stored.begin(), stored.end());
  std::vector<double> stored_cumulative(stored.size());
  double running = 0.0;
  for (size_t i = 0; i < stored.size(); ++i) {
    running += stored[i];
    stored_cumulative[i] = running;
  }

  double lo = std::max(1.0, job_file_sizes.front());
  double hi = std::max(lo, job_file_sizes.back());
  double log_lo = std::log10(lo);
  double log_hi = std::log10(hi);
  for (size_t i = 0; i < curve_points; ++i) {
    double t = curve_points > 1
                   ? static_cast<double>(i) / static_cast<double>(curve_points - 1)
                   : 1.0;
    SizeSkewPoint point;
    point.file_bytes = std::pow(10.0, log_lo + t * (log_hi - log_lo));
    auto job_it = std::upper_bound(job_file_sizes.begin(),
                                   job_file_sizes.end(), point.file_bytes);
    point.fraction_of_jobs =
        static_cast<double>(job_it - job_file_sizes.begin()) /
        static_cast<double>(job_file_sizes.size());
    auto stored_it =
        std::upper_bound(stored.begin(), stored.end(), point.file_bytes);
    size_t index = static_cast<size_t>(stored_it - stored.begin());
    double bytes_below = index == 0 ? 0.0 : stored_cumulative[index - 1];
    point.fraction_of_stored_bytes =
        curve.total_stored_bytes > 0.0 ? bytes_below / curve.total_stored_bytes
                                       : 0.0;
    curve.points.push_back(point);
  }
  return curve;
}

double StoredBytesFractionForJobCoverage(const trace::Trace& trace,
                                         double job_fraction,
                                         bool use_output) {
  // Per-file (final) sizes and, per job, the size of the file it accessed.
  std::unordered_map<std::string, double> file_sizes;
  for (const auto& job : trace.jobs()) {
    const std::string& path = use_output ? job.output_path : job.input_path;
    double bytes = use_output ? job.output_bytes : job.input_bytes;
    if (path.empty()) continue;
    auto [it, inserted] = file_sizes.emplace(path, bytes);
    if (!inserted) it->second = std::max(it->second, bytes);
  }
  std::vector<double> job_file_sizes;
  for (const auto& job : trace.jobs()) {
    const std::string& path = use_output ? job.output_path : job.input_path;
    if (path.empty()) continue;
    job_file_sizes.push_back(file_sizes[path]);
  }
  if (job_file_sizes.empty()) return 0.0;

  // Size threshold S below which `job_fraction` of accesses fall ...
  std::sort(job_file_sizes.begin(), job_file_sizes.end());
  double threshold = stats::QuantileSorted(job_file_sizes, job_fraction);
  // ... and the share of stored bytes held by files of size <= S.
  double covered_bytes = 0.0;
  double total_bytes = 0.0;
  for (const auto& [path, bytes] : file_sizes) {
    total_bytes += bytes;
    if (bytes <= threshold) covered_bytes += bytes;
  }
  return total_bytes > 0.0 ? covered_bytes / total_bytes : 0.0;
}

ReaccessIntervals ComputeReaccessIntervals(const trace::Trace& trace) {
  std::vector<double> input_input;
  std::vector<double> output_input;
  std::unordered_map<std::string, double> last_read;    // path -> time
  std::unordered_map<std::string, double> last_written;  // path -> time
  // Walk the merged access stream chronologically.
  for (const auto& access : storage::ExtractAccesses(trace)) {
    if (access.kind == storage::AccessKind::kRead) {
      auto read_it = last_read.find(access.path);
      if (read_it != last_read.end()) {
        input_input.push_back(access.time - read_it->second);
      }
      auto write_it = last_written.find(access.path);
      if (write_it != last_written.end()) {
        double interval = access.time - write_it->second;
        if (interval >= 0.0) output_input.push_back(interval);
      }
      last_read[access.path] = access.time;
    } else {
      last_written[access.path] = access.time;
    }
  }
  return ReaccessIntervals{stats::EmpiricalCdf(std::move(input_input)),
                           stats::EmpiricalCdf(std::move(output_input))};
}

ReaccessFractions ComputeReaccessFractions(const trace::Trace& trace) {
  ReaccessFractions result;
  std::unordered_set<std::string> seen_inputs;
  std::unordered_set<std::string> seen_outputs;
  size_t input_hits = 0;
  size_t output_hits = 0;
  // Chronological scan; for each job, was its input path pre-existing?
  for (const auto& access : storage::ExtractAccesses(trace)) {
    if (access.kind == storage::AccessKind::kRead) {
      ++result.jobs_with_paths;
      // Count the strongest provenance: output-of-an-earlier-job wins over
      // input-seen-before (matches Figure 6's two stacked categories).
      if (seen_outputs.count(access.path) > 0) {
        ++output_hits;
      } else if (seen_inputs.count(access.path) > 0) {
        ++input_hits;
      }
      seen_inputs.insert(access.path);
    } else {
      seen_outputs.insert(access.path);
    }
  }
  if (result.jobs_with_paths > 0) {
    result.input_reaccess = static_cast<double>(input_hits) /
                            static_cast<double>(result.jobs_with_paths);
    result.output_reaccess = static_cast<double>(output_hits) /
                             static_cast<double>(result.jobs_with_paths);
  }
  return result;
}

}  // namespace swim::core

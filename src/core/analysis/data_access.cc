#include "core/analysis/data_access.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "common/concurrent_hash.h"
#include "common/interner.h"
#include "common/parallel.h"
#include "stats/descriptive.h"
#include "storage/access_stream.h"

namespace swim::core {
namespace {

// All path-keyed tables in this file are dense vectors indexed by the
// trace's interned path ids (see Trace::path_interner): one array index
// per touch instead of a string hash + chained-bucket walk. Ids are
// assigned in first-appearance order, so every loop below is byte-for-byte
// deterministic.
//
// The popularity and file-size scans additionally go parallel on large
// traces — ParallelFor workers update ONE shared table (a lock-free
// ConcurrentCounter for counts, an atomic CAS-max array for sizes) instead
// of filling private tables merged serially. Both updates are commutative
// (integer sums, floating max), so the result is identical to the serial
// scan at any thread count. The chronological re-access scans below stay
// serial by design: they carry last-access state across the sorted stream.

// Below this many rows the serial loop wins; also keeps tiny-trace tests
// on the historically exercised path.
constexpr size_t kParallelScanThreshold = 65536;
constexpr size_t kScanGrain = 16384;

// Order-preserving bijection double -> uint64: a >= b (finite, non-NaN)
// iff Key(a) >= Key(b), so integer CAS-max implements floating max.
uint64_t MonotoneKey(double value) {
  uint64_t bits = std::bit_cast<uint64_t>(value);
  return bits ^ ((bits >> 63) != 0 ? ~0ull : 0x8000000000000000ull);
}

double MonotoneKeyToDouble(uint64_t key) {
  uint64_t bits =
      key ^ ((key >> 63) != 0 ? 0x8000000000000000ull : ~0ull);
  return std::bit_cast<double>(bits);
}

FilePopularity PopularityFromCounts(const std::vector<size_t>& counts) {
  FilePopularity result;
  result.frequencies.reserve(counts.size());
  for (size_t count : counts) {
    if (count == 0) continue;  // path only seen in the other direction
    result.frequencies.push_back(static_cast<double>(count));
    result.total_accesses += count;
  }
  result.distinct_files = result.frequencies.size();
  std::sort(result.frequencies.begin(), result.frequencies.end(),
            std::greater<double>());
  result.zipf = stats::FitZipf(result.frequencies);
  return result;
}

FilePopularity ComputePopularity(const trace::Trace& trace, bool use_output) {
  const std::vector<uint32_t>& ids =
      use_output ? trace.output_path_ids() : trace.input_path_ids();
  const size_t path_count = trace.path_interner().size();
  std::vector<size_t> counts(path_count, 0);
  if (ids.size() >= kParallelScanThreshold && DefaultParallelism() > 1) {
    // One shared lock-free table, all workers incrementing in place.
    // Reserved for the full id population up front, so every Add() and the
    // extraction below stay on the lock-free path.
    ConcurrentCounter<uint32_t> shared(path_count);
    ParallelFor(0, ids.size(), kScanGrain,
                [&](size_t chunk_begin, size_t chunk_end) {
                  for (size_t i = chunk_begin; i < chunk_end; ++i) {
                    if (ids[i] != kNoStringId) shared.Add(ids[i]);
                  }
                });
    shared.ForEach([&](uint32_t id, uint64_t count) {
      counts[id] = static_cast<size_t>(count);
    });
  } else {
    for (uint32_t id : ids) {
      if (id != kNoStringId) ++counts[id];
    }
  }
  return PopularityFromCounts(counts);
}

/// Per-path (final) file size: the maximum bytes any job moved through the
/// path, dense-indexed by path id; entries never touched stay negative.
std::vector<double> FileSizesById(const trace::Trace& trace,
                                  bool use_output) {
  const std::vector<uint32_t>& ids =
      use_output ? trace.output_path_ids() : trace.input_path_ids();
  const std::vector<trace::JobRecord>& jobs = trace.jobs();
  const size_t path_count = trace.path_interner().size();
  std::vector<double> file_sizes(path_count, -1.0);
  if (jobs.size() >= kParallelScanThreshold && DefaultParallelism() > 1) {
    // Shared CAS-max table: doubles mapped through an order-preserving
    // uint64 key so the per-path max is one atomic compare-exchange loop.
    // Max is commutative, so the result matches the serial scan exactly.
    auto slots = std::make_unique<std::atomic<uint64_t>[]>(path_count);
    const uint64_t never = MonotoneKey(-1.0);
    for (size_t i = 0; i < path_count; ++i) {
      slots[i].store(never, std::memory_order_relaxed);
    }
    ParallelFor(0, jobs.size(), kScanGrain,
                [&](size_t chunk_begin, size_t chunk_end) {
                  for (size_t i = chunk_begin; i < chunk_end; ++i) {
                    uint32_t id = ids[i];
                    if (id == kNoStringId) continue;
                    uint64_t key = MonotoneKey(
                        use_output ? jobs[i].output_bytes
                                   : jobs[i].input_bytes);
                    uint64_t seen =
                        slots[id].load(std::memory_order_relaxed);
                    while (seen < key &&
                           !slots[id].compare_exchange_weak(
                               seen, key, std::memory_order_relaxed)) {
                    }
                  }
                });
    for (size_t i = 0; i < path_count; ++i) {
      file_sizes[i] = MonotoneKeyToDouble(
          slots[i].load(std::memory_order_relaxed));
    }
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) {
      uint32_t id = ids[i];
      if (id == kNoStringId) continue;
      double bytes =
          use_output ? jobs[i].output_bytes : jobs[i].input_bytes;
      file_sizes[id] = std::max(file_sizes[id], bytes);
    }
  }
  return file_sizes;
}

}  // namespace

DataSizeCdfs ComputeDataSizeCdfs(const trace::Trace& trace) {
  std::vector<double> input, shuffle, output;
  input.reserve(trace.size());
  shuffle.reserve(trace.size());
  output.reserve(trace.size());
  for (const auto& job : trace.jobs()) {
    input.push_back(job.input_bytes);
    shuffle.push_back(job.shuffle_bytes);
    output.push_back(job.output_bytes);
  }
  return DataSizeCdfs{stats::EmpiricalCdf(std::move(input)),
                      stats::EmpiricalCdf(std::move(shuffle)),
                      stats::EmpiricalCdf(std::move(output))};
}

FilePopularity ComputeInputPopularity(const trace::Trace& trace) {
  return ComputePopularity(trace, /*use_output=*/false);
}

FilePopularity ComputeOutputPopularity(const trace::Trace& trace) {
  return ComputePopularity(trace, /*use_output=*/true);
}

SizeSkewCurve ComputeSizeSkew(const trace::Trace& trace, bool use_output,
                              size_t curve_points) {
  SizeSkewCurve curve;
  // Per-file stored size, then per-job the (final) size of its file.
  std::vector<double> file_sizes = FileSizesById(trace, use_output);
  const std::vector<uint32_t>& ids =
      use_output ? trace.output_path_ids() : trace.input_path_ids();
  std::vector<double> job_file_sizes;
  job_file_sizes.reserve(trace.size());
  for (uint32_t id : ids) {
    if (id == kNoStringId) continue;
    job_file_sizes.push_back(file_sizes[id]);
  }
  curve.jobs_with_paths = job_file_sizes.size();
  if (job_file_sizes.empty()) return curve;

  std::vector<double> stored;
  stored.reserve(file_sizes.size());
  for (double bytes : file_sizes) {
    if (bytes < 0.0) continue;
    stored.push_back(bytes);
    curve.total_stored_bytes += bytes;
  }
  std::sort(job_file_sizes.begin(), job_file_sizes.end());
  std::sort(stored.begin(), stored.end());
  std::vector<double> stored_cumulative(stored.size());
  double running = 0.0;
  for (size_t i = 0; i < stored.size(); ++i) {
    running += stored[i];
    stored_cumulative[i] = running;
  }

  double lo = std::max(1.0, job_file_sizes.front());
  double hi = std::max(lo, job_file_sizes.back());
  double log_lo = std::log10(lo);
  double log_hi = std::log10(hi);
  for (size_t i = 0; i < curve_points; ++i) {
    double t = curve_points > 1
                   ? static_cast<double>(i) / static_cast<double>(curve_points - 1)
                   : 1.0;
    SizeSkewPoint point;
    point.file_bytes = std::pow(10.0, log_lo + t * (log_hi - log_lo));
    auto job_it = std::upper_bound(job_file_sizes.begin(),
                                   job_file_sizes.end(), point.file_bytes);
    point.fraction_of_jobs =
        static_cast<double>(job_it - job_file_sizes.begin()) /
        static_cast<double>(job_file_sizes.size());
    auto stored_it =
        std::upper_bound(stored.begin(), stored.end(), point.file_bytes);
    size_t index = static_cast<size_t>(stored_it - stored.begin());
    double bytes_below = index == 0 ? 0.0 : stored_cumulative[index - 1];
    point.fraction_of_stored_bytes =
        curve.total_stored_bytes > 0.0 ? bytes_below / curve.total_stored_bytes
                                       : 0.0;
    curve.points.push_back(point);
  }
  return curve;
}

double StoredBytesFractionForJobCoverage(const trace::Trace& trace,
                                         double job_fraction,
                                         bool use_output) {
  // Per-file (final) sizes and, per job, the size of the file it accessed.
  std::vector<double> file_sizes = FileSizesById(trace, use_output);
  const std::vector<uint32_t>& ids =
      use_output ? trace.output_path_ids() : trace.input_path_ids();
  std::vector<double> job_file_sizes;
  job_file_sizes.reserve(trace.size());
  for (uint32_t id : ids) {
    if (id == kNoStringId) continue;
    job_file_sizes.push_back(file_sizes[id]);
  }
  if (job_file_sizes.empty()) return 0.0;

  // Size threshold S below which `job_fraction` of accesses fall ...
  std::sort(job_file_sizes.begin(), job_file_sizes.end());
  double threshold = stats::QuantileSorted(job_file_sizes, job_fraction);
  // ... and the share of stored bytes held by files of size <= S.
  double covered_bytes = 0.0;
  double total_bytes = 0.0;
  for (double bytes : file_sizes) {
    if (bytes < 0.0) continue;
    total_bytes += bytes;
    if (bytes <= threshold) covered_bytes += bytes;
  }
  return total_bytes > 0.0 ? covered_bytes / total_bytes : 0.0;
}

ReaccessIntervals ComputeReaccessIntervals(const trace::Trace& trace) {
  std::vector<double> input_input;
  std::vector<double> output_input;
  // path id -> last access time; negative means never.
  const size_t path_count = trace.path_interner().size();
  std::vector<double> last_read(path_count, -1.0);
  std::vector<double> last_written(path_count, -1.0);
  // Walk the merged access stream chronologically.
  for (const auto& access : storage::ExtractAccesses(trace)) {
    uint32_t id = access.path_id;
    if (access.kind == storage::AccessKind::kRead) {
      if (last_read[id] >= 0.0) {
        input_input.push_back(access.time - last_read[id]);
      }
      if (last_written[id] >= 0.0) {
        double interval = access.time - last_written[id];
        if (interval >= 0.0) output_input.push_back(interval);
      }
      last_read[id] = access.time;
    } else {
      last_written[id] = access.time;
    }
  }
  return ReaccessIntervals{stats::EmpiricalCdf(std::move(input_input)),
                           stats::EmpiricalCdf(std::move(output_input))};
}

ReaccessFractions ComputeReaccessFractions(const trace::Trace& trace) {
  ReaccessFractions result;
  const size_t path_count = trace.path_interner().size();
  std::vector<uint8_t> seen_inputs(path_count, 0);
  std::vector<uint8_t> seen_outputs(path_count, 0);
  size_t input_hits = 0;
  size_t output_hits = 0;
  // Chronological scan; for each job, was its input path pre-existing?
  for (const auto& access : storage::ExtractAccesses(trace)) {
    uint32_t id = access.path_id;
    if (access.kind == storage::AccessKind::kRead) {
      ++result.jobs_with_paths;
      // Count the strongest provenance: output-of-an-earlier-job wins over
      // input-seen-before (matches Figure 6's two stacked categories).
      if (seen_outputs[id]) {
        ++output_hits;
      } else if (seen_inputs[id]) {
        ++input_hits;
      }
      seen_inputs[id] = 1;
    } else {
      seen_outputs[id] = 1;
    }
  }
  if (result.jobs_with_paths > 0) {
    result.input_reaccess = static_cast<double>(input_hits) /
                            static_cast<double>(result.jobs_with_paths);
    result.output_reaccess = static_cast<double>(output_hits) /
                             static_cast<double>(result.jobs_with_paths);
  }
  return result;
}

}  // namespace swim::core

#ifndef SWIM_CORE_ANALYSIS_STREAMING_H_
#define SWIM_CORE_ANALYSIS_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/span.h"
#include "common/statusor.h"
#include "core/analysis/compute.h"
#include "core/analysis/data_access.h"
#include "core/analysis/temporal.h"
#include "stats/sketch/gk_quantile.h"
#include "stats/sketch/sliding_window.h"
#include "stats/sketch/space_saving.h"
#include "stats/sketch/zipf_online.h"
#include "trace/columnar.h"
#include "trace/job_record.h"
#include "trace/summary.h"
#include "trace/trace.h"

namespace swim::core {

// ---------------------------------------------------------------------------
// Streaming analysis — the zero-materialization fast path.
//
// The batch pipeline (AnalyzeWorkload) materializes a full JobRecord vector
// and sorts whole columns. StreamingAnalyzer instead folds the paper's
// analyses one batch at a time, straight off ColumnarTraceView column spans
// (no JobRecord is ever built) or off parsed CSV rows:
//
//   exact, replayed in job order      sketch-backed (bounded memory)
//   ------------------------------    --------------------------------
//   Table 1 counts/sums/span          per-job size + duration quantiles
//   file popularity + Zipf fit        re-access interval quantiles (GK)
//   re-access fractions (Fig. 6)      hot-file top-k (Space-Saving)
//   burstiness / correlations /       sliding-window peak-to-median
//     diurnal (hourly series)
//   job-name / framework shares
//   under-10GB job fraction
//
// Every exact stage performs the identical operations in the identical
// order as its batch counterpart, so those report fields match the batch
// report bit for bit on the same rows (pinned by streaming_test). Sketch
// stages answer within the configured rank epsilon of the SortedStats
// oracle. k-means classification inherently needs a batch pass and is the
// one batch stage without a streaming equivalent.
//
// Determinism: exact accumulators run serially in row order; GK sketches
// are built per fixed-size row chunk in parallel and merged in chunk order
// — the chunking depends only on batch size, so output is byte-identical
// at any SWIM_THREADS.
// ---------------------------------------------------------------------------

struct StreamingOptions {
  /// Advertised rank-error bound for every GK quantile sketch.
  double quantile_epsilon = 0.005;
  /// Tracked slots for the hot-input Space-Saving sketch.
  size_t hot_file_capacity = 64;
  /// Sliding-window span, in hourly buckets (default: the paper's week).
  size_t window_hours = 168;
  /// Worker lanes for the per-chunk sketch build; 0 = default. Results
  /// are identical at any value.
  int threads = 0;
};

/// Sketch-backed quantile row (rank error <= epsilon * n each).
struct StreamingQuantiles {
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct StreamingHotFile {
  std::string path;
  uint64_t count = 0;  // overestimate; true count in [count-error, count]
  uint64_t error = 0;
};

struct StreamingWindowStats {
  double jobs_peak_to_median = 0.0;
  double bytes_peak_to_median = 0.0;
  double task_seconds_peak_to_median = 0.0;
  size_t live_hours = 0;
};

/// The streaming analogue of WorkloadReport. Fields marked exact match the
/// batch report bit for bit; the rest carry the sketch guarantees above.
struct StreamingReport {
  trace::TraceSummary summary;  // exact except median_duration (GK-backed)
  StreamingQuantiles input_bytes;   // Figure 1 dimensions, GK-backed
  StreamingQuantiles shuffle_bytes;
  StreamingQuantiles output_bytes;
  StreamingQuantiles duration;
  FilePopularity input_popularity;   // exact
  FilePopularity output_popularity;  // exact
  ReaccessFractions reaccess_fractions;  // exact
  /// GK-backed q75 of input->input re-access intervals; < 0 when no
  /// re-access was observed.
  double reaccess_p75_interval = -1.0;
  BurstinessReport burstiness;     // exact
  SeriesCorrelations correlations;  // exact
  double diurnal_strength = 0.0;    // exact
  JobNameReport names;              // exact
  /// Exact fraction of jobs moving < 10 GB total (the paper's dichotomy,
  /// counted per job — the streaming stand-in for the k-means readout).
  double fraction_under_10gb = 0.0;
  std::vector<StreamingHotFile> hot_inputs;  // Space-Saving top-k
  StreamingWindowStats window;
  size_t batches = 0;
  double quantile_epsilon = 0.0;
};

/// One-pass incremental analyzer. Feed rows in submit order — either
/// column spans from an STF1 view (zero materialization) or JobRecord
/// spans from a CSV parse — then render a StreamingReport at any point.
/// An instance is bound to one source kind by its first Observe call.
/// Not thread-safe (one follower owns one analyzer); internally parallel.
class StreamingAnalyzer {
 public:
  explicit StreamingAnalyzer(StreamingOptions options = {});

  /// Trace identity for the report header. Columnar batches adopt the
  /// view's metadata automatically; CSV callers set it once after parsing.
  void SetMetadata(const trace::TraceMetadata& metadata);

  /// Folds rows [begin, end) of `view`'s columns. Rows must continue the
  /// submit-order stream (nondecreasing submit times across calls); values
  /// are validated first, and a rejected batch leaves the analyzer
  /// untouched. Dictionary ids may grow between calls (append-only files);
  /// ids are validated against the view's current dictionaries.
  Status ObserveColumns(const trace::ColumnarTraceView& view, size_t begin,
                        size_t end);

  /// Folds parsed rows (the CSV fallback). Jobs must be in submit order.
  Status ObserveJobs(Span<const trace::JobRecord> jobs);

  size_t jobs_observed() const { return jobs_; }
  size_t batches_observed() const { return batches_; }
  const StreamingOptions& options() const { return options_; }

  /// Renders the report. In columnar mode pass the current view so hot
  /// files resolve to path strings (nullptr renders "path#<id>"); the CSV
  /// mode resolves through its own interner. O(sketch + distinct files +
  /// observed hours); the job stream is never revisited.
  StatusOr<StreamingReport> Report(
      const trace::ColumnarTraceView* dictionaries = nullptr) const;

 private:
  enum class Mode { kUnset, kColumnar, kJobs };

  struct PendingWrite {
    double time = 0.0;
    uint64_t seq = 0;
    uint32_t path_id = 0;
  };

  Status ValidateColumns(const trace::ColumnarTraceView& view, size_t begin,
                         size_t end) const;
  void EnsurePathTables(size_t path_count);
  void PopWritesBefore(double time, uint64_t seq);
  /// The shared exact per-row update (both modes reduce to these scalars).
  void ObserveRowSerial(double submit, double duration, double input_bytes,
                        double shuffle_bytes, double output_bytes,
                        int64_t reduce_tasks, double map_task_seconds,
                        double reduce_task_seconds, uint32_t input_path_id,
                        uint32_t output_path_id);
  void ObserveNameColumnar(const trace::ColumnarTraceView& view,
                           uint32_t name_id, double total_bytes,
                           double total_task_seconds);

  StreamingOptions options_;
  Mode mode_ = Mode::kUnset;
  trace::TraceMetadata metadata_;
  bool metadata_set_ = false;
  size_t jobs_ = 0;
  size_t batches_ = 0;

  // Exact summary accumulators (row order).
  double first_submit_ = 0.0;
  double last_submit_ = 0.0;
  double max_finish_ = 0.0;
  double bytes_moved_ = 0.0;
  size_t map_only_ = 0;
  size_t under_10gb_ = 0;

  // Mergeable quantile sketches.
  stats::GkQuantileSketch gk_input_;
  stats::GkQuantileSketch gk_shuffle_;
  stats::GkQuantileSketch gk_output_;
  stats::GkQuantileSketch gk_duration_;
  stats::GkQuantileSketch gk_reaccess_in_;
  stats::GkQuantileSketch gk_reaccess_out_;

  // Exact hourly series, grown in submit order; padded to the full span
  // at Report() time exactly as Trace::HourlySeries sizes it.
  std::vector<double> hourly_jobs_;
  std::vector<double> hourly_bytes_;
  std::vector<double> hourly_task_seconds_;

  // Exact popularity + sketch-backed hot files.
  stats::OnlineZipf input_popularity_;
  stats::OnlineZipf output_popularity_;
  stats::SpaceSavingSketch hot_inputs_;

  // Sliding windows (bounded memory view of the recent stream).
  stats::SlidingWindowSeries window_jobs_;
  stats::SlidingWindowSeries window_bytes_;
  stats::SlidingWindowSeries window_task_seconds_;

  // Re-access scan state: replays storage::ExtractAccesses' merged
  // chronological order without building it — writes (at finish time) wait
  // in a min-heap keyed by (time, stream seq) and are drained before each
  // read, reproducing the batch stable_sort's insertion-order tie-break.
  std::vector<PendingWrite> pending_writes_;  // binary min-heap
  std::vector<double> last_read_;
  std::vector<double> last_written_;
  std::vector<uint8_t> seen_inputs_;
  std::vector<uint8_t> seen_outputs_;
  size_t jobs_with_paths_ = 0;
  size_t input_hits_ = 0;
  size_t output_hits_ = 0;

  // Exact job-name shares (shared with the batch pipeline).
  JobNameAccumulator names_;
  std::vector<uint32_t> word_of_name_;  // columnar memo: name id -> word id

  // CSV-mode interners (first-appearance order, matching the trace's lazy
  // index build: input path before output path per job).
  StringInterner path_interner_;
  StringInterner name_interner_;
};

/// Human-readable rendering, section for section the streaming analogue of
/// FormatReport (exact lines use the same formats).
std::string FormatStreamingReport(const StreamingReport& report);

}  // namespace swim::core

#endif  // SWIM_CORE_ANALYSIS_STREAMING_H_

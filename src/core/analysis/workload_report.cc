#include "core/analysis/workload_report.h"

#include <cstdio>
#include <functional>
#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "common/units.h"

namespace swim::core {

StatusOr<WorkloadReport> AnalyzeWorkload(const trace::Trace& trace,
                                         const AnalysisOptions& options) {
  if (trace.empty()) return InvalidArgumentError("empty trace");
  WorkloadReport report;
  // Force the trace's lazy submit-time sort and path id index before
  // stages share it (the lazy builds are not thread-safe).
  trace.StartTime();
  trace.input_path_ids();
  // Each stage writes one disjoint report field and reads only the trace,
  // so they are data-race free and their outputs are order-independent.
  std::vector<std::function<void()>> stages = {
      [&]() { report.summary = trace::Summarize(trace); },
      [&]() { report.data_sizes = ComputeDataSizeCdfs(trace); },
      [&]() { report.input_popularity = ComputeInputPopularity(trace); },
      [&]() { report.output_popularity = ComputeOutputPopularity(trace); },
      [&]() { report.reaccess_intervals = ComputeReaccessIntervals(trace); },
      [&]() { report.reaccess_fractions = ComputeReaccessFractions(trace); },
      [&]() { report.burstiness = ComputeBurstiness(trace); },
      [&]() { report.correlations = ComputeSeriesCorrelations(trace); },
      [&]() { report.diurnal_strength = DiurnalStrength(trace); },
      [&]() { report.names = AnalyzeJobNames(trace); },
  };
  RunConcurrently(stages, options.threads);
  ClassificationOptions classification = options.classification;
  if (classification.threads == 0) classification.threads = options.threads;
  SWIM_ASSIGN_OR_RETURN(report.classes, ClassifyJobs(trace, classification));
  return report;
}

std::string FormatReport(const WorkloadReport& report) {
  std::ostringstream os;
  char line[256];
  os << "=== Workload: " << report.summary.name << " ===\n";
  std::snprintf(line, sizeof(line),
                "jobs=%s  bytes_moved=%s  span=%s  machines=%d\n",
                FormatCount(report.summary.jobs).c_str(),
                FormatBytes(report.summary.bytes_moved).c_str(),
                FormatDuration(report.summary.span_seconds).c_str(),
                report.summary.machines);
  os << line;

  os << "\n-- Data access (sec. 4) --\n";
  std::snprintf(line, sizeof(line),
                "median per-job sizes: input=%s shuffle=%s output=%s\n",
                FormatBytes(report.data_sizes.input.median()).c_str(),
                FormatBytes(report.data_sizes.shuffle.median()).c_str(),
                FormatBytes(report.data_sizes.output.median()).c_str());
  os << line;
  if (report.input_popularity.distinct_files > 0) {
    std::snprintf(line, sizeof(line),
                  "input file popularity: %zu files, Zipf slope=%.2f "
                  "(r2=%.2f)\n",
                  report.input_popularity.distinct_files,
                  report.input_popularity.zipf.slope,
                  report.input_popularity.zipf.r_squared);
    os << line;
    std::snprintf(line, sizeof(line),
                  "re-access: %.0f%% of jobs read pre-existing inputs, "
                  "%.0f%% read pre-existing outputs\n",
                  100 * report.reaccess_fractions.input_reaccess,
                  100 * report.reaccess_fractions.output_reaccess);
    os << line;
    if (!report.reaccess_intervals.input_input.empty()) {
      std::snprintf(
          line, sizeof(line), "75%% of input re-accesses within %s\n",
          FormatDuration(report.reaccess_intervals.input_input.Quantile(0.75))
              .c_str());
      os << line;
    }
  } else {
    os << "(no file paths in this trace)\n";
  }

  os << "\n-- Temporal (sec. 5) --\n";
  std::snprintf(line, sizeof(line),
                "burstiness peak:median  jobs=%.0f:1  bytes=%.0f:1  "
                "task-secs=%.0f:1\n",
                report.burstiness.jobs.PeakToMedian(),
                report.burstiness.bytes.PeakToMedian(),
                report.burstiness.task_seconds.PeakToMedian());
  os << line;
  std::snprintf(line, sizeof(line),
                "correlations: jobs-bytes=%.2f jobs-compute=%.2f "
                "bytes-compute=%.2f   diurnal=%.2f\n",
                report.correlations.jobs_bytes,
                report.correlations.jobs_task_seconds,
                report.correlations.bytes_task_seconds,
                report.diurnal_strength);
  os << line;

  os << "\n-- Compute (sec. 6) --\n";
  if (report.names.named_jobs > 0) {
    os << "top job-name words (by jobs): ";
    size_t shown = 0;
    for (const auto& w : report.names.words) {
      if (shown++ >= 5) break;
      std::snprintf(line, sizeof(line), "%s=%.0f%% ", w.word.c_str(),
                    100 * w.by_jobs);
      os << line;
    }
    os << "\n";
    std::snprintf(line, sizeof(line),
                  "framework share of jobs: Hive=%.0f%% Pig=%.0f%% "
                  "Oozie=%.0f%% Native=%.0f%%\n",
                  100 * report.names.framework_by_jobs[0],
                  100 * report.names.framework_by_jobs[1],
                  100 * report.names.framework_by_jobs[2],
                  100 * report.names.framework_by_jobs[3]);
    os << line;
  } else {
    os << "(no job names in this trace)\n";
  }
  std::snprintf(line, sizeof(line),
                "k-means: k=%d, largest class %.0f%% of jobs, %.0f%% of jobs "
                "< 10GB total data\n",
                report.classes.k, 100 * report.classes.largest_class_fraction,
                100 * report.classes.fraction_under_10gb);
  os << line;
  for (const auto& jc : report.classes.classes) {
    std::snprintf(line, sizeof(line),
                  "  %8zu  in=%-9s shf=%-9s out=%-9s dur=%-8s  %s\n",
                  jc.count, FormatBytes(jc.input_bytes).c_str(),
                  FormatBytes(jc.shuffle_bytes).c_str(),
                  FormatBytes(jc.output_bytes).c_str(),
                  FormatDuration(jc.duration_seconds).c_str(),
                  jc.label.c_str());
    os << line;
  }
  return os.str();
}

}  // namespace swim::core

#ifndef SWIM_CORE_SYNTH_FIDELITY_H_
#define SWIM_CORE_SYNTH_FIDELITY_H_

#include <string>
#include <vector>

#include "trace/trace.h"

namespace swim::core {

/// Per-dimension statistical distance between a source trace and a
/// synthesized one.
struct DimensionFidelity {
  std::string dimension;
  /// Kolmogorov-Smirnov distance between the two empirical CDFs (0 = the
  /// distributions coincide, 1 = disjoint).
  double ks_distance = 0.0;
  double source_median = 0.0;
  double synth_median = 0.0;
};

struct FidelityReport {
  std::vector<DimensionFidelity> dimensions;  // the six job dimensions
  double max_ks = 0.0;
  /// bytes-compute hourly correlation in each trace (the paper's strongest
  /// temporal coupling; a good synthesis preserves it).
  double source_bytes_compute_corr = 0.0;
  double synth_bytes_compute_corr = 0.0;
  /// Peak-to-median burstiness of task-seconds/hour in each trace.
  double source_peak_to_median = 0.0;
  double synth_peak_to_median = 0.0;
};

/// Quantifies how well `synthesized` reproduces `source`. The paper offers
/// no single fidelity number; KS distance across all six job dimensions
/// plus the temporal couplings is the natural multi-dimensional check.
FidelityReport CompareTraces(const trace::Trace& source,
                             const trace::Trace& synthesized);

std::string FormatFidelity(const FidelityReport& report);

}  // namespace swim::core

#endif  // SWIM_CORE_SYNTH_FIDELITY_H_

#include "core/synth/scale_down.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace swim::core {

StatusOr<trace::Trace> ScaleDownTrace(const trace::Trace& trace,
                                      const ScaleDownOptions& options) {
  if (options.job_fraction <= 0.0 || options.job_fraction > 1.0) {
    return InvalidArgumentError("job_fraction must be in (0, 1]");
  }
  if (options.time_factor <= 0.0) {
    return InvalidArgumentError("time_factor must be positive");
  }
  if (options.data_factor <= 0.0) {
    return InvalidArgumentError("data_factor must be positive");
  }
  Pcg32 rng(options.seed, /*stream=*/0x5ca1e);
  trace::Trace result(trace.metadata());
  for (const auto& source : trace.jobs()) {
    if (options.job_fraction < 1.0 &&
        !rng.NextBernoulli(options.job_fraction)) {
      continue;
    }
    trace::JobRecord job = source;
    job.submit_time *= options.time_factor;
    job.input_bytes *= options.data_factor;
    job.shuffle_bytes *= options.data_factor;
    job.output_bytes *= options.data_factor;
    job.map_task_seconds *= options.data_factor;
    job.reduce_task_seconds *= options.data_factor;
    if (options.data_factor < 1.0) {
      // Fewer/smaller tasks when per-job work shrinks; keep at least one
      // map task, and one reduce task for jobs that had a reduce stage.
      job.map_tasks = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 static_cast<double>(job.map_tasks) * options.data_factor)));
      if (job.reduce_tasks > 0) {
        job.reduce_tasks = std::max<int64_t>(
            1, static_cast<int64_t>(
                   std::llround(static_cast<double>(job.reduce_tasks) *
                                options.data_factor)));
      }
    }
    result.AddJob(std::move(job));
  }
  return result;
}

}  // namespace swim::core

#ifndef SWIM_CORE_SYNTH_WORKLOAD_MODEL_H_
#define SWIM_CORE_SYNTH_WORKLOAD_MODEL_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "trace/job_record.h"
#include "trace/trace.h"
#include "workloads/workload_spec.h"

namespace swim::core {

/// An *empirical* generative model extracted from a trace, following the
/// paper's section 7 position that workload dimensions do not fit
/// well-known closed-form distributions - "the workload traces are the
/// model". Synthesis resamples whole exemplar jobs (preserving the joint
/// distribution across all six dimensions) rather than sampling each
/// dimension independently.
struct WorkloadModel {
  std::string source_name;
  double span_seconds = 0.0;
  size_t total_jobs = 0;

  /// Whole-job exemplars (paths cleared; name reduced to its first word).
  /// A uniform subsample of the source when it exceeds the cap.
  std::vector<trace::JobRecord> exemplars;

  /// Hourly arrival weights over the source span (unnormalized).
  std::vector<double> hourly_envelope;

  /// Fitted file-access model: Zipf slope from the source's popularity
  /// curve, re-access fractions from its provenance scan, recency
  /// half-life from its interval CDF median.
  workloads::FilePopulationSpec file_model;
  workloads::TraceColumnAvailability columns;
};

struct ModelOptions {
  /// Maximum exemplars retained (uniform reservoir subsample above this).
  size_t exemplar_cap = 200000;
  uint64_t seed = 11;
};

/// Fits a WorkloadModel to a trace.
StatusOr<WorkloadModel> BuildModel(const trace::Trace& trace,
                                   const ModelOptions& options = {});

/// Serializes / parses a model as a self-contained text blob (envelope +
/// file-model parameters + exemplar CSV), so models can be shipped without
/// the raw trace - the paper's "public workload repository" use case.
std::string ModelToText(const WorkloadModel& model);
StatusOr<WorkloadModel> ModelFromText(const std::string& text);

Status SaveModel(const WorkloadModel& model, const std::string& path);
StatusOr<WorkloadModel> LoadModel(const std::string& path);

}  // namespace swim::core

#endif  // SWIM_CORE_SYNTH_WORKLOAD_MODEL_H_

#ifndef SWIM_CORE_SYNTH_SCALE_DOWN_H_
#define SWIM_CORE_SYNTH_SCALE_DOWN_H_

#include <cstdint>

#include "common/statusor.h"
#include "trace/trace.h"

namespace swim::core {

/// Scale-down operators for replaying production-scale workloads on small
/// clusters. The paper (section 7) notes there is no agreed-on way to
/// scale a workload; these are the three obvious axes, composable and
/// measurable with CompareTraces:
///
///  - job_fraction: keep a uniform Bernoulli sample of jobs (thins load
///    while preserving per-job statistics);
///  - time_factor: multiply submit times (< 1 compresses the trace,
///    intensifying load; durations are untouched);
///  - data_factor: multiply byte dimensions and task-seconds (shrinks
///    per-job work proportionally, as SWIM does when replaying on fewer
///    nodes).
struct ScaleDownOptions {
  double job_fraction = 1.0;  // in (0, 1]
  double time_factor = 1.0;   // > 0
  double data_factor = 1.0;   // > 0
  uint64_t seed = 3;
};

StatusOr<trace::Trace> ScaleDownTrace(const trace::Trace& trace,
                                      const ScaleDownOptions& options);

}  // namespace swim::core

#endif  // SWIM_CORE_SYNTH_SCALE_DOWN_H_

#include "core/synth/workload_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/analysis/data_access.h"
#include "stats/sampling.h"
#include "trace/trace_io.h"

namespace swim::core {
namespace {

workloads::TraceColumnAvailability InferColumns(const trace::Trace& trace) {
  workloads::TraceColumnAvailability columns;
  columns.names = false;
  columns.input_paths = false;
  columns.output_paths = false;
  for (const auto& job : trace.jobs()) {
    if (!job.name.empty()) columns.names = true;
    if (!job.input_path.empty()) columns.input_paths = true;
    if (!job.output_path.empty()) columns.output_paths = true;
    if (columns.names && columns.input_paths && columns.output_paths) break;
  }
  return columns;
}

}  // namespace

StatusOr<WorkloadModel> BuildModel(const trace::Trace& trace,
                                   const ModelOptions& options) {
  if (trace.empty()) return InvalidArgumentError("empty trace");
  WorkloadModel model;
  model.source_name = trace.metadata().name;
  model.span_seconds = std::max(trace.Span(), 3600.0);
  model.total_jobs = trace.size();
  model.columns = InferColumns(trace);

  // Whole-job exemplars: uniform reservoir subsample, stripped of paths and
  // reduced to the name's first word (the only part analysis consumes).
  Pcg32 rng(options.seed, /*stream=*/0x30de1);
  stats::ReservoirSampler<trace::JobRecord> sampler(
      std::max<size_t>(1, options.exemplar_cap), rng.Fork());
  for (const auto& job : trace.jobs()) {
    trace::JobRecord exemplar = job;
    exemplar.input_path.clear();
    exemplar.output_path.clear();
    exemplar.name = FirstWordOfJobName(exemplar.name);
    sampler.Add(std::move(exemplar));
  }
  model.exemplars = sampler.sample();

  model.hourly_envelope = trace.HourlyJobCounts();

  // File-access model fitted from the source trace.
  model.file_model.zipf_slope = 5.0 / 6.0;  // paper default when unfittable
  if (model.columns.input_paths) {
    FilePopularity popularity = ComputeInputPopularity(trace);
    if (popularity.zipf.ranks >= 10 && popularity.zipf.slope > 0.0) {
      model.file_model.zipf_slope = popularity.zipf.slope;
    }
    model.file_model.input_files =
        std::max<size_t>(16, popularity.distinct_files / 2);
    ReaccessFractions fractions = ComputeReaccessFractions(trace);
    model.file_model.input_reaccess_fraction = fractions.input_reaccess;
    model.file_model.output_reaccess_fraction =
        model.columns.output_paths ? fractions.output_reaccess : 0.0;
    ReaccessIntervals intervals = ComputeReaccessIntervals(trace);
    if (!intervals.input_input.empty()) {
      model.file_model.recency_halflife_seconds =
          std::max(60.0, intervals.input_input.median());
    }
  }
  return model;
}

std::string ModelToText(const WorkloadModel& model) {
  std::ostringstream os;
  os.precision(17);  // round-trip doubles exactly
  os << "#swim-model v1\n";
  os << "source=" << model.source_name << "\n";
  os << "span=" << model.span_seconds << "\n";
  os << "total_jobs=" << model.total_jobs << "\n";
  os << "columns=" << model.columns.names << "," << model.columns.input_paths
     << "," << model.columns.output_paths << "\n";
  const auto& f = model.file_model;
  os << "file_model=" << f.input_files << "," << f.zipf_slope << ","
     << f.input_reaccess_fraction << "," << f.output_reaccess_fraction << ","
     << f.recency_bias << "," << f.recency_halflife_seconds << "\n";
  os << "envelope=";
  for (size_t i = 0; i < model.hourly_envelope.size(); ++i) {
    if (i > 0) os << ",";
    os << model.hourly_envelope[i];
  }
  os << "\nexemplars:\n";
  trace::Trace exemplar_trace;
  for (const auto& job : model.exemplars) exemplar_trace.AddJob(job);
  os << trace::TraceToCsv(exemplar_trace);
  return os.str();
}

StatusOr<WorkloadModel> ModelFromText(const std::string& text) {
  WorkloadModel model;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || !StartsWith(line, "#swim-model")) {
    return InvalidArgumentError("not a swim model (missing magic line)");
  }
  bool saw_exemplars = false;
  while (std::getline(is, line)) {
    if (line == "exemplars:") {
      saw_exemplars = true;
      break;
    }
    auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "source") {
      model.source_name = value;
    } else if (key == "span") {
      if (!ParseDouble(value, &model.span_seconds)) {
        return InvalidArgumentError("bad span");
      }
    } else if (key == "total_jobs") {
      int64_t v = 0;
      if (!ParseInt64(value, &v) || v < 0) {
        return InvalidArgumentError("bad total_jobs");
      }
      model.total_jobs = static_cast<size_t>(v);
    } else if (key == "columns") {
      auto parts = Split(value, ',');
      if (parts.size() != 3) return InvalidArgumentError("bad columns");
      model.columns.names = parts[0] == "1";
      model.columns.input_paths = parts[1] == "1";
      model.columns.output_paths = parts[2] == "1";
    } else if (key == "file_model") {
      auto parts = Split(value, ',');
      if (parts.size() != 6) return InvalidArgumentError("bad file_model");
      int64_t files = 0;
      auto& f = model.file_model;
      if (!ParseInt64(parts[0], &files) || files <= 0 ||
          !ParseDouble(parts[1], &f.zipf_slope) ||
          !ParseDouble(parts[2], &f.input_reaccess_fraction) ||
          !ParseDouble(parts[3], &f.output_reaccess_fraction) ||
          !ParseDouble(parts[4], &f.recency_bias) ||
          !ParseDouble(parts[5], &f.recency_halflife_seconds)) {
        return InvalidArgumentError("bad file_model values");
      }
      f.input_files = static_cast<size_t>(files);
    } else if (key == "envelope") {
      for (const auto& token : Split(value, ',')) {
        double v = 0.0;
        if (!ParseDouble(token, &v)) {
          return InvalidArgumentError("bad envelope value: " + token);
        }
        model.hourly_envelope.push_back(v);
      }
    }
  }
  if (!saw_exemplars) return InvalidArgumentError("missing exemplars section");
  std::ostringstream rest;
  rest << is.rdbuf();
  SWIM_ASSIGN_OR_RETURN(trace::Trace exemplar_trace,
                        trace::TraceFromCsv(rest.str()));
  model.exemplars = exemplar_trace.jobs();
  if (model.exemplars.empty()) {
    return InvalidArgumentError("model has no exemplars");
  }
  if (model.total_jobs == 0) model.total_jobs = model.exemplars.size();
  if (model.span_seconds <= 0.0) {
    return InvalidArgumentError("model span must be positive");
  }
  return model;
}

Status SaveModel(const WorkloadModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open for writing: " + path);
  out << ModelToText(model);
  out.flush();
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<WorkloadModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ModelFromText(buffer.str());
}

}  // namespace swim::core

#ifndef SWIM_CORE_SYNTH_SYNTHESIZER_H_
#define SWIM_CORE_SYNTH_SYNTHESIZER_H_

#include "common/statusor.h"
#include "core/synth/workload_model.h"
#include "trace/trace.h"

namespace swim::core {

enum class SynthesisMethod {
  /// Resample whole exemplar jobs with small multiplicative jitter - the
  /// SWIM approach; preserves the joint distribution across dimensions.
  kEmpirical,
  /// Fit an independent lognormal per dimension and sample each
  /// independently. Deliberately naive; the ablation baseline showing why
  /// the paper insists on empirical models (section 7).
  kParametricLognormal,
};

struct SynthesisOptions {
  /// Jobs to synthesize; 0 means the model's total.
  size_t job_count = 0;
  /// Target span; 0 means the model's span. A shorter span compresses the
  /// arrival envelope (time scale-down).
  double span_seconds = 0.0;
  uint64_t seed = 5;
  /// Sigma of the lognormal jitter applied to resampled dimensions, so
  /// synthetic jobs are not literal copies.
  double jitter_sigma = 0.05;
  SynthesisMethod method = SynthesisMethod::kEmpirical;
};

/// Synthesizes a trace that is statistically representative of the model's
/// source workload: per-job dimensions from exemplar resampling, arrivals
/// from the empirical hourly envelope, file paths from the fitted
/// popularity/locality model. Deterministic in (model, options).
StatusOr<trace::Trace> SynthesizeTrace(const WorkloadModel& model,
                                       const SynthesisOptions& options = {});

}  // namespace swim::core

#endif  // SWIM_CORE_SYNTH_SYNTHESIZER_H_

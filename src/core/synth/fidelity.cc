#include "core/synth/fidelity.h"

#include <cstdio>
#include <functional>
#include <sstream>

#include "core/analysis/temporal.h"
#include "stats/empirical_cdf.h"

namespace swim::core {
namespace {

using Extractor = std::function<double(const trace::JobRecord&)>;

DimensionFidelity CompareDimension(const std::string& name,
                                   const trace::Trace& source,
                                   const trace::Trace& synthesized,
                                   const Extractor& extractor) {
  auto values = [&](const trace::Trace& t) {
    std::vector<double> v;
    v.reserve(t.size());
    for (const auto& job : t.jobs()) v.push_back(extractor(job));
    return stats::EmpiricalCdf(std::move(v));
  };
  stats::EmpiricalCdf a = values(source);
  stats::EmpiricalCdf b = values(synthesized);
  DimensionFidelity result;
  result.dimension = name;
  result.ks_distance = stats::EmpiricalCdf::KsDistance(a, b);
  result.source_median = a.median();
  result.synth_median = b.median();
  return result;
}

}  // namespace

FidelityReport CompareTraces(const trace::Trace& source,
                             const trace::Trace& synthesized) {
  FidelityReport report;
  const std::vector<std::pair<std::string, Extractor>> dims = {
      {"input_bytes", [](const auto& j) { return j.input_bytes; }},
      {"shuffle_bytes", [](const auto& j) { return j.shuffle_bytes; }},
      {"output_bytes", [](const auto& j) { return j.output_bytes; }},
      {"duration", [](const auto& j) { return j.duration; }},
      {"map_task_seconds", [](const auto& j) { return j.map_task_seconds; }},
      {"reduce_task_seconds",
       [](const auto& j) { return j.reduce_task_seconds; }},
  };
  for (const auto& [name, extractor] : dims) {
    DimensionFidelity d =
        CompareDimension(name, source, synthesized, extractor);
    report.max_ks = std::max(report.max_ks, d.ks_distance);
    report.dimensions.push_back(std::move(d));
  }
  report.source_bytes_compute_corr =
      ComputeSeriesCorrelations(source).bytes_task_seconds;
  report.synth_bytes_compute_corr =
      ComputeSeriesCorrelations(synthesized).bytes_task_seconds;
  report.source_peak_to_median =
      ComputeBurstiness(source).task_seconds.PeakToMedian();
  report.synth_peak_to_median =
      ComputeBurstiness(synthesized).task_seconds.PeakToMedian();
  return report;
}

std::string FormatFidelity(const FidelityReport& report) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-20s %8s %14s %14s\n", "dimension",
                "KS", "median(src)", "median(synth)");
  os << line;
  for (const auto& d : report.dimensions) {
    std::snprintf(line, sizeof(line), "%-20s %8.3f %14.3g %14.3g\n",
                  d.dimension.c_str(), d.ks_distance, d.source_median,
                  d.synth_median);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "bytes-compute corr: src=%.2f synth=%.2f | peak:median "
                "src=%.0f:1 synth=%.0f:1 | max KS=%.3f\n",
                report.source_bytes_compute_corr,
                report.synth_bytes_compute_corr,
                report.source_peak_to_median, report.synth_peak_to_median,
                report.max_ks);
  os << line;
  return os.str();
}

}  // namespace swim::core

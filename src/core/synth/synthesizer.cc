#include "core/synth/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "stats/sampling.h"
#include "workloads/file_population.h"
#include "workloads/name_generator.h"

namespace swim::core {
namespace {

/// Independent per-dimension lognormal fit (the naive baseline).
struct LognormalFit {
  double mu = 0.0;     // mean of log(1+x)
  double sigma = 0.0;  // stddev of log(1+x)
  double zero_fraction = 0.0;

  double Sample(Pcg32& rng) const {
    if (rng.NextBernoulli(zero_fraction)) return 0.0;
    return std::max(0.0, std::exp(mu + sigma * rng.NextGaussian()) - 1.0);
  }
};

LognormalFit FitLognormal(const std::vector<double>& values) {
  LognormalFit fit;
  std::vector<double> logs;
  logs.reserve(values.size());
  size_t zeros = 0;
  for (double v : values) {
    if (v <= 0.0) {
      ++zeros;
    } else {
      logs.push_back(std::log(1.0 + v));
    }
  }
  fit.zero_fraction = values.empty()
                          ? 0.0
                          : static_cast<double>(zeros) /
                                static_cast<double>(values.size());
  if (logs.empty()) return fit;
  double sum = 0.0;
  for (double l : logs) sum += l;
  fit.mu = sum / static_cast<double>(logs.size());
  double var = 0.0;
  for (double l : logs) var += (l - fit.mu) * (l - fit.mu);
  fit.sigma = std::sqrt(var / static_cast<double>(logs.size()));
  return fit;
}

double Jitter(double value, double sigma, Pcg32& rng) {
  if (value <= 0.0 || sigma <= 0.0) return value;
  return value * std::exp(sigma * rng.NextGaussian() - sigma * sigma / 2.0);
}

}  // namespace

StatusOr<trace::Trace> SynthesizeTrace(const WorkloadModel& model,
                                       const SynthesisOptions& options) {
  if (model.exemplars.empty()) {
    return InvalidArgumentError("model has no exemplars");
  }
  if (model.span_seconds <= 0.0) {
    return InvalidArgumentError("model span must be positive");
  }
  const size_t job_count =
      options.job_count > 0 ? options.job_count : model.total_jobs;
  const double span = options.span_seconds > 0.0 ? options.span_seconds
                                                 : model.span_seconds;
  const size_t hours =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(span / 3600.0)));

  Pcg32 master(options.seed, /*stream=*/0x5f17);
  Pcg32 arrival_rng = master.Fork();
  Pcg32 job_rng = master.Fork();
  Pcg32 file_rng = master.Fork();

  // Arrival envelope resampled (nearest neighbor) onto the target span.
  std::vector<double> envelope(hours, 1.0);
  if (!model.hourly_envelope.empty()) {
    for (size_t h = 0; h < hours; ++h) {
      size_t src = h * model.hourly_envelope.size() / hours;
      envelope[h] = std::max(model.hourly_envelope[src], 0.0);
    }
    double total = 0.0;
    for (double e : envelope) total += e;
    if (total <= 0.0) envelope.assign(hours, 1.0);
  }
  stats::DiscreteSampler hour_sampler(envelope);

  std::vector<double> submit_times(job_count);
  for (size_t i = 0; i < job_count; ++i) {
    double hour = static_cast<double>(hour_sampler.Sample(arrival_rng));
    submit_times[i] = (hour + arrival_rng.NextDouble()) * 3600.0;
  }
  std::sort(submit_times.begin(), submit_times.end());

  // Parametric baseline fits (only used by kParametricLognormal).
  LognormalFit fit_input, fit_shuffle, fit_output, fit_duration, fit_map,
      fit_reduce;
  if (options.method == SynthesisMethod::kParametricLognormal) {
    auto collect = [&](auto extractor) {
      std::vector<double> values;
      values.reserve(model.exemplars.size());
      for (const auto& e : model.exemplars) values.push_back(extractor(e));
      return values;
    };
    fit_input = FitLognormal(
        collect([](const trace::JobRecord& j) { return j.input_bytes; }));
    fit_shuffle = FitLognormal(
        collect([](const trace::JobRecord& j) { return j.shuffle_bytes; }));
    fit_output = FitLognormal(
        collect([](const trace::JobRecord& j) { return j.output_bytes; }));
    fit_duration = FitLognormal(
        collect([](const trace::JobRecord& j) { return j.duration; }));
    fit_map = FitLognormal(collect(
        [](const trace::JobRecord& j) { return j.map_task_seconds; }));
    fit_reduce = FitLognormal(collect(
        [](const trace::JobRecord& j) { return j.reduce_task_seconds; }));
  }

  trace::TraceMetadata metadata;
  metadata.name = model.source_name.empty() ? "synthetic"
                                            : model.source_name + "-synth";
  metadata.has_names = model.columns.names;
  metadata.has_input_paths = model.columns.input_paths;
  metadata.has_output_paths = model.columns.output_paths;
  trace::Trace result(metadata);

  workloads::FilePopulationSim files(model.file_model, model.columns,
                                     file_rng);

  for (size_t i = 0; i < job_count; ++i) {
    trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = submit_times[i];

    if (options.method == SynthesisMethod::kEmpirical) {
      const trace::JobRecord& exemplar =
          model.exemplars[job_rng.NextBounded(model.exemplars.size())];
      const double s = options.jitter_sigma;
      job.input_bytes = Jitter(exemplar.input_bytes, s, job_rng);
      job.shuffle_bytes = Jitter(exemplar.shuffle_bytes, s, job_rng);
      job.output_bytes = Jitter(exemplar.output_bytes, s, job_rng);
      job.duration = Jitter(exemplar.duration, s, job_rng);
      job.map_task_seconds = Jitter(exemplar.map_task_seconds, s, job_rng);
      job.reduce_task_seconds =
          Jitter(exemplar.reduce_task_seconds, s, job_rng);
      job.map_tasks = exemplar.map_tasks;
      job.reduce_tasks = exemplar.reduce_tasks;
      if (model.columns.names && !exemplar.name.empty()) {
        job.name =
            workloads::DecorateJobName(exemplar.name, job.job_id, job_rng);
      }
    } else {
      job.input_bytes = fit_input.Sample(job_rng);
      job.shuffle_bytes = fit_shuffle.Sample(job_rng);
      job.output_bytes = fit_output.Sample(job_rng);
      job.duration = fit_duration.Sample(job_rng);
      job.map_task_seconds = fit_map.Sample(job_rng);
      job.reduce_task_seconds = fit_reduce.Sample(job_rng);
      double typical_task = job_rng.NextDouble(20.0, 60.0);
      job.map_tasks = std::max<int64_t>(
          1, static_cast<int64_t>(job.map_task_seconds / typical_task));
      if (job.reduce_task_seconds > 0.0) {
        job.reduce_tasks = std::max<int64_t>(
            1, static_cast<int64_t>(job.reduce_task_seconds / typical_task));
      }
    }

    files.AssignPaths(job);
    result.AddJob(std::move(job));
  }
  return result;
}

}  // namespace swim::core

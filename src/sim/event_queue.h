#ifndef SWIM_SIM_EVENT_QUEUE_H_
#define SWIM_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

namespace swim::sim {

/// Pending-event queues for the replay engine. All of them implement the
/// same total order - ascending (time, seq), so simultaneous events pop
/// in FIFO submission order - and the same minimal interface:
///
///   void Push(E event);   // event.time must be >= the last popped time
///   E Pop();              // undefined on an empty queue
///   bool empty() / size_t size()
///
/// The element type E only needs public `double time` and `uint64_t seq`
/// members. DaryEventHeap and CalendarEventQueue additionally take an
/// allocator (default std::allocator) so the replay engine can back every
/// bucket and heap node with a per-lane Arena; HeapEventQueue stays
/// allocator-free, frozen in its golden-oracle role. Three
/// implementations:
///
///   HeapEventQueue:     std::priority_queue, O(log n) - the engine the
///                       simulator shipped with, retired to golden-oracle
///                       duty (property tests drive it and CalendarEventQueue
///                       with the same event stream and assert identical pop
///                       order; -DSWIM_REPLAY_LEGACY rebuilds the whole
///                       engine on it).
///   DaryEventHeap:      4-ary implicit heap, O(log n) with a ~2x better
///                       constant than the binary heap (shallower tree,
///                       cache-friendly sift-down over 4 children).
///   CalendarEventQueue: Brown's calendar queue - amortized O(1)
///                       enqueue/dequeue when event times are spread over
///                       the bucket ring - which delegates to DaryEventHeap
///                       while the queue is small (sparse tails: the drain
///                       at the end of a replay, tiny traces), switching
///                       representation with hysteresis.

/// Strict weak ordering used by HeapEventQueue: `a` pops after `b`.
template <typename E>
struct EventAfter {
  bool operator()(const E& a, const E& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// `a` pops before `b`: ascending (time, seq).
template <typename E>
inline bool EventBefore(const E& a, const E& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// The retired std::priority_queue engine, kept as the golden oracle.
template <typename E>
class HeapEventQueue {
 public:
  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  void Push(E event) { queue_.push(std::move(event)); }
  E Pop() {
    E event = queue_.top();
    queue_.pop();
    return event;
  }

 private:
  std::priority_queue<E, std::vector<E>, EventAfter<E>> queue_;
};

/// 4-ary implicit min-heap on (time, seq).
template <typename E, typename Alloc = std::allocator<E>>
class DaryEventHeap {
 public:
  DaryEventHeap() = default;
  explicit DaryEventHeap(const Alloc& alloc) : heap_(alloc) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  void Push(E event) {
    heap_.push_back(std::move(event));
    SiftUp(heap_.size() - 1);
  }

  E Pop() {
    E top = std::move(heap_.front());
    E last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = std::move(last);
      SiftDown(0);
    }
    return top;
  }

  /// Moves the contents out (unordered); leaves the heap empty.
  std::vector<E, Alloc> TakeAll() {
    std::vector<E, Alloc> all = std::move(heap_);
    heap_.clear();
    return all;
  }

 private:
  static constexpr size_t kArity = 4;

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!EventBefore(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      size_t last_child = std::min(first_child + kArity, n);
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (EventBefore(heap_[c], heap_[best])) best = c;
      }
      if (!EventBefore(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<E, Alloc> heap_;
};

/// Calendar queue (R. Brown, CACM 1988): events hash by time into a ring
/// of buckets of width `width_`; the dequeue cursor walks the ring one
/// bucket-width of simulated time per step, so when the bucket ring is
/// tuned to ~1 event per bucket both operations are amortized O(1) - no
/// log-depth sift per task batch. Differences from the textbook version,
/// driven by the replay engine's determinism contract:
///
///   - Buckets are vectors kept sorted ascending by (time, seq) with a
///     consumed-prefix head index, so the monotone (time, seq) pushes the
///     simulator produces append in O(1) and FIFO tie-breaks are exact.
///   - The cursor tracks the *virtual bucket number* (time / width as an
///     integer) rather than an accumulated floating-point year boundary,
///     so bucket membership is computed exactly the same way on enqueue
///     and dequeue - no drift, no misordered pops.
///   - A dequeue that scans a full ring without finding a due event jumps
///     the cursor straight to the earliest pending event (O(buckets)
///     direct search) instead of sweeping year by year - this is what
///     makes a week-long idle gap between two jobs cost one jump instead
///     of millions of empty bucket visits.
///   - Below `kHeapBelow` events the whole queue lives in a DaryEventHeap
///     (a bucket ring is all overhead when nearly empty); it migrates to
///     calendar form above `kCalendarAbove`. The thresholds are separated
///     so a queue oscillating around the boundary does not thrash.
///
/// Resize policy: the ring doubles when occupancy exceeds 2 events/bucket
/// and halves below 1/4, and the width is re-estimated from the live
/// event span on each rebuild - both deterministic functions of the queue
/// contents, so replay output cannot depend on allocation history.
template <typename E, typename Alloc = std::allocator<E>>
class CalendarEventQueue {
 public:
  CalendarEventQueue() = default;
  /// All internal storage — the small-queue heap, the bucket ring, and
  /// every bucket's item vector — allocates through (rebinds of) `alloc`.
  explicit CalendarEventQueue(const Alloc& alloc)
      : alloc_(alloc), heap_(alloc), buckets_(BucketAlloc(alloc)) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void Push(E event) {
    ++size_;
    if (heap_mode_) {
      heap_.Push(std::move(event));
      if (size_ > kCalendarAbove) SwitchToCalendar();
      return;
    }
    Insert(std::move(event));
    if (size_ > buckets_.size() * 2) Rebuild(buckets_.size() * 2);
  }

  E Pop() {
    --size_;
    if (heap_mode_) return heap_.Pop();
    E event = PopCalendar();
    if (size_ < kHeapBelow) {
      SwitchToHeap();
    } else if (size_ * 4 < buckets_.size() && buckets_.size() > kMinBuckets) {
      Rebuild(buckets_.size() / 2);
    }
    return event;
  }

 private:
  struct Bucket {
    std::vector<E, Alloc> items;
    size_t head = 0;  // items[0, head) already popped

    Bucket() = default;
    explicit Bucket(const Alloc& alloc) : items(alloc) {}

    bool IsEmpty() const { return head == items.size(); }
    const E& Front() const { return items[head]; }
  };

  using BucketAlloc =
      typename std::allocator_traits<Alloc>::template rebind_alloc<Bucket>;

  static constexpr size_t kHeapBelow = 48;
  static constexpr size_t kCalendarAbove = 96;
  static constexpr size_t kMinBuckets = 64;

  /// Virtual bucket number of `time`; clamped so extreme times cannot
  /// overflow the division into uint64 territory.
  uint64_t VirtualBucket(double time) const {
    double q = time / width_;
    if (q <= 0.0) return 0;
    if (q >= 9.0e18) return UINT64_C(9000000000000000000);
    return static_cast<uint64_t>(q);
  }

  size_t RingIndex(uint64_t virtual_bucket) const {
    return static_cast<size_t>(virtual_bucket & mask_);
  }

  void Insert(E event) {
    uint64_t vb = VirtualBucket(event.time);
    if (vb < cursor_vb_) cursor_vb_ = vb;  // never skip a late re-push
    Bucket& bucket = buckets_[RingIndex(vb)];
    if (bucket.IsEmpty() || !EventBefore(event, bucket.items.back())) {
      bucket.items.push_back(std::move(event));
      return;
    }
    auto pos = std::upper_bound(bucket.items.begin() + bucket.head,
                                bucket.items.end(), event, EventBefore<E>);
    bucket.items.insert(pos, std::move(event));
  }

  E TakeFront(Bucket& bucket) {
    E event = std::move(bucket.items[bucket.head]);
    ++bucket.head;
    if (bucket.IsEmpty()) {
      bucket.items.clear();
      bucket.head = 0;
    } else if (bucket.head > 64 && bucket.head * 2 > bucket.items.size()) {
      bucket.items.erase(bucket.items.begin(),
                         bucket.items.begin() + bucket.head);
      bucket.head = 0;
    }
    return event;
  }

  E PopCalendar() {
    const size_t n = buckets_.size();
    // One pass over the ring, advancing the virtual-bucket cursor: a
    // bucket's front is due iff it belongs to the cursor's virtual bucket
    // (events a full ring later hash to the same slot but a larger
    // virtual bucket number).
    for (size_t i = 0; i < n; ++i) {
      uint64_t vb = cursor_vb_ + i;
      Bucket& bucket = buckets_[RingIndex(vb)];
      if (!bucket.IsEmpty() && VirtualBucket(bucket.Front().time) == vb) {
        cursor_vb_ = vb;
        return TakeFront(bucket);
      }
    }
    // Nothing due within one full ring: an idle gap. Jump the cursor to
    // the earliest pending event (bucket fronts are per-bucket minima).
    size_t best = n;
    for (size_t j = 0; j < n; ++j) {
      if (buckets_[j].IsEmpty()) continue;
      if (best == n || EventBefore(buckets_[j].Front(),
                                   buckets_[best].Front())) {
        best = j;
      }
    }
    cursor_vb_ = VirtualBucket(buckets_[best].Front().time);
    return TakeFront(buckets_[best]);
  }

  static size_t NextPowerOfTwo(size_t value) {
    size_t result = 1;
    while (result < value) result *= 2;
    return result;
  }

  void InitBuckets(std::vector<E, Alloc> events, size_t bucket_count) {
    bucket_count = std::max(NextPowerOfTwo(bucket_count), kMinBuckets);
    // The prototype bucket carries the allocator; assign copies it (and
    // with it the arena) into every ring slot.
    buckets_.assign(bucket_count, Bucket(alloc_));
    mask_ = bucket_count - 1;
    // Width from the live span: ~1 event per virtual bucket keeps both
    // insert (short sorted runs) and pop (few empty visits) O(1).
    double lo = 0.0, hi = 0.0;
    if (!events.empty()) {
      lo = hi = events.front().time;
      for (const E& event : events) {
        lo = std::min(lo, event.time);
        hi = std::max(hi, event.time);
      }
    }
    double span = hi - lo;
    width_ = span > 0.0 ? span / static_cast<double>(events.size()) : 1.0;
    // Keep virtual bucket numbers well inside uint64 even for times far
    // from zero with a tiny span.
    width_ = std::max(width_, (std::abs(hi) + 1.0) * 1e-12);
    cursor_vb_ = VirtualBucket(lo);
    for (E& event : events) Insert(std::move(event));
  }

  void SwitchToCalendar() {
    heap_mode_ = false;
    InitBuckets(heap_.TakeAll(), size_);
  }

  void SwitchToHeap() {
    heap_mode_ = true;
    for (Bucket& bucket : buckets_) {
      for (size_t k = bucket.head; k < bucket.items.size(); ++k) {
        heap_.Push(std::move(bucket.items[k]));
      }
    }
    buckets_.clear();
    mask_ = 0;
  }

  void Rebuild(size_t bucket_count) {
    std::vector<E, Alloc> events(alloc_);
    events.reserve(size_);
    for (Bucket& bucket : buckets_) {
      for (size_t k = bucket.head; k < bucket.items.size(); ++k) {
        events.push_back(std::move(bucket.items[k]));
      }
    }
    InitBuckets(std::move(events), bucket_count);
  }

  bool heap_mode_ = true;
  size_t size_ = 0;
  Alloc alloc_;
  DaryEventHeap<E, Alloc> heap_;
  std::vector<Bucket, BucketAlloc> buckets_;
  size_t mask_ = 0;
  double width_ = 1.0;
  uint64_t cursor_vb_ = 0;
};

}  // namespace swim::sim

#endif  // SWIM_SIM_EVENT_QUEUE_H_

#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <utility>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/parallel.h"

namespace swim::sim {
namespace {

/// One result slot per configuration, padded to a cache line so lanes
/// finishing neighbouring cells never write-share a line. The sentinel
/// is unreachable by construction (every index is visited exactly once
/// below); its message stays inside the small-string buffer so filling
/// 10k slots performs zero heap allocations — unlike the retired
/// per-slot InternalError("sweep cell never ran") pre-fill.
struct alignas(64) SweepSlot {
  StatusOr<ReplayResult> value{InternalError("never ran")};
};

/// Replays one cell inside its lane, preferring the shared template.
StatusOr<ReplayResult> RunCell(const SweepConfig& config,
                               const StatusOr<ReplayTemplate>* shared,
                               Arena& arena) {
  if (config.trace == nullptr) {
    return InvalidArgumentError("sweep config has no trace");
  }
  if (shared != nullptr) {
    if (!shared->ok()) return shared->status();
    if (shared->value().Compatible(config.options)) {
      return shared->value().Replay(config.options, &arena);
    }
  }
  // Template-relevant options differ from the cell that built the shared
  // template: private build, identical results, no sharing.
  auto own = ReplayTemplate::Build(*config.trace, config.options);
  if (!own.ok()) return std::move(own).status();
  return own->Replay(config.options, &arena);
}

}  // namespace

std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs,
    const SweepOptions& sweep_options) {
  const size_t n = configs.size();
  if (n == 0) return {};

  // Build phase, once per distinct trace: the first cell referencing a
  // trace supplies the template-relevant options. Build errors (empty
  // trace, bad dependencies, ...) are copied into every cell on that
  // trace, matching what per-cell ReplayTrace used to report.
  std::vector<std::unique_ptr<StatusOr<ReplayTemplate>>> templates;
  FlatHashMap<const trace::Trace*, size_t> template_of;
  std::vector<const StatusOr<ReplayTemplate>*> template_for(n, nullptr);
  for (size_t i = 0; i < n; ++i) {
    const SweepConfig& config = configs[i];
    if (config.trace == nullptr) continue;
    auto it = template_of.find(config.trace);
    size_t slot;
    if (it == template_of.end()) {
      slot = templates.size();
      templates.push_back(std::make_unique<StatusOr<ReplayTemplate>>(
          ReplayTemplate::Build(*config.trace, config.options)));
      template_of[config.trace] = slot;
    } else {
      slot = it->second;
    }
    template_for[i] = templates[slot].get();
  }

  // Run phase: shared-nothing lanes. Lane t replays cells t, t+lanes,
  // t+2*lanes, ... (striding mixes the grid's systematically cheap and
  // expensive cells across lanes) against its own Arena, Reset() between
  // cells so every run after the first re-carves warm blocks. Each cell
  // is a pure function of (template, options), so the slot contents are
  // independent of the lane count.
  const int lanes = static_cast<int>(
      std::min<size_t>(ResolveParallelism(sweep_options.max_parallelism), n));
  std::vector<SweepSlot> slots(n);
  std::atomic<size_t> done{0};
  std::vector<std::function<void()>> lane_tasks;
  lane_tasks.reserve(lanes);
  for (int lane = 0; lane < lanes; ++lane) {
    lane_tasks.push_back([&, lane] {
      Arena arena;
      for (size_t i = static_cast<size_t>(lane); i < n;
           i += static_cast<size_t>(lanes)) {
        StatusOr<ReplayResult> local =
            RunCell(configs[i], template_for[i], arena);
        arena.Reset();
        slots[i].value = std::move(local);
        if (sweep_options.progress) {
          sweep_options.progress(
              done.fetch_add(1, std::memory_order_relaxed) + 1, n);
        }
      }
    });
  }
  RunConcurrently(lane_tasks, lanes);

  std::vector<StatusOr<ReplayResult>> results;
  results.reserve(n);
  for (SweepSlot& slot : slots) results.push_back(std::move(slot.value));
  return results;
}

std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs, int max_parallelism) {
  SweepOptions sweep_options;
  sweep_options.max_parallelism = max_parallelism;
  return RunSweep(configs, sweep_options);
}

std::vector<SweepConfig> SweepGrid(const trace::Trace& trace,
                                   const ReplayOptions& base,
                                   const std::vector<std::string>& policies,
                                   const std::vector<int>& node_counts,
                                   const std::vector<uint64_t>& seeds) {
  std::vector<SweepConfig> configs;
  configs.reserve(policies.size() * node_counts.size() * seeds.size());
  for (const std::string& policy : policies) {
    for (int nodes : node_counts) {
      for (uint64_t seed : seeds) {
        SweepConfig config;
        config.trace = &trace;
        config.options = base;
        config.options.scheduler = policy;
        config.options.cluster.nodes = nodes;
        config.options.seed = seed;
        config.label = policy + "/n" + std::to_string(nodes) + "/s" +
                       std::to_string(seed);
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

}  // namespace swim::sim

#include "sim/sweep.h"

#include <functional>
#include <utility>

#include "common/parallel.h"

namespace swim::sim {

std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs, int max_parallelism) {
  std::vector<StatusOr<ReplayResult>> results(
      configs.size(),
      StatusOr<ReplayResult>(InternalError("sweep cell never ran")));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    tasks.push_back([&configs, &results, i] {
      const SweepConfig& config = configs[i];
      if (config.trace == nullptr) {
        results[i] = StatusOr<ReplayResult>(
            InvalidArgumentError("sweep config has no trace"));
        return;
      }
      results[i] = ReplayTrace(*config.trace, config.options);
    });
  }
  RunConcurrently(tasks, max_parallelism);
  return results;
}

std::vector<SweepConfig> SweepGrid(const trace::Trace& trace,
                                   const ReplayOptions& base,
                                   const std::vector<std::string>& policies,
                                   const std::vector<int>& node_counts,
                                   const std::vector<uint64_t>& seeds) {
  std::vector<SweepConfig> configs;
  configs.reserve(policies.size() * node_counts.size() * seeds.size());
  for (const std::string& policy : policies) {
    for (int nodes : node_counts) {
      for (uint64_t seed : seeds) {
        SweepConfig config;
        config.trace = &trace;
        config.options = base;
        config.options.scheduler = policy;
        config.options.cluster.nodes = nodes;
        config.options.seed = seed;
        config.label = policy + "/n" + std::to_string(nodes) + "/s" +
                       std::to_string(seed);
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

}  // namespace swim::sim

// High-throughput discrete-event replay core. The engine that shipped
// first (replay_legacy.cc, kept verbatim as a golden oracle) pushed every
// task batch through a std::priority_queue, rebuilt the runnable set by
// scanning all active jobs on each grant round, and advanced occupancy
// buckets hour by hour. This rebuild keeps the simulation semantics
// bit-identical - tests replay the same traces through both engines and
// require equal results to the last bit - while removing every
// per-event O(active) cost:
//
//   - Events flow through a calendar queue (sim/event_queue.h): amortized
//     O(1) enqueue/dequeue with a d-ary-heap fallback for sparse tails,
//     FIFO tie-break on the same seq counter the heap used.
//   - The runnable set is maintained incrementally: jobs enter/leave
//     per-kind runnable lists at their state transitions (arrival, batch
//     launch, batch completion/failure, parent finish, retry backoff,
//     job kill), so a grant round touches only genuinely runnable jobs.
//     Scheduler tie-breaks are pinned to (submit time, job index) - see
//     scheduler.cc - so list order cannot leak into policy decisions.
//   - Jobs waiting out a retry backoff are parked in a small time-ordered
//     heap and re-enter the runnable lists exactly when the grant round
//     reaches retry_ready_time, replacing the per-grant timestamp check.
//   - The active-job list (node-loss victim order) is an intrusive
//     doubly-linked list in arrival order: O(1) unlink instead of the
//     O(active) std::find + erase per job completion.
//   - OccupancyMeter jumps idle gaps in one step instead of looping
//     bucket-by-bucket across hours where nothing was running.
//
// For sweep throughput the run is split in two phases (ISSUE 6): a
// per-trace ReplayTemplate build (SimJob skeletons, dependency CSR, job
// index — computed once, shared immutably across all configurations) and
// a cheap per-config run whose every container is backed by a per-lane
// Arena, so a warm sweep lane replays a configuration with ~zero heap
// mallocs. ReplayTrace == Build + one Replay, so single runs, sweeps,
// and the legacy oracle all agree bit for bit.
#include "sim/replay.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "sim/event_queue.h"
#include "stats/descriptive.h"

namespace swim::sim {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

/// Tasks of a kind within a job are homogeneous, so a wave of them is
/// simulated as one event carrying a count - this keeps event volume
/// proportional to scheduling decisions, not task counts, and is what lets
/// month-long million-job traces replay in seconds.
struct Event {
  double time = 0.0;
  uint64_t seq = 0;  // FIFO tie-break for simultaneous events
  enum class Kind {
    kArrival,
    kTasksDone,
    kTasksFailed,  // attempts dying mid-flight (probability failures)
    kNodeLoss,     // whole-node loss; self-reschedules while work remains
    kWake,         // retry backoff expired; re-enter the grant loop
  } kind = Kind::kArrival;
  size_t job_index = 0;
  TaskKind task_kind = TaskKind::kMap;
  int64_t count = 0;
  /// Attempt level the batch was launched at (failure bookkeeping).
  int attempt = 1;
  /// Slot-seconds one task of the batch occupies until this event fires -
  /// the waste charged per task if the attempt dies instead of completing.
  double unit_seconds = 0.0;
};

/// Integrates busy-slot counts into hourly buckets. An advance across H
/// hours costs O(1) for the boundary slices plus one write per interior
/// hour when slots are busy; an idle advance (busy_slots == 0) only
/// extends the bucket vector. The hour arithmetic mirrors the retired
/// per-slice loop exactly - same first-hour rounding, same exact
/// (h+1)*3600 boundaries - so bucket contents stay bit-identical.
class OccupancyMeter {
 public:
  void Advance(double now, int64_t busy_slots, ArenaVector<double>& buckets) {
    if (now <= last_time_) {
      last_time_ = std::max(last_time_, now);
      return;
    }
    const size_t first_hour = static_cast<size_t>(last_time_ / 3600.0);
    // Last hour the retired loop touched: the smallest h >= first_hour
    // with (h+1)*3600 >= now. Seed from the rounded division and settle
    // with exact-product comparisons (<= 2 steps).
    size_t last_hour = std::max(first_hour,
                                static_cast<size_t>(now / 3600.0));
    while (last_hour > first_hour &&
           static_cast<double>(last_hour) * 3600.0 >= now) {
      --last_hour;
    }
    while (static_cast<double>(last_hour + 1) * 3600.0 < now) ++last_hour;
    if (buckets.size() <= last_hour) buckets.resize(last_hour + 1, 0.0);
    const double busy = static_cast<double>(busy_slots);
    if (first_hour == last_hour) {
      buckets[first_hour] += busy * (now - last_time_);
    } else {
      buckets[first_hour] +=
          busy * (static_cast<double>(first_hour + 1) * 3600.0 - last_time_);
      if (busy_slots != 0) {
        for (size_t h = first_hour + 1; h < last_hour; ++h) {
          buckets[h] += busy * 3600.0;
        }
      }
      buckets[last_hour] +=
          busy * (now - static_cast<double>(last_hour) * 3600.0);
    }
    busy_slot_seconds_ += busy * (now - last_time_);
    last_time_ = now;
  }

  double busy_slot_seconds() const { return busy_slot_seconds_; }

 private:
  double last_time_ = 0.0;
  double busy_slot_seconds_ = 0.0;
};

Status ValidateFailureOptions(const FailureOptions& failures) {
  if (failures.task_failure_probability < 0.0 ||
      failures.task_failure_probability > 1.0 ||
      !std::isfinite(failures.task_failure_probability)) {
    return InvalidArgumentError("task_failure_probability must be in [0, 1]");
  }
  if (!(failures.failure_point > 0.0) || failures.failure_point > 1.0) {
    return InvalidArgumentError("failure_point must be in (0, 1]");
  }
  if (failures.node_loss_per_hour < 0.0 ||
      !std::isfinite(failures.node_loss_per_hour)) {
    return InvalidArgumentError("node_loss_per_hour must be >= 0");
  }
  if (failures.max_attempts < 1) {
    return InvalidArgumentError("max_attempts must be >= 1");
  }
  if (failures.retry_backoff_seconds < 0.0 ||
      !std::isfinite(failures.retry_backoff_seconds)) {
    return InvalidArgumentError("retry_backoff_seconds must be >= 0");
  }
  return Status::Ok();
}

Status ValidateSlaOptions(const SlaOptions& sla) {
  if (!(sla.small_multiplier > 0.0) ||
      !std::isfinite(sla.small_multiplier) ||
      !(sla.large_multiplier > 0.0) ||
      !std::isfinite(sla.large_multiplier)) {
    return InvalidArgumentError("SLA multipliers must be finite and > 0");
  }
  if (sla.preemption_budget < 0) {
    return InvalidArgumentError("preemption_budget must be >= 0");
  }
  if (sla.tenants < 0) {
    return InvalidArgumentError("tenants must be >= 0");
  }
  if (sla.tenants > 0 && sla.tenant_max_running < 1) {
    return InvalidArgumentError(
        "tenant_max_running must be >= 1 when admission control is enabled");
  }
  return Status::Ok();
}

/// One replay run against a shared ReplayTemplate. Determinism contract:
/// everything below is a pure function of (template, options); the event
/// order equals the retired priority-queue engine's order, the RNG
/// streams are consumed at the same call sites, and scheduler decisions
/// are independent of runnable list order (pinned tie-breaks), so
/// results match ReplayTraceLegacy bit for bit.
///
/// Every per-run container draws from `arena` (heap fallback when null):
/// the job table copy, both runnable lists and their position indexes,
/// the parked-job heap, the active-list links, the occupancy buckets,
/// and the calendar queue's heap and bucket ring. The ReplayResult
/// handed back owns plain heap memory so it survives the lane's
/// arena->Reset() between configurations.
class ReplayEngine {
 public:
  ReplayEngine(const ReplayTemplate& tpl, const ReplayOptions& options,
               Arena* arena)
      : tpl_(tpl),
        options_(options),
        failures_(options.failures),
        rng_(options.seed, /*stream=*/0x51e9),
        // Dedicated streams for the failure model: enabling/disabling
        // failure injection must not perturb the straggler draws (and
        // with the model disabled these are never consulted, keeping
        // output bit-identical to pre-failure-model replays).
        failure_rng_(options.seed, /*stream=*/0xfa11),
        loss_rng_(options.seed, /*stream=*/0x10e5),
        jobs_(ArenaAllocator<SimJob>(arena)),
        queue_(ArenaAllocator<Event>(arena)),
        occupancy_slot_seconds_(ArenaAllocator<double>(arena)),
        arrived_(ArenaAllocator<uint8_t>(arena)),
        parked_(ArenaAllocator<uint8_t>(arena)),
        map_pos_(ArenaAllocator<size_t>(arena)),
        reduce_pos_(ArenaAllocator<size_t>(arena)),
        runnable_maps_(ArenaAllocator<size_t>(arena)),
        runnable_reduces_(ArenaAllocator<size_t>(arena)),
        in_active_(ArenaAllocator<uint8_t>(arena)),
        active_prev_(ArenaAllocator<size_t>(arena)),
        active_next_(ArenaAllocator<size_t>(arena)),
        parked_heap_(ArenaAllocator<std::pair<double, size_t>>(arena)),
        admitted_(ArenaAllocator<uint8_t>(arena)),
        adm_next_(ArenaAllocator<size_t>(arena)),
        adm_head_(ArenaAllocator<size_t>(arena)),
        adm_tail_(ArenaAllocator<size_t>(arena)),
        tenant_running_(ArenaAllocator<int64_t>(arena)) {}

  StatusOr<ReplayResult> Run();

 private:
  // --- Incremental runnable tracking ----------------------------------
  //
  // A job is runnable for a kind iff it has arrived, is not failed, is
  // not parked on a retry backoff, has no unfinished parents, and has
  // unlaunched tasks of that kind (reduces additionally wait for the map
  // stage). Membership only changes at the transition points below, each
  // of which calls Refresh - an idempotent O(1) resync of both lists.

  void SetMembership(ArenaVector<size_t>& list, ArenaVector<size_t>& pos,
                     size_t i, bool want) {
    const bool have = pos[i] != kNone;
    if (want == have) return;
    if (want) {
      pos[i] = list.size();
      list.push_back(i);
    } else {
      const size_t p = pos[i];
      const size_t last = list.back();
      list[p] = last;
      pos[last] = p;
      list.pop_back();
      pos[i] = kNone;
    }
  }

  void Refresh(size_t i) {
    const SimJob& job = jobs_[i];
    const bool base = arrived_[i] != 0 && !job.failed && parked_[i] == 0 &&
                      job.unfinished_parents == 0 && !job.admission_parked;
    SetMembership(runnable_maps_, map_pos_, i,
                  base && job.maps_launched < job.maps_total);
    SetMembership(runnable_reduces_, reduce_pos_, i,
                  base && job.maps_done() &&
                      job.reduces_launched < job.reduces_total);
  }

  // --- Active list (arrival order, for node-loss victim selection) ----

  void LinkActive(size_t i) {
    in_active_[i] = 1;
    active_prev_[i] = active_tail_;
    active_next_[i] = kNone;
    if (active_tail_ != kNone) {
      active_next_[active_tail_] = i;
    } else {
      active_head_ = i;
    }
    active_tail_ = i;
  }

  void UnlinkActive(size_t i) {
    if (!in_active_[i]) return;
    in_active_[i] = 0;
    const size_t prev = active_prev_[i];
    const size_t next = active_next_[i];
    if (prev != kNone) {
      active_next_[prev] = next;
    } else {
      active_head_ = next;
    }
    if (next != kNone) {
      active_prev_[next] = prev;
    } else {
      active_tail_ = prev;
    }
  }

  // --- Engine steps ---------------------------------------------------

  void PushEvent(double time, Event::Kind kind, size_t job_index,
                 TaskKind task_kind, int64_t count, int attempt,
                 double unit_seconds) {
    queue_.Push(Event{time, seq_++, kind, job_index, task_kind, count,
                      attempt, unit_seconds});
  }

  void LaunchBatch(size_t job_index, TaskKind kind, double now,
                   int64_t count);
  void HandleAttemptFailure(size_t job_index, TaskKind kind, int attempt,
                            int64_t count, double now);
  bool GrantKind(TaskKind kind, double now);
  void ScheduleLoop(double now);

  // --- SLA tier (admission control, elephant preemption, accounting) ---

  /// Admission control: called when a job becomes eligible (arrived with
  /// no unfinished parents). Grants a tenant token if one is free, else
  /// parks the job on its tenant's FIFO queue; parked jobs are never
  /// runnable. No-op when admission is disabled or the token is held.
  void TryAdmit(size_t i, double now);
  /// Returns the tenant token at job finish/kill and admits the tenant's
  /// longest-parked job, if any.
  void ReleaseAdmission(size_t i, double now);
  /// One elephant-preemption round for a kind: with no free slot and an
  /// interactive job runnable, revoke running tasks from the largest
  /// large job and launch the interactive job into the freed slots
  /// directly (bypassing PickJob, so a FIFO-ranked elephant cannot
  /// re-absorb them). Returns true if tasks were revoked.
  bool PreemptKind(TaskKind kind, double now);
  /// Deadline-miss + per-tenant accounting at job end (finish or kill).
  void AccountSla(const SimJob& job, bool killed);

  const ReplayTemplate& tpl_;
  const ReplayOptions& options_;
  const FailureOptions& failures_;
  Pcg32 rng_;
  Pcg32 failure_rng_;
  Pcg32 loss_rng_;

  ArenaVector<SimJob> jobs_;
  std::unique_ptr<Scheduler> scheduler_;
  CalendarEventQueue<Event, ArenaAllocator<Event>> queue_;
  uint64_t seq_ = 0;

  int64_t total_map_slots_ = 0;
  int64_t total_reduce_slots_ = 0;
  int64_t free_map_slots_ = 0;
  int64_t free_reduce_slots_ = 0;
  SchedulerContext context_;
  OccupancyMeter meter_;
  ArenaVector<double> occupancy_slot_seconds_;
  ReplayResult result_;

  ArenaVector<uint8_t> arrived_;
  ArenaVector<uint8_t> parked_;
  ArenaVector<size_t> map_pos_;
  ArenaVector<size_t> reduce_pos_;
  ArenaVector<size_t> runnable_maps_;
  ArenaVector<size_t> runnable_reduces_;

  ArenaVector<uint8_t> in_active_;
  ArenaVector<size_t> active_prev_;
  ArenaVector<size_t> active_next_;
  size_t active_head_ = kNone;
  size_t active_tail_ = kNone;

  /// (retry_ready_time, job index) min-heap of parked jobs. Entries are
  /// lazy: retry_ready_time may have been raised after an entry was
  /// pushed, in which case the stale entry re-parks itself on pop.
  ArenaVector<std::pair<double, size_t>> parked_heap_;

  // --- Admission control state (sized only when enabled) ---------------
  /// Whether job i currently holds its tenant's token. A job acquires the
  /// token once (at eligibility or when popped from the park queue) and
  /// returns it once (finish or kill), so parking happens at most once
  /// per job.
  ArenaVector<uint8_t> admitted_;
  /// Intrusive per-tenant FIFO park queues: adm_next_[i] links jobs, one
  /// (head, tail) pair per tenant.
  ArenaVector<size_t> adm_next_;
  ArenaVector<size_t> adm_head_;
  ArenaVector<size_t> adm_tail_;
  /// Tokens held per tenant (admitted jobs not yet finished/killed).
  ArenaVector<int64_t> tenant_running_;

  /// Elephant preemption: revocations remaining this run.
  int64_t preempt_budget_left_ = 0;
};

// Launches `count` tasks of one kind as at most three events: a failing
// portion (dies at failure_point of the duration), plus regular and
// straggling completions of the survivors.
void ReplayEngine::LaunchBatch(size_t job_index, TaskKind kind, double now,
                               int64_t count) {
  SimJob& job = jobs_[job_index];
  double duration;
  int attempt;
  if (kind == TaskKind::kMap) {
    job.maps_launched += count;
    free_map_slots_ -= count;
    if (!job.is_small) context_.large_running_maps += count;
    duration = job.map_task_duration;
    attempt = job.map_attempt;
  } else {
    job.reduces_launched += count;
    free_reduce_slots_ -= count;
    if (!job.is_small) context_.large_running_reduces += count;
    duration = job.reduce_task_duration;
    attempt = job.reduce_attempt;
  }
  int64_t& debt = kind == TaskKind::kMap ? job.map_relaunch_debt
                                         : job.reduce_relaunch_debt;
  int64_t relaunched = std::min(debt, count);
  if (relaunched > 0) {
    debt -= relaunched;
    job.retries += relaunched;
    result_.failures.retries += relaunched;
  }
  if (job.first_launch_time < 0.0) job.first_launch_time = now;

  // Failure split first: an attempt that dies never straggles. Small
  // batches draw per task; large batches use the deterministic expected
  // count (same scheme the straggler model uses).
  int64_t failing = 0;
  if (failures_.task_failure_probability > 0.0) {
    if (count <= 16) {
      for (int64_t t = 0; t < count; ++t) {
        if (failure_rng_.NextBernoulli(failures_.task_failure_probability)) {
          ++failing;
        }
      }
    } else {
      failing = static_cast<int64_t>(std::llround(
          static_cast<double>(count) * failures_.task_failure_probability));
    }
  }
  if (failing > 0) {
    double waste = duration * failures_.failure_point;
    PushEvent(now + waste, Event::Kind::kTasksFailed, job_index, kind,
              failing, attempt, waste);
  }
  const int64_t surviving = count - failing;
  if (surviving <= 0) {
    Refresh(job_index);
    return;
  }

  int64_t stragglers = 0;
  if (options_.straggler_probability > 0.0) {
    if (surviving <= 16) {
      for (int64_t t = 0; t < surviving; ++t) {
        if (rng_.NextBernoulli(options_.straggler_probability)) ++stragglers;
      }
    } else {
      stragglers = static_cast<int64_t>(std::llround(
          static_cast<double>(surviving) * options_.straggler_probability));
    }
  }
  if (surviving - stragglers > 0) {
    PushEvent(now + duration, Event::Kind::kTasksDone, job_index, kind,
              surviving - stragglers, attempt, duration);
  }
  if (stragglers > 0) {
    double effective_factor = options_.straggler_factor;
    int64_t siblings =
        kind == TaskKind::kMap ? job.maps_total : job.reduces_total;
    if (options_.speculative_execution && siblings >= 2) {
      // Siblings expose the straggler; a backup launched when they
      // finish completes at ~2x the normal duration.
      effective_factor = std::min(effective_factor, 2.0);
    }
    PushEvent(now + duration * effective_factor, Event::Kind::kTasksDone,
              job_index, kind, stragglers, attempt,
              duration * effective_factor);
  }
  Refresh(job_index);
}

// A batch of `count` tasks failed at `attempt`: either the job's attempt
// budget is exhausted (kill the job, Hadoop-style) or the tasks rejoin
// the unlaunched pool at the next attempt level after a linear backoff.
void ReplayEngine::HandleAttemptFailure(size_t job_index, TaskKind kind,
                                        int attempt, int64_t count,
                                        double now) {
  SimJob& job = jobs_[job_index];
  if (job.failed) return;
  if (attempt >= failures_.max_attempts) {
    job.failed = true;
    ++result_.failures.failed_jobs;
    UnlinkActive(job_index);
    // A killed job will never meet its deadline (scored as an SLA miss)
    // and returns its tenant token immediately.
    AccountSla(job, /*killed=*/true);
    ReleaseAdmission(job_index, now);
    Refresh(job_index);
    return;
  }
  int next_attempt = attempt + 1;
  if (kind == TaskKind::kMap) {
    job.map_attempt = std::max(job.map_attempt, next_attempt);
    job.map_relaunch_debt += count;
  } else {
    job.reduce_attempt = std::max(job.reduce_attempt, next_attempt);
    job.reduce_relaunch_debt += count;
  }
  double ready =
      now + failures_.retry_backoff_seconds * static_cast<double>(attempt);
  if (ready > job.retry_ready_time) job.retry_ready_time = ready;
  // The kWake event is pushed exactly as the retired engine did (even
  // when a later wake already covers this job): it re-enters the grant
  // loop at the backoff expiry, and skipping it would shift the shared
  // seq counter and change FIFO tie-breaks downstream.
  if (ready > now) {
    PushEvent(ready, Event::Kind::kWake, job_index, kind, 0, 1, 0.0);
  }
  if (job.retry_ready_time > now && !parked_[job_index]) {
    parked_[job_index] = 1;
    parked_heap_.emplace_back(job.retry_ready_time, job_index);
    std::push_heap(parked_heap_.begin(), parked_heap_.end(),
                   std::greater<>());
    Refresh(job_index);
  }
}

void ReplayEngine::TryAdmit(size_t i, double now) {
  if (!options_.sla.admission_enabled() || admitted_[i]) return;
  SimJob& job = jobs_[i];
  const int tenant = job.tenant_id;
  if (tenant_running_[tenant] < options_.sla.tenant_max_running) {
    admitted_[i] = 1;
    ++tenant_running_[tenant];
    if (job.admission_parked) {
      job.admission_parked = false;
      job.admission_wait = now - job.admission_park_time;
    }
    Refresh(i);
  } else {
    job.admission_parked = true;
    job.admission_park_time = now;
    adm_next_[i] = kNone;
    if (adm_tail_[tenant] != kNone) {
      adm_next_[adm_tail_[tenant]] = i;
    } else {
      adm_head_[tenant] = i;
    }
    adm_tail_[tenant] = i;
  }
}

void ReplayEngine::ReleaseAdmission(size_t i, double now) {
  if (!options_.sla.admission_enabled() || !admitted_[i]) return;
  admitted_[i] = 0;
  const int tenant = jobs_[i].tenant_id;
  --tenant_running_[tenant];
  const size_t next = adm_head_[tenant];
  if (next != kNone) {
    adm_head_[tenant] = adm_next_[next];
    if (adm_head_[tenant] == kNone) adm_tail_[tenant] = kNone;
    adm_next_[next] = kNone;
    // The token just freed guarantees this admit succeeds, keeping the
    // queue strictly FIFO per tenant.
    TryAdmit(next, now);
  }
}

bool ReplayEngine::PreemptKind(TaskKind kind, double now) {
  if (preempt_budget_left_ <= 0) return false;
  int64_t& free_slots =
      kind == TaskKind::kMap ? free_map_slots_ : free_reduce_slots_;
  if (free_slots > 0) return false;
  const ArenaVector<size_t>& runnable =
      kind == TaskKind::kMap ? runnable_maps_ : runnable_reduces_;
  // Earliest-submitted interactive job with unlaunched tasks of `kind`
  // (ties to lowest index, like every policy).
  int want = -1;
  double want_submit = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    const SimJob& job = jobs_[index];
    if (!job.is_small) continue;
    if (want < 0 || job.submit_time < want_submit ||
        (job.submit_time == want_submit &&
         index < static_cast<size_t>(want))) {
      want_submit = job.submit_time;
      want = static_cast<int>(index);
    }
  }
  if (want < 0) return false;
  // Victim: the large job with the most remaining work among those with
  // revocable running tasks of the kind (running minus tasks already
  // reserved by node-loss kills or earlier revocations). Ties break to
  // the latest-submitted, highest-index elephant - preempting the
  // youngest equal-size victim loses the least sunk scheduling progress.
  size_t victim = kNone;
  double victim_work = -1.0;
  double victim_submit = -1.0;
  int64_t victim_revocable = 0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const SimJob& job = jobs_[i];
    if (job.is_small || job.failed) continue;
    const int64_t pinned =
        kind == TaskKind::kMap
            ? job.kill_pending_maps + job.preempt_pending_maps
            : job.kill_pending_reduces + job.preempt_pending_reduces;
    const int64_t revocable =
        (kind == TaskKind::kMap ? job.maps_running()
                                : job.reduces_running()) -
        pinned;
    if (revocable <= 0) continue;
    const double work = job.RemainingWork();
    if (victim == kNone || work > victim_work ||
        (work == victim_work &&
         (job.submit_time > victim_submit ||
          (job.submit_time == victim_submit && i > victim)))) {
      victim = i;
      victim_work = work;
      victim_submit = job.submit_time;
      victim_revocable = revocable;
    }
  }
  if (victim == kNone) return false;
  SimJob& interactive = jobs_[static_cast<size_t>(want)];
  SimJob& elephant = jobs_[victim];
  const int64_t need =
      kind == TaskKind::kMap
          ? interactive.maps_total - interactive.maps_launched
          : interactive.reduces_total - interactive.reduces_launched;
  const int64_t revoke =
      std::min({need, victim_revocable, preempt_budget_left_});
  if (revoke <= 0) return false;
  // Revocation: the tasks leave the running pool now (slots free, counts
  // roll back) and re-join the unlaunched pool via relaunch debt, so
  // their re-launch is counted as retries exactly like failure recovery.
  // Their already-queued completion/failure events are swallowed later
  // through preempt_pending (mirroring kill_pending's heartbeat-timeout
  // consumption).
  if (kind == TaskKind::kMap) {
    elephant.maps_launched -= revoke;
    elephant.preempt_pending_maps += revoke;
    elephant.map_relaunch_debt += revoke;
    context_.large_running_maps -= revoke;
  } else {
    elephant.reduces_launched -= revoke;
    elephant.preempt_pending_reduces += revoke;
    elephant.reduce_relaunch_debt += revoke;
    context_.large_running_reduces -= revoke;
  }
  free_slots += revoke;
  elephant.preempted_tasks += revoke;
  result_.sla.preempted_tasks += revoke;
  ++result_.sla.preemption_rounds;
  preempt_budget_left_ -= revoke;
  Refresh(victim);
  LaunchBatch(static_cast<size_t>(want), kind, now, revoke);
  return true;
}

void ReplayEngine::AccountSla(const SimJob& job, bool killed) {
  if (job.deadline >= 0.0) {
    const bool missed = killed || job.finish_time > job.deadline;
    if (job.is_small) {
      ++result_.sla.small_jobs_with_deadline;
      if (missed) ++result_.sla.small_misses;
    } else {
      ++result_.sla.large_jobs_with_deadline;
      if (missed) ++result_.sla.large_misses;
    }
  }
  if (options_.sla.admission_enabled()) {
    TenantStats& tenant = result_.sla.tenants[job.tenant_id];
    ++tenant.jobs;
    if (job.admission_park_time >= 0.0) {
      ++tenant.parked_jobs;
      ++result_.sla.admission_parked_jobs;
      tenant.total_admission_delay += job.admission_wait;
      result_.sla.total_admission_delay += job.admission_wait;
      tenant.max_admission_delay =
          std::max(tenant.max_admission_delay, job.admission_wait);
    }
  }
}

bool ReplayEngine::GrantKind(TaskKind kind, double now) {
  int64_t& free_slots =
      kind == TaskKind::kMap ? free_map_slots_ : free_reduce_slots_;
  if (free_slots <= 0) return false;
  const ArenaVector<size_t>& runnable =
      kind == TaskKind::kMap ? runnable_maps_ : runnable_reduces_;
  if (runnable.empty()) return false;
  int64_t total_slots =
      kind == TaskKind::kMap ? total_map_slots_ : total_reduce_slots_;
  int pick = scheduler_->PickJob(jobs_, runnable, kind,
                                 static_cast<int>(total_slots), context_);
  if (pick < 0) return false;
  SimJob& job = jobs_[pick];
  int64_t remaining = kind == TaskKind::kMap
                          ? job.maps_total - job.maps_launched
                          : job.reduces_total - job.reduces_launched;
  // Fair share per grant round: no single pick absorbs every free slot
  // while other jobs are runnable.
  int64_t batch =
      std::max<int64_t>(1, free_slots / static_cast<int64_t>(
                                            runnable.size()));
  batch = std::min({batch, remaining, free_slots});
  batch = std::min(
      batch, scheduler_->BatchLimit(jobs_, pick, kind,
                                    static_cast<int>(total_slots), context_));
  if (batch < 1) return false;
  LaunchBatch(static_cast<size_t>(pick), kind, now, batch);
  return true;
}

void ReplayEngine::ScheduleLoop(double now) {
  context_.now = now;
  // Unpark every job whose retry backoff has expired before granting, so
  // the runnable lists equal the retired engine's per-grant
  // retry_ready_time <= now filter even when the expiry coincides with
  // another event at the same timestamp.
  while (!parked_heap_.empty() && parked_heap_.front().first <= now) {
    std::pop_heap(parked_heap_.begin(), parked_heap_.end(),
                  std::greater<>());
    size_t job_index = parked_heap_.back().second;
    parked_heap_.pop_back();
    if (!parked_[job_index]) continue;  // stale entry
    if (jobs_[job_index].retry_ready_time <= now) {
      parked_[job_index] = 0;
      Refresh(job_index);
    } else {
      // The backoff was extended after this entry was pushed; re-park at
      // the current expiry.
      parked_heap_.emplace_back(jobs_[job_index].retry_ready_time,
                                job_index);
      std::push_heap(parked_heap_.begin(), parked_heap_.end(),
                     std::greater<>());
    }
  }
  bool granted = true;
  while (granted) {
    granted = false;
    granted |= GrantKind(TaskKind::kMap, now);
    granted |= GrantKind(TaskKind::kReduce, now);
  }
  // Elephant preemption runs after normal grants: only when a pool is
  // saturated and an interactive job is still waiting may running
  // elephant tasks be revoked. The loop is bounded by the per-run budget
  // (each successful round revokes >= 1 task).
  if (preempt_budget_left_ > 0) {
    bool preempted = true;
    while (preempted) {
      preempted = false;
      preempted |= PreemptKind(TaskKind::kMap, now);
      preempted |= PreemptKind(TaskKind::kReduce, now);
    }
  }
}

StatusOr<ReplayResult> ReplayEngine::Run() {
  if (options_.cluster.nodes <= 0 ||
      options_.cluster.map_slots_per_node <= 0 ||
      options_.cluster.reduce_slots_per_node < 0) {
    return InvalidArgumentError("invalid cluster configuration");
  }
  Status failure_status = ValidateFailureOptions(failures_);
  if (!failure_status.ok()) return failure_status;
  Status sla_status = ValidateSlaOptions(options_.sla);
  if (!sla_status.ok()) return sla_status;

  auto scheduler = MakeScheduler(options_.scheduler);
  if (!scheduler.ok()) return scheduler.status();
  scheduler_ = std::move(scheduler).value();
  preempt_budget_left_ = options_.sla.preemption_budget;

  // The per-trace build phase already happened (shared ReplayTemplate);
  // a run starts from a bulk copy of the skeletons — SimJob is trivially
  // copyable, so this is one memcpy-shaped pass into the lane's arena.
  jobs_.assign(tpl_.jobs().begin(), tpl_.jobs().end());

  const size_t n = jobs_.size();
  arrived_.assign(n, 0);
  parked_.assign(n, 0);
  map_pos_.assign(n, kNone);
  reduce_pos_.assign(n, kNone);
  in_active_.assign(n, 0);
  active_prev_.assign(n, kNone);
  active_next_.assign(n, kNone);
  // Worst-case capacity up front: growth inside a monotonic arena would
  // abandon the old buffer until the lane resets.
  runnable_maps_.reserve(n);
  runnable_reduces_.reserve(n);

  if (options_.sla.admission_enabled()) {
    admitted_.assign(n, 0);
    adm_next_.assign(n, kNone);
    adm_head_.assign(static_cast<size_t>(options_.sla.tenants), kNone);
    adm_tail_.assign(static_cast<size_t>(options_.sla.tenants), kNone);
    tenant_running_.assign(static_cast<size_t>(options_.sla.tenants), 0);
    result_.sla.tenants.resize(static_cast<size_t>(options_.sla.tenants));
    for (int t = 0; t < options_.sla.tenants; ++t) {
      result_.sla.tenants[static_cast<size_t>(t)].tenant = t;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    PushEvent(jobs_[i].submit_time, Event::Kind::kArrival, i,
              TaskKind::kMap, 0, 1, 0.0);
  }

  total_map_slots_ = options_.cluster.total_map_slots();
  total_reduce_slots_ = options_.cluster.total_reduce_slots();
  free_map_slots_ = total_map_slots_;
  free_reduce_slots_ = total_reduce_slots_;

  result_.scheduler = scheduler_->name();
  // The result is returned to the caller and must survive the lane's
  // arena reset, so outcomes stay heap-backed; one reservation keeps the
  // run's heap traffic to a handful of calls.
  result_.outcomes.reserve(n);

  const double first_submit = tpl_.first_submit();
  const double loss_rate_per_second = failures_.node_loss_per_hour / 3600.0;
  if (loss_rate_per_second > 0.0) {
    PushEvent(first_submit + loss_rng_.NextExponential(loss_rate_per_second),
              Event::Kind::kNodeLoss, 0, TaskKind::kMap, 0, 1, 0.0);
  }

  double last_finish = 0.0;
  while (!queue_.empty()) {
    Event event = queue_.Pop();
    int64_t busy = (total_map_slots_ - free_map_slots_) +
                   (total_reduce_slots_ - free_reduce_slots_);
    meter_.Advance(event.time, busy, occupancy_slot_seconds_);

    SimJob& job = jobs_[event.job_index];
    switch (event.kind) {
      case Event::Kind::kArrival:
        arrived_[event.job_index] = 1;
        LinkActive(event.job_index);
        // Admission gates only eligible jobs (arrived AND parent-free):
        // a parent-blocked job must not hold a tenant token its own
        // parent is waiting for. Parent-blocked jobs admit from the
        // parent-finish path instead.
        if (job.unfinished_parents == 0) {
          TryAdmit(event.job_index, event.time);
        }
        Refresh(event.job_index);
        break;
      case Event::Kind::kWake:
        break;  // only here to re-enter the grant loop after a backoff
      case Event::Kind::kNodeLoss: {
        ++result_.failures.node_losses;
        // One node's worth of running slots dies. Victims are drawn from
        // active jobs in arrival order (deterministic); the kill is
        // charged when the affected wave completes, matching Hadoop's
        // heartbeat-timeout detection of lost TaskTrackers.
        int64_t map_quota = options_.cluster.map_slots_per_node;
        int64_t reduce_quota = options_.cluster.reduce_slots_per_node;
        for (size_t index = active_head_; index != kNone;
             index = active_next_[index]) {
          SimJob& victim = jobs_[index];
          if (map_quota > 0) {
            int64_t take = std::min(
                map_quota, victim.maps_running() - victim.kill_pending_maps);
            if (take > 0) {
              victim.kill_pending_maps += take;
              map_quota -= take;
            }
          }
          if (reduce_quota > 0) {
            int64_t take = std::min(reduce_quota,
                                    victim.reduces_running() -
                                        victim.kill_pending_reduces);
            if (take > 0) {
              victim.kill_pending_reduces += take;
              reduce_quota -= take;
            }
          }
          if (map_quota == 0 && reduce_quota == 0) break;
        }
        // Self-reschedule while the simulation still has work; stop when
        // this was the last event so the loop terminates.
        if (!queue_.empty()) {
          PushEvent(event.time + loss_rng_.NextExponential(
                                     loss_rate_per_second),
                    Event::Kind::kNodeLoss, 0, TaskKind::kMap, 0, 1, 0.0);
        }
        break;
      }
      case Event::Kind::kTasksFailed: {
        // Preempted tasks consumed first: a revoked task already left the
        // running pool (slot freed, launch count rolled back) and sits in
        // the relaunch-debt queue - its old in-flight failure must not
        // fail it a second time.
        int64_t& preempt_pending = event.task_kind == TaskKind::kMap
                                       ? job.preempt_pending_maps
                                       : job.preempt_pending_reduces;
        const int64_t revoked = std::min(event.count, preempt_pending);
        preempt_pending -= revoked;
        const int64_t effective = event.count - revoked;
        if (event.task_kind == TaskKind::kMap) {
          job.maps_launched -= effective;
          free_map_slots_ += effective;
          if (!job.is_small) context_.large_running_maps -= effective;
          // Tasks that died on their own also satisfy any pending
          // node-loss kill (they no longer exist to be killed later).
          job.kill_pending_maps =
              std::max<int64_t>(0, job.kill_pending_maps - effective);
        } else {
          job.reduces_launched -= effective;
          free_reduce_slots_ += effective;
          if (!job.is_small) context_.large_running_reduces -= effective;
          job.kill_pending_reduces =
              std::max<int64_t>(0, job.kill_pending_reduces - effective);
        }
        result_.failures.task_failures += effective;
        result_.failures.failed_task_seconds +=
            static_cast<double>(effective) * event.unit_seconds;
        context_.failed_attempts += effective;
        if (effective > 0) {
          HandleAttemptFailure(event.job_index, event.task_kind,
                               event.attempt, effective, event.time);
        }
        Refresh(event.job_index);
        break;
      }
      case Event::Kind::kTasksDone: {
        int64_t killed = 0;
        // Node-loss kills consume completions first (they reserved
        // running tasks), then preempted tasks are swallowed: a revoked
        // task's slot was freed and its launch count rolled back at
        // revocation time, so this event neither finishes nor re-frees
        // it.
        int64_t revoked = 0;
        if (event.task_kind == TaskKind::kMap) {
          if (job.kill_pending_maps > 0) {
            killed = std::min(event.count, job.kill_pending_maps);
            job.kill_pending_maps -= killed;
          }
          if (job.preempt_pending_maps > 0) {
            revoked = std::min(event.count - killed,
                               job.preempt_pending_maps);
            job.preempt_pending_maps -= revoked;
          }
          job.maps_finished += event.count - killed - revoked;
          job.maps_launched -= killed;
          free_map_slots_ += event.count - revoked;
          if (!job.is_small) {
            context_.large_running_maps -= event.count - revoked;
          }
        } else {
          if (job.kill_pending_reduces > 0) {
            killed = std::min(event.count, job.kill_pending_reduces);
            job.kill_pending_reduces -= killed;
          }
          if (job.preempt_pending_reduces > 0) {
            revoked = std::min(event.count - killed,
                               job.preempt_pending_reduces);
            job.preempt_pending_reduces -= revoked;
          }
          job.reduces_finished += event.count - killed - revoked;
          job.reduces_launched -= killed;
          free_reduce_slots_ += event.count - revoked;
          if (!job.is_small) {
            context_.large_running_reduces -= event.count - revoked;
          }
        }
        if (killed > 0) {
          result_.failures.tasks_lost_to_nodes += killed;
          result_.failures.failed_task_seconds +=
              static_cast<double>(killed) * event.unit_seconds;
          context_.failed_attempts += killed;
          HandleAttemptFailure(event.job_index, event.task_kind,
                               event.attempt, killed, event.time);
        }
        if (!job.failed && job.Finished() && job.finish_time < 0.0) {
          job.finish_time = event.time;
          last_finish = std::max(last_finish, event.time);
          UnlinkActive(event.job_index);
          if (!tpl_.child_offsets().empty()) {
            const std::vector<uint32_t>& offsets = tpl_.child_offsets();
            const std::vector<uint32_t>& index = tpl_.child_index();
            for (uint32_t c = offsets[event.job_index];
                 c < offsets[event.job_index + 1]; ++c) {
              const size_t child = index[c];
              --jobs_[child].unfinished_parents;
              if (jobs_[child].unfinished_parents == 0 &&
                  arrived_[child] != 0) {
                TryAdmit(child, event.time);
              }
              Refresh(child);
            }
          }
          // Token release after the children admit: a same-tenant child
          // may park here and be popped by this release, preserving the
          // per-tenant FIFO order.
          ReleaseAdmission(event.job_index, event.time);
          AccountSla(job, /*killed=*/false);
          JobOutcome outcome;
          outcome.job_id = job.record->job_id;
          outcome.submit_time = job.submit_time;
          outcome.latency = job.finish_time - job.submit_time;
          outcome.ideal_latency = job.IdealLatency();
          outcome.is_small = job.is_small;
          outcome.retries = job.retries;
          outcome.deadline = job.deadline;
          outcome.missed_sla =
              job.deadline >= 0.0 && job.finish_time > job.deadline;
          outcome.tenant = job.tenant_id;
          outcome.preempted_tasks = job.preempted_tasks;
          outcome.admission_delay = job.admission_wait;
          result_.outcomes.push_back(outcome);
        }
        Refresh(event.job_index);
        break;
      }
    }
    ScheduleLoop(event.time);
  }

  for (const SimJob& job : jobs_) {
    if (job.finish_time < 0.0) ++result_.unfinished_jobs;
  }
  result_.makespan = std::max(0.0, last_finish - first_submit);
  result_.hourly_occupancy.reserve(occupancy_slot_seconds_.size());
  for (double slot_seconds : occupancy_slot_seconds_) {
    result_.hourly_occupancy.push_back(slot_seconds / 3600.0);
  }
  double capacity =
      static_cast<double>(total_map_slots_ + total_reduce_slots_) *
      std::max(result_.makespan, 1.0);
  result_.utilization = meter_.busy_slot_seconds() / capacity;
  return std::move(result_);
}

}  // namespace

stats::SortedStats ReplayResult::LatencyStats(bool small_jobs) const {
  std::vector<double> latencies;
  for (const auto& o : outcomes) {
    if (o.is_small == small_jobs) latencies.push_back(o.latency);
  }
  return stats::SortedStats(std::move(latencies));
}

double ReplayResult::LatencyQuantile(bool small_jobs, double p) const {
  return LatencyStats(small_jobs).Quantile(p);
}

double ReplayResult::MeanSlowdown(bool small_jobs) const {
  double total = 0.0;
  size_t count = 0;
  for (const auto& o : outcomes) {
    if (o.is_small == small_jobs) {
      total += o.Slowdown();
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

size_t ReplayResult::CountJobs(bool small_jobs) const {
  size_t count = 0;
  for (const auto& o : outcomes) {
    if (o.is_small == small_jobs) ++count;
  }
  return count;
}

namespace {

bool SameDependencies(
    const FlatHashMap<uint64_t, std::vector<uint64_t>>& a,
    const FlatHashMap<uint64_t, std::vector<uint64_t>>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [child, parents] : a) {
    auto it = b.find(child);
    if (it == b.end() || it->second != parents) return false;
  }
  return true;
}

}  // namespace

StatusOr<ReplayTemplate> ReplayTemplate::Build(const trace::Trace& trace,
                                               const ReplayOptions& base) {
  if (trace.empty()) return InvalidArgumentError("empty trace");
  if (base.max_tasks_per_job < 1) {
    return InvalidArgumentError("max_tasks_per_job must be >= 1");
  }
  Status sla_status = ValidateSlaOptions(base.sla);
  if (!sla_status.ok()) return sla_status;

  ReplayTemplate tpl;
  tpl.max_tasks_per_job_ = base.max_tasks_per_job;
  tpl.small_job_bytes_ = base.small_job_bytes;
  tpl.sla_small_multiplier_ = base.sla.small_multiplier;
  tpl.sla_large_multiplier_ = base.sla.large_multiplier;
  tpl.sla_tenants_ = base.sla.tenants;
  tpl.dependencies_ = base.dependencies;

  // Build the job skeletons (trace.jobs() is submit-sorted). This is the
  // exact conversion the engine used to run per replay.
  tpl.jobs_.reserve(trace.size());
  for (const auto& record : trace.jobs()) {
    SimJob job;
    job.record = &record;
    job.submit_time = record.submit_time;
    job.is_small = record.TotalBytes() < base.small_job_bytes;
    job.maps_total = std::min(std::max<int64_t>(record.map_tasks, 1),
                              base.max_tasks_per_job);
    job.map_task_duration = std::max(
        record.map_task_seconds / static_cast<double>(job.maps_total), 1e-3);
    job.reduces_total =
        std::min(record.reduce_tasks, base.max_tasks_per_job);
    if (job.reduces_total > 0) {
      job.reduce_task_duration =
          std::max(record.reduce_task_seconds /
                       static_cast<double>(job.reduces_total),
                   1e-3);
    }
    // SLA tier: the deadline is an ideal-latency multiple (per class),
    // absolute from the submit time; the tenant is a stable hash of the
    // job id so sweeps over cluster size keep tenant assignment fixed.
    job.deadline = job.submit_time +
                   job.IdealLatency() * (job.is_small
                                             ? base.sla.small_multiplier
                                             : base.sla.large_multiplier);
    if (base.sla.tenants > 0) {
      job.tenant_id = static_cast<int>(
          record.job_id % static_cast<uint64_t>(base.sla.tenants));
    }
    tpl.jobs_.push_back(job);
  }
  tpl.first_submit_ = tpl.jobs_.front().submit_time;

  // Workflow dependencies: resolve job ids to indices, wire parent
  // counters into the skeletons, and flatten child lists to CSR (two
  // passes over the map; per-parent child order matches the old
  // vector-of-vectors fill order).
  if (!base.dependencies.empty()) {
    FlatHashMap<uint64_t, size_t> index_of;
    index_of.reserve(tpl.jobs_.size());
    for (size_t i = 0; i < tpl.jobs_.size(); ++i) {
      index_of[tpl.jobs_[i].record->job_id] = i;
    }
    const size_t n = tpl.jobs_.size();
    std::vector<uint32_t> counts(n, 0);
    for (const auto& [child_id, parent_ids] : base.dependencies) {
      auto child_it = index_of.find(child_id);
      if (child_it == index_of.end()) {
        return InvalidArgumentError("dependency references unknown job " +
                                    std::to_string(child_id));
      }
      for (uint64_t parent_id : parent_ids) {
        auto parent_it = index_of.find(parent_id);
        if (parent_it == index_of.end()) {
          return InvalidArgumentError("dependency references unknown job " +
                                      std::to_string(parent_id));
        }
        ++tpl.jobs_[child_it->second].unfinished_parents;
        ++counts[parent_it->second];
      }
    }
    tpl.child_offsets_.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      tpl.child_offsets_[i + 1] = tpl.child_offsets_[i] + counts[i];
    }
    tpl.child_index_.resize(tpl.child_offsets_[n]);
    std::vector<uint32_t> cursor(tpl.child_offsets_.begin(),
                                 tpl.child_offsets_.end() - 1);
    for (const auto& [child_id, parent_ids] : base.dependencies) {
      const size_t child = index_of.find(child_id)->second;
      for (uint64_t parent_id : parent_ids) {
        const size_t parent = index_of.find(parent_id)->second;
        tpl.child_index_[cursor[parent]++] = static_cast<uint32_t>(child);
      }
    }
  }
  return tpl;
}

bool ReplayTemplate::Compatible(const ReplayOptions& options) const {
  return options.max_tasks_per_job == max_tasks_per_job_ &&
         options.small_job_bytes == small_job_bytes_ &&
         options.sla.small_multiplier == sla_small_multiplier_ &&
         options.sla.large_multiplier == sla_large_multiplier_ &&
         options.sla.tenants == sla_tenants_ &&
         SameDependencies(options.dependencies, dependencies_);
}

StatusOr<ReplayResult> ReplayTemplate::Replay(const ReplayOptions& options,
                                              Arena* arena) const {
  if (!Compatible(options)) {
    return InvalidArgumentError(
        "replay options disagree with the template's captured "
        "max_tasks_per_job / small_job_bytes / dependencies / SLA shape");
  }
  return ReplayEngine(*this, options, arena).Run();
}

StatusOr<ReplayResult> ReplayTrace(const trace::Trace& trace,
                                   const ReplayOptions& options) {
#ifdef SWIM_REPLAY_LEGACY
  return ReplayTraceLegacy(trace, options);
#else
  auto tpl = ReplayTemplate::Build(trace, options);
  if (!tpl.ok()) return tpl.status();
  return tpl->Replay(options, /*arena=*/nullptr);
#endif
}

}  // namespace swim::sim

#ifndef SWIM_SIM_SIM_JOB_H_
#define SWIM_SIM_SIM_JOB_H_

#include <cstdint>

#include "trace/job_record.h"

namespace swim::sim {

enum class TaskKind { kMap, kReduce };

/// Runtime state of one job inside the simulator. Tasks of a kind are
/// homogeneous (duration = task_seconds / task_count), matching the
/// information available in per-job traces.
struct SimJob {
  const trace::JobRecord* record = nullptr;

  int64_t maps_total = 0;
  int64_t maps_launched = 0;
  int64_t maps_finished = 0;
  int64_t reduces_total = 0;
  int64_t reduces_launched = 0;
  int64_t reduces_finished = 0;

  double map_task_duration = 0.0;
  double reduce_task_duration = 0.0;

  double submit_time = 0.0;
  double first_launch_time = -1.0;
  double finish_time = -1.0;

  /// Small jobs (< 10 GB total data in the paper's dichotomy) are the
  /// interactive tier.
  bool is_small = false;

  /// Workflow support: number of prerequisite jobs (earlier stages of the
  /// same Hive query / Oozie workflow) that have not finished yet. A job
  /// with pending parents is held even after its submit time.
  int64_t unfinished_parents = 0;

  int64_t maps_running() const { return maps_launched - maps_finished; }
  int64_t reduces_running() const {
    return reduces_launched - reduces_finished;
  }
  int64_t running_tasks() const { return maps_running() + reduces_running(); }

  bool maps_done() const { return maps_finished == maps_total; }
  bool HasRunnable(TaskKind kind) const {
    if (unfinished_parents > 0) return false;
    if (kind == TaskKind::kMap) return maps_launched < maps_total;
    // Reduces wait for the map stage (no slow-start overlap modeled).
    return maps_done() && reduces_launched < reduces_total;
  }
  bool Finished() const {
    return maps_done() && reduces_finished == reduces_total;
  }

  /// Lower bound on latency with unlimited slots: one wave of maps
  /// followed by one wave of reduces.
  double IdealLatency() const {
    return map_task_duration + reduce_task_duration;
  }
};

}  // namespace swim::sim

#endif  // SWIM_SIM_SIM_JOB_H_

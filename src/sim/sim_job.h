#ifndef SWIM_SIM_SIM_JOB_H_
#define SWIM_SIM_SIM_JOB_H_

#include <cstdint>

#include "trace/job_record.h"

namespace swim::sim {

enum class TaskKind { kMap, kReduce };

/// Runtime state of one job inside the simulator. Tasks of a kind are
/// homogeneous (duration = task_seconds / task_count), matching the
/// information available in per-job traces.
struct SimJob {
  const trace::JobRecord* record = nullptr;

  int64_t maps_total = 0;
  int64_t maps_launched = 0;
  int64_t maps_finished = 0;
  int64_t reduces_total = 0;
  int64_t reduces_launched = 0;
  int64_t reduces_finished = 0;

  double map_task_duration = 0.0;
  double reduce_task_duration = 0.0;

  double submit_time = 0.0;
  double first_launch_time = -1.0;
  double finish_time = -1.0;

  /// Small jobs (< 10 GB total data in the paper's dichotomy) are the
  /// interactive tier.
  bool is_small = false;

  // --- SLA tier (see ReplayOptions::sla) --------------------------------

  /// Absolute completion deadline: submit_time + IdealLatency() x the
  /// per-class SLA multiplier. Populated by ReplayTemplate::Build (and the
  /// legacy engine's job-build loop); < 0 means "no deadline". Consumed by
  /// DeadlineScheduler and by the SLA-miss accounting in JobOutcome.
  double deadline = -1.0;
  /// Owning tenant for admission control: job_id % ReplayOptions::sla
  /// .tenants (0 when admission is disabled). Populated alongside
  /// `deadline`.
  int tenant_id = 0;
  /// Tasks revoked from this job by elephant preemption (reported in
  /// JobOutcome::preempted_tasks).
  int64_t preempted_tasks = 0;
  /// Revoked tasks whose in-flight completion/failure events have not
  /// fired yet: the event's count covering them is swallowed instead of
  /// finishing or re-failing tasks that were already returned to the
  /// unlaunched pool (mirrors kill_pending_* for node losses).
  int64_t preempt_pending_maps = 0;
  int64_t preempt_pending_reduces = 0;
  /// Admission control: set while the job is parked waiting for a tenant
  /// token; parked jobs are never runnable.
  bool admission_parked = false;
  /// When the current (or last) admission park began; < 0 = never parked.
  double admission_park_time = -1.0;
  /// Total seconds spent parked by admission control.
  double admission_wait = 0.0;

  /// Workflow support: number of prerequisite jobs (earlier stages of the
  /// same Hive query / Oozie workflow) that have not finished yet. A job
  /// with pending parents is held even after its submit time.
  int64_t unfinished_parents = 0;

  // --- Failure-injection state (see ReplayOptions::failures) -----------
  //
  // Tasks of a kind are homogeneous waves, so attempts are tracked per
  // (job, kind), not per individual task: a failed batch pushes its tasks
  // back into the unlaunched pool (launched is decremented) and raises the
  // kind's attempt level; the next granted batch of that kind runs at that
  // level. When a batch fails at attempt max_attempts, the job is killed
  // (Hadoop fails the job once any task exhausts its attempts).

  /// Attempt level the next launched batch of each kind runs at (1 =
  /// fresh; >1 = re-execution, counted in FailureStats::retries).
  int map_attempt = 1;
  int reduce_attempt = 1;
  /// Re-executions launched for this job (reported in JobOutcome).
  int64_t retries = 0;
  /// Tasks from failed batches awaiting re-launch: launches are counted as
  /// retries only up to this debt, so tasks that merely share an elevated
  /// attempt level with a failed sibling are not miscounted as retries.
  int64_t map_relaunch_debt = 0;
  int64_t reduce_relaunch_debt = 0;
  /// Failed tasks wait out a linear backoff; the job receives no grants
  /// of either kind before this time.
  double retry_ready_time = 0.0;
  /// Node-loss kills are applied when the in-flight wave completes
  /// (heartbeat-timeout semantics): this many completions of each kind are
  /// converted to failures instead.
  int64_t kill_pending_maps = 0;
  int64_t kill_pending_reduces = 0;
  /// Exhausted its attempt budget; removed from the active set, never
  /// finishes, counted in FailureStats::failed_jobs.
  bool failed = false;

  int64_t maps_running() const { return maps_launched - maps_finished; }
  int64_t reduces_running() const {
    return reduces_launched - reduces_finished;
  }
  int64_t running_tasks() const { return maps_running() + reduces_running(); }

  bool maps_done() const { return maps_finished == maps_total; }
  bool HasRunnable(TaskKind kind) const {
    if (unfinished_parents > 0) return false;
    if (kind == TaskKind::kMap) return maps_launched < maps_total;
    // Reduces wait for the map stage (no slow-start overlap modeled).
    return maps_done() && reduces_launched < reduces_total;
  }
  bool Finished() const {
    return maps_done() && reduces_finished == reduces_total;
  }

  /// Lower bound on latency with unlimited slots: one wave of maps
  /// followed by one wave of reduces.
  double IdealLatency() const {
    return map_task_duration + reduce_task_duration;
  }

  /// Task-seconds not yet finished (running tasks count as unfinished:
  /// they still hold slots, and under preemption may never finish). The
  /// SRPT priority key, and the elephant-size key for preemption victim
  /// selection.
  double RemainingWork() const {
    return static_cast<double>(maps_total - maps_finished) *
               map_task_duration +
           static_cast<double>(reduces_total - reduces_finished) *
               reduce_task_duration;
  }
};

}  // namespace swim::sim

#endif  // SWIM_SIM_SIM_JOB_H_

#include "sim/energy.h"

#include <algorithm>
#include <cmath>

namespace swim::sim {

StatusOr<EnergyReport> EstimateEnergy(const ReplayResult& replay,
                                      const ClusterConfig& cluster,
                                      const EnergyModel& model) {
  if (replay.hourly_occupancy.empty()) {
    return InvalidArgumentError("replay has no occupancy data");
  }
  if (model.idle_watts < 0.0 || model.busy_watts < model.idle_watts) {
    return InvalidArgumentError("need 0 <= idle_watts <= busy_watts");
  }
  const double slots_per_node =
      static_cast<double>(cluster.map_slots_per_node +
                          cluster.reduce_slots_per_node);
  const double total_slots =
      static_cast<double>(cluster.total_map_slots() +
                          cluster.total_reduce_slots());
  if (total_slots <= 0.0) {
    return InvalidArgumentError("cluster has no slots");
  }

  EnergyReport report;
  double occupancy_sum = 0.0;
  for (double occupied_slots : replay.hourly_occupancy) {
    double utilization =
        std::clamp(occupied_slots / total_slots, 0.0, 1.0);
    occupancy_sum += utilization;
    // Always-on: all nodes idle-draw plus the utilization-proportional
    // dynamic part.
    double cluster_watts =
        static_cast<double>(cluster.nodes) *
        (model.idle_watts +
         (model.busy_watts - model.idle_watts) * utilization);
    report.always_on_kwh += cluster_watts / 1000.0;  // x 1 hour
    // Power-proportional: only ceil(occupied/slots_per_node) nodes on,
    // each at busy watts.
    double nodes_needed = std::ceil(occupied_slots / slots_per_node);
    report.power_proportional_kwh +=
        nodes_needed * model.busy_watts / 1000.0;
  }
  report.mean_occupancy =
      occupancy_sum / static_cast<double>(replay.hourly_occupancy.size());
  if (report.always_on_kwh > 0.0) {
    report.savings_fraction =
        1.0 - report.power_proportional_kwh / report.always_on_kwh;
  }
  return report;
}

}  // namespace swim::sim

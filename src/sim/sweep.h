#ifndef SWIM_SIM_SWEEP_H_
#define SWIM_SIM_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sim/replay.h"
#include "trace/trace.h"

namespace swim::sim {

/// One cell of a replay sweep: a label for reporting plus the full
/// (trace, options) pair ReplayTrace needs. Traces are referenced, not
/// copied — many cells typically share one trace — so the caller keeps
/// them alive across RunSweep.
struct SweepConfig {
  std::string label;
  const trace::Trace* trace = nullptr;
  ReplayOptions options;
};

/// Replays every configuration across the shared thread pool and returns
/// the results in configuration order.
///
/// Determinism contract (how evaluation sweeps stay reproducible, per the
/// paper's §7 methodology of comparing schedulers on the same replayed
/// trace): each ReplayTrace run is already a pure function of its
/// (trace, options) — per-run RNG streams are derived from
/// options.seed alone, and runs share no mutable state — so executing
/// them concurrently cannot perturb any individual result, and slotting
/// results by configuration index makes the returned vector byte-identical
/// at any `max_parallelism` / `SWIM_THREADS`, including 1. Tests replay
/// sweeps serially and at 8 lanes and require bit-identical results.
///
/// A configuration with a null trace (or one ReplayTrace rejects) yields
/// an error StatusOr in its slot; other runs are unaffected.
///
/// `max_parallelism` bounds worker lanes for this sweep; 0 means
/// DefaultParallelism() (the SWIM_THREADS environment variable).
std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs, int max_parallelism = 0);

/// Cross-product helper for the common grid shape: policy x node count x
/// failure seed, all against one trace. Cells are emitted in row-major
/// (policy, nodes, seed) order and labelled "<policy>/n<nodes>/s<seed>".
/// Base options supply everything else (straggler knobs, failure model,
/// dependencies, ...); pass {base.seed} for an un-swept seed axis.
std::vector<SweepConfig> SweepGrid(const trace::Trace& trace,
                                   const ReplayOptions& base,
                                   const std::vector<std::string>& policies,
                                   const std::vector<int>& node_counts,
                                   const std::vector<uint64_t>& seeds);

}  // namespace swim::sim

#endif  // SWIM_SIM_SWEEP_H_

#ifndef SWIM_SIM_SWEEP_H_
#define SWIM_SIM_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sim/replay.h"
#include "trace/trace.h"

namespace swim::sim {

/// One cell of a replay sweep: a label for reporting plus the full
/// (trace, options) pair ReplayTrace needs. Traces are referenced, not
/// copied — many cells typically share one trace — so the caller keeps
/// them alive across RunSweep.
struct SweepConfig {
  std::string label;
  const trace::Trace* trace = nullptr;
  ReplayOptions options;
};

/// Knobs for RunSweep beyond the config list.
struct SweepOptions {
  /// Worker lanes for this sweep; 0 means DefaultParallelism() (the
  /// SWIM_THREADS environment variable).
  int max_parallelism = 0;
  /// When set, invoked once per completed cell with (cells completed so
  /// far, total cells) — the hook behind `swim_replay --sweep-progress`.
  /// Called concurrently from worker lanes, so it must be thread-safe;
  /// counts can arrive slightly out of order across lanes.
  std::function<void(size_t, size_t)> progress;
};

/// Replays every configuration across the shared thread pool and returns
/// the results in configuration order.
///
/// Scaling design (the ISSUE 6 rebuild): the per-trace build work is
/// hoisted into one shared ReplayTemplate per distinct trace (skeletons +
/// dependency graph computed once, not once per cell), each worker lane
/// owns a private Arena that backs all of a run's containers and is
/// Reset() between cells (shared-nothing lanes, ~zero heap mallocs once
/// warm), and result slots are cache-line-aligned with each cell's
/// ReplayResult built lane-locally and move-assigned into its slot — no
/// cross-lane write sharing on the hot path.
///
/// Determinism contract (how evaluation sweeps stay reproducible, per the
/// paper's §7 methodology of comparing schedulers on the same replayed
/// trace): each cell's result is a pure function of its (trace, options)
/// — per-run RNG streams are derived from options.seed alone, the shared
/// template is immutable, and lanes share no mutable state — so the
/// returned vector is byte-identical at any `max_parallelism` /
/// `SWIM_THREADS`, including 1. Tests replay sweeps at 1/4/8 lanes and
/// require bit-identical results.
///
/// A configuration with a null trace (or one ReplayTrace rejects) yields
/// an error StatusOr in its slot — including cells naming an unknown
/// scheduler policy, which fail with MakeScheduler's hard error instead
/// of silently replaying as FIFO; other runs are unaffected. Cells whose
/// options disagree with the shared template's captured fields
/// (max_tasks_per_job, small_job_bytes, dependencies, or the SLA deadline
/// shape — sla.small_multiplier / sla.large_multiplier / sla.tenants —
/// differ from the first cell on that trace) transparently fall back to a
/// private per-cell build — same results, just without the sharing. The
/// remaining SLA knobs (preemption_budget, tenant_max_running) and the
/// scheduler policy are ordinary per-run axes and sweep freely; the
/// determinism contract above covers preemptive and admission-gated
/// cells too.
std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs,
    const SweepOptions& sweep_options);

/// Back-compat shorthand: RunSweep with only a lane bound.
std::vector<StatusOr<ReplayResult>> RunSweep(
    const std::vector<SweepConfig>& configs, int max_parallelism = 0);

/// Cross-product helper for the common grid shape: policy x node count x
/// failure seed, all against one trace. Cells are emitted in row-major
/// (policy, nodes, seed) order and labelled "<policy>/n<nodes>/s<seed>".
/// Base options supply everything else (straggler knobs, failure model,
/// dependencies, ...); pass {base.seed} for an un-swept seed axis.
std::vector<SweepConfig> SweepGrid(const trace::Trace& trace,
                                   const ReplayOptions& base,
                                   const std::vector<std::string>& policies,
                                   const std::vector<int>& node_counts,
                                   const std::vector<uint64_t>& seeds);

}  // namespace swim::sim

#endif  // SWIM_SIM_SWEEP_H_

#ifndef SWIM_SIM_SCHEDULER_H_
#define SWIM_SIM_SCHEDULER_H_

#include <limits>
#include <memory>
#include <string>

#include "common/span.h"
#include "common/statusor.h"
#include "sim/sim_job.h"

namespace swim::sim {

/// Cheap aggregate state the engine maintains so policies need not scan
/// the full job table on every grant.
struct SchedulerContext {
  int64_t large_running_maps = 0;
  int64_t large_running_reduces = 0;

  /// Simulated time of the current grant round. Lets policies reason about
  /// waiting time or failure backoff without a clock side-channel.
  double now = 0.0;

  /// Task attempts lost to injected failures so far (probability failures
  /// + node losses). Zero when failure injection is disabled.
  int64_t failed_attempts = 0;

  int64_t LargeRunning(TaskKind kind) const {
    return kind == TaskKind::kMap ? large_running_maps
                                  : large_running_reduces;
  }
};

/// Slot-granting policy: given the job table and the indices of jobs with
/// a runnable task of `kind`, returns the index (into `jobs`) of the job to
/// grant the next free slot, or -1 to leave the slot idle. Called once per
/// grant, so policies can be stateful.
///
/// Determinism contract: PickJob must be a pure function of the runnable
/// *set*, never of the order indices appear in `runnable` (the engine
/// maintains that list incrementally and its order is an implementation
/// detail). All built-in policies pin ties to (earliest submit time, then
/// lowest job index).
///
/// Tables are passed as Spans so the calendar engine's arena-backed
/// vectors and the legacy engine's (and tests') std::vectors share one
/// interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual int PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                      TaskKind kind, int total_slots_of_kind,
                      const SchedulerContext& context) = 0;

  /// Upper bound on how many tasks the engine may grant the picked job in
  /// one batch. Policies with quotas (two-tier) override this; the default
  /// is unlimited.
  virtual int64_t BatchLimit(Span<SimJob> /*jobs*/, int /*picked*/,
                             TaskKind /*kind*/, int /*total_slots_of_kind*/,
                             const SchedulerContext& /*context*/) {
    return std::numeric_limits<int64_t>::max();
  }
};

/// Hadoop's default: strict submission order; an early large job starves
/// everything behind it.
class FifoScheduler : public Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  int PickJob(Span<SimJob> jobs, Span<size_t> runnable, TaskKind kind,
              int total_slots_of_kind,
              const SchedulerContext& context) override;
};

/// Fair scheduler: grant the slot to the runnable job currently holding
/// the fewest slots (ties to the earliest submission).
class FairScheduler : public Scheduler {
 public:
  std::string name() const override { return "Fair"; }
  int PickJob(Span<SimJob> jobs, Span<size_t> runnable, TaskKind kind,
              int total_slots_of_kind,
              const SchedulerContext& context) override;
};

/// The paper's section 6.2 proposal: split the cluster into a performance
/// tier for small (interactive) jobs and a capacity tier for large ones.
/// Large jobs may hold at most `large_share` of each slot pool (the cap is
/// clamped to >= 1 slot when only large jobs are runnable, so a 1-slot
/// pool cannot starve them forever); small jobs are never blocked by
/// large ones.
class TwoTierScheduler : public Scheduler {
 public:
  explicit TwoTierScheduler(double large_share = 0.7)
      : large_share_(large_share) {}
  std::string name() const override { return "TwoTier"; }
  int PickJob(Span<SimJob> jobs, Span<size_t> runnable, TaskKind kind,
              int total_slots_of_kind,
              const SchedulerContext& context) override;
  int64_t BatchLimit(Span<SimJob> jobs, int picked, TaskKind kind,
                     int total_slots_of_kind,
                     const SchedulerContext& context) override;

 private:
  double large_share_;
};

/// Shortest Remaining Processing Time: grant the slot to the runnable job
/// with the least unfinished task-seconds (SimJob::RemainingWork), ties
/// pinned to (earliest submit, lowest index). Size-based priority is the
/// classic latency protection for the paper's >90% small-job mass: a
/// freshly submitted interactive job out-ranks every half-done elephant
/// without needing tier thresholds. Non-preemptive on its own; pairs with
/// the engine's elephant preemption (ReplayOptions::sla.preemption_budget)
/// for full SRPT semantics.
class SrptScheduler : public Scheduler {
 public:
  std::string name() const override { return "SRPT"; }
  int PickJob(Span<SimJob> jobs, Span<size_t> runnable, TaskKind kind,
              int total_slots_of_kind,
              const SchedulerContext& context) override;
};

/// Earliest Deadline First over SimJob::deadline (submit + ideal latency x
/// per-class SLA multiplier, populated by ReplayTemplate::Build), with
/// overdue-job escalation: jobs already past their deadline at
/// `context.now` rank ahead of every on-time job and are ordered among
/// themselves by least remaining work — the overdue backlog drains in the
/// order that un-blocks the most jobs soonest, instead of EDF's "most
/// overdue first" which would finish the most-hopeless job first. Jobs
/// without a deadline (< 0) rank last. Ties pin to (earliest submit,
/// lowest index) like every policy.
class DeadlineScheduler : public Scheduler {
 public:
  std::string name() const override { return "Deadline"; }
  int PickJob(Span<SimJob> jobs, Span<size_t> runnable, TaskKind kind,
              int total_slots_of_kind,
              const SchedulerContext& context) override;
};

/// Comma-separated list of the policy names MakeScheduler accepts, for
/// error messages and usage strings.
const char* ValidSchedulerPolicies();

/// Factory by policy name ("fifo", "fair", "two-tier", "srpt",
/// "deadline"; case-insensitive). Unknown names are a hard
/// InvalidArgumentError listing the valid policies — never a silent
/// fallback (a typo'd --sweep-policies=fare must not replay a 10k-cell
/// grid as FIFO).
StatusOr<std::unique_ptr<Scheduler>> MakeScheduler(const std::string& policy);

}  // namespace swim::sim

#endif  // SWIM_SIM_SCHEDULER_H_

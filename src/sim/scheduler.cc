#include "sim/scheduler.h"

#include <limits>

#include "common/string_util.h"

namespace swim::sim {
namespace {

/// Pinned tie-break shared by every policy: candidate `index` beats the
/// incumbent `best` iff its submit time is strictly earlier, or equal
/// with a lower job index. This makes PickJob a pure function of the
/// runnable *set* - the order jobs happen to sit in the runnable list
/// (arrival order in the legacy engine, swap-remove order in the
/// incremental one) can never leak into scheduling decisions.
bool BeatsOnSubmit(Span<SimJob> jobs, size_t index, int best,
                   double best_submit) {
  if (best < 0) return true;
  double submit = jobs[index].submit_time;
  if (submit != best_submit) return submit < best_submit;
  return index < static_cast<size_t>(best);
}

}  // namespace

int FifoScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                           TaskKind /*kind*/, int /*total_slots_of_kind*/,
                           const SchedulerContext& /*context*/) {
  int best = -1;
  double earliest = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    if (BeatsOnSubmit(jobs, index, best, earliest)) {
      earliest = jobs[index].submit_time;
      best = static_cast<int>(index);
    }
  }
  return best;
}

int FairScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                           TaskKind /*kind*/, int /*total_slots_of_kind*/,
                           const SchedulerContext& /*context*/) {
  int best = -1;
  int64_t fewest = std::numeric_limits<int64_t>::max();
  double earliest = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    const SimJob& job = jobs[index];
    int64_t held = job.running_tasks();
    if (held < fewest ||
        (held == fewest && BeatsOnSubmit(jobs, index, best, earliest))) {
      fewest = held;
      earliest = job.submit_time;
      best = static_cast<int>(index);
    }
  }
  return best;
}

int TwoTierScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                              TaskKind kind, int total_slots_of_kind,
                              const SchedulerContext& context) {
  // Small tier first, FIFO within tier.
  int best_small = -1;
  int best_large = -1;
  double earliest_small = std::numeric_limits<double>::max();
  double earliest_large = std::numeric_limits<double>::max();
  int64_t large_running = context.LargeRunning(kind);
  for (size_t index : runnable) {
    const SimJob& job = jobs[index];
    if (job.is_small) {
      if (BeatsOnSubmit(jobs, index, best_small, earliest_small)) {
        earliest_small = job.submit_time;
        best_small = static_cast<int>(index);
      }
    } else if (BeatsOnSubmit(jobs, index, best_large, earliest_large)) {
      earliest_large = job.submit_time;
      best_large = static_cast<int>(index);
    }
  }
  if (best_small >= 0) return best_small;
  int64_t large_cap = static_cast<int64_t>(
      large_share_ * static_cast<double>(total_slots_of_kind));
  if (best_large >= 0 && large_running < large_cap) return best_large;
  return -1;
}

int64_t TwoTierScheduler::BatchLimit(Span<SimJob> jobs, int picked,
                                     TaskKind kind, int total_slots_of_kind,
                                     const SchedulerContext& context) {
  if (jobs[picked].is_small) return std::numeric_limits<int64_t>::max();
  int64_t cap = static_cast<int64_t>(
      large_share_ * static_cast<double>(total_slots_of_kind));
  return std::max<int64_t>(0, cap - context.LargeRunning(kind));
}

std::unique_ptr<Scheduler> MakeScheduler(const std::string& policy) {
  std::string normalized = ToLower(policy);
  if (normalized == "fair") return std::make_unique<FairScheduler>();
  if (normalized == "two-tier" || normalized == "twotier") {
    return std::make_unique<TwoTierScheduler>();
  }
  return std::make_unique<FifoScheduler>();
}

}  // namespace swim::sim

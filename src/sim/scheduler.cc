#include "sim/scheduler.h"

#include <limits>

#include "common/string_util.h"

namespace swim::sim {
namespace {

/// Pinned tie-break shared by every policy: candidate `index` beats the
/// incumbent `best` iff its submit time is strictly earlier, or equal
/// with a lower job index. This makes PickJob a pure function of the
/// runnable *set* - the order jobs happen to sit in the runnable list
/// (arrival order in the legacy engine, swap-remove order in the
/// incremental one) can never leak into scheduling decisions.
bool BeatsOnSubmit(Span<SimJob> jobs, size_t index, int best,
                   double best_submit) {
  if (best < 0) return true;
  double submit = jobs[index].submit_time;
  if (submit != best_submit) return submit < best_submit;
  return index < static_cast<size_t>(best);
}

}  // namespace

int FifoScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                           TaskKind /*kind*/, int /*total_slots_of_kind*/,
                           const SchedulerContext& /*context*/) {
  int best = -1;
  double earliest = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    if (BeatsOnSubmit(jobs, index, best, earliest)) {
      earliest = jobs[index].submit_time;
      best = static_cast<int>(index);
    }
  }
  return best;
}

int FairScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                           TaskKind /*kind*/, int /*total_slots_of_kind*/,
                           const SchedulerContext& /*context*/) {
  int best = -1;
  int64_t fewest = std::numeric_limits<int64_t>::max();
  double earliest = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    const SimJob& job = jobs[index];
    int64_t held = job.running_tasks();
    if (held < fewest ||
        (held == fewest && BeatsOnSubmit(jobs, index, best, earliest))) {
      fewest = held;
      earliest = job.submit_time;
      best = static_cast<int>(index);
    }
  }
  return best;
}

int TwoTierScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                              TaskKind kind, int total_slots_of_kind,
                              const SchedulerContext& context) {
  // Small tier first, FIFO within tier.
  int best_small = -1;
  int best_large = -1;
  double earliest_small = std::numeric_limits<double>::max();
  double earliest_large = std::numeric_limits<double>::max();
  int64_t large_running = context.LargeRunning(kind);
  for (size_t index : runnable) {
    const SimJob& job = jobs[index];
    if (job.is_small) {
      if (BeatsOnSubmit(jobs, index, best_small, earliest_small)) {
        earliest_small = job.submit_time;
        best_small = static_cast<int>(index);
      }
    } else if (BeatsOnSubmit(jobs, index, best_large, earliest_large)) {
      earliest_large = job.submit_time;
      best_large = static_cast<int>(index);
    }
  }
  if (best_small >= 0) return best_small;
  int64_t large_cap = static_cast<int64_t>(
      large_share_ * static_cast<double>(total_slots_of_kind));
  // Tiny pools truncate the cap to 0 (1 slot x 0.7 share); with no small
  // job wanting the pool the capacity tier must still get >= 1 slot or
  // large jobs starve forever on 1-slot clusters.
  if (large_cap < 1) large_cap = 1;
  if (best_large >= 0 && large_running < large_cap) return best_large;
  return -1;
}

int64_t TwoTierScheduler::BatchLimit(Span<SimJob> jobs, int picked,
                                     TaskKind kind, int total_slots_of_kind,
                                     const SchedulerContext& context) {
  if (jobs[picked].is_small) return std::numeric_limits<int64_t>::max();
  int64_t cap = static_cast<int64_t>(
      large_share_ * static_cast<double>(total_slots_of_kind));
  // Matches the PickJob clamp: a picked large job is always allowed at
  // least one slot, or the grant would truncate to a 0-task batch and the
  // pool would idle with runnable work (the 1-slot-cluster starvation bug).
  if (cap < 1) cap = 1;
  return std::max<int64_t>(0, cap - context.LargeRunning(kind));
}

int SrptScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                           TaskKind /*kind*/, int /*total_slots_of_kind*/,
                           const SchedulerContext& /*context*/) {
  int best = -1;
  double least_work = std::numeric_limits<double>::max();
  double earliest = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    double work = jobs[index].RemainingWork();
    if (work < least_work ||
        (work == least_work && BeatsOnSubmit(jobs, index, best, earliest))) {
      least_work = work;
      earliest = jobs[index].submit_time;
      best = static_cast<int>(index);
    }
  }
  return best;
}

int DeadlineScheduler::PickJob(Span<SimJob> jobs, Span<size_t> runnable,
                               TaskKind /*kind*/,
                               int /*total_slots_of_kind*/,
                               const SchedulerContext& context) {
  // Two ranked pools scanned in one pass: overdue jobs (deadline already
  // passed at context.now) ordered by least remaining work, then on-time
  // jobs ordered by earliest deadline (no deadline ranks as +inf). Both
  // orderings are pure functions of the runnable set, so list order never
  // leaks into the pick.
  int best_overdue = -1;
  double overdue_work = std::numeric_limits<double>::max();
  double overdue_submit = std::numeric_limits<double>::max();
  int best_ontime = -1;
  double ontime_deadline = std::numeric_limits<double>::max();
  double ontime_submit = std::numeric_limits<double>::max();
  for (size_t index : runnable) {
    const SimJob& job = jobs[index];
    const bool has_deadline = job.deadline >= 0.0;
    if (has_deadline && job.deadline < context.now) {
      double work = job.RemainingWork();
      if (work < overdue_work ||
          (work == overdue_work &&
           BeatsOnSubmit(jobs, index, best_overdue, overdue_submit))) {
        overdue_work = work;
        overdue_submit = job.submit_time;
        best_overdue = static_cast<int>(index);
      }
    } else {
      double deadline = has_deadline ? job.deadline
                                     : std::numeric_limits<double>::max();
      if (deadline < ontime_deadline ||
          (deadline == ontime_deadline &&
           BeatsOnSubmit(jobs, index, best_ontime, ontime_submit))) {
        ontime_deadline = deadline;
        ontime_submit = job.submit_time;
        best_ontime = static_cast<int>(index);
      }
    }
  }
  return best_overdue >= 0 ? best_overdue : best_ontime;
}

const char* ValidSchedulerPolicies() {
  return "fifo, fair, two-tier, srpt, deadline";
}

StatusOr<std::unique_ptr<Scheduler>> MakeScheduler(
    const std::string& policy) {
  std::string normalized = ToLower(policy);
  if (normalized == "fifo") {
    return std::unique_ptr<Scheduler>(std::make_unique<FifoScheduler>());
  }
  if (normalized == "fair") {
    return std::unique_ptr<Scheduler>(std::make_unique<FairScheduler>());
  }
  if (normalized == "two-tier" || normalized == "twotier") {
    return std::unique_ptr<Scheduler>(std::make_unique<TwoTierScheduler>());
  }
  if (normalized == "srpt") {
    return std::unique_ptr<Scheduler>(std::make_unique<SrptScheduler>());
  }
  if (normalized == "deadline") {
    return std::unique_ptr<Scheduler>(std::make_unique<DeadlineScheduler>());
  }
  return InvalidArgumentError("unknown scheduling policy \"" + policy +
                              "\"; valid policies: " +
                              ValidSchedulerPolicies());
}

}  // namespace swim::sim

// The replay engine as it shipped before the calendar-queue rebuild,
// frozen as a golden oracle: one std::priority_queue event per task
// batch, the runnable set rebuilt by scanning every active job on each
// grant round, and hour-by-hour occupancy stepping. Tests replay the
// same traces through ReplayTrace and ReplayTraceLegacy and assert
// bit-identical results (every policy, with and without failure
// injection); bench_replay measures the speedup against it and gates
// >= 4x. -DSWIM_REPLAY_LEGACY makes ReplayTrace itself dispatch here.
//
// Do not modify this file except to track ReplayOptions semantics: any
// behaviour change must land in both engines or the identity tests
// fail by design.
#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/random.h"
#include "sim/replay.h"
#include "stats/descriptive.h"

namespace swim::sim {
namespace {

/// Tasks of a kind within a job are homogeneous, so a wave of them is
/// simulated as one event carrying a count - this keeps event volume
/// proportional to scheduling decisions, not task counts, and is what lets
/// month-long million-job traces replay in seconds.
struct Event {
  double time = 0.0;
  uint64_t seq = 0;  // FIFO tie-break for simultaneous events
  enum class Kind {
    kArrival,
    kTasksDone,
    kTasksFailed,  // attempts dying mid-flight (probability failures)
    kNodeLoss,     // whole-node loss; self-reschedules while work remains
    kWake,         // retry backoff expired; re-enter the grant loop
  } kind = Kind::kArrival;
  size_t job_index = 0;
  TaskKind task_kind = TaskKind::kMap;
  int64_t count = 0;
  /// Attempt level the batch was launched at (failure bookkeeping).
  int attempt = 1;
  /// Slot-seconds one task of the batch occupies until this event fires -
  /// the waste charged per task if the attempt dies instead of completing.
  double unit_seconds = 0.0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Integrates busy-slot counts into hourly buckets.
class OccupancyMeter {
 public:
  void Advance(double now, int64_t busy_slots, std::vector<double>& buckets) {
    if (now <= last_time_) {
      last_time_ = std::max(last_time_, now);
      return;
    }
    double t = last_time_;
    while (t < now) {
      size_t hour = static_cast<size_t>(t / 3600.0);
      double hour_end = (static_cast<double>(hour) + 1.0) * 3600.0;
      double slice_end = std::min(hour_end, now);
      if (buckets.size() <= hour) buckets.resize(hour + 1, 0.0);
      buckets[hour] += static_cast<double>(busy_slots) * (slice_end - t);
      t = slice_end;
    }
    busy_slot_seconds_ += static_cast<double>(busy_slots) * (now - last_time_);
    last_time_ = now;
  }

  double busy_slot_seconds() const { return busy_slot_seconds_; }

 private:
  double last_time_ = 0.0;
  double busy_slot_seconds_ = 0.0;
};

Status ValidateFailureOptions(const FailureOptions& failures) {
  if (failures.task_failure_probability < 0.0 ||
      failures.task_failure_probability > 1.0 ||
      !std::isfinite(failures.task_failure_probability)) {
    return InvalidArgumentError("task_failure_probability must be in [0, 1]");
  }
  if (!(failures.failure_point > 0.0) || failures.failure_point > 1.0) {
    return InvalidArgumentError("failure_point must be in (0, 1]");
  }
  if (failures.node_loss_per_hour < 0.0 ||
      !std::isfinite(failures.node_loss_per_hour)) {
    return InvalidArgumentError("node_loss_per_hour must be >= 0");
  }
  if (failures.max_attempts < 1) {
    return InvalidArgumentError("max_attempts must be >= 1");
  }
  if (failures.retry_backoff_seconds < 0.0 ||
      !std::isfinite(failures.retry_backoff_seconds)) {
    return InvalidArgumentError("retry_backoff_seconds must be >= 0");
  }
  return Status::Ok();
}

Status ValidateSlaOptions(const SlaOptions& sla) {
  if (!(sla.small_multiplier > 0.0) ||
      !std::isfinite(sla.small_multiplier) ||
      !(sla.large_multiplier > 0.0) ||
      !std::isfinite(sla.large_multiplier)) {
    return InvalidArgumentError("SLA multipliers must be finite and > 0");
  }
  if (sla.preemption_budget < 0) {
    return InvalidArgumentError("preemption_budget must be >= 0");
  }
  if (sla.tenants < 0) {
    return InvalidArgumentError("tenants must be >= 0");
  }
  if (sla.tenants > 0 && sla.tenant_max_running < 1) {
    return InvalidArgumentError(
        "tenant_max_running must be >= 1 when admission control is enabled");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ReplayResult> ReplayTraceLegacy(const trace::Trace& trace,
                                         const ReplayOptions& options) {
  if (trace.empty()) return InvalidArgumentError("empty trace");
  if (options.cluster.nodes <= 0 || options.cluster.map_slots_per_node <= 0 ||
      options.cluster.reduce_slots_per_node < 0) {
    return InvalidArgumentError("invalid cluster configuration");
  }
  if (options.max_tasks_per_job < 1) {
    return InvalidArgumentError("max_tasks_per_job must be >= 1");
  }
  Status failure_status = ValidateFailureOptions(options.failures);
  if (!failure_status.ok()) return failure_status;
  Status sla_status = ValidateSlaOptions(options.sla);
  if (!sla_status.ok()) return sla_status;
  // Elephant preemption revokes running batches mid-flight; the frozen
  // oracle has no revocation protocol, and the identity contract only
  // covers non-preemptive runs.
  if (options.sla.preemption_enabled()) {
    return InvalidArgumentError(
        "ReplayTraceLegacy does not support preemption_budget > 0");
  }
  const FailureOptions& failures = options.failures;

  auto scheduler_or = MakeScheduler(options.scheduler);
  if (!scheduler_or.ok()) return scheduler_or.status();
  std::unique_ptr<Scheduler> scheduler = std::move(scheduler_or).value();
  Pcg32 rng(options.seed, /*stream=*/0x51e9);
  // Dedicated streams for the failure model: enabling/disabling failure
  // injection must not perturb the straggler draws (and with the model
  // disabled these are never consulted, keeping output bit-identical to
  // pre-failure-model replays).
  Pcg32 failure_rng(options.seed, /*stream=*/0xfa11);
  Pcg32 loss_rng(options.seed, /*stream=*/0x10e5);

  // Build the job table (trace.jobs() is submit-sorted).
  std::vector<SimJob> jobs;
  jobs.reserve(trace.size());
  for (const auto& record : trace.jobs()) {
    SimJob job;
    job.record = &record;
    job.submit_time = record.submit_time;
    job.is_small = record.TotalBytes() < options.small_job_bytes;
    job.maps_total = std::min(std::max<int64_t>(record.map_tasks, 1),
                              options.max_tasks_per_job);
    job.map_task_duration = std::max(
        record.map_task_seconds / static_cast<double>(job.maps_total), 1e-3);
    job.reduces_total =
        std::min(record.reduce_tasks, options.max_tasks_per_job);
    if (job.reduces_total > 0) {
      job.reduce_task_duration =
          std::max(record.reduce_task_seconds /
                       static_cast<double>(job.reduces_total),
                   1e-3);
    }
    // SLA tier (mirrors ReplayTemplate::Build): per-class deadline and
    // stable tenant assignment.
    job.deadline = job.submit_time +
                   job.IdealLatency() * (job.is_small
                                             ? options.sla.small_multiplier
                                             : options.sla.large_multiplier);
    if (options.sla.tenants > 0) {
      job.tenant_id = static_cast<int>(
          record.job_id % static_cast<uint64_t>(options.sla.tenants));
    }
    jobs.push_back(job);
  }

  // Workflow dependencies: resolve job ids to indices and wire parent
  // counters / child lists.
  std::vector<std::vector<size_t>> children(jobs.size());
  if (!options.dependencies.empty()) {
    FlatHashMap<uint64_t, size_t> index_of;
    index_of.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      index_of[jobs[i].record->job_id] = i;
    }
    for (const auto& [child_id, parent_ids] : options.dependencies) {
      auto child_it = index_of.find(child_id);
      if (child_it == index_of.end()) {
        return InvalidArgumentError("dependency references unknown job " +
                                    std::to_string(child_id));
      }
      for (uint64_t parent_id : parent_ids) {
        auto parent_it = index_of.find(parent_id);
        if (parent_it == index_of.end()) {
          return InvalidArgumentError("dependency references unknown job " +
                                      std::to_string(parent_id));
        }
        ++jobs[child_it->second].unfinished_parents;
        children[parent_it->second].push_back(child_it->second);
      }
    }
  }

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  uint64_t seq = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    queue.push(Event{jobs[i].submit_time, seq++, Event::Kind::kArrival, i,
                     TaskKind::kMap, 0, 1, 0.0});
  }

  const int64_t total_map_slots = options.cluster.total_map_slots();
  const int64_t total_reduce_slots = options.cluster.total_reduce_slots();
  int64_t free_map_slots = total_map_slots;
  int64_t free_reduce_slots = total_reduce_slots;
  SchedulerContext context;
  std::vector<size_t> active;  // arrived, unfinished job indices
  OccupancyMeter meter;
  std::vector<double> occupancy_slot_seconds;

  ReplayResult result;
  result.scheduler = scheduler->name();

  // --- Admission control (mirrors the calendar engine's token bucket) --
  const bool admission = options.sla.admission_enabled();
  std::vector<uint8_t> arrived(jobs.size(), 0);
  std::vector<uint8_t> admitted;
  std::vector<int64_t> tenant_running;
  std::vector<std::deque<size_t>> adm_queue;
  if (admission) {
    admitted.assign(jobs.size(), 0);
    tenant_running.assign(static_cast<size_t>(options.sla.tenants), 0);
    adm_queue.resize(static_cast<size_t>(options.sla.tenants));
    result.sla.tenants.resize(static_cast<size_t>(options.sla.tenants));
    for (int t = 0; t < options.sla.tenants; ++t) {
      result.sla.tenants[static_cast<size_t>(t)].tenant = t;
    }
  }
  auto try_admit = [&](size_t i, double now) {
    if (!admission || admitted[i]) return;
    SimJob& job = jobs[i];
    const int tenant = job.tenant_id;
    if (tenant_running[static_cast<size_t>(tenant)] <
        options.sla.tenant_max_running) {
      admitted[i] = 1;
      ++tenant_running[static_cast<size_t>(tenant)];
      if (job.admission_parked) {
        job.admission_parked = false;
        job.admission_wait = now - job.admission_park_time;
      }
    } else {
      job.admission_parked = true;
      job.admission_park_time = now;
      adm_queue[static_cast<size_t>(tenant)].push_back(i);
    }
  };
  auto release_admission = [&](size_t i, double now) {
    if (!admission || !admitted[i]) return;
    admitted[i] = 0;
    const int tenant = jobs[i].tenant_id;
    --tenant_running[static_cast<size_t>(tenant)];
    auto& waiting = adm_queue[static_cast<size_t>(tenant)];
    if (!waiting.empty()) {
      const size_t next = waiting.front();
      waiting.pop_front();
      try_admit(next, now);
    }
  };
  auto account_sla = [&](const SimJob& job, bool killed) {
    if (job.deadline >= 0.0) {
      const bool missed = killed || job.finish_time > job.deadline;
      if (job.is_small) {
        ++result.sla.small_jobs_with_deadline;
        if (missed) ++result.sla.small_misses;
      } else {
        ++result.sla.large_jobs_with_deadline;
        if (missed) ++result.sla.large_misses;
      }
    }
    if (admission) {
      TenantStats& tenant =
          result.sla.tenants[static_cast<size_t>(job.tenant_id)];
      ++tenant.jobs;
      if (job.admission_park_time >= 0.0) {
        ++tenant.parked_jobs;
        ++result.sla.admission_parked_jobs;
        tenant.total_admission_delay += job.admission_wait;
        result.sla.total_admission_delay += job.admission_wait;
        tenant.max_admission_delay =
            std::max(tenant.max_admission_delay, job.admission_wait);
      }
    }
  };

  double first_submit = jobs.front().submit_time;
  const double loss_rate_per_second = failures.node_loss_per_hour / 3600.0;
  if (loss_rate_per_second > 0.0) {
    queue.push(Event{
        first_submit + loss_rng.NextExponential(loss_rate_per_second), seq++,
        Event::Kind::kNodeLoss, 0, TaskKind::kMap, 0, 1, 0.0});
  }

  // Launches `count` tasks of one kind as at most three events: a failing
  // portion (dies at failure_point of the duration), plus regular and
  // straggling completions of the survivors.
  auto launch_batch = [&](size_t job_index, TaskKind kind, double now,
                          int64_t count) {
    SimJob& job = jobs[job_index];
    double duration;
    int attempt;
    if (kind == TaskKind::kMap) {
      job.maps_launched += count;
      free_map_slots -= count;
      if (!job.is_small) context.large_running_maps += count;
      duration = job.map_task_duration;
      attempt = job.map_attempt;
    } else {
      job.reduces_launched += count;
      free_reduce_slots -= count;
      if (!job.is_small) context.large_running_reduces += count;
      duration = job.reduce_task_duration;
      attempt = job.reduce_attempt;
    }
    int64_t& debt = kind == TaskKind::kMap ? job.map_relaunch_debt
                                           : job.reduce_relaunch_debt;
    int64_t relaunched = std::min(debt, count);
    if (relaunched > 0) {
      debt -= relaunched;
      job.retries += relaunched;
      result.failures.retries += relaunched;
    }
    if (job.first_launch_time < 0.0) job.first_launch_time = now;

    // Failure split first: an attempt that dies never straggles. Small
    // batches draw per task; large batches use the deterministic expected
    // count (same scheme the straggler model uses).
    int64_t failing = 0;
    if (failures.task_failure_probability > 0.0) {
      if (count <= 16) {
        for (int64_t t = 0; t < count; ++t) {
          if (failure_rng.NextBernoulli(failures.task_failure_probability)) {
            ++failing;
          }
        }
      } else {
        failing = static_cast<int64_t>(std::llround(
            static_cast<double>(count) * failures.task_failure_probability));
      }
    }
    if (failing > 0) {
      double waste = duration * failures.failure_point;
      queue.push(Event{now + waste, seq++, Event::Kind::kTasksFailed,
                       job_index, kind, failing, attempt, waste});
    }
    const int64_t surviving = count - failing;
    if (surviving <= 0) return;

    int64_t stragglers = 0;
    if (options.straggler_probability > 0.0) {
      if (surviving <= 16) {
        for (int64_t t = 0; t < surviving; ++t) {
          if (rng.NextBernoulli(options.straggler_probability)) ++stragglers;
        }
      } else {
        stragglers = static_cast<int64_t>(std::llround(
            static_cast<double>(surviving) * options.straggler_probability));
      }
    }
    if (surviving - stragglers > 0) {
      queue.push(Event{now + duration, seq++, Event::Kind::kTasksDone,
                       job_index, kind, surviving - stragglers, attempt,
                       duration});
    }
    if (stragglers > 0) {
      double effective_factor = options.straggler_factor;
      int64_t siblings =
          kind == TaskKind::kMap ? job.maps_total : job.reduces_total;
      if (options.speculative_execution && siblings >= 2) {
        // Siblings expose the straggler; a backup launched when they
        // finish completes at ~2x the normal duration.
        effective_factor = std::min(effective_factor, 2.0);
      }
      queue.push(Event{now + duration * effective_factor, seq++,
                       Event::Kind::kTasksDone, job_index, kind, stragglers,
                       attempt, duration * effective_factor});
    }
  };

  // A batch of `count` tasks failed at `attempt`: either the job's attempt
  // budget is exhausted (kill the job, Hadoop-style) or the tasks rejoin
  // the unlaunched pool at the next attempt level after a linear backoff.
  auto handle_attempt_failure = [&](size_t job_index, TaskKind kind,
                                    int attempt, int64_t count, double now) {
    SimJob& job = jobs[job_index];
    if (job.failed) return;
    if (attempt >= failures.max_attempts) {
      job.failed = true;
      ++result.failures.failed_jobs;
      auto it = std::find(active.begin(), active.end(), job_index);
      if (it != active.end()) active.erase(it);
      // A killed job will never meet its deadline (scored as an SLA miss)
      // and returns its tenant token immediately.
      account_sla(job, /*killed=*/true);
      release_admission(job_index, now);
      return;
    }
    int next_attempt = attempt + 1;
    if (kind == TaskKind::kMap) {
      job.map_attempt = std::max(job.map_attempt, next_attempt);
      job.map_relaunch_debt += count;
    } else {
      job.reduce_attempt = std::max(job.reduce_attempt, next_attempt);
      job.reduce_relaunch_debt += count;
    }
    double ready =
        now + failures.retry_backoff_seconds * static_cast<double>(attempt);
    if (ready > job.retry_ready_time) job.retry_ready_time = ready;
    if (ready > now) {
      queue.push(Event{ready, seq++, Event::Kind::kWake, job_index, kind, 0,
                       1, 0.0});
    }
  };

  std::vector<size_t> runnable;  // reused scratch buffer
  auto grant_kind = [&](TaskKind kind, double now) -> bool {
    int64_t& free_slots =
        kind == TaskKind::kMap ? free_map_slots : free_reduce_slots;
    int64_t total_slots =
        kind == TaskKind::kMap ? total_map_slots : total_reduce_slots;
    if (free_slots <= 0) return false;
    runnable.clear();
    for (size_t index : active) {
      // Jobs waiting out a retry backoff receive no grants; a kWake event
      // at retry_ready_time re-runs this loop. Jobs parked by admission
      // control wait for a tenant token.
      if (jobs[index].HasRunnable(kind) &&
          jobs[index].retry_ready_time <= now &&
          !jobs[index].admission_parked) {
        runnable.push_back(index);
      }
    }
    if (runnable.empty()) return false;
    int pick = scheduler->PickJob(jobs, runnable, kind,
                                  static_cast<int>(total_slots), context);
    if (pick < 0) return false;
    SimJob& job = jobs[pick];
    int64_t remaining = kind == TaskKind::kMap
                            ? job.maps_total - job.maps_launched
                            : job.reduces_total - job.reduces_launched;
    // Fair share per grant round: no single pick absorbs every free slot
    // while other jobs are runnable.
    int64_t batch =
        std::max<int64_t>(1, free_slots / static_cast<int64_t>(
                                              runnable.size()));
    batch = std::min({batch, remaining, free_slots});
    batch = std::min(
        batch, scheduler->BatchLimit(jobs, pick, kind,
                                     static_cast<int>(total_slots), context));
    if (batch < 1) return false;
    launch_batch(static_cast<size_t>(pick), kind, now, batch);
    return true;
  };

  auto schedule_loop = [&](double now) {
    context.now = now;
    bool granted = true;
    while (granted) {
      granted = false;
      granted |= grant_kind(TaskKind::kMap, now);
      granted |= grant_kind(TaskKind::kReduce, now);
    }
  };

  double last_finish = 0.0;
  while (!queue.empty()) {
    Event event = queue.top();
    queue.pop();
    int64_t busy = (total_map_slots - free_map_slots) +
                   (total_reduce_slots - free_reduce_slots);
    meter.Advance(event.time, busy, occupancy_slot_seconds);

    SimJob& job = jobs[event.job_index];
    switch (event.kind) {
      case Event::Kind::kArrival:
        active.push_back(event.job_index);
        arrived[event.job_index] = 1;
        // Admission gates only eligible jobs (arrived AND parent-free);
        // parent-blocked jobs admit from the parent-finish path.
        if (job.unfinished_parents == 0) {
          try_admit(event.job_index, event.time);
        }
        break;
      case Event::Kind::kWake:
        break;  // only here to re-enter the grant loop after a backoff
      case Event::Kind::kNodeLoss: {
        ++result.failures.node_losses;
        // One node's worth of running slots dies. Victims are drawn from
        // active jobs in arrival order (deterministic); the kill is
        // charged when the affected wave completes, matching Hadoop's
        // heartbeat-timeout detection of lost TaskTrackers.
        int64_t map_quota = options.cluster.map_slots_per_node;
        int64_t reduce_quota = options.cluster.reduce_slots_per_node;
        for (size_t index : active) {
          SimJob& victim = jobs[index];
          if (map_quota > 0) {
            int64_t take = std::min(
                map_quota, victim.maps_running() - victim.kill_pending_maps);
            if (take > 0) {
              victim.kill_pending_maps += take;
              map_quota -= take;
            }
          }
          if (reduce_quota > 0) {
            int64_t take = std::min(reduce_quota,
                                    victim.reduces_running() -
                                        victim.kill_pending_reduces);
            if (take > 0) {
              victim.kill_pending_reduces += take;
              reduce_quota -= take;
            }
          }
          if (map_quota == 0 && reduce_quota == 0) break;
        }
        // Self-reschedule while the simulation still has work; stop when
        // this was the last event so the loop terminates.
        if (!queue.empty()) {
          queue.push(Event{
              event.time + loss_rng.NextExponential(loss_rate_per_second),
              seq++, Event::Kind::kNodeLoss, 0, TaskKind::kMap, 0, 1, 0.0});
        }
        break;
      }
      case Event::Kind::kTasksFailed: {
        if (event.task_kind == TaskKind::kMap) {
          job.maps_launched -= event.count;
          free_map_slots += event.count;
          if (!job.is_small) context.large_running_maps -= event.count;
          // Tasks that died on their own also satisfy any pending
          // node-loss kill (they no longer exist to be killed later).
          job.kill_pending_maps =
              std::max<int64_t>(0, job.kill_pending_maps - event.count);
        } else {
          job.reduces_launched -= event.count;
          free_reduce_slots += event.count;
          if (!job.is_small) context.large_running_reduces -= event.count;
          job.kill_pending_reduces =
              std::max<int64_t>(0, job.kill_pending_reduces - event.count);
        }
        result.failures.task_failures += event.count;
        result.failures.failed_task_seconds +=
            static_cast<double>(event.count) * event.unit_seconds;
        context.failed_attempts += event.count;
        handle_attempt_failure(event.job_index, event.task_kind,
                               event.attempt, event.count, event.time);
        break;
      }
      case Event::Kind::kTasksDone: {
        int64_t killed = 0;
        if (event.task_kind == TaskKind::kMap) {
          if (job.kill_pending_maps > 0) {
            killed = std::min(event.count, job.kill_pending_maps);
            job.kill_pending_maps -= killed;
          }
          job.maps_finished += event.count - killed;
          job.maps_launched -= killed;
          free_map_slots += event.count;
          if (!job.is_small) context.large_running_maps -= event.count;
        } else {
          if (job.kill_pending_reduces > 0) {
            killed = std::min(event.count, job.kill_pending_reduces);
            job.kill_pending_reduces -= killed;
          }
          job.reduces_finished += event.count - killed;
          job.reduces_launched -= killed;
          free_reduce_slots += event.count;
          if (!job.is_small) context.large_running_reduces -= event.count;
        }
        if (killed > 0) {
          result.failures.tasks_lost_to_nodes += killed;
          result.failures.failed_task_seconds +=
              static_cast<double>(killed) * event.unit_seconds;
          context.failed_attempts += killed;
          handle_attempt_failure(event.job_index, event.task_kind,
                                 event.attempt, killed, event.time);
        }
        if (!job.failed && job.Finished() && job.finish_time < 0.0) {
          job.finish_time = event.time;
          last_finish = std::max(last_finish, event.time);
          active.erase(
              std::find(active.begin(), active.end(), event.job_index));
          for (size_t child : children[event.job_index]) {
            --jobs[child].unfinished_parents;
            if (jobs[child].unfinished_parents == 0 && arrived[child] != 0) {
              try_admit(child, event.time);
            }
          }
          // Token release after the children admit: a same-tenant child
          // may park here and be popped by this release, preserving the
          // per-tenant FIFO order (mirrors the calendar engine).
          release_admission(event.job_index, event.time);
          account_sla(job, /*killed=*/false);
          JobOutcome outcome;
          outcome.job_id = job.record->job_id;
          outcome.submit_time = job.submit_time;
          outcome.latency = job.finish_time - job.submit_time;
          outcome.ideal_latency = job.IdealLatency();
          outcome.is_small = job.is_small;
          outcome.retries = job.retries;
          outcome.deadline = job.deadline;
          outcome.missed_sla =
              job.deadline >= 0.0 && job.finish_time > job.deadline;
          outcome.tenant = job.tenant_id;
          outcome.preempted_tasks = job.preempted_tasks;
          outcome.admission_delay = job.admission_wait;
          result.outcomes.push_back(outcome);
        }
        break;
      }
    }
    schedule_loop(event.time);
  }

  for (const SimJob& job : jobs) {
    if (job.finish_time < 0.0) ++result.unfinished_jobs;
  }
  result.makespan = std::max(0.0, last_finish - first_submit);
  result.hourly_occupancy.reserve(occupancy_slot_seconds.size());
  for (double slot_seconds : occupancy_slot_seconds) {
    result.hourly_occupancy.push_back(slot_seconds / 3600.0);
  }
  double capacity =
      static_cast<double>(total_map_slots + total_reduce_slots) *
      std::max(result.makespan, 1.0);
  result.utilization = meter.busy_slot_seconds() / capacity;
  return result;
}

}  // namespace swim::sim

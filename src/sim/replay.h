#ifndef SWIM_SIM_REPLAY_H_
#define SWIM_SIM_REPLAY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/statusor.h"
#include "sim/scheduler.h"
#include "stats/descriptive.h"
#include "trace/trace.h"

namespace swim::sim {

/// Hadoop 1.x-style slot cluster (the paper's trace era): each node offers
/// fixed map and reduce slots; the TaskTracker heartbeat / JobTracker
/// assignment loop is abstracted into instantaneous slot grants.
struct ClusterConfig {
  int nodes = 100;
  int map_slots_per_node = 8;
  int reduce_slots_per_node = 4;

  int total_map_slots() const { return nodes * map_slots_per_node; }
  int total_reduce_slots() const { return nodes * reduce_slots_per_node; }
};

/// Seeded failure model (section 6.2: the paper's replay findings hinge on
/// how fault tolerance interacts with small single-wave jobs). Disabled by
/// default; when both knobs are zero the engine never consults the failure
/// RNG streams, so replay output is bit-identical to a build without the
/// model. Deterministic in (trace, options) like everything else here.
struct FailureOptions {
  /// Independent probability that a launched task attempt dies partway
  /// through. Failed attempts waste failure_point of their duration in
  /// occupied slot-seconds, then re-execute after a backoff.
  double task_failure_probability = 0.0;
  /// Fraction of the attempt duration a failing task runs before dying.
  double failure_point = 0.5;
  /// Poisson rate of whole-node losses per simulated hour, cluster-wide.
  /// A loss kills up to one node's worth of running map and reduce slots;
  /// the kills are charged when the affected wave would have completed
  /// (lost TaskTrackers are detected by heartbeat timeout in Hadoop, not
  /// instantly), wasting the full attempt duration.
  double node_loss_per_hour = 0.0;
  /// Attempt budget per (job, task kind), initial attempt included —
  /// Hadoop's mapred.map.max.attempts. A batch failing at its final
  /// attempt kills the whole job.
  int max_attempts = 4;
  /// Failed tasks become eligible for re-launch only after
  /// retry_backoff_seconds * failed-attempt-number (linear backoff).
  double retry_backoff_seconds = 10.0;

  bool enabled() const {
    return task_failure_probability > 0.0 || node_loss_per_hour > 0.0;
  }
};

/// SLA tier (ROADMAP open item 3): deadlines, elephant preemption, and
/// per-tenant admission control. All knobs default off/neutral; with the
/// defaults the engine's event flow is unchanged.
struct SlaOptions {
  /// Per-class deadline multipliers: job deadline = submit time +
  /// IdealLatency() x (small ? small_multiplier : large_multiplier).
  /// Deadlines feed DeadlineScheduler and the SLA-miss accounting in
  /// SlaStats; both multipliers are template-captured (they shape the job
  /// skeletons), so sweeping them rebuilds per cell.
  double small_multiplier = 4.0;
  double large_multiplier = 12.0;
  /// Elephant preemption: when an interactive (small) job is runnable and
  /// no slot of the kind is free, the engine may revoke up to this many
  /// running tasks per run from the largest (most remaining work) large
  /// job and hand the slots to the interactive job. Revoked work re-joins
  /// the unlaunched pool via the relaunch-debt machinery (counted in
  /// FailureStats::retries at re-launch). 0 disables preemption.
  /// Calendar-queue engine only; ReplayTraceLegacy rejects budgets > 0.
  int64_t preemption_budget = 0;
  /// Per-tenant admission control: tenants > 0 assigns each job to tenant
  /// job_id % tenants and caps concurrently admitted (running or queued-
  /// for-slots) jobs per tenant at tenant_max_running. Over-cap jobs park
  /// in per-tenant FIFO queues and are admitted as earlier jobs of the
  /// tenant finish. 0 disables admission control.
  int tenants = 0;
  int tenant_max_running = 8;

  bool preemption_enabled() const { return preemption_budget > 0; }
  bool admission_enabled() const { return tenants > 0; }
};

struct ReplayOptions {
  ClusterConfig cluster;
  /// "fifo", "fair", "two-tier", "srpt", or "deadline" (see
  /// ValidSchedulerPolicies(); unknown names are a hard error).
  std::string scheduler = "fifo";
  /// Tasks per job are capped by merging (durations scale up) so that
  /// replaying month-long production traces stays tractable; occupancy in
  /// slot-seconds is preserved exactly.
  int64_t max_tasks_per_job = 2000;
  /// Straggler injection: each task independently runs `straggler_factor`x
  /// longer with this probability (section 6.2 discusses why stragglers
  /// interact badly with single-wave small jobs).
  double straggler_probability = 0.0;
  double straggler_factor = 5.0;
  /// Hadoop-style speculative execution: when a job has at least two
  /// tasks of a kind, a straggling task is detected by comparison with
  /// its siblings and a backup launched once they finish, capping the
  /// straggler's effective duration at ~2x normal. Jobs with a single
  /// task of a kind get NO protection - the paper's section 6.2 point
  /// that "if the only task of a job runs slowly, it becomes impossible
  /// to tell whether the task is inherently slow, or abnormally slow".
  bool speculative_execution = false;
  uint64_t seed = 19;
  /// Jobs with < this much total data count as "small" (interactive tier).
  double small_job_bytes = 10e9;
  /// Workflow dependencies: job_id -> prerequisite job_ids (earlier stages
  /// of the same Hive query or Oozie workflow). A job becomes runnable
  /// only after its submit time AND all parents finished. Unknown job ids
  /// are rejected; dependency cycles stall their jobs (reported via
  /// ReplayResult::unfinished_jobs rather than hanging).
  FlatHashMap<uint64_t, std::vector<uint64_t>> dependencies;
  /// Task/node failure injection; see FailureOptions.
  FailureOptions failures;
  /// SLA tier: deadlines, preemption, admission control; see SlaOptions.
  SlaOptions sla;
};

/// Outcome of one replayed job.
struct JobOutcome {
  uint64_t job_id = 0;
  double submit_time = 0.0;
  /// Queueing + execution time in the simulated cluster.
  double latency = 0.0;
  /// One-wave lower bound (unlimited slots).
  double ideal_latency = 0.0;
  bool is_small = false;
  /// Task re-executions this job needed (0 without failure injection).
  int64_t retries = 0;
  /// Absolute SLA deadline carried by the job (< 0 = none).
  double deadline = -1.0;
  /// Finished after its deadline (always false for deadline < 0).
  bool missed_sla = false;
  /// Owning tenant under admission control (0 when disabled).
  int tenant = 0;
  /// Running tasks revoked from this job by elephant preemption.
  int64_t preempted_tasks = 0;
  /// Seconds the job spent parked by per-tenant admission control.
  double admission_delay = 0.0;

  /// Stretch = latency / ideal latency. Convention for degenerate
  /// zero-work jobs (ideal_latency == 0): any positive latency is pure
  /// queueing delay with no lower bound to normalize by, so the stretch is
  /// reported as +infinity rather than the old masking 1.0; a zero-work
  /// job with zero latency is 1.0 (it was never delayed). Engine-produced
  /// outcomes always carry ideal_latency >= the 1e-3 s duration floor, so
  /// MeanSlowdown over replay output stays finite.
  double Slowdown() const {
    if (ideal_latency > 0.0) return latency / ideal_latency;
    return latency > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
};

/// Accounting block for injected failures; all-zero when disabled.
struct FailureStats {
  /// Task attempts that died from per-task probability failures.
  int64_t task_failures = 0;
  /// Whole-node loss events applied.
  int64_t node_losses = 0;
  /// Task attempts killed by node losses.
  int64_t tasks_lost_to_nodes = 0;
  /// Re-executed task attempts launched (attempt number > 1).
  int64_t retries = 0;
  /// Jobs killed after a task batch exhausted max_attempts.
  int64_t failed_jobs = 0;
  /// Slot-seconds burned by attempts that did not complete.
  double failed_task_seconds = 0.0;
};

/// Per-tenant admission-control accounting (SlaStats::tenants; empty when
/// admission control is disabled).
struct TenantStats {
  int tenant = 0;
  /// Jobs of this tenant that finished (or were killed) after admission.
  int64_t jobs = 0;
  /// Jobs that had to park at least once waiting for a tenant token.
  int64_t parked_jobs = 0;
  /// Total seconds of admission queueing across the tenant's jobs.
  double total_admission_delay = 0.0;
  /// Largest single-job admission delay.
  double max_admission_delay = 0.0;
};

/// SLA-tier accounting block on ReplayResult; all-zero / empty when the
/// SLA knobs are at their defaults except deadlines, which are always
/// assigned (multipliers default on) and scored against finish times.
struct SlaStats {
  /// Finished jobs that carried a deadline, per class.
  int64_t small_jobs_with_deadline = 0;
  int64_t large_jobs_with_deadline = 0;
  /// Finished jobs whose finish_time exceeded their deadline, per class.
  /// Jobs killed by failure injection count as misses (they carried a
  /// deadline and will never meet it).
  int64_t small_misses = 0;
  int64_t large_misses = 0;
  /// Elephant preemption: revocation rounds the engine ran, and running
  /// tasks revoked in total (also distributed per job via
  /// JobOutcome::preempted_tasks).
  int64_t preemption_rounds = 0;
  int64_t preempted_tasks = 0;
  /// Admission control: jobs that parked at least once, and total parked
  /// seconds across all jobs.
  int64_t admission_parked_jobs = 0;
  double total_admission_delay = 0.0;
  /// Per-tenant breakdown, indexed 0..tenants-1 (empty when disabled).
  std::vector<TenantStats> tenants;

  double MissFraction(bool small_jobs) const {
    int64_t total = small_jobs ? small_jobs_with_deadline
                               : large_jobs_with_deadline;
    int64_t missed = small_jobs ? small_misses : large_misses;
    return total > 0 ? static_cast<double>(missed) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

struct ReplayResult {
  std::string scheduler;
  std::vector<JobOutcome> outcomes;
  /// Jobs that never finished: unsatisfiable dependencies, or killed by
  /// failure injection (the latter also counted in failures.failed_jobs).
  size_t unfinished_jobs = 0;
  /// Failure-injection accounting (all zero when injection is disabled).
  FailureStats failures;
  /// SLA-tier accounting: per-class deadline misses, preemption and
  /// admission counters; see SlaStats.
  SlaStats sla;
  /// Average occupied slots (map + reduce) per hour of simulated time -
  /// the paper's Figure 7 fourth column ("utilization in average active
  /// slots").
  std::vector<double> hourly_occupancy;
  double makespan = 0.0;
  /// Busy slot-seconds / (total slots x makespan).
  double utilization = 0.0;

  /// Sort-once latency view over small or large jobs: filter + sort the
  /// outcomes once, then read any number of quantiles/moments in O(1).
  /// Callers reporting several percentiles (p50/p90/p99 rows) must use
  /// this instead of repeated LatencyQuantile calls.
  stats::SortedStats LatencyStats(bool small_jobs) const;

  /// One-off latency quantile over small or large jobs (p in [0,1]).
  /// Filters and sorts per call; use LatencyStats for more than one read.
  double LatencyQuantile(bool small_jobs, double p) const;
  double MeanSlowdown(bool small_jobs) const;
  size_t CountJobs(bool small_jobs) const;
};

/// The per-trace build product of a replay, computed once and shared
/// immutably across every configuration of a sweep: SimJob skeletons
/// (task counts, durations, small/large classification), the workflow
/// dependency graph in CSR form, and the resolved job index. Splitting
/// this off ReplayTrace turns an N-configuration sweep's trace -> jobs
/// conversion from N passes into one.
///
/// Build() captures the option fields the skeletons depend on
/// (max_tasks_per_job, small_job_bytes, dependencies, and the SLA
/// deadline shape: sla.small_multiplier / sla.large_multiplier /
/// sla.tenants); Replay() rejects options that disagree with them — the
/// sweep axes (scheduler, cluster size, seed, stragglers, failure model,
/// sla.preemption_budget, sla.tenant_max_running) are all per-run. The template
/// holds pointers into `trace`, which must outlive it. Thread-safe for
/// concurrent Replay() calls: a run never writes template state.
class ReplayTemplate {
 public:
  static StatusOr<ReplayTemplate> Build(const trace::Trace& trace,
                                        const ReplayOptions& base = {});

  /// One configuration run against the shared skeletons, bit-identical
  /// to ReplayTrace(trace, options) for compatible options. `arena`,
  /// when non-null, backs every per-run container (job table, runnable
  /// lists, event-queue buckets, ...); between runs the owning lane
  /// calls arena->Reset() and the next run re-carves the same blocks, so
  /// a warm lane replays a configuration with ~zero heap mallocs. The
  /// returned ReplayResult owns ordinary heap memory and outlives any
  /// arena reset.
  StatusOr<ReplayResult> Replay(const ReplayOptions& options,
                                Arena* arena = nullptr) const;

  /// True iff `options` agrees with the captured template-relevant
  /// fields (max_tasks_per_job, small_job_bytes, dependencies, SLA
  /// deadline multipliers and tenant count).
  bool Compatible(const ReplayOptions& options) const;

  size_t job_count() const { return jobs_.size(); }

  // --- Engine-facing accessors (read-only shared state) ---------------
  const std::vector<SimJob>& jobs() const { return jobs_; }
  /// Dependency children in CSR form; both empty when no dependencies.
  /// Children of job i are child_index()[child_offsets()[i] ..
  /// child_offsets()[i+1]).
  const std::vector<uint32_t>& child_offsets() const {
    return child_offsets_;
  }
  const std::vector<uint32_t>& child_index() const { return child_index_; }
  double first_submit() const { return first_submit_; }

 private:
  ReplayTemplate() = default;

  std::vector<SimJob> jobs_;  // initial-state skeletons, records -> trace
  std::vector<uint32_t> child_offsets_;
  std::vector<uint32_t> child_index_;
  double first_submit_ = 0.0;

  // Captured template-relevant options (Compatible()).
  int64_t max_tasks_per_job_ = 0;
  double small_job_bytes_ = 0.0;
  double sla_small_multiplier_ = 0.0;
  double sla_large_multiplier_ = 0.0;
  int sla_tenants_ = 0;
  FlatHashMap<uint64_t, std::vector<uint64_t>> dependencies_;
};

/// Replays a trace through the discrete-event cluster simulator: jobs
/// arrive at their submit times, tasks occupy slots under the chosen
/// scheduling policy, reduces start when the map stage completes.
/// Deterministic in (trace, options). Equivalent to
/// ReplayTemplate::Build + Replay; sweeps replaying one trace under many
/// configurations should build the template once instead.
StatusOr<ReplayResult> ReplayTrace(const trace::Trace& trace,
                                   const ReplayOptions& options = {});

/// The engine ReplayTrace shipped with before the calendar-queue rebuild
/// (replay_legacy.cc), kept verbatim as the golden oracle: a
/// std::priority_queue event loop with per-grant runnable scans and
/// hour-by-hour occupancy stepping. Semantics are frozen - tests replay
/// traces through both engines and require bit-identical ReplayResults.
/// Building with -DSWIM_REPLAY_LEGACY=ON routes ReplayTrace here.
StatusOr<ReplayResult> ReplayTraceLegacy(const trace::Trace& trace,
                                         const ReplayOptions& options = {});

}  // namespace swim::sim

#endif  // SWIM_SIM_REPLAY_H_

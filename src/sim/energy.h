#ifndef SWIM_SIM_ENERGY_H_
#define SWIM_SIM_ENERGY_H_

#include "common/statusor.h"
#include "sim/replay.h"

namespace swim::sim {

/// Simple node power model: a node draws `idle_watts` when on and ramps
/// linearly to `busy_watts` at full slot occupancy.
struct EnergyModel {
  double idle_watts = 150.0;
  double busy_watts = 300.0;
};

/// Energy accounting over a replay's hourly occupancy - quantifying the
/// paper's section 5.2 observation that bursty, low-median load means
/// "mechanisms for conserving energy will be beneficial during periods of
/// low utilization" (the Sierra / MapReduce-energy line of work it cites).
struct EnergyReport {
  /// kWh with every node powered the whole time (the Hadoop default;
  /// HDFS replication pins nodes on).
  double always_on_kwh = 0.0;
  /// kWh with an ideal power-proportional cluster: each hour only the
  /// nodes needed for that hour's occupancy draw power (at busy watts),
  /// everything else is off.
  double power_proportional_kwh = 0.0;
  /// 1 - proportional/always_on.
  double savings_fraction = 0.0;
  /// Mean fraction of slots occupied across the replayed span.
  double mean_occupancy = 0.0;
};

/// Estimates both energy figures from a replay result. Fails when the
/// replay produced no occupancy data.
StatusOr<EnergyReport> EstimateEnergy(const ReplayResult& replay,
                                      const ClusterConfig& cluster,
                                      const EnergyModel& model = {});

}  // namespace swim::sim

#endif  // SWIM_SIM_ENERGY_H_

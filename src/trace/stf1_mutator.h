#ifndef SWIM_TRACE_STF1_MUTATOR_H_
#define SWIM_TRACE_STF1_MUTATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace swim::trace {

/// Deterministic STF1 corruption engine — the binary sibling of CsvMutator.
/// Shared by the gtest fuzzer (tests/columnar_test.cc) and the CI corpus
/// driver (bench/bench_fuzz_ingest.cc) so a failing iteration reproduces
/// from (seed, iteration) alone.
///
/// Mutations model real binary-file damage: truncated uploads, bit rot,
/// zeroed pages from a torn write, spliced regions from a bad copy, junk
/// appended past the footer — plus format-aware strikes at the header and
/// section table (the regions whose validation the reader must never trust
/// blindly): magic/version/job-count/offset perturbations and targeted
/// section-entry damage.
class Stf1Mutator {
 public:
  explicit Stf1Mutator(uint64_t seed) : seed_(seed) {}

  /// Returns a corrupted copy of `stf1`. Deterministic in (seed,
  /// iteration) and independent of call order. Applies 1-4 mutations.
  std::string Mutate(std::string_view stf1, uint64_t iteration) const;

 private:
  uint64_t seed_;
};

}  // namespace swim::trace

#endif  // SWIM_TRACE_STF1_MUTATOR_H_

#include "trace/summary.h"

#include <cstdio>
#include <sstream>

#include "common/units.h"
#include "stats/descriptive.h"

namespace swim::trace {

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  summary.name = trace.metadata().name;
  summary.machines = trace.metadata().machines;
  summary.year = trace.metadata().year;
  summary.span_seconds = trace.Span();
  summary.jobs = trace.size();
  std::vector<double> durations;
  durations.reserve(trace.size());
  for (const auto& job : trace.jobs()) {
    summary.bytes_moved += job.TotalBytes();
    if (job.IsMapOnly()) ++summary.map_only_jobs;
    durations.push_back(job.duration);
  }
  summary.median_duration = stats::SortedStats(std::move(durations)).Median();
  return summary;
}

std::string FormatSummaryTable(const std::vector<TraceSummary>& rows) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %9s %10s %6s %10s %12s\n",
                "Trace", "Machines", "Length", "Year", "Jobs", "BytesMoved");
  os << line;
  size_t total_jobs = 0;
  double total_bytes = 0.0;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-10s %9d %10s %6d %10s %12s\n",
                  row.name.c_str(), row.machines,
                  FormatDuration(row.span_seconds).c_str(), row.year,
                  FormatCount(row.jobs).c_str(),
                  FormatBytes(row.bytes_moved).c_str());
    os << line;
    total_jobs += row.jobs;
    total_bytes += row.bytes_moved;
  }
  std::snprintf(line, sizeof(line), "%-10s %9s %10s %6s %10s %12s\n", "Total",
                "-", "-", "-", FormatCount(total_jobs).c_str(),
                FormatBytes(total_bytes).c_str());
  os << line;
  return os.str();
}

}  // namespace swim::trace

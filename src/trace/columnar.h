#ifndef SWIM_TRACE_COLUMNAR_H_
#define SWIM_TRACE_COLUMNAR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/span.h"
#include "common/statusor.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim::trace {

// ---------------------------------------------------------------------------
// STF1 — the swim binary columnar trace format.
//
// A trace snapshot laid out for mmap: a fixed 64-byte little-endian header,
// a section table, then one 64-byte-aligned payload per section — ten
// numeric job columns, three uint32 dictionary-id columns, and the interned
// path/name dictionaries persisted as offsets + blob. Numeric columns map
// directly into Span<const T> views with zero copy, so opening a trace is
// O(pages touched) instead of O(bytes parsed): the CSV parse tax (field
// split + strtod per row) is paid once at conversion time, never per run.
// Every section carries an XXH64 checksum; see DESIGN.md "Columnar trace
// format" for the layout diagram and verification ladder.
// ---------------------------------------------------------------------------

/// "STF1" in little-endian byte order.
inline constexpr uint32_t kStf1Magic = 0x31465453u;
inline constexpr uint32_t kStf1Version = 1;
/// Every section payload (and the section table) starts on this boundary,
/// so mmap'd column pointers satisfy any scalar (and cache-line) alignment.
inline constexpr size_t kStf1Alignment = 64;

/// Section payloads, in file order. v1 writes exactly these, always.
enum class Stf1SectionKind : uint32_t {
  kJobId = 0,          // uint64 per job
  kSubmitTime,         // double per job
  kDuration,           // double per job
  kInputBytes,         // double per job
  kShuffleBytes,       // double per job
  kOutputBytes,        // double per job
  kMapTasks,           // int64 per job
  kReduceTasks,        // int64 per job
  kMapTaskSeconds,     // double per job
  kReduceTaskSeconds,  // double per job
  kNameIds,            // uint32 per job (kNoStringId when absent)
  kInputPathIds,       // uint32 per job
  kOutputPathIds,      // uint32 per job
  kNameDictOffsets,    // uint64 x (name_count + 1), offsets into the blob
  kNameDictBlob,       // concatenated name bytes, id order
  kPathDictOffsets,    // uint64 x (path_count + 1)
  kPathDictBlob,       // concatenated path bytes, id order
  kTraceName,          // metadata.name bytes
};
inline constexpr size_t kStf1SectionCount = 18;
const char* Stf1SectionKindName(Stf1SectionKind kind);

/// The fixed header at file offset 0. header_checksum covers the preceding
/// 56 bytes; table_checksum covers the section table, whose entries in turn
/// carry per-payload checksums — so validation forms a chain from one
/// 8-byte root to every payload byte.
struct Stf1Header {
  uint32_t magic = kStf1Magic;
  uint32_t version = kStf1Version;
  uint64_t job_count = 0;
  uint32_t section_count = kStf1SectionCount;
  uint32_t flags = 0;  // bit0 has_names, bit1 has_input_paths, bit2 has_output_paths
  int32_t machines = 0;
  int32_t year = 0;
  uint64_t table_offset = 0;
  uint64_t table_bytes = 0;
  uint64_t table_checksum = 0;
  uint64_t header_checksum = 0;
};
static_assert(sizeof(Stf1Header) == 64, "STF1 header must be 64 bytes");

/// One section-table entry.
struct Stf1Section {
  uint32_t kind = 0;
  uint32_t element_size = 0;  // 1, 4, or 8
  uint64_t offset = 0;        // from file start; kStf1Alignment-aligned
  uint64_t bytes = 0;         // payload bytes (excludes alignment padding)
  uint64_t checksum = 0;      // Checksum64 of the payload
};
static_assert(sizeof(Stf1Section) == 32, "STF1 section entry must be 32 bytes");

struct ColumnarOptions {
  /// Use mmap when the platform has it; false forces the read() fallback
  /// (identical results, used by tests and non-POSIX builds).
  bool allow_mmap = true;
  /// Verify every data-section checksum before materializing a Trace
  /// (one streaming pass at memory bandwidth). Opening a view never pays
  /// this; it validates only the header / table / dictionary structure.
  bool verify_checksums = true;
  /// Worker lanes for materialization; 0 = DefaultParallelism().
  int threads = 0;
};

/// A zero-copy window onto an STF1 file. Open() validates the header,
/// section table, and dictionary structure (O(header + dictionaries), not
/// O(file)); numeric columns are exposed as Spans straight into the mapping
/// and fault in lazily as they are touched. The view owns the mapping:
/// Spans and string_views obtained from it are valid only while it lives.
class ColumnarTraceView {
 public:
  ColumnarTraceView() = default;
  ~ColumnarTraceView();
  ColumnarTraceView(ColumnarTraceView&& other) noexcept;
  ColumnarTraceView& operator=(ColumnarTraceView&& other) noexcept;
  ColumnarTraceView(const ColumnarTraceView&) = delete;
  ColumnarTraceView& operator=(const ColumnarTraceView&) = delete;

  /// Maps (or, without mmap support / allow_mmap, reads) `path` and
  /// validates its structure. Corruption of any validated region yields a
  /// structured error, never a crash.
  static StatusOr<ColumnarTraceView> Open(const std::string& path,
                                          const ColumnarOptions& options = {});

  /// Builds a view over an in-memory encoding (copied to an aligned
  /// buffer). The fuzzer's entry point: no file round-trip per iteration.
  static StatusOr<ColumnarTraceView> FromBytes(std::string_view bytes);

  const TraceMetadata& metadata() const { return metadata_; }
  size_t job_count() const { return job_count_; }
  /// True when backed by an actual mmap (false on the read() fallback).
  bool mapped() const { return mapped_; }
  size_t file_bytes() const { return size_; }

  // Numeric job columns — Spans directly into the mapping, length
  // job_count(). No bytes are copied or faulted until an element is read.
  Span<const uint64_t> job_ids() const;
  Span<const double> submit_times() const;
  Span<const double> durations() const;
  Span<const double> input_bytes() const;
  Span<const double> shuffle_bytes() const;
  Span<const double> output_bytes() const;
  Span<const int64_t> map_tasks() const;
  Span<const int64_t> reduce_tasks() const;
  Span<const double> map_task_seconds() const;
  Span<const double> reduce_task_seconds() const;

  // Dictionary-id columns (kNoStringId marks "field absent").
  Span<const uint32_t> name_ids() const;
  Span<const uint32_t> input_path_ids() const;
  Span<const uint32_t> output_path_ids() const;

  /// Distinct interned strings in each dictionary.
  size_t name_count() const { return name_count_; }
  size_t path_count() const { return path_count_; }
  /// Dictionary lookup; requires id < the respective count.
  std::string_view NameAt(uint32_t id) const;
  std::string_view PathAt(uint32_t id) const;

  /// Verifies every section checksum (one pass over the whole file).
  Status VerifyChecksums() const;

  /// Builds a full Trace: materializes rows (rejecting non-finite values,
  /// invalid records, and out-of-range dictionary ids) and, when the
  /// persisted dictionaries are in canonical first-appearance order (always
  /// true for files we wrote), adopts the id columns so the Trace's lazy
  /// indexes are pre-built. Does NOT verify checksums; call
  /// VerifyChecksums() first or use LoadTraceColumnar.
  StatusOr<Trace> Materialize(int max_parallelism = 0) const;

 private:
  struct AlignedFree {
    void operator()(unsigned char* p) const;
  };

  Status Init();
  const unsigned char* SectionData(Stf1SectionKind kind) const {
    return sections_[static_cast<size_t>(kind)];
  }
  size_t SectionBytes(Stf1SectionKind kind) const {
    return section_bytes_[static_cast<size_t>(kind)];
  }

  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<unsigned char[], AlignedFree> owned_;

  TraceMetadata metadata_;
  size_t job_count_ = 0;
  size_t name_count_ = 0;
  size_t path_count_ = 0;
  std::array<const unsigned char*, kStf1SectionCount> sections_{};
  std::array<size_t, kStf1SectionCount> section_bytes_{};
  std::array<uint64_t, kStf1SectionCount> section_checksums_{};
};

/// Serializes `trace` to the STF1 byte layout (the id columns and
/// dictionaries come from the trace's interned indexes, building them if
/// needed).
std::string TraceToColumnarBytes(const Trace& trace);

/// Decodes an in-memory STF1 image: structural validation, checksum
/// verification (per `options`), materialization.
StatusOr<Trace> TraceFromColumnarBytes(std::string_view bytes,
                                       const ColumnarOptions& options = {});

/// Writes `trace` to `path` in STF1: one buffered write of the full
/// encoding, then a single fsync, so a crash leaves either the old file or
/// a complete new one (never a torn header over valid columns).
Status WriteTraceColumnar(const Trace& trace, const std::string& path);

/// Opens and materializes an STF1 file: mmap fast path (read() fallback),
/// checksum verification per `options`, parallel row materialization with
/// pre-built id indexes.
StatusOr<Trace> LoadTraceColumnar(const std::string& path,
                                  const ColumnarOptions& options = {});

// ---------------------------------------------------------------------------
// Format auto-sniffing — every tool accepts either format transparently.
// ---------------------------------------------------------------------------

enum class TraceFormat { kCsv, kStf1 };
const char* TraceFormatName(TraceFormat format);

/// Reads the first bytes of `path`: STF1 magic selects kStf1, anything else
/// is presumed CSV and left to the CSV parser's diagnostics. A zero-length
/// file is neither and yields InvalidArgumentError; IoError when the file
/// cannot be opened.
StatusOr<TraceFormat> SniffTraceFormat(const std::string& path);

/// Loads a trace in whichever format `path` holds. CSV honors
/// `parse_options`/`report` exactly as ReadTraceCsv; STF1 ignores the parse
/// mode (the format is checksummed, not repaired), fills `report` with a
/// clean summary, and returns a trace with warm id indexes.
StatusOr<Trace> ReadTraceAuto(const std::string& path,
                              const ParseOptions& parse_options = {},
                              ParseReport* report = nullptr,
                              const ColumnarOptions& columnar_options = {});

/// True when `path`'s extension selects STF1 output (.stf / .stf1).
bool HasColumnarExtension(std::string_view path);

/// Writes CSV or STF1 by extension (HasColumnarExtension).
Status WriteTraceAuto(const Trace& trace, const std::string& path);

}  // namespace swim::trace

#endif  // SWIM_TRACE_COLUMNAR_H_

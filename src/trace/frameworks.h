#ifndef SWIM_TRACE_FRAMEWORKS_H_
#define SWIM_TRACE_FRAMEWORKS_H_

#include <string>
#include <string_view>

namespace swim::trace {

/// Programming frameworks on top of MapReduce that the paper attributes job
/// names to (section 6.1 / Figure 10).
enum class Framework {
  kHive = 0,
  kPig = 1,
  kOozie = 2,
  kNative = 3,  // hand-written MapReduce and everything unrecognized
};

inline constexpr int kFrameworkCount = 4;

std::string_view FrameworkName(Framework framework);

/// Maps the first word of a job name to a framework, reproducing the
/// attribution in Figure 10: Hive generates "insert"/"select"/"from" (query
/// text prefixes), Pig generates "piglatin", Oozie generates "oozie"
/// launchers; well-known warehouse job prefixes (etl/edw/...) are Hive-side
/// migrations; everything else counts as native MapReduce.
Framework ClassifyFramework(std::string_view first_word);

}  // namespace swim::trace

#endif  // SWIM_TRACE_FRAMEWORKS_H_

#include "trace/csv_mutator.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace swim::trace {
namespace {

/// Offsets of line starts in `text` (always includes 0 for non-empty text).
std::vector<size_t> LineStarts(const std::string& text) {
  std::vector<size_t> starts;
  if (text.empty()) return starts;
  starts.push_back(0);
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

size_t LineEnd(const std::string& text, size_t start) {
  size_t end = text.find('\n', start);
  return end == std::string::npos ? text.size() : end + 1;
}

/// Numbers that stress ParseDouble edge cases: overflow (1e999 -> ERANGE),
/// non-finite spellings strtod accepts, subnormals, and plain junk.
constexpr const char* kHostileNumbers[] = {
    "1e999",  "-1e999", "inf",   "-inf",  "nan",     "1e-320",
    "-1e308", "1.8e308", "0x1p3", "1,5",  "9" /*prefix splice*/,
    "99999999999999999999999999999999999",
};

}  // namespace

std::string CsvMutator::Mutate(std::string_view csv, uint64_t iteration) const {
  // A fresh generator per iteration, decorrelated via a splitmix-style
  // multiply, keeps iterations independent of call order.
  Pcg32 rng(seed_ + 0x9e3779b97f4a7c15ULL * (iteration + 1),
            /*stream=*/0xc57);
  std::string out(csv);
  const int mutation_count = 1 + static_cast<int>(rng.NextBounded(4));
  for (int m = 0; m < mutation_count; ++m) {
    if (out.empty()) break;
    switch (rng.NextBounded(10)) {
      case 0:  // Truncate: interrupted download / partial flush.
        out.resize(rng.NextBounded(out.size() + 1));
        break;
      case 1: {  // Flip bytes: bit rot.
        const uint64_t flips = 1 + rng.NextBounded(8);
        for (uint64_t f = 0; f < flips && !out.empty(); ++f) {
          out[rng.NextBounded(out.size())] ^=
              static_cast<char>(1 + rng.NextBounded(255));
        }
        break;
      }
      case 2:  // Inject a stray quote (often unbalances a field).
        out.insert(rng.NextBounded(out.size() + 1), 1, '"');
        break;
      case 3:  // Drop a byte (deletes commas, quotes, digits, newlines).
        out.erase(rng.NextBounded(out.size()), 1);
        break;
      case 4: {  // Splice one region over another: torn rewrite.
        const size_t src = rng.NextBounded(out.size());
        const size_t len =
            std::min<size_t>(1 + rng.NextBounded(64), out.size() - src);
        out.insert(rng.NextBounded(out.size() + 1), out, src, len);
        break;
      }
      case 5: {  // Hostile number dropped mid-stream.
        const size_t pick =
            rng.NextBounded(std::size(kHostileNumbers));
        out.insert(rng.NextBounded(out.size() + 1), kHostileNumbers[pick]);
        break;
      }
      case 6: {  // Duplicate a line: log shipper replay.
        const auto starts = LineStarts(out);
        if (starts.empty()) break;
        const size_t start = starts[rng.NextBounded(starts.size())];
        out.insert(start, out.substr(start, LineEnd(out, start) - start));
        break;
      }
      case 7: {  // Delete a line: log shipper drop.
        const auto starts = LineStarts(out);
        if (starts.empty()) break;
        const size_t start = starts[rng.NextBounded(starts.size())];
        out.erase(start, LineEnd(out, start) - start);
        break;
      }
      case 8: {  // Extra commas: field-count damage.
        const uint64_t commas = 1 + rng.NextBounded(3);
        out.insert(rng.NextBounded(out.size() + 1), commas, ',');
        break;
      }
      case 9: {  // CRLF conversion of one line ending.
        const auto starts = LineStarts(out);
        if (starts.empty()) break;
        const size_t end = LineEnd(out, starts[rng.NextBounded(starts.size())]);
        if (end > 0 && end <= out.size() && out[end - 1] == '\n') {
          out.insert(end - 1, 1, '\r');
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace swim::trace

#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace swim::trace {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  if (!NeedsQuoting(field)) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

/// Splits one CSV line honoring RFC 4180 quoting. Returns false on
/// unbalanced quotes.
bool SplitCsvLine(std::string_view line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  // %.17g round-trips doubles exactly; trim to shortest by trying %g first.
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

Status ParseRow(const std::vector<std::string>& fields, int line_number,
                JobRecord* job) {
  if (fields.size() != 13) {
    return InvalidArgumentError("line " + std::to_string(line_number) +
                                ": expected 13 fields, got " +
                                std::to_string(fields.size()));
  }
  auto fail = [&](const char* what) {
    return InvalidArgumentError("line " + std::to_string(line_number) +
                                ": bad " + std::string(what));
  };
  int64_t id = 0;
  if (!ParseInt64(fields[0], &id) || id < 0) return fail("job_id");
  job->job_id = static_cast<uint64_t>(id);
  job->name = fields[1];
  if (!ParseDouble(fields[2], &job->submit_time)) return fail("submit_time");
  if (!ParseDouble(fields[3], &job->duration)) return fail("duration");
  if (!ParseDouble(fields[4], &job->input_bytes)) return fail("input_bytes");
  if (!ParseDouble(fields[5], &job->shuffle_bytes)) {
    return fail("shuffle_bytes");
  }
  if (!ParseDouble(fields[6], &job->output_bytes)) {
    return fail("output_bytes");
  }
  if (!ParseInt64(fields[7], &job->map_tasks)) return fail("map_tasks");
  if (!ParseInt64(fields[8], &job->reduce_tasks)) return fail("reduce_tasks");
  if (!ParseDouble(fields[9], &job->map_task_seconds)) {
    return fail("map_task_seconds");
  }
  if (!ParseDouble(fields[10], &job->reduce_task_seconds)) {
    return fail("reduce_task_seconds");
  }
  job->input_path = fields[11];
  job->output_path = fields[12];
  std::string violation = ValidateJobRecord(*job);
  if (!violation.empty()) {
    return InvalidArgumentError("line " + std::to_string(line_number) + ": " +
                                violation);
  }
  return Status::Ok();
}

}  // namespace

std::string TraceToCsv(const Trace& trace) {
  std::ostringstream os;
  const TraceMetadata& meta = trace.metadata();
  if (!meta.name.empty()) os << "#name=" << meta.name << "\n";
  if (meta.machines > 0) os << "#machines=" << meta.machines << "\n";
  if (meta.year > 0) os << "#year=" << meta.year << "\n";
  os << kTraceCsvHeader << "\n";
  char buffer[512];
  for (const auto& job : trace.jobs()) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, job.job_id);
    os << buffer << ',' << QuoteField(job.name) << ','
       << FormatDouble(job.submit_time) << ',' << FormatDouble(job.duration)
       << ',' << FormatDouble(job.input_bytes) << ','
       << FormatDouble(job.shuffle_bytes) << ','
       << FormatDouble(job.output_bytes) << ',' << job.map_tasks << ','
       << job.reduce_tasks << ',' << FormatDouble(job.map_task_seconds) << ','
       << FormatDouble(job.reduce_task_seconds) << ','
       << QuoteField(job.input_path) << ',' << QuoteField(job.output_path)
       << "\n";
  }
  return os.str();
}

StatusOr<Trace> TraceFromCsv(const std::string& csv_text) {
  Trace trace;
  std::istringstream is(csv_text);
  std::string line;
  int line_number = 0;
  bool header_seen = false;
  std::vector<std::string> fields;
  std::vector<JobRecord> jobs;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto parts = Split(line.substr(1), '=');
      if (parts.size() == 2) {
        if (parts[0] == "name") {
          trace.mutable_metadata().name = parts[1];
        } else if (parts[0] == "machines") {
          int64_t v = 0;
          if (ParseInt64(parts[1], &v)) {
            trace.mutable_metadata().machines = static_cast<int>(v);
          }
        } else if (parts[0] == "year") {
          int64_t v = 0;
          if (ParseInt64(parts[1], &v)) {
            trace.mutable_metadata().year = static_cast<int>(v);
          }
        }
      }
      continue;
    }
    if (!header_seen) {
      if (line != kTraceCsvHeader) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": unrecognized header");
      }
      header_seen = true;
      continue;
    }
    if (!SplitCsvLine(line, &fields)) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": unbalanced quotes");
    }
    JobRecord job;
    SWIM_RETURN_IF_ERROR(ParseRow(fields, line_number, &job));
    jobs.push_back(std::move(job));
  }
  if (!header_seen) return InvalidArgumentError("missing CSV header");
  trace.SetJobs(std::move(jobs));
  return trace;
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open for writing: " + path);
  out << TraceToCsv(trace);
  out.flush();
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Trace> ReadTraceCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromCsv(buffer.str());
}

}  // namespace swim::trace

#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/string_util.h"

namespace swim::trace {
namespace {

/// Lines per parallel parse shard. Fixed (independent of thread count) so
/// shard boundaries — and therefore job order, merged metadata, and which
/// error is reported first — are identical at any parallelism.
constexpr size_t kShardLines = 4096;

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  if (!NeedsQuoting(field)) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

/// Splits one CSV line honoring RFC 4180 quoting. Returns false on
/// unbalanced quotes. The fast path (no quote character anywhere, i.e.
/// every machine-generated numeric row) splits zero-copy into views of
/// `line`; the quoted path unescapes into `scratch` and the views point
/// into those strings, which stay alive until the next call.
bool SplitCsvLine(std::string_view line,
                  std::vector<std::string_view>* fields,
                  std::vector<std::string>* scratch) {
  fields->clear();
  if (line.find('"') == std::string_view::npos) {
    size_t start = 0;
    for (;;) {
      size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) {
        fields->push_back(line.substr(start));
        return true;
      }
      fields->push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
  }
  scratch->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      scratch->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  scratch->push_back(std::move(current));
  // Build the views only once scratch is fully populated: push_back above
  // may reallocate and move small (SSO) strings, which would dangle.
  fields->reserve(scratch->size());
  for (const std::string& field : *scratch) fields->push_back(field);
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  // Shortest of %.12g / %.15g / %.17g that parses back to exactly the same
  // double; %.17g always round-trips IEEE binary64, so CSV round-trips are
  // bit-exact.
  for (int precision : {12, 15, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

Status ParseRow(const std::vector<std::string_view>& fields, int line_number,
                JobRecord* job) {
  if (fields.size() != 13) {
    return InvalidArgumentError("line " + std::to_string(line_number) +
                                ": expected 13 fields, got " +
                                std::to_string(fields.size()));
  }
  auto fail = [&](const char* what) {
    return InvalidArgumentError("line " + std::to_string(line_number) +
                                ": bad " + std::string(what));
  };
  int64_t id = 0;
  if (!ParseInt64(fields[0], &id) || id < 0) return fail("job_id");
  job->job_id = static_cast<uint64_t>(id);
  job->name = std::string(fields[1]);
  if (!ParseDouble(fields[2], &job->submit_time)) return fail("submit_time");
  if (!ParseDouble(fields[3], &job->duration)) return fail("duration");
  if (!ParseDouble(fields[4], &job->input_bytes)) return fail("input_bytes");
  if (!ParseDouble(fields[5], &job->shuffle_bytes)) {
    return fail("shuffle_bytes");
  }
  if (!ParseDouble(fields[6], &job->output_bytes)) {
    return fail("output_bytes");
  }
  if (!ParseInt64(fields[7], &job->map_tasks)) return fail("map_tasks");
  if (!ParseInt64(fields[8], &job->reduce_tasks)) return fail("reduce_tasks");
  if (!ParseDouble(fields[9], &job->map_task_seconds)) {
    return fail("map_task_seconds");
  }
  if (!ParseDouble(fields[10], &job->reduce_task_seconds)) {
    return fail("reduce_task_seconds");
  }
  job->input_path = std::string(fields[11]);
  job->output_path = std::string(fields[12]);
  std::string violation = ValidateJobRecord(*job);
  if (!violation.empty()) {
    return InvalidArgumentError("line " + std::to_string(line_number) + ": " +
                                violation);
  }
  return Status::Ok();
}

/// Applies a "#key=value" metadata assignment to the trace.
void ApplyMetadata(Trace* trace, std::string_view key, std::string_view value) {
  if (key == "name") {
    trace->mutable_metadata().name = std::string(value);
  } else if (key == "machines") {
    int64_t v = 0;
    if (ParseInt64(value, &v)) {
      trace->mutable_metadata().machines = static_cast<int>(v);
    }
  } else if (key == "year") {
    int64_t v = 0;
    if (ParseInt64(value, &v)) {
      trace->mutable_metadata().year = static_cast<int>(v);
    }
  }
}

/// Splits `text` into lines with std::getline semantics: '\n' separated,
/// no empty final line after a trailing newline, trailing '\r' stripped.
std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    size_t end = (nl == std::string_view::npos) ? text.size() : nl;
    std::string_view line = text.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

std::string TraceToCsv(const Trace& trace) {
  std::ostringstream os;
  const TraceMetadata& meta = trace.metadata();
  if (!meta.name.empty()) os << "#name=" << meta.name << "\n";
  if (meta.machines > 0) os << "#machines=" << meta.machines << "\n";
  if (meta.year > 0) os << "#year=" << meta.year << "\n";
  os << kTraceCsvHeader << "\n";
  char buffer[512];
  for (const auto& job : trace.jobs()) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, job.job_id);
    os << buffer << ',' << QuoteField(job.name) << ','
       << FormatDouble(job.submit_time) << ',' << FormatDouble(job.duration)
       << ',' << FormatDouble(job.input_bytes) << ','
       << FormatDouble(job.shuffle_bytes) << ','
       << FormatDouble(job.output_bytes) << ',' << job.map_tasks << ','
       << job.reduce_tasks << ',' << FormatDouble(job.map_task_seconds) << ','
       << FormatDouble(job.reduce_task_seconds) << ','
       << QuoteField(job.input_path) << ',' << QuoteField(job.output_path)
       << "\n";
  }
  return os.str();
}

StatusOr<Trace> TraceFromCsv(const std::string& csv_text, int threads) {
  Trace trace;
  const std::vector<std::string_view> lines = SplitLines(csv_text);

  // Sequential prologue: metadata comments up to and including the header.
  size_t first_data = lines.size();
  bool header_seen = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto parts = Split(line.substr(1), '=');
      if (parts.size() == 2) ApplyMetadata(&trace, parts[0], parts[1]);
      continue;
    }
    if (line != kTraceCsvHeader) {
      return InvalidArgumentError("line " + std::to_string(i + 1) +
                                  ": unrecognized header");
    }
    header_seen = true;
    first_data = i + 1;
    break;
  }
  if (!header_seen) return InvalidArgumentError("missing CSV header");

  // Data region: fixed-size line shards parsed concurrently. Each shard
  // collects its jobs, any "#key=value" assignments, and its first error;
  // merging in shard order reproduces the serial parser exactly.
  struct Shard {
    std::vector<JobRecord> jobs;
    std::vector<std::pair<std::string, std::string>> metadata;
    Status error = Status::Ok();
  };
  const size_t shard_count =
      (lines.size() - first_data + kShardLines - 1) / kShardLines;
  std::vector<Shard> shards(shard_count);
  ParallelFor(
      first_data, lines.size(), kShardLines,
      [&](size_t lo, size_t hi) {
        Shard& shard = shards[(lo - first_data) / kShardLines];
        std::vector<std::string_view> fields;
        std::vector<std::string> scratch;
        shard.jobs.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          std::string_view line = lines[i];
          const int line_number = static_cast<int>(i) + 1;
          if (line.empty()) continue;
          if (line[0] == '#') {
            auto parts = Split(line.substr(1), '=');
            if (parts.size() == 2) {
              shard.metadata.emplace_back(std::move(parts[0]),
                                          std::move(parts[1]));
            }
            continue;
          }
          if (!SplitCsvLine(line, &fields, &scratch)) {
            shard.error =
                InvalidArgumentError("line " + std::to_string(line_number) +
                                     ": unbalanced quotes");
            return;
          }
          JobRecord job;
          Status row = ParseRow(fields, line_number, &job);
          if (!row.ok()) {
            shard.error = std::move(row);
            return;
          }
          shard.jobs.push_back(std::move(job));
        }
      },
      threads);

  // The lowest-indexed shard with an error holds the earliest failing
  // line; report it, like the serial parser's first-error behaviour.
  size_t total_jobs = 0;
  for (const Shard& shard : shards) {
    if (!shard.error.ok()) return shard.error;
    total_jobs += shard.jobs.size();
  }
  std::vector<JobRecord> jobs;
  jobs.reserve(total_jobs);
  for (Shard& shard : shards) {
    for (const auto& [key, value] : shard.metadata) {
      ApplyMetadata(&trace, key, value);
    }
    for (JobRecord& job : shard.jobs) jobs.push_back(std::move(job));
  }
  trace.SetJobs(std::move(jobs));
  return trace;
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open for writing: " + path);
  out << TraceToCsv(trace);
  out.flush();
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Trace> ReadTraceCsv(const std::string& path, int threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromCsv(buffer.str(), threads);
}

}  // namespace swim::trace

#include "trace/trace_io.h"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/string_util.h"

namespace swim::trace {
namespace {

/// Records per parallel parse shard. Fixed (independent of thread count) so
/// shard boundaries — and therefore job order, merged metadata, report
/// contents, and which error is reported first — are identical at any
/// parallelism.
constexpr size_t kShardLines = 4096;

/// Max physical lines one quoted record may span. A lone stray quote must
/// not swallow the rest of a multi-GB file: past this cap the opening line
/// is surfaced alone (it will fail as unbalanced) and parsing resumes at
/// the next physical line.
constexpr int kMaxRecordLines = 64;

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n") != std::string_view::npos;
}

/// Appends `field` to `out`, RFC-4180-quoted only when needed. Append-only
/// (no temporary string per field) so the row formatter can reuse one
/// buffer across millions of rows.
void AppendQuoted(std::string_view field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') {
      out->append("\"\"");
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Appends the shortest of %.12g / %.15g / %.17g that parses back to
/// exactly the same double; %.17g always round-trips IEEE binary64, so CSV
/// round-trips are bit-exact.
void AppendDouble(double value, std::string* out) {
  // std::to_chars emits the shortest decimal string that parses back to
  // exactly `value` (same contract the old %.12g/%.15g/%.17g probe ladder
  // approximated, minus the two wasted snprintf+strtod probes per field —
  // double formatting dominates CSV serialization, see bench_ingest).
  char buffer[64];
  auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out->append(buffer, static_cast<size_t>(result.ptr - buffer));
}

/// Appends one CSV data row (kTraceCsvHeader order, trailing newline).
void AppendCsvRow(const JobRecord& job, std::string* out) {
  char buffer[32];
  out->append(buffer, static_cast<size_t>(std::snprintf(
                          buffer, sizeof(buffer), "%" PRIu64, job.job_id)));
  out->push_back(',');
  AppendQuoted(job.name, out);
  out->push_back(',');
  AppendDouble(job.submit_time, out);
  out->push_back(',');
  AppendDouble(job.duration, out);
  out->push_back(',');
  AppendDouble(job.input_bytes, out);
  out->push_back(',');
  AppendDouble(job.shuffle_bytes, out);
  out->push_back(',');
  AppendDouble(job.output_bytes, out);
  out->push_back(',');
  out->append(buffer, static_cast<size_t>(std::snprintf(
                          buffer, sizeof(buffer), "%" PRId64, job.map_tasks)));
  out->push_back(',');
  out->append(buffer,
              static_cast<size_t>(std::snprintf(buffer, sizeof(buffer),
                                                "%" PRId64, job.reduce_tasks)));
  out->push_back(',');
  AppendDouble(job.map_task_seconds, out);
  out->push_back(',');
  AppendDouble(job.reduce_task_seconds, out);
  out->push_back(',');
  AppendQuoted(job.input_path, out);
  out->push_back(',');
  AppendQuoted(job.output_path, out);
  out->push_back('\n');
}

/// Appends the "#key=value" metadata comments plus the column header.
void AppendCsvPrologue(const TraceMetadata& meta, std::string* out) {
  if (!meta.name.empty()) {
    out->append("#name=");
    out->append(meta.name);
    out->push_back('\n');
  }
  char buffer[48];
  if (meta.machines > 0) {
    out->append(buffer,
                static_cast<size_t>(std::snprintf(
                    buffer, sizeof(buffer), "#machines=%d\n", meta.machines)));
  }
  if (meta.year > 0) {
    out->append(buffer, static_cast<size_t>(std::snprintf(
                            buffer, sizeof(buffer), "#year=%d\n", meta.year)));
  }
  out->append(kTraceCsvHeader);
  out->push_back('\n');
}

enum class CsvLineError { kNone, kUnbalancedQuote, kMidFieldQuote };

/// Splits one CSV record honoring RFC 4180 quoting. Quotes are only legal
/// as a field-opening quote, doubled inside a quoted field, or as the
/// closing quote immediately followed by a comma or end of record; any
/// other position (ab"cd, "ab"cd) is rejected as kMidFieldQuote so repair
/// mode can count it instead of silently corrupting the field. The fast
/// path (no quote character anywhere, i.e. every machine-generated numeric
/// row) splits zero-copy into views of `line`; the quoted path unescapes
/// into `scratch` and the views point into those strings, which stay alive
/// until the next call.
CsvLineError SplitCsvLine(std::string_view line,
                          std::vector<std::string_view>* fields,
                          std::vector<std::string>* scratch) {
  fields->clear();
  if (line.find('"') == std::string_view::npos) {
    size_t start = 0;
    for (;;) {
      size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) {
        fields->push_back(line.substr(start));
        return CsvLineError::kNone;
      }
      fields->push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
  }
  scratch->clear();
  std::string current;
  bool in_quotes = false;
  bool closed_quote = false;  // current field was quoted and is now closed
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          closed_quote = true;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == ',') {
      scratch->push_back(std::move(current));
      current.clear();
      closed_quote = false;
    } else if (closed_quote) {
      // "ab"cd — junk after the closing quote.
      return CsvLineError::kMidFieldQuote;
    } else if (c == '"') {
      if (!current.empty()) return CsvLineError::kMidFieldQuote;  // ab"cd
      in_quotes = true;
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return CsvLineError::kUnbalancedQuote;
  scratch->push_back(std::move(current));
  // Build the views only once scratch is fully populated: push_back above
  // may reallocate and move small (SSO) strings, which would dangle.
  fields->reserve(scratch->size());
  for (const std::string& field : *scratch) fields->push_back(field);
  return CsvLineError::kNone;
}

enum class RowAction { kAccepted, kRepaired, kSkipped };

/// Clamps a structurally-parsed record onto the nearest valid one: negative
/// values go to zero, and orphan task-seconds (seconds recorded against a
/// zero task count) are zeroed.
void RepairRecord(JobRecord* job) {
  job->submit_time = std::max(0.0, job->submit_time);
  job->duration = std::max(0.0, job->duration);
  job->input_bytes = std::max(0.0, job->input_bytes);
  job->shuffle_bytes = std::max(0.0, job->shuffle_bytes);
  job->output_bytes = std::max(0.0, job->output_bytes);
  job->map_tasks = std::max<int64_t>(0, job->map_tasks);
  job->reduce_tasks = std::max<int64_t>(0, job->reduce_tasks);
  job->map_task_seconds = std::max(0.0, job->map_task_seconds);
  job->reduce_task_seconds = std::max(0.0, job->reduce_task_seconds);
  if (job->map_tasks == 0) job->map_task_seconds = 0.0;
  if (job->reduce_tasks == 0) job->reduce_task_seconds = 0.0;
}

/// Parses one split row under the given mode. On any flagged problem the
/// diagnostic records the row's first problem (fields scanned left to
/// right); kRepair additionally patches every patchable field and reports
/// kRepaired when the row survives. job_id and the field count are
/// identity/structure and never repairable.
RowAction ParseRowLenient(const std::vector<std::string_view>& fields,
                          int line_number, ParseMode mode, JobRecord* job,
                          ParseDiagnostic* diag) {
  diag->line = line_number;
  diag->repaired = false;
  bool flagged = false;
  auto flag = [&](ParseErrorKind kind, const char* field, std::string reason) {
    if (flagged) return;
    flagged = true;
    diag->kind = kind;
    diag->field = field;
    diag->reason = std::move(reason);
  };
  if (fields.size() != 13) {
    flag(ParseErrorKind::kFieldCount, "",
         "expected 13 fields, got " + std::to_string(fields.size()));
    return RowAction::kSkipped;
  }
  const bool repair = mode == ParseMode::kRepair;
  int64_t id = 0;
  if (!ParseInt64(fields[0], &id) || id < 0) {
    flag(ParseErrorKind::kBadNumber, "job_id", "bad job_id");
    return RowAction::kSkipped;  // identity lost; unrepairable
  }
  job->job_id = static_cast<uint64_t>(id);
  job->name = std::string(fields[1]);

  auto read_double = [&](size_t index, const char* name, double* out) {
    double v = 0.0;
    if (!ParseDouble(fields[index], &v) || !std::isfinite(v)) {
      flag(ParseErrorKind::kBadNumber, name, std::string("bad ") + name);
      if (!repair) return false;
      v = 0.0;
    }
    *out = v;
    return true;
  };
  auto read_int = [&](size_t index, const char* name, int64_t* out) {
    int64_t v = 0;
    if (!ParseInt64(fields[index], &v)) {
      flag(ParseErrorKind::kBadNumber, name, std::string("bad ") + name);
      if (!repair) return false;
      v = 0;
    }
    *out = v;
    return true;
  };
  if (!read_double(2, "submit_time", &job->submit_time) ||
      !read_double(3, "duration", &job->duration) ||
      !read_double(4, "input_bytes", &job->input_bytes) ||
      !read_double(5, "shuffle_bytes", &job->shuffle_bytes) ||
      !read_double(6, "output_bytes", &job->output_bytes) ||
      !read_int(7, "map_tasks", &job->map_tasks) ||
      !read_int(8, "reduce_tasks", &job->reduce_tasks) ||
      !read_double(9, "map_task_seconds", &job->map_task_seconds) ||
      !read_double(10, "reduce_task_seconds", &job->reduce_task_seconds)) {
    return RowAction::kSkipped;
  }
  job->input_path = std::string(fields[11]);
  job->output_path = std::string(fields[12]);

  std::string violation = ValidateJobRecord(*job);
  if (!violation.empty()) {
    flag(ParseErrorKind::kInvalidRecord, "", violation);
    if (!repair) return RowAction::kSkipped;
  }
  if (flagged && repair) {
    RepairRecord(job);
    if (!ValidateJobRecord(*job).empty()) return RowAction::kSkipped;
  }
  if (!flagged) return RowAction::kAccepted;
  diag->repaired = true;
  return RowAction::kRepaired;
}

/// Strict-mode error text for a flagged row, matching the historical
/// messages ("line N: expected 13 fields...", "line N: bad submit_time").
Status DiagnosticToStatus(const ParseDiagnostic& diag) {
  std::string what;
  switch (diag.kind) {
    case ParseErrorKind::kUnbalancedQuote:
      what = "unbalanced quotes";
      break;
    case ParseErrorKind::kMidFieldQuote:
      what = "quote in the middle of a field";
      break;
    default:
      what = diag.reason;
      break;
  }
  return InvalidArgumentError("line " + std::to_string(diag.line) + ": " +
                              what);
}

/// Applies a "#key=value" metadata assignment to the trace.
void ApplyMetadata(Trace* trace, std::string_view key, std::string_view value) {
  if (key == "name") {
    trace->mutable_metadata().name = std::string(value);
  } else if (key == "machines") {
    int64_t v = 0;
    if (ParseInt64(value, &v)) {
      trace->mutable_metadata().machines = static_cast<int>(v);
    }
  } else if (key == "year") {
    int64_t v = 0;
    if (ParseInt64(value, &v)) {
      trace->mutable_metadata().year = static_cast<int>(v);
    }
  }
}

/// One logical CSV record: a view into the input plus the 1-based physical
/// line number where it starts (used in diagnostics).
struct CsvRecord {
  std::string_view text;
  int line = 0;
};

/// Splits `text` into records with std::getline semantics ('\n' separated,
/// no empty final record after a trailing newline, trailing '\r' stripped
/// at each record end), extended with RFC 4180 quote continuation: a line
/// with an open quote at its end pulls in following physical lines until
/// the quote closes, so quoted fields may contain newlines. '#' comment
/// lines never continue. Continuation is capped at kMaxRecordLines; an
/// unclosed quote surfaces only its opening line (later flagged as
/// unbalanced) and parsing resumes on the next physical line, which is what
/// lets skip/repair modes recover from a single stray quote.
std::vector<CsvRecord> SplitRecords(std::string_view text) {
  std::vector<CsvRecord> records;
  size_t pos = 0;
  int line_no = 0;  // physical lines fully consumed
  while (pos < text.size()) {
    const int record_line = line_no + 1;
    size_t nl = text.find('\n', pos);
    size_t end = (nl == std::string_view::npos) ? text.size() : nl;
    size_t after = (nl == std::string_view::npos) ? text.size() : nl + 1;
    int consumed = 1;

    bool in_quotes = false;
    if (text[pos] != '#') {
      for (size_t i = pos; i < end; ++i) {
        if (text[i] == '"') in_quotes = !in_quotes;
      }
    }
    if (in_quotes) {
      // Quote still open at end of line: scan continuation lines.
      size_t scan = after;
      int span = 1;
      bool closed = false;
      while (scan < text.size() && span < kMaxRecordLines) {
        size_t cnl = text.find('\n', scan);
        size_t cend = (cnl == std::string_view::npos) ? text.size() : cnl;
        size_t cafter = (cnl == std::string_view::npos) ? text.size() : cnl + 1;
        for (size_t i = scan; i < cend; ++i) {
          if (text[i] == '"') in_quotes = !in_quotes;
        }
        ++span;
        if (!in_quotes) {
          end = cend;
          after = cafter;
          consumed = span;
          closed = true;
          break;
        }
        scan = cafter;
      }
      if (!closed) {
        // Unbalanced: keep only the opening physical line (end/after/
        // consumed already describe it) and let the row parser flag it.
      }
    }
    std::string_view record = text.substr(pos, end - pos);
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    records.push_back({record, record_line});
    line_no += consumed;
    pos = after;
  }
  return records;
}

}  // namespace

StatusOr<ParseMode> ParseModeFromName(std::string_view name) {
  std::string normalized = ToLower(name);
  if (normalized == "strict") return ParseMode::kStrict;
  if (normalized == "skip") return ParseMode::kSkip;
  if (normalized == "repair") return ParseMode::kRepair;
  return InvalidArgumentError("unknown parse mode '" + std::string(name) +
                              "' (expected strict|skip|repair)");
}

const char* ParseModeName(ParseMode mode) {
  switch (mode) {
    case ParseMode::kStrict:
      return "strict";
    case ParseMode::kSkip:
      return "skip";
    case ParseMode::kRepair:
      return "repair";
  }
  return "?";
}

const char* ParseErrorKindName(ParseErrorKind kind) {
  switch (kind) {
    case ParseErrorKind::kUnbalancedQuote:
      return "unbalanced-quote";
    case ParseErrorKind::kMidFieldQuote:
      return "mid-field-quote";
    case ParseErrorKind::kFieldCount:
      return "field-count";
    case ParseErrorKind::kBadNumber:
      return "bad-number";
    case ParseErrorKind::kInvalidRecord:
      return "invalid-record";
  }
  return "?";
}

std::string ParseDiagnostic::ToString() const {
  std::string out = "line " + std::to_string(line) + " [" +
                    ParseErrorKindName(kind) + "]";
  if (!field.empty()) out += " " + field;
  if (!reason.empty()) out += ": " + reason;
  out += repaired ? " (repaired)" : " (skipped)";
  return out;
}

std::string ParseReport::ToString() const {
  std::string out = "ingest (" + std::string(ParseModeName(mode)) + "): " +
                    std::to_string(total_rows) + " rows, " +
                    std::to_string(accepted) + " accepted";
  if (repaired > 0) out += " (" + std::to_string(repaired) + " repaired)";
  out += ", " + std::to_string(skipped) + " skipped";
  if (flagged() > 0) {
    out += "\n  categories:";
    for (size_t i = 0; i < kParseErrorKinds; ++i) {
      if (error_counts[i] == 0) continue;
      out += " " +
             std::string(ParseErrorKindName(static_cast<ParseErrorKind>(i))) +
             "=" + std::to_string(error_counts[i]);
    }
  }
  for (const ParseDiagnostic& diag : diagnostics) {
    out += "\n  " + diag.ToString();
  }
  if (dropped_diagnostics > 0) {
    out += "\n  (" + std::to_string(dropped_diagnostics) +
           " more flagged rows not shown)";
  }
  return out;
}

std::string TraceToCsv(const Trace& trace) {
  // One output string, append-only formatting: no ostringstream, no
  // per-field temporaries. ~96 bytes/row is the observed average for the
  // generated paper workloads; reserving it keeps growth to O(log n)
  // reallocations.
  std::string out;
  out.reserve(128 + trace.size() * 96);
  AppendCsvPrologue(trace.metadata(), &out);
  for (const auto& job : trace.jobs()) AppendCsvRow(job, &out);
  return out;
}

StatusOr<Trace> TraceFromCsv(const std::string& csv_text,
                             const ParseOptions& options,
                             ParseReport* report) {
  Trace trace;
  if (report) {
    *report = ParseReport{};
    report->mode = options.mode;
  }
  const std::vector<CsvRecord> records = SplitRecords(csv_text);

  // Sequential prologue: metadata comments up to and including the header.
  size_t first_data = records.size();
  bool header_seen = false;
  for (size_t i = 0; i < records.size(); ++i) {
    std::string_view line = records[i].text;
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto parts = Split(line.substr(1), '=');
      if (parts.size() == 2) ApplyMetadata(&trace, parts[0], parts[1]);
      continue;
    }
    if (line != kTraceCsvHeader) {
      return InvalidArgumentError("line " + std::to_string(records[i].line) +
                                  ": unrecognized header");
    }
    header_seen = true;
    first_data = i + 1;
    break;
  }
  if (!header_seen) return InvalidArgumentError("missing CSV header");

  // Data region: fixed-size record shards parsed concurrently. Each shard
  // collects its jobs, any "#key=value" assignments, its report fragment,
  // and (strict mode) its first error; merging in shard order reproduces
  // the serial parser exactly, so trace AND report are byte-identical at
  // any thread count.
  struct Shard {
    std::vector<JobRecord> jobs;
    std::vector<std::pair<std::string, std::string>> metadata;
    Status error = Status::Ok();
    size_t rows = 0;
    size_t skipped = 0;
    size_t repaired = 0;
    std::array<size_t, kParseErrorKinds> error_counts{};
    std::vector<ParseDiagnostic> diagnostics;  // capped at max_diagnostics
    size_t dropped_diagnostics = 0;
  };
  const size_t shard_count =
      (records.size() - first_data + kShardLines - 1) / kShardLines;
  std::vector<Shard> shards(shard_count);
  const ParseMode mode = options.mode;
  const size_t max_diagnostics = options.max_diagnostics;
  ParallelFor(
      first_data, records.size(), kShardLines,
      [&](size_t lo, size_t hi) {
        Shard& shard = shards[(lo - first_data) / kShardLines];
        std::vector<std::string_view> fields;
        std::vector<std::string> scratch;
        shard.jobs.reserve(hi - lo);
        auto note = [&](const ParseDiagnostic& diag) {
          ++shard.error_counts[static_cast<size_t>(diag.kind)];
          if (diag.repaired) {
            ++shard.repaired;
          } else {
            ++shard.skipped;
          }
          if (shard.diagnostics.size() < max_diagnostics) {
            shard.diagnostics.push_back(diag);
          } else {
            ++shard.dropped_diagnostics;
          }
        };
        for (size_t i = lo; i < hi; ++i) {
          std::string_view line = records[i].text;
          const int line_number = records[i].line;
          if (line.empty()) continue;
          if (line[0] == '#') {
            auto parts = Split(line.substr(1), '=');
            if (parts.size() == 2) {
              shard.metadata.emplace_back(std::move(parts[0]),
                                          std::move(parts[1]));
            }
            continue;
          }
          ++shard.rows;
          ParseDiagnostic diag;
          CsvLineError split_error = SplitCsvLine(line, &fields, &scratch);
          if (split_error != CsvLineError::kNone) {
            diag.line = line_number;
            diag.kind = split_error == CsvLineError::kUnbalancedQuote
                            ? ParseErrorKind::kUnbalancedQuote
                            : ParseErrorKind::kMidFieldQuote;
            diag.reason = "";
            if (mode == ParseMode::kStrict) {
              shard.error = DiagnosticToStatus(diag);
              return;
            }
            note(diag);
            continue;
          }
          JobRecord job;
          RowAction action =
              ParseRowLenient(fields, line_number, mode, &job, &diag);
          if (action == RowAction::kSkipped ||
              action == RowAction::kRepaired) {
            if (mode == ParseMode::kStrict) {
              shard.error = DiagnosticToStatus(diag);
              return;
            }
            note(diag);
            if (action == RowAction::kSkipped) continue;
          }
          shard.jobs.push_back(std::move(job));
        }
      },
      options.threads);

  // The lowest-indexed shard with an error holds the earliest failing
  // line; report it, like the serial parser's first-error behaviour.
  size_t total_jobs = 0;
  for (const Shard& shard : shards) {
    if (!shard.error.ok()) return shard.error;
    total_jobs += shard.jobs.size();
  }
  std::vector<JobRecord> jobs;
  jobs.reserve(total_jobs);
  for (Shard& shard : shards) {
    for (const auto& [key, value] : shard.metadata) {
      ApplyMetadata(&trace, key, value);
    }
    for (JobRecord& job : shard.jobs) jobs.push_back(std::move(job));
    if (report) {
      report->total_rows += shard.rows;
      report->skipped += shard.skipped;
      report->repaired += shard.repaired;
      for (size_t i = 0; i < kParseErrorKinds; ++i) {
        report->error_counts[i] += shard.error_counts[i];
      }
      for (ParseDiagnostic& diag : shard.diagnostics) {
        if (report->diagnostics.size() < options.max_diagnostics) {
          report->diagnostics.push_back(std::move(diag));
        } else {
          ++report->dropped_diagnostics;
        }
      }
      report->dropped_diagnostics += shard.dropped_diagnostics;
    }
  }
  if (report) report->accepted = total_jobs;
  trace.SetJobs(std::move(jobs));
  if (options.warm_indexes) trace.WarmIndexes(options.threads);
  return trace;
}

StatusOr<Trace> TraceFromCsv(const std::string& csv_text, int threads) {
  ParseOptions options;
  options.mode = ParseMode::kStrict;
  options.threads = threads;
  return TraceFromCsv(csv_text, options, nullptr);
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  // Streams through one reused row buffer flushed in ~1 MiB chunks, so a
  // multi-GB trace writes without ever holding its full CSV image in
  // memory (TraceToCsv still offers the in-memory form).
  constexpr size_t kFlushBytes = 1 << 20;
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (!out) return IoError("cannot open for writing: " + path);
  std::string buffer;
  buffer.reserve(kFlushBytes + 4096);
  AppendCsvPrologue(trace.metadata(), &buffer);
  auto flush = [&]() {
    if (buffer.empty()) return true;
    const bool ok =
        std::fwrite(buffer.data(), 1, buffer.size(), out) == buffer.size();
    buffer.clear();
    return ok;
  };
  for (const auto& job : trace.jobs()) {
    AppendCsvRow(job, &buffer);
    if (buffer.size() >= kFlushBytes && !flush()) {
      std::fclose(out);
      return IoError("write failed: " + path);
    }
  }
  if (!flush() || std::fflush(out) != 0) {
    std::fclose(out);
    return IoError("write failed: " + path);
  }
  if (std::fclose(out) != 0) return IoError("close failed: " + path);
  return Status::Ok();
}

StatusOr<Trace> ReadTraceCsv(const std::string& path,
                             const ParseOptions& options,
                             ParseReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromCsv(buffer.str(), options, report);
}

StatusOr<Trace> ReadTraceCsv(const std::string& path, int threads) {
  ParseOptions options;
  options.mode = ParseMode::kStrict;
  options.threads = threads;
  return ReadTraceCsv(path, options, nullptr);
}

}  // namespace swim::trace

#ifndef SWIM_TRACE_FILTERS_H_
#define SWIM_TRACE_FILTERS_H_

#include <functional>

#include "trace/trace.h"

namespace swim::trace {

/// Jobs submitted in [begin, end). Metadata is copied. This is the paper's
/// trace extraction step ("a time-range selection of per-job Hadoop history
/// logs"); it also exhibits the boundary effect the paper notes - jobs
/// straddling the range end keep their full duration.
Trace FilterByTimeRange(const Trace& trace, double begin, double end);

/// Jobs for which `predicate` returns true.
Trace FilterByPredicate(const Trace& trace,
                        const std::function<bool(const JobRecord&)>& predicate);

/// First `count` jobs by submit order.
Trace TakeFirst(const Trace& trace, size_t count);

/// Shifts all submit times so the earliest becomes zero.
Trace RebaseToZero(const Trace& trace);

}  // namespace swim::trace

#endif  // SWIM_TRACE_FILTERS_H_

#include "trace/stf1_mutator.h"

#include <algorithm>
#include <cstring>

#include "common/random.h"
#include "trace/columnar.h"

namespace swim::trace {
namespace {

/// Overwrites `bytes` little-endian at `offset` (clipped to the buffer).
void PokeU64(std::string* out, size_t offset, uint64_t value) {
  if (offset + sizeof(value) > out->size()) return;
  std::memcpy(out->data() + offset, &value, sizeof(value));
}

uint64_t NextU64(Pcg32& rng) {
  return (static_cast<uint64_t>(rng()) << 32) | rng();
}

}  // namespace

std::string Stf1Mutator::Mutate(std::string_view stf1,
                                uint64_t iteration) const {
  // Same decorrelation recipe as CsvMutator: a fresh per-iteration
  // generator keyed by a splitmix-style multiply.
  Pcg32 rng(seed_ + 0x9e3779b97f4a7c15ULL * (iteration + 1),
            /*stream=*/0x57f1);
  std::string out(stf1);
  const int mutation_count = 1 + static_cast<int>(rng.NextBounded(4));
  for (int m = 0; m < mutation_count; ++m) {
    if (out.empty()) break;
    switch (rng.NextBounded(10)) {
      case 0:  // Truncate: interrupted download / partial flush.
        out.resize(rng.NextBounded(out.size() + 1));
        break;
      case 1: {  // Flip bytes anywhere: bit rot.
        const uint64_t flips = 1 + rng.NextBounded(8);
        for (uint64_t f = 0; f < flips && !out.empty(); ++f) {
          out[rng.NextBounded(out.size())] ^=
              static_cast<char>(1 + rng.NextBounded(255));
        }
        break;
      }
      case 2: {  // Zero a range: torn write / sparse-file hole.
        const size_t start = rng.NextBounded(out.size());
        const size_t len =
            std::min<size_t>(1 + rng.NextBounded(256), out.size() - start);
        std::memset(out.data() + start, 0, len);
        break;
      }
      case 3: {  // Splice one region over another: bad copy.
        const size_t src = rng.NextBounded(out.size());
        const size_t len =
            std::min<size_t>(1 + rng.NextBounded(128), out.size() - src);
        out.insert(rng.NextBounded(out.size() + 1), out, src, len);
        break;
      }
      case 4: {  // Append junk past the footer.
        const uint64_t extra = 1 + rng.NextBounded(96);
        for (uint64_t i = 0; i < extra; ++i) {
          out.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        break;
      }
      case 5:  // Strike the magic / version words.
        PokeU64(&out, 0, NextU64(rng));
        break;
      case 6:  // Lie about the job count.
        PokeU64(&out, offsetof(Stf1Header, job_count),
                rng.NextBounded(2) ? NextU64(rng)
                                   : rng.NextBounded(1u << 20));
        break;
      case 7: {  // Redirect the section table.
        PokeU64(&out, offsetof(Stf1Header, table_offset), NextU64(rng));
        if (rng.NextBounded(2)) {
          PokeU64(&out, offsetof(Stf1Header, table_bytes), NextU64(rng));
        }
        break;
      }
      case 8: {  // Damage one section-table entry field.
        const size_t entry = rng.NextBounded(kStf1SectionCount);
        const size_t field = rng.NextBounded(4);  // kind+elem, offset, bytes, checksum
        PokeU64(&out,
                sizeof(Stf1Header) + entry * sizeof(Stf1Section) + field * 8,
                NextU64(rng));
        break;
      }
      case 9: {  // Flip bytes inside the dictionary / trailing regions,
                 // where offsets arrays and blobs live.
        const size_t start = out.size() / 2;
        if (start >= out.size()) break;
        const uint64_t flips = 1 + rng.NextBounded(8);
        for (uint64_t f = 0; f < flips; ++f) {
          const size_t at = start + rng.NextBounded(out.size() - start);
          out[at] ^= static_cast<char>(1 + rng.NextBounded(255));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace swim::trace

#ifndef SWIM_TRACE_CSV_MUTATOR_H_
#define SWIM_TRACE_CSV_MUTATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace swim::trace {

/// Deterministic CSV corruption engine for fuzzing the trace parser.
/// Shared by the gtest property fuzzer (tests/trace_fuzz_test.cc) and the
/// CI corpus driver (bench/bench_fuzz_ingest.cc) so both exercise the same
/// mutation space and a failing iteration reproduces from (seed, iteration)
/// alone.
///
/// Mutations model real trace damage: truncated uploads, bit rot, stray
/// editor quotes, locale-mangled numbers, duplicated/dropped lines from a
/// bad log shipper, CRLF conversion, and spliced partial records.
class CsvMutator {
 public:
  explicit CsvMutator(uint64_t seed) : seed_(seed) {}

  /// Returns a corrupted copy of `csv`. Deterministic in (seed, iteration)
  /// and independent of call order, so any failure is replayable without
  /// the preceding iterations. Applies 1-4 mutations drawn from the kinds
  /// below.
  std::string Mutate(std::string_view csv, uint64_t iteration) const;

 private:
  uint64_t seed_;
};

}  // namespace swim::trace

#endif  // SWIM_TRACE_CSV_MUTATOR_H_

#ifndef SWIM_TRACE_SUMMARY_H_
#define SWIM_TRACE_SUMMARY_H_

#include <string>
#include <vector>

#include "trace/trace.h"

namespace swim::trace {

/// One row of the paper's Table 1.
struct TraceSummary {
  std::string name;
  int machines = 0;
  double span_seconds = 0.0;
  int year = 0;
  size_t jobs = 0;
  /// Sum of input + shuffle + output over all jobs ("bytes moved").
  double bytes_moved = 0.0;
  size_t map_only_jobs = 0;
  double median_duration = 0.0;
};

TraceSummary Summarize(const Trace& trace);

/// Renders summaries as an aligned text table matching Table 1's columns.
std::string FormatSummaryTable(const std::vector<TraceSummary>& rows);

}  // namespace swim::trace

#endif  // SWIM_TRACE_SUMMARY_H_

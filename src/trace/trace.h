#ifndef SWIM_TRACE_TRACE_H_
#define SWIM_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "trace/job_record.h"

namespace swim::trace {

/// Cluster-level metadata accompanying a trace (Table 1 columns that are
/// not derivable from the job stream itself).
struct TraceMetadata {
  /// Workload label, e.g. "FB-2009" or "CC-b".
  std::string name;
  /// Machines in the source cluster (0 when unknown).
  int machines = 0;
  /// Calendar year of collection (0 when unknown).
  int year = 0;
  /// Which optional dimensions the trace carries.
  bool has_names = true;
  bool has_input_paths = true;
  bool has_output_paths = true;
};

/// An ordered collection of jobs plus metadata. Jobs are kept sorted by
/// submit time (the class maintains this invariant on mutation).
class Trace {
 public:
  Trace() = default;
  explicit Trace(TraceMetadata metadata) : metadata_(std::move(metadata)) {}

  // Copies and moves transfer the job stream, metadata, and sortedness,
  // but drop the lazy interned-id state (rebuilt on demand): the
  // synchronization members below are not copyable, and re-interning on
  // first use beats deep-copying arenas.
  Trace(const Trace& other);
  Trace& operator=(const Trace& other);
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&& other) noexcept;

  const TraceMetadata& metadata() const { return metadata_; }
  TraceMetadata& mutable_metadata() { return metadata_; }

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  /// Appends a job; re-sorts lazily on the next read if ordering broke.
  void AddJob(JobRecord job);

  /// Bulk replacement; takes ownership and sorts.
  void SetJobs(std::vector<JobRecord> jobs);

  /// Bulk replacement with pre-built interned-id state — the columnar
  /// (STF1) load path, where the dictionaries and id columns were persisted
  /// at write time and re-interning 1M+ rows would just reproduce them.
  /// The caller guarantees the id state matches what the lazy build would
  /// produce: `jobs` sorted by submit time, ids in first-appearance order,
  /// empty fields mapped to kNoStringId (ColumnarTraceView::Materialize
  /// verifies all of this before calling). If `jobs` turns out unsorted or
  /// a column length mismatches, the id state is discarded and this
  /// degrades to SetJobs (lazy rebuild) instead of publishing corrupt
  /// indexes.
  void SetJobsWithIndexes(std::vector<JobRecord> jobs,
                          StringInterner path_interner,
                          std::vector<uint32_t> input_path_ids,
                          std::vector<uint32_t> output_path_ids,
                          StringInterner name_interner,
                          std::vector<uint32_t> name_ids);

  /// Validates every record; returns the first violation.
  Status Validate() const;

  /// Earliest submit time (0 when empty).
  double StartTime() const;
  /// Latest finish time (0 when empty).
  double EndTime() const;
  /// EndTime - StartTime.
  double Span() const;

  /// Per-hour aggregation of a job dimension over [StartTime, EndTime),
  /// indexed by hour since trace start. `extractor` maps a job to its
  /// contribution; the job is credited to its submission hour, matching the
  /// paper's "jobs submitted per hour" framing for Figure 7.
  template <typename Extractor>
  std::vector<double> HourlySeries(Extractor&& extractor) const;

  std::vector<double> HourlyJobCounts() const;
  std::vector<double> HourlyBytes() const;
  std::vector<double> HourlyTaskSeconds() const;

  // --- Interned id columns ---------------------------------------------
  //
  // Paths and job names are interned to dense uint32_t ids so the hot
  // analysis/storage/replay loops can key flat tables by integer instead
  // of re-hashing HDFS path strings. Ids are assigned in first-appearance
  // order over the submit-sorted job stream (input path before output path
  // per job), so they are deterministic for a given trace regardless of
  // SWIM_THREADS. Input and output paths share one id space — an
  // output later read as an input maps to the same id, which is what the
  // re-access and cache analyses key on. Jobs without the field map to
  // kNoStringId.
  //
  // The path and name indexes are built lazily (and independently — a
  // popularity analysis never pays for name interning and vice versa) on
  // first access, and invalidated by AddJob/SetJobs. The lazy builds are
  // thread-safe for CONCURRENT CONST READERS: the first accessor to need
  // an index builds it under an internal mutex (double-checked against an
  // atomic flag) and later readers see the published result, so worker
  // threads may share a const Trace freely. Mutation (AddJob/SetJobs) is
  // not synchronized against readers and still requires exclusivity.
  //
  // Large traces build their indexes in parallel: ParallelFor workers
  // intern into one shared ShardedInterner in place (no per-worker tables,
  // no merge), recording provisional ids; a serial O(n) post-pass then
  // renumbers provisional ids to canonical first-appearance ranks. The
  // result — id columns and interner contents — is byte-identical to the
  // serial build at any SWIM_THREADS.

  /// Interner over input/output paths; ids index path-keyed tables.
  const StringInterner& path_interner() const {
    EnsurePathIndex();
    return path_interner_;
  }
  /// Interner over job names.
  const StringInterner& name_interner() const {
    EnsureNameIndex();
    return name_interner_;
  }
  /// Per-job id columns, parallel to jobs().
  const std::vector<uint32_t>& input_path_ids() const {
    EnsurePathIndex();
    return input_path_ids_;
  }
  const std::vector<uint32_t>& output_path_ids() const {
    EnsurePathIndex();
    return output_path_ids_;
  }
  const std::vector<uint32_t>& name_ids() const {
    EnsureNameIndex();
    return name_ids_;
  }

  /// Builds both id indexes now instead of on first analytical use —
  /// called by parallel CSV ingest so the concurrent in-place build runs
  /// while the parse context (thread budget) is still known.
  /// `max_parallelism` bounds the build's worker lanes; 0 means
  /// DefaultParallelism().
  void WarmIndexes(int max_parallelism = 0) const {
    EnsurePathIndex(max_parallelism);
    EnsureNameIndex(max_parallelism);
  }

 private:
  void EnsureSorted() const;
  void EnsurePathIndex(int max_parallelism = 0) const;
  void EnsureNameIndex(int max_parallelism = 0) const;
  /// Sorts with lazy_mu_ already held (Ensure* helpers compose on it).
  void SortLocked() const;

  TraceMetadata metadata_;
  mutable std::vector<JobRecord> jobs_;

  /// Serializes the lazy sort/index builds; the atomic flags are the
  /// double-checked fast path (acquire load outside the lock publishes the
  /// built vectors/interners to readers).
  mutable std::mutex lazy_mu_;
  mutable std::atomic<bool> sorted_{true};
  mutable std::atomic<bool> path_indexed_{false};
  mutable std::atomic<bool> name_indexed_{false};

  mutable StringInterner path_interner_;
  mutable StringInterner name_interner_;
  mutable std::vector<uint32_t> input_path_ids_;
  mutable std::vector<uint32_t> output_path_ids_;
  mutable std::vector<uint32_t> name_ids_;
};

template <typename Extractor>
std::vector<double> Trace::HourlySeries(Extractor&& extractor) const {
  EnsureSorted();
  std::vector<double> series;
  if (jobs_.empty()) return series;
  const double start = StartTime();
  const double span = EndTime() - start;
  size_t hours = static_cast<size_t>(span / 3600.0) + 1;
  series.assign(hours, 0.0);
  for (const auto& job : jobs_) {
    size_t hour = static_cast<size_t>((job.submit_time - start) / 3600.0);
    if (hour >= series.size()) hour = series.size() - 1;
    series[hour] += extractor(job);
  }
  return series;
}

}  // namespace swim::trace

#endif  // SWIM_TRACE_TRACE_H_

#include "trace/filters.h"

namespace swim::trace {

Trace FilterByTimeRange(const Trace& trace, double begin, double end) {
  return FilterByPredicate(trace, [begin, end](const JobRecord& job) {
    return job.submit_time >= begin && job.submit_time < end;
  });
}

Trace FilterByPredicate(
    const Trace& trace,
    const std::function<bool(const JobRecord&)>& predicate) {
  Trace result(trace.metadata());
  for (const auto& job : trace.jobs()) {
    if (predicate(job)) result.AddJob(job);
  }
  return result;
}

Trace TakeFirst(const Trace& trace, size_t count) {
  Trace result(trace.metadata());
  for (const auto& job : trace.jobs()) {
    if (result.size() >= count) break;
    result.AddJob(job);
  }
  return result;
}

Trace RebaseToZero(const Trace& trace) {
  Trace result(trace.metadata());
  double start = trace.StartTime();
  for (auto job : trace.jobs()) {
    job.submit_time -= start;
    result.AddJob(std::move(job));
  }
  return result;
}

}  // namespace swim::trace

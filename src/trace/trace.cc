#include "trace/trace.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"

namespace swim::trace {

namespace {

// Below this many jobs the serial intern loop wins (shared-table latches
// and the remap pass cost more than they save).
constexpr size_t kParallelIndexThreshold = 16384;
// Fixed ParallelFor grain: chunk boundaries must not depend on the thread
// count (determinism contract), and ~4k rows amortizes latch traffic.
constexpr size_t kIndexGrain = 4096;

}  // namespace

Trace::Trace(const Trace& other) {
  // Lock the source so a concurrent reader-triggered lazy sort on `other`
  // cannot move jobs_ under us. Index state is intentionally not copied
  // (rebuilt on demand); sortedness carries over.
  std::lock_guard<std::mutex> lock(other.lazy_mu_);
  metadata_ = other.metadata_;
  jobs_ = other.jobs_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

Trace& Trace::operator=(const Trace& other) {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.lazy_mu_);
  metadata_ = other.metadata_;
  jobs_ = other.jobs_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  path_indexed_.store(false, std::memory_order_relaxed);
  name_indexed_.store(false, std::memory_order_relaxed);
  path_interner_.Clear();
  name_interner_.Clear();
  input_path_ids_.clear();
  output_path_ids_.clear();
  name_ids_.clear();
  return *this;
}

Trace::Trace(Trace&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.lazy_mu_);
  metadata_ = std::move(other.metadata_);
  jobs_ = std::move(other.jobs_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.sorted_.store(true, std::memory_order_relaxed);
  other.path_indexed_.store(false, std::memory_order_relaxed);
  other.name_indexed_.store(false, std::memory_order_relaxed);
}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.lazy_mu_);
  metadata_ = std::move(other.metadata_);
  jobs_ = std::move(other.jobs_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  path_indexed_.store(false, std::memory_order_relaxed);
  name_indexed_.store(false, std::memory_order_relaxed);
  path_interner_.Clear();
  name_interner_.Clear();
  input_path_ids_.clear();
  output_path_ids_.clear();
  name_ids_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
  other.path_indexed_.store(false, std::memory_order_relaxed);
  other.name_indexed_.store(false, std::memory_order_relaxed);
  return *this;
}

void Trace::AddJob(JobRecord job) {
  if (!jobs_.empty() && job.submit_time < jobs_.back().submit_time) {
    sorted_.store(false, std::memory_order_relaxed);
  }
  jobs_.push_back(std::move(job));
  path_indexed_.store(false, std::memory_order_relaxed);
  name_indexed_.store(false, std::memory_order_relaxed);
}

void Trace::SetJobs(std::vector<JobRecord> jobs) {
  jobs_ = std::move(jobs);
  sorted_.store(false, std::memory_order_relaxed);
  path_indexed_.store(false, std::memory_order_relaxed);
  name_indexed_.store(false, std::memory_order_relaxed);
  EnsureSorted();
}

void Trace::SetJobsWithIndexes(std::vector<JobRecord> jobs,
                               StringInterner path_interner,
                               std::vector<uint32_t> input_path_ids,
                               std::vector<uint32_t> output_path_ids,
                               StringInterner name_interner,
                               std::vector<uint32_t> name_ids) {
  const size_t n = jobs.size();
  const bool sorted = std::is_sorted(
      jobs.begin(), jobs.end(), [](const JobRecord& a, const JobRecord& b) {
        return a.submit_time < b.submit_time;
      });
  if (!sorted || input_path_ids.size() != n || output_path_ids.size() != n ||
      name_ids.size() != n) {
    SetJobs(std::move(jobs));
    return;
  }
  jobs_ = std::move(jobs);
  path_interner_ = std::move(path_interner);
  name_interner_ = std::move(name_interner);
  input_path_ids_ = std::move(input_path_ids);
  output_path_ids_ = std::move(output_path_ids);
  name_ids_ = std::move(name_ids);
  sorted_.store(true, std::memory_order_release);
  path_indexed_.store(true, std::memory_order_release);
  name_indexed_.store(true, std::memory_order_release);
}

void Trace::EnsureSorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  SortLocked();
}

void Trace::SortLocked() const {
  if (sorted_.load(std::memory_order_relaxed)) return;
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  path_indexed_.store(false, std::memory_order_relaxed);  // ids follow order
  name_indexed_.store(false, std::memory_order_relaxed);
  sorted_.store(true, std::memory_order_release);
}

void Trace::EnsurePathIndex(int max_parallelism) const {
  if (path_indexed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (path_indexed_.load(std::memory_order_relaxed)) return;
  SortLocked();
  path_interner_.Clear();
  input_path_ids_.clear();
  output_path_ids_.clear();
  const size_t n = jobs_.size();
  const int lanes = ResolveParallelism(max_parallelism);
  if (n >= kParallelIndexThreshold && lanes > 1) {
    // Parallel in-place build: workers intern both path columns into one
    // shared table, recording provisional (interleaving-dependent) ids.
    input_path_ids_.assign(n, kNoStringId);
    output_path_ids_.assign(n, kNoStringId);
    ShardedInterner shared(n / 4);
    ParallelFor(
        0, n, kIndexGrain,
        [&](size_t chunk_begin, size_t chunk_end) {
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            const JobRecord& job = jobs_[i];
            if (!job.input_path.empty()) {
              input_path_ids_[i] = shared.Intern(job.input_path);
            }
            if (!job.output_path.empty()) {
              output_path_ids_[i] = shared.Intern(job.output_path);
            }
          }
        },
        lanes);
    // Serial canonical post-pass: walk rows in submit order (input before
    // output per job, same visit order as the serial build) and renumber
    // each provisional id to its first-appearance rank. The interner is
    // fed in that same order, so its contents — and the id columns — are
    // byte-identical to the serial build at any thread count.
    std::vector<std::string_view> views = shared.ViewsByProvisionalId();
    std::vector<uint32_t> canonical(views.size(), kNoStringId);
    path_interner_.Reserve(views.size());
    auto remap = [&](uint32_t& id) {
      if (id == kNoStringId) return;
      if (canonical[id] == kNoStringId) {
        canonical[id] = path_interner_.Intern(views[id]);
      }
      id = canonical[id];
    };
    for (size_t i = 0; i < n; ++i) {
      remap(input_path_ids_[i]);
      remap(output_path_ids_[i]);
    }
  } else {
    input_path_ids_.reserve(n);
    output_path_ids_.reserve(n);
    for (const auto& job : jobs_) {
      input_path_ids_.push_back(
          job.input_path.empty() ? kNoStringId
                                 : path_interner_.Intern(job.input_path));
      output_path_ids_.push_back(
          job.output_path.empty() ? kNoStringId
                                  : path_interner_.Intern(job.output_path));
    }
  }
  path_indexed_.store(true, std::memory_order_release);
}

void Trace::EnsureNameIndex(int max_parallelism) const {
  if (name_indexed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (name_indexed_.load(std::memory_order_relaxed)) return;
  SortLocked();
  name_interner_.Clear();
  name_ids_.clear();
  const size_t n = jobs_.size();
  const int lanes = ResolveParallelism(max_parallelism);
  if (n >= kParallelIndexThreshold && lanes > 1) {
    name_ids_.assign(n, kNoStringId);
    ShardedInterner shared(n / 8);
    ParallelFor(
        0, n, kIndexGrain,
        [&](size_t chunk_begin, size_t chunk_end) {
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            if (!jobs_[i].name.empty()) {
              name_ids_[i] = shared.Intern(jobs_[i].name);
            }
          }
        },
        lanes);
    std::vector<std::string_view> views = shared.ViewsByProvisionalId();
    std::vector<uint32_t> canonical(views.size(), kNoStringId);
    name_interner_.Reserve(views.size());
    for (size_t i = 0; i < n; ++i) {
      uint32_t& id = name_ids_[i];
      if (id == kNoStringId) continue;
      if (canonical[id] == kNoStringId) {
        canonical[id] = name_interner_.Intern(views[id]);
      }
      id = canonical[id];
    }
  } else {
    name_ids_.reserve(n);
    for (const auto& job : jobs_) {
      name_ids_.push_back(job.name.empty() ? kNoStringId
                                           : name_interner_.Intern(job.name));
    }
  }
  name_indexed_.store(true, std::memory_order_release);
}

Status Trace::Validate() const {
  for (const auto& job : jobs_) {
    std::string violation = ValidateJobRecord(job);
    if (!violation.empty()) {
      return InvalidArgumentError("job " + std::to_string(job.job_id) + ": " +
                                  violation);
    }
  }
  return Status::Ok();
}

double Trace::StartTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  return jobs_.front().submit_time;
}

double Trace::EndTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  double end = 0.0;
  for (const auto& job : jobs_) end = std::max(end, job.FinishTime());
  return end;
}

double Trace::Span() const { return EndTime() - StartTime(); }

std::vector<double> Trace::HourlyJobCounts() const {
  return HourlySeries([](const JobRecord&) { return 1.0; });
}

std::vector<double> Trace::HourlyBytes() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalBytes(); });
}

std::vector<double> Trace::HourlyTaskSeconds() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalTaskSeconds(); });
}

}  // namespace swim::trace

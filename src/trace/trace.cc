#include "trace/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace swim::trace {

void Trace::AddJob(JobRecord job) {
  if (!jobs_.empty() && job.submit_time < jobs_.back().submit_time) {
    sorted_ = false;
  }
  jobs_.push_back(std::move(job));
}

void Trace::SetJobs(std::vector<JobRecord> jobs) {
  jobs_ = std::move(jobs);
  sorted_ = false;
  EnsureSorted();
}

void Trace::EnsureSorted() const {
  if (sorted_) return;
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  sorted_ = true;
}

Status Trace::Validate() const {
  for (const auto& job : jobs_) {
    std::string violation = ValidateJobRecord(job);
    if (!violation.empty()) {
      return InvalidArgumentError("job " + std::to_string(job.job_id) + ": " +
                                  violation);
    }
  }
  return Status::Ok();
}

double Trace::StartTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  return jobs_.front().submit_time;
}

double Trace::EndTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  double end = 0.0;
  for (const auto& job : jobs_) end = std::max(end, job.FinishTime());
  return end;
}

double Trace::Span() const { return EndTime() - StartTime(); }

std::vector<double> Trace::HourlyJobCounts() const {
  return HourlySeries([](const JobRecord&) { return 1.0; });
}

std::vector<double> Trace::HourlyBytes() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalBytes(); });
}

std::vector<double> Trace::HourlyTaskSeconds() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalTaskSeconds(); });
}

}  // namespace swim::trace

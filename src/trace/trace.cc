#include "trace/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace swim::trace {

void Trace::AddJob(JobRecord job) {
  if (!jobs_.empty() && job.submit_time < jobs_.back().submit_time) {
    sorted_ = false;
  }
  jobs_.push_back(std::move(job));
  path_indexed_ = false;
  name_indexed_ = false;
}

void Trace::SetJobs(std::vector<JobRecord> jobs) {
  jobs_ = std::move(jobs);
  sorted_ = false;
  path_indexed_ = false;
  name_indexed_ = false;
  EnsureSorted();
}

void Trace::EnsureSorted() const {
  if (sorted_) return;
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  sorted_ = true;
  path_indexed_ = false;  // ids are assigned in sorted order
  name_indexed_ = false;
}

void Trace::EnsurePathIndex() const {
  if (path_indexed_) return;
  EnsureSorted();
  path_interner_.Clear();
  input_path_ids_.clear();
  output_path_ids_.clear();
  input_path_ids_.reserve(jobs_.size());
  output_path_ids_.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    input_path_ids_.push_back(
        job.input_path.empty() ? kNoStringId
                               : path_interner_.Intern(job.input_path));
    output_path_ids_.push_back(
        job.output_path.empty() ? kNoStringId
                                : path_interner_.Intern(job.output_path));
  }
  path_indexed_ = true;
}

void Trace::EnsureNameIndex() const {
  if (name_indexed_) return;
  EnsureSorted();
  name_interner_.Clear();
  name_ids_.clear();
  name_ids_.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    name_ids_.push_back(job.name.empty() ? kNoStringId
                                         : name_interner_.Intern(job.name));
  }
  name_indexed_ = true;
}

Status Trace::Validate() const {
  for (const auto& job : jobs_) {
    std::string violation = ValidateJobRecord(job);
    if (!violation.empty()) {
      return InvalidArgumentError("job " + std::to_string(job.job_id) + ": " +
                                  violation);
    }
  }
  return Status::Ok();
}

double Trace::StartTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  return jobs_.front().submit_time;
}

double Trace::EndTime() const {
  if (jobs_.empty()) return 0.0;
  EnsureSorted();
  double end = 0.0;
  for (const auto& job : jobs_) end = std::max(end, job.FinishTime());
  return end;
}

double Trace::Span() const { return EndTime() - StartTime(); }

std::vector<double> Trace::HourlyJobCounts() const {
  return HourlySeries([](const JobRecord&) { return 1.0; });
}

std::vector<double> Trace::HourlyBytes() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalBytes(); });
}

std::vector<double> Trace::HourlyTaskSeconds() const {
  return HourlySeries([](const JobRecord& j) { return j.TotalTaskSeconds(); });
}

}  // namespace swim::trace

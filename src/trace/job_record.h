#ifndef SWIM_TRACE_JOB_RECORD_H_
#define SWIM_TRACE_JOB_RECORD_H_

#include <cstdint>
#include <string>

namespace swim::trace {

/// One MapReduce job as recorded by Hadoop's per-job history logs - the
/// exact schema the paper analyzes (section 3): "job ID, job name,
/// input/shuffle/output data sizes, duration, submit time, map/reduce task
/// time (slot-seconds), map/reduce task counts, and input/output file
/// paths". String fields may be empty when the source trace lacks them
/// (e.g. FB-2010 has no job names and no output paths).
struct JobRecord {
  uint64_t job_id = 0;
  /// User- or framework-supplied name; empty when unavailable.
  std::string name;

  /// Submission time in seconds from trace start.
  double submit_time = 0.0;
  /// Wall-clock duration in seconds.
  double duration = 0.0;

  double input_bytes = 0.0;
  double shuffle_bytes = 0.0;
  double output_bytes = 0.0;

  int64_t map_tasks = 0;
  int64_t reduce_tasks = 0;
  /// Aggregate task occupancy in slot-seconds (a job with 2 map tasks of
  /// 10 s each has map_task_seconds == 20).
  double map_task_seconds = 0.0;
  double reduce_task_seconds = 0.0;

  /// HDFS paths (hashed in real traces); empty when unavailable.
  std::string input_path;
  std::string output_path;

  /// input + shuffle + output - the paper's per-job "bytes moved".
  double TotalBytes() const {
    return input_bytes + shuffle_bytes + output_bytes;
  }

  /// map + reduce slot-seconds - the paper's per-job "task time".
  double TotalTaskSeconds() const {
    return map_task_seconds + reduce_task_seconds;
  }

  /// Jobs with no reduce stage (no shuffle, no reduce tasks). The paper
  /// finds these in all but two workloads (7-77% of bytes).
  bool IsMapOnly() const {
    return reduce_tasks == 0 && shuffle_bytes == 0.0 &&
           reduce_task_seconds == 0.0;
  }

  double FinishTime() const { return submit_time + duration; }

  friend bool operator==(const JobRecord& a, const JobRecord& b) = default;
};

/// Validates basic invariants (non-negative sizes, times, counts).
/// Returns an explanatory string for the first violated invariant, or an
/// empty string when the record is valid.
std::string ValidateJobRecord(const JobRecord& job);

}  // namespace swim::trace

#endif  // SWIM_TRACE_JOB_RECORD_H_

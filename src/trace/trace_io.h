#ifndef SWIM_TRACE_TRACE_IO_H_
#define SWIM_TRACE_TRACE_IO_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "trace/trace.h"

namespace swim::trace {

/// CSV column order used by ReadTraceCsv / WriteTraceCsv. The first line of
/// a trace file must be exactly this header.
inline constexpr char kTraceCsvHeader[] =
    "job_id,name,submit_time,duration,input_bytes,shuffle_bytes,"
    "output_bytes,map_tasks,reduce_tasks,map_task_seconds,"
    "reduce_task_seconds,input_path,output_path";

/// How the parser reacts to malformed rows. Production history logs are
/// messy (the paper's section 4 traces contain truncated and garbled
/// records); strict mode is for trusted, machine-written files, the other
/// two are for ingesting real-world logs without aborting a multi-GB trace
/// on the first bad line.
enum class ParseMode {
  /// The earliest malformed row aborts the whole parse (historical
  /// behaviour; the reported line number is identical at any thread count).
  kStrict,
  /// Malformed rows are dropped and counted in the ParseReport.
  kSkip,
  /// Value-level problems (unparseable/non-finite numbers, negative sizes,
  /// task-seconds with zero tasks) are patched to the nearest valid value
  /// and the row is kept; structural problems (bad field count, unbalanced
  /// or mid-field quotes, bad job_id) cannot be repaired and are skipped.
  /// Every repaired row still satisfies ValidateJobRecord.
  kRepair,
};

/// Resolves a --on-error flag value ("strict" | "skip" | "repair").
StatusOr<ParseMode> ParseModeFromName(std::string_view name);
const char* ParseModeName(ParseMode mode);

/// Why a row was flagged. Structural categories are never repairable.
enum class ParseErrorKind {
  kUnbalancedQuote = 0,  // record ends inside an open quote
  kMidFieldQuote,        // quote in the middle of a field (ab"cd / "ab"cd)
  kFieldCount,           // row does not have exactly 13 fields
  kBadNumber,            // numeric field unparseable, non-finite, or job_id bad
  kInvalidRecord,        // fields parsed but violate record invariants
};
inline constexpr size_t kParseErrorKinds = 5;
const char* ParseErrorKindName(ParseErrorKind kind);

/// One per-row diagnostic. A row contributes at most one diagnostic (its
/// first problem, scanning fields left to right); repair mode may patch
/// several fields of that row but still reports it once.
struct ParseDiagnostic {
  /// 1-based physical line number where the record starts.
  int line = 0;
  ParseErrorKind kind = ParseErrorKind::kInvalidRecord;
  /// Offending column name; empty for row-level problems (quoting, count).
  std::string field;
  std::string reason;
  /// True when the row was patched and kept (kRepair), false when dropped.
  bool repaired = false;

  std::string ToString() const;
};

struct ParseOptions {
  ParseMode mode = ParseMode::kStrict;
  /// Cap on retained per-line diagnostics (counts are always exact; only
  /// the detailed list is bounded). Diagnostics are kept in line order.
  size_t max_diagnostics = 64;
  /// Parallel shard parse width; 0 = default from SWIM_THREADS / hardware,
  /// 1 = serial. The parsed trace and the ParseReport are byte-identical
  /// at any thread count.
  int threads = 0;
  /// When true, the path/name id indexes are built immediately after the
  /// parse (sharing this option's thread budget and, for large traces, the
  /// concurrent in-place interner) instead of lazily on first analytical
  /// use. Ids are byte-identical either way; this only moves the work to
  /// where the parse's parallelism is already spun up.
  bool warm_indexes = false;
};

/// Structured outcome of a lenient (kSkip / kRepair) parse. All counts are
/// exact; `diagnostics` holds the first `max_diagnostics` flagged rows in
/// line order. Deterministic: byte-identical for a given input at any
/// thread count.
struct ParseReport {
  ParseMode mode = ParseMode::kStrict;
  /// Data rows seen (blank lines and #comments excluded).
  size_t total_rows = 0;
  /// Rows that made it into the trace (includes repaired rows).
  size_t accepted = 0;
  /// Rows dropped as unusable.
  size_t skipped = 0;
  /// Rows patched and kept (subset of accepted).
  size_t repaired = 0;
  /// Flagged rows per category, indexed by ParseErrorKind. A row counts
  /// once, under its first problem.
  std::array<size_t, kParseErrorKinds> error_counts{};
  std::vector<ParseDiagnostic> diagnostics;
  /// Flagged rows beyond max_diagnostics whose details were not retained.
  size_t dropped_diagnostics = 0;

  size_t flagged() const { return skipped + repaired; }
  bool clean() const { return flagged() == 0; }
  /// Multi-line human-readable summary (stable across thread counts).
  std::string ToString() const;
};

/// Serializes a trace to CSV. Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180. Metadata (name/machines/year) is
/// stored in "#key=value" comment lines before the header.
Status WriteTraceCsv(const Trace& trace, const std::string& path);

/// Parses a CSV trace file produced by WriteTraceCsv (or hand-written with
/// the same schema). Strict mode rejects malformed rows with the offending
/// line number; see ParseMode for the lenient modes. `report`, when
/// non-null, receives the structured per-line outcome (useful in kSkip /
/// kRepair; in kStrict it is filled only on success, and is then clean).
/// Quoted fields may contain embedded newlines (records then span physical
/// lines); a trailing '\r' is stripped from each physical line end.
StatusOr<Trace> ReadTraceCsv(const std::string& path,
                             const ParseOptions& options,
                             ParseReport* report = nullptr);
StatusOr<Trace> TraceFromCsv(const std::string& csv_text,
                             const ParseOptions& options,
                             ParseReport* report = nullptr);

/// Strict-mode conveniences (historical signatures). `threads` bounds the
/// parallel shard parse as in ParseOptions::threads.
StatusOr<Trace> ReadTraceCsv(const std::string& path, int threads = 0);
StatusOr<Trace> TraceFromCsv(const std::string& csv_text, int threads = 0);

std::string TraceToCsv(const Trace& trace);

}  // namespace swim::trace

#endif  // SWIM_TRACE_TRACE_IO_H_

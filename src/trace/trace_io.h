#ifndef SWIM_TRACE_TRACE_IO_H_
#define SWIM_TRACE_TRACE_IO_H_

#include <string>

#include "common/statusor.h"
#include "trace/trace.h"

namespace swim::trace {

/// CSV column order used by ReadTraceCsv / WriteTraceCsv. The first line of
/// a trace file must be exactly this header.
inline constexpr char kTraceCsvHeader[] =
    "job_id,name,submit_time,duration,input_bytes,shuffle_bytes,"
    "output_bytes,map_tasks,reduce_tasks,map_task_seconds,"
    "reduce_task_seconds,input_path,output_path";

/// Serializes a trace to CSV. Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180. Metadata (name/machines/year) is
/// stored in "#key=value" comment lines before the header.
Status WriteTraceCsv(const Trace& trace, const std::string& path);

/// Parses a CSV trace file produced by WriteTraceCsv (or hand-written with
/// the same schema). Rejects malformed rows with the offending line number.
/// `threads` bounds the parallel shard parse (0 = default from SWIM_THREADS
/// / hardware, 1 = serial); the parsed trace — including which error and
/// line number is reported for malformed input — is identical at any
/// thread count.
StatusOr<Trace> ReadTraceCsv(const std::string& path, int threads = 0);

/// In-memory variants, used by tests and by tools that stream traces.
std::string TraceToCsv(const Trace& trace);
StatusOr<Trace> TraceFromCsv(const std::string& csv_text, int threads = 0);

}  // namespace swim::trace

#endif  // SWIM_TRACE_TRACE_IO_H_

#include "trace/frameworks.h"

#include <array>

namespace swim::trace {

std::string_view FrameworkName(Framework framework) {
  switch (framework) {
    case Framework::kHive:
      return "Hive";
    case Framework::kPig:
      return "Pig";
    case Framework::kOozie:
      return "Oozie";
    case Framework::kNative:
      return "Native";
  }
  return "Unknown";
}

Framework ClassifyFramework(std::string_view first_word) {
  // Hive emits the leading SQL keyword of the query as the job-name prefix.
  static constexpr std::array<std::string_view, 6> kHiveWords = {
      "insert", "select", "from", "create", "edw", "edwsequence"};
  for (auto w : kHiveWords) {
    if (first_word == w) return Framework::kHive;
  }
  if (first_word == "piglatin") return Framework::kPig;
  if (first_word == "oozie") return Framework::kOozie;
  return Framework::kNative;
}

}  // namespace swim::trace

#include "trace/job_record.h"

namespace swim::trace {

std::string ValidateJobRecord(const JobRecord& job) {
  if (job.submit_time < 0.0) return "negative submit_time";
  if (job.duration < 0.0) return "negative duration";
  if (job.input_bytes < 0.0) return "negative input_bytes";
  if (job.shuffle_bytes < 0.0) return "negative shuffle_bytes";
  if (job.output_bytes < 0.0) return "negative output_bytes";
  if (job.map_tasks < 0) return "negative map_tasks";
  if (job.reduce_tasks < 0) return "negative reduce_tasks";
  if (job.map_task_seconds < 0.0) return "negative map_task_seconds";
  if (job.reduce_task_seconds < 0.0) return "negative reduce_task_seconds";
  if (job.map_tasks == 0 && job.map_task_seconds > 0.0) {
    return "map_task_seconds > 0 with zero map_tasks";
  }
  if (job.reduce_tasks == 0 && job.reduce_task_seconds > 0.0) {
    return "reduce_task_seconds > 0 with zero reduce_tasks";
  }
  return "";
}

}  // namespace swim::trace

#include "trace/columnar.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/parallel.h"
#include "common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define SWIM_COLUMNAR_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace swim::trace {

// The format is defined little-endian and the encoder/decoder memcpy scalar
// columns directly; a big-endian port would need byte-swapping shims here.
static_assert(std::endian::native == std::endian::little,
              "STF1 encode/decode assumes a little-endian host");

namespace {

constexpr uint32_t kFlagHasNames = 1u << 0;
constexpr uint32_t kFlagHasInputPaths = 1u << 1;
constexpr uint32_t kFlagHasOutputPaths = 1u << 2;

/// Rows per materialization chunk; fixed so any per-chunk artifacts (none
/// today) stay thread-count-independent, matching the CSV parser's contract.
constexpr size_t kMaterializeGrain = 8192;

constexpr size_t Align(size_t offset) {
  return (offset + kStf1Alignment - 1) & ~(kStf1Alignment - 1);
}

/// Element width of each section's payload, indexed by Stf1SectionKind.
constexpr uint32_t kElementSize[kStf1SectionCount] = {
    8, 8, 8, 8, 8, 8, 8, 8, 8, 8,  // numeric job columns
    4, 4, 4,                       // dictionary-id columns
    8, 1, 8, 1,                    // name dict offsets/blob, path dict offsets/blob
    1,                             // trace name
};

/// Sections whose payload is exactly job_count * element_size bytes.
constexpr bool IsJobColumn(size_t kind) { return kind <= 12; }

Status CorruptError(const std::string& what) {
  return InvalidArgumentError("corrupt STF1 file: " + what);
}

/// Validates one persisted dictionary (offsets array + blob) and returns
/// the entry count. Offsets must start at 0, be nondecreasing, and end at
/// the blob size, so every id maps to a well-defined byte range.
StatusOr<size_t> ValidateDictionary(const unsigned char* offsets_data,
                                    size_t offsets_bytes,
                                    size_t blob_bytes, const char* which) {
  if (offsets_bytes < sizeof(uint64_t) ||
      offsets_bytes % sizeof(uint64_t) != 0) {
    return CorruptError(std::string(which) + " dictionary offsets malformed");
  }
  const size_t count = offsets_bytes / sizeof(uint64_t) - 1;
  if (count >= kNoStringId) {
    return CorruptError(std::string(which) + " dictionary too large");
  }
  const uint64_t* offsets = reinterpret_cast<const uint64_t*>(offsets_data);
  if (offsets[0] != 0 || offsets[count] != blob_bytes) {
    return CorruptError(std::string(which) +
                        " dictionary offsets do not bracket the blob");
  }
  for (size_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return CorruptError(std::string(which) +
                          " dictionary offsets not monotone");
    }
  }
  return count;
}

}  // namespace

const char* Stf1SectionKindName(Stf1SectionKind kind) {
  switch (kind) {
    case Stf1SectionKind::kJobId: return "job_id";
    case Stf1SectionKind::kSubmitTime: return "submit_time";
    case Stf1SectionKind::kDuration: return "duration";
    case Stf1SectionKind::kInputBytes: return "input_bytes";
    case Stf1SectionKind::kShuffleBytes: return "shuffle_bytes";
    case Stf1SectionKind::kOutputBytes: return "output_bytes";
    case Stf1SectionKind::kMapTasks: return "map_tasks";
    case Stf1SectionKind::kReduceTasks: return "reduce_tasks";
    case Stf1SectionKind::kMapTaskSeconds: return "map_task_seconds";
    case Stf1SectionKind::kReduceTaskSeconds: return "reduce_task_seconds";
    case Stf1SectionKind::kNameIds: return "name_ids";
    case Stf1SectionKind::kInputPathIds: return "input_path_ids";
    case Stf1SectionKind::kOutputPathIds: return "output_path_ids";
    case Stf1SectionKind::kNameDictOffsets: return "name_dict_offsets";
    case Stf1SectionKind::kNameDictBlob: return "name_dict_blob";
    case Stf1SectionKind::kPathDictOffsets: return "path_dict_offsets";
    case Stf1SectionKind::kPathDictBlob: return "path_dict_blob";
    case Stf1SectionKind::kTraceName: return "trace_name";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

std::string TraceToColumnarBytes(const Trace& trace) {
  // Touch the id accessors first: they sort the job stream and build the
  // canonical first-appearance indexes, so everything below reads one
  // consistent snapshot.
  const std::vector<uint32_t>& input_ids = trace.input_path_ids();
  const std::vector<uint32_t>& output_ids = trace.output_path_ids();
  const std::vector<uint32_t>& name_ids = trace.name_ids();
  const StringInterner& paths = trace.path_interner();
  const StringInterner& names = trace.name_interner();
  const std::vector<JobRecord>& jobs = trace.jobs();
  const TraceMetadata& meta = trace.metadata();
  const size_t n = jobs.size();

  // Dictionary offsets: entry i's bytes live at blob[offsets[i],
  // offsets[i+1]) — (count + 1) entries bracket the whole blob.
  auto dict_offsets = [](const StringInterner& interner) {
    std::vector<uint64_t> offsets(interner.size() + 1);
    uint64_t pos = 0;
    for (size_t i = 0; i < interner.size(); ++i) {
      offsets[i] = pos;
      pos += interner.NameOf(static_cast<uint32_t>(i)).size();
    }
    offsets[interner.size()] = pos;
    return offsets;
  };
  const std::vector<uint64_t> name_offsets = dict_offsets(names);
  const std::vector<uint64_t> path_offsets = dict_offsets(paths);

  size_t payload_bytes[kStf1SectionCount];
  for (size_t kind = 0; kind < kStf1SectionCount; ++kind) {
    if (IsJobColumn(kind)) payload_bytes[kind] = n * kElementSize[kind];
  }
  payload_bytes[static_cast<size_t>(Stf1SectionKind::kNameDictOffsets)] =
      name_offsets.size() * sizeof(uint64_t);
  payload_bytes[static_cast<size_t>(Stf1SectionKind::kNameDictBlob)] =
      name_offsets.back();
  payload_bytes[static_cast<size_t>(Stf1SectionKind::kPathDictOffsets)] =
      path_offsets.size() * sizeof(uint64_t);
  payload_bytes[static_cast<size_t>(Stf1SectionKind::kPathDictBlob)] =
      path_offsets.back();
  payload_bytes[static_cast<size_t>(Stf1SectionKind::kTraceName)] =
      meta.name.size();

  const size_t table_offset = sizeof(Stf1Header);
  const size_t table_bytes = kStf1SectionCount * sizeof(Stf1Section);
  size_t payload_offsets[kStf1SectionCount];
  size_t pos = Align(table_offset + table_bytes);
  for (size_t kind = 0; kind < kStf1SectionCount; ++kind) {
    payload_offsets[kind] = pos;
    pos = Align(pos + payload_bytes[kind]);
  }
  std::string out(pos, '\0');
  char* const base = out.data();

  // Numeric columns: one pass over the job stream, field stores compiled
  // from memcpy (the buffer is only 16-aligned, so no typed pointers).
  {
    char* job_id = base + payload_offsets[0];
    char* submit = base + payload_offsets[1];
    char* duration = base + payload_offsets[2];
    char* in_bytes = base + payload_offsets[3];
    char* shuffle = base + payload_offsets[4];
    char* out_bytes = base + payload_offsets[5];
    char* map_tasks = base + payload_offsets[6];
    char* reduce_tasks = base + payload_offsets[7];
    char* map_secs = base + payload_offsets[8];
    char* reduce_secs = base + payload_offsets[9];
    for (size_t i = 0; i < n; ++i) {
      const JobRecord& job = jobs[i];
      std::memcpy(job_id + i * 8, &job.job_id, 8);
      std::memcpy(submit + i * 8, &job.submit_time, 8);
      std::memcpy(duration + i * 8, &job.duration, 8);
      std::memcpy(in_bytes + i * 8, &job.input_bytes, 8);
      std::memcpy(shuffle + i * 8, &job.shuffle_bytes, 8);
      std::memcpy(out_bytes + i * 8, &job.output_bytes, 8);
      std::memcpy(map_tasks + i * 8, &job.map_tasks, 8);
      std::memcpy(reduce_tasks + i * 8, &job.reduce_tasks, 8);
      std::memcpy(map_secs + i * 8, &job.map_task_seconds, 8);
      std::memcpy(reduce_secs + i * 8, &job.reduce_task_seconds, 8);
    }
  }
  auto copy_section = [&](Stf1SectionKind kind, const void* data,
                          size_t bytes) {
    if (bytes > 0) {
      std::memcpy(base + payload_offsets[static_cast<size_t>(kind)], data,
                  bytes);
    }
  };
  copy_section(Stf1SectionKind::kNameIds, name_ids.data(), n * 4);
  copy_section(Stf1SectionKind::kInputPathIds, input_ids.data(), n * 4);
  copy_section(Stf1SectionKind::kOutputPathIds, output_ids.data(), n * 4);
  copy_section(Stf1SectionKind::kNameDictOffsets, name_offsets.data(),
               name_offsets.size() * sizeof(uint64_t));
  copy_section(Stf1SectionKind::kPathDictOffsets, path_offsets.data(),
               path_offsets.size() * sizeof(uint64_t));
  auto copy_blob = [&](Stf1SectionKind kind, const StringInterner& interner) {
    char* blob = base + payload_offsets[static_cast<size_t>(kind)];
    size_t written = 0;
    for (size_t i = 0; i < interner.size(); ++i) {
      std::string_view text = interner.NameOf(static_cast<uint32_t>(i));
      std::memcpy(blob + written, text.data(), text.size());
      written += text.size();
    }
  };
  copy_blob(Stf1SectionKind::kNameDictBlob, names);
  copy_blob(Stf1SectionKind::kPathDictBlob, paths);
  copy_section(Stf1SectionKind::kTraceName, meta.name.data(),
               meta.name.size());

  for (size_t kind = 0; kind < kStf1SectionCount; ++kind) {
    Stf1Section entry;
    entry.kind = static_cast<uint32_t>(kind);
    entry.element_size = kElementSize[kind];
    entry.offset = payload_offsets[kind];
    entry.bytes = payload_bytes[kind];
    entry.checksum =
        Checksum64(base + payload_offsets[kind], payload_bytes[kind]);
    std::memcpy(base + table_offset + kind * sizeof(Stf1Section), &entry,
                sizeof(entry));
  }

  Stf1Header header;
  header.job_count = n;
  header.flags = (meta.has_names ? kFlagHasNames : 0) |
                 (meta.has_input_paths ? kFlagHasInputPaths : 0) |
                 (meta.has_output_paths ? kFlagHasOutputPaths : 0);
  header.machines = meta.machines;
  header.year = meta.year;
  header.table_offset = table_offset;
  header.table_bytes = table_bytes;
  header.table_checksum = Checksum64(base + table_offset, table_bytes);
  std::memcpy(base, &header, offsetof(Stf1Header, header_checksum));
  header.header_checksum =
      Checksum64(base, offsetof(Stf1Header, header_checksum));
  std::memcpy(base, &header, sizeof(header));
  return out;
}

Status WriteTraceColumnar(const Trace& trace, const std::string& path) {
  const std::string bytes = TraceToColumnarBytes(trace);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (!out) return IoError("cannot open for writing: " + path);
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size()) {
    std::fclose(out);
    return IoError("write failed: " + path);
  }
  if (std::fflush(out) != 0) {
    std::fclose(out);
    return IoError("flush failed: " + path);
  }
#if defined(SWIM_COLUMNAR_HAS_MMAP)
  // One fsync for the whole file: the encoding was a single buffered
  // stream, so a crash leaves either the old file or a complete new one.
  if (fsync(fileno(out)) != 0) {
    std::fclose(out);
    return IoError("fsync failed: " + path);
  }
#endif
  if (std::fclose(out) != 0) return IoError("close failed: " + path);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// View
// ---------------------------------------------------------------------------

void ColumnarTraceView::AlignedFree::operator()(unsigned char* p) const {
  ::operator delete[](p, std::align_val_t{kStf1Alignment});
}

ColumnarTraceView::~ColumnarTraceView() {
#if defined(SWIM_COLUMNAR_HAS_MMAP)
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
}

ColumnarTraceView::ColumnarTraceView(ColumnarTraceView&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)),
      metadata_(std::move(other.metadata_)),
      job_count_(other.job_count_),
      name_count_(other.name_count_),
      path_count_(other.path_count_),
      sections_(other.sections_),
      section_bytes_(other.section_bytes_),
      section_checksums_(other.section_checksums_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

ColumnarTraceView& ColumnarTraceView::operator=(
    ColumnarTraceView&& other) noexcept {
  if (this == &other) return *this;
#if defined(SWIM_COLUMNAR_HAS_MMAP)
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  owned_ = std::move(other.owned_);
  metadata_ = std::move(other.metadata_);
  job_count_ = other.job_count_;
  name_count_ = other.name_count_;
  path_count_ = other.path_count_;
  sections_ = other.sections_;
  section_bytes_ = other.section_bytes_;
  section_checksums_ = other.section_checksums_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

StatusOr<ColumnarTraceView> ColumnarTraceView::Open(
    const std::string& path, const ColumnarOptions& options) {
  ColumnarTraceView view;
#if defined(SWIM_COLUMNAR_HAS_MMAP)
  if (options.allow_mmap) {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoError("cannot open for reading: " + path);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      close(fd);
      return IoError("cannot stat: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
      void* mapping = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      close(fd);
      if (mapping != MAP_FAILED) {
        view.data_ = static_cast<const unsigned char*>(mapping);
        view.size_ = size;
        view.mapped_ = true;
        Status status = view.Init();
        if (!status.ok()) return status;
        return view;
      }
      // mmap refused (unusual filesystem, resource limit): fall through to
      // the buffered read below, which yields an identical view.
    } else {
      close(fd);
      return CorruptError("empty file");
    }
  }
#endif
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return IoError("cannot open for reading: " + path);
  if (std::fseek(in, 0, SEEK_END) != 0) {
    std::fclose(in);
    return IoError("cannot seek: " + path);
  }
  const long end = std::ftell(in);
  if (end < 0) {
    std::fclose(in);
    return IoError("cannot tell: " + path);
  }
  std::rewind(in);
  const size_t size = static_cast<size_t>(end);
  if (size == 0) {
    std::fclose(in);
    return CorruptError("empty file");
  }
  std::unique_ptr<unsigned char[], AlignedFree> buffer(
      static_cast<unsigned char*>(
          ::operator new[](size, std::align_val_t{kStf1Alignment})));
  if (std::fread(buffer.get(), 1, size, in) != size) {
    std::fclose(in);
    return IoError("read failed: " + path);
  }
  std::fclose(in);
  view.data_ = buffer.get();
  view.size_ = size;
  view.mapped_ = false;
  view.owned_ = std::move(buffer);
  Status status = view.Init();
  if (!status.ok()) return status;
  return view;
}

StatusOr<ColumnarTraceView> ColumnarTraceView::FromBytes(
    std::string_view bytes) {
  if (bytes.empty()) return CorruptError("empty file");
  // Copy into an aligned buffer: callers hand arbitrary strings and the
  // column views require kStf1Alignment.
  std::unique_ptr<unsigned char[], AlignedFree> buffer(
      static_cast<unsigned char*>(
          ::operator new[](bytes.size(), std::align_val_t{kStf1Alignment})));
  std::memcpy(buffer.get(), bytes.data(), bytes.size());
  ColumnarTraceView view;
  view.data_ = buffer.get();
  view.size_ = bytes.size();
  view.mapped_ = false;
  view.owned_ = std::move(buffer);
  Status status = view.Init();
  if (!status.ok()) return status;
  return view;
}

Status ColumnarTraceView::Init() {
  if (size_ < sizeof(Stf1Header)) {
    return CorruptError("truncated: " + std::to_string(size_) +
                        " bytes, need a 64-byte header");
  }
  Stf1Header header;
  std::memcpy(&header, data_, sizeof(header));
  if (header.magic != kStf1Magic) {
    return CorruptError("bad magic (not an STF1 trace)");
  }
  if (Checksum64(data_, offsetof(Stf1Header, header_checksum)) !=
      header.header_checksum) {
    return CorruptError("header checksum mismatch");
  }
  if (header.version != kStf1Version) {
    return CorruptError("unsupported version " +
                        std::to_string(header.version) +
                        " (reader supports " + std::to_string(kStf1Version) +
                        ")");
  }
  if (header.section_count != kStf1SectionCount) {
    return CorruptError("unexpected section count " +
                        std::to_string(header.section_count));
  }
  if (header.table_offset % kStf1Alignment != 0 ||
      header.table_offset > size_ ||
      header.table_bytes != kStf1SectionCount * sizeof(Stf1Section) ||
      header.table_bytes > size_ - header.table_offset) {
    return CorruptError("section table out of bounds");
  }
  const unsigned char* table = data_ + header.table_offset;
  if (Checksum64(table, header.table_bytes) != header.table_checksum) {
    return CorruptError("section table checksum mismatch");
  }

  bool seen[kStf1SectionCount] = {};
  for (size_t i = 0; i < kStf1SectionCount; ++i) {
    Stf1Section entry;
    std::memcpy(&entry, table + i * sizeof(entry), sizeof(entry));
    if (entry.kind >= kStf1SectionCount) {
      return CorruptError("unknown section kind " +
                          std::to_string(entry.kind));
    }
    const char* name =
        Stf1SectionKindName(static_cast<Stf1SectionKind>(entry.kind));
    if (seen[entry.kind]) {
      return CorruptError(std::string("duplicate section ") + name);
    }
    seen[entry.kind] = true;
    if (entry.element_size != kElementSize[entry.kind]) {
      return CorruptError(std::string("wrong element size for section ") +
                          name);
    }
    if (entry.offset % kStf1Alignment != 0 || entry.offset > size_ ||
        entry.bytes > size_ - entry.offset) {
      return CorruptError(std::string("section ") + name + " out of bounds");
    }
    if (IsJobColumn(entry.kind) &&
        (entry.bytes % entry.element_size != 0 ||
         entry.bytes / entry.element_size != header.job_count)) {
      return CorruptError(std::string("section ") + name +
                          " does not match the job count");
    }
    sections_[entry.kind] = data_ + entry.offset;
    section_bytes_[entry.kind] = entry.bytes;
    section_checksums_[entry.kind] = entry.checksum;
  }
  for (size_t kind = 0; kind < kStf1SectionCount; ++kind) {
    if (!seen[kind]) {
      return CorruptError(
          std::string("missing section ") +
          Stf1SectionKindName(static_cast<Stf1SectionKind>(kind)));
    }
  }

  SWIM_ASSIGN_OR_RETURN(
      name_count_,
      ValidateDictionary(SectionData(Stf1SectionKind::kNameDictOffsets),
                         SectionBytes(Stf1SectionKind::kNameDictOffsets),
                         SectionBytes(Stf1SectionKind::kNameDictBlob),
                         "name"));
  SWIM_ASSIGN_OR_RETURN(
      path_count_,
      ValidateDictionary(SectionData(Stf1SectionKind::kPathDictOffsets),
                         SectionBytes(Stf1SectionKind::kPathDictOffsets),
                         SectionBytes(Stf1SectionKind::kPathDictBlob),
                         "path"));

  job_count_ = header.job_count;
  metadata_.name.assign(
      reinterpret_cast<const char*>(SectionData(Stf1SectionKind::kTraceName)),
      SectionBytes(Stf1SectionKind::kTraceName));
  metadata_.machines = header.machines;
  metadata_.year = header.year;
  metadata_.has_names = (header.flags & kFlagHasNames) != 0;
  metadata_.has_input_paths = (header.flags & kFlagHasInputPaths) != 0;
  metadata_.has_output_paths = (header.flags & kFlagHasOutputPaths) != 0;
  return Status::Ok();
}

#define SWIM_COLUMN_ACCESSOR(method, kind, type)                       \
  Span<const type> ColumnarTraceView::method() const {                 \
    return Span<const type>(                                           \
        reinterpret_cast<const type*>(SectionData(Stf1SectionKind::kind)), \
        job_count_);                                                   \
  }

SWIM_COLUMN_ACCESSOR(job_ids, kJobId, uint64_t)
SWIM_COLUMN_ACCESSOR(submit_times, kSubmitTime, double)
SWIM_COLUMN_ACCESSOR(durations, kDuration, double)
SWIM_COLUMN_ACCESSOR(input_bytes, kInputBytes, double)
SWIM_COLUMN_ACCESSOR(shuffle_bytes, kShuffleBytes, double)
SWIM_COLUMN_ACCESSOR(output_bytes, kOutputBytes, double)
SWIM_COLUMN_ACCESSOR(map_tasks, kMapTasks, int64_t)
SWIM_COLUMN_ACCESSOR(reduce_tasks, kReduceTasks, int64_t)
SWIM_COLUMN_ACCESSOR(map_task_seconds, kMapTaskSeconds, double)
SWIM_COLUMN_ACCESSOR(reduce_task_seconds, kReduceTaskSeconds, double)
SWIM_COLUMN_ACCESSOR(name_ids, kNameIds, uint32_t)
SWIM_COLUMN_ACCESSOR(input_path_ids, kInputPathIds, uint32_t)
SWIM_COLUMN_ACCESSOR(output_path_ids, kOutputPathIds, uint32_t)

#undef SWIM_COLUMN_ACCESSOR

std::string_view ColumnarTraceView::NameAt(uint32_t id) const {
  const uint64_t* offsets = reinterpret_cast<const uint64_t*>(
      SectionData(Stf1SectionKind::kNameDictOffsets));
  const char* blob = reinterpret_cast<const char*>(
      SectionData(Stf1SectionKind::kNameDictBlob));
  return std::string_view(blob + offsets[id],
                          offsets[id + 1] - offsets[id]);
}

std::string_view ColumnarTraceView::PathAt(uint32_t id) const {
  const uint64_t* offsets = reinterpret_cast<const uint64_t*>(
      SectionData(Stf1SectionKind::kPathDictOffsets));
  const char* blob = reinterpret_cast<const char*>(
      SectionData(Stf1SectionKind::kPathDictBlob));
  return std::string_view(blob + offsets[id],
                          offsets[id + 1] - offsets[id]);
}

Status ColumnarTraceView::VerifyChecksums() const {
  for (size_t kind = 0; kind < kStf1SectionCount; ++kind) {
    if (Checksum64(sections_[kind], section_bytes_[kind]) !=
        section_checksums_[kind]) {
      return CorruptError(
          std::string("section ") +
          Stf1SectionKindName(static_cast<Stf1SectionKind>(kind)) +
          " checksum mismatch");
    }
  }
  return Status::Ok();
}

StatusOr<Trace> ColumnarTraceView::Materialize(int max_parallelism) const {
  const size_t n = job_count_;
  const Span<const uint64_t> job_id = job_ids();
  const Span<const double> submit = submit_times();
  const Span<const double> duration = durations();
  const Span<const double> in_bytes = input_bytes();
  const Span<const double> shuffle = shuffle_bytes();
  const Span<const double> out_bytes = output_bytes();
  const Span<const int64_t> map_task = map_tasks();
  const Span<const int64_t> reduce_task = reduce_tasks();
  const Span<const double> map_secs = map_task_seconds();
  const Span<const double> reduce_secs = reduce_task_seconds();
  const Span<const uint32_t> name_id = name_ids();
  const Span<const uint32_t> in_id = input_path_ids();
  const Span<const uint32_t> out_id = output_path_ids();

  // Row materialization fans out over fixed-size chunks; each chunk stops
  // at its first bad row and the lowest-index chunk's error wins, so the
  // reported row is the earliest one at any thread count.
  std::vector<JobRecord> jobs(n);
  const size_t chunk_count = (n + kMaterializeGrain - 1) / kMaterializeGrain;
  std::vector<Status> chunk_status(chunk_count, Status::Ok());
  ParallelFor(
      0, n, kMaterializeGrain,
      [&](size_t lo, size_t hi) {
        Status& status = chunk_status[lo / kMaterializeGrain];
        for (size_t i = lo; i < hi; ++i) {
          JobRecord& job = jobs[i];
          job.job_id = job_id[i];
          job.submit_time = submit[i];
          job.duration = duration[i];
          job.input_bytes = in_bytes[i];
          job.shuffle_bytes = shuffle[i];
          job.output_bytes = out_bytes[i];
          job.map_tasks = map_task[i];
          job.reduce_tasks = reduce_task[i];
          job.map_task_seconds = map_secs[i];
          job.reduce_task_seconds = reduce_secs[i];
          if (!std::isfinite(job.submit_time) ||
              !std::isfinite(job.duration) ||
              !std::isfinite(job.input_bytes) ||
              !std::isfinite(job.shuffle_bytes) ||
              !std::isfinite(job.output_bytes) ||
              !std::isfinite(job.map_task_seconds) ||
              !std::isfinite(job.reduce_task_seconds)) {
            status = CorruptError("row " + std::to_string(i) +
                                  ": non-finite value");
            return;
          }
          if (name_id[i] != kNoStringId && name_id[i] >= name_count_) {
            status = CorruptError("row " + std::to_string(i) +
                                  ": out-of-range name dictionary id");
            return;
          }
          if (in_id[i] != kNoStringId && in_id[i] >= path_count_) {
            status = CorruptError("row " + std::to_string(i) +
                                  ": out-of-range input path dictionary id");
            return;
          }
          if (out_id[i] != kNoStringId && out_id[i] >= path_count_) {
            status = CorruptError("row " + std::to_string(i) +
                                  ": out-of-range output path dictionary id");
            return;
          }
          if (name_id[i] != kNoStringId) {
            job.name = std::string(NameAt(name_id[i]));
          }
          if (in_id[i] != kNoStringId) {
            job.input_path = std::string(PathAt(in_id[i]));
          }
          if (out_id[i] != kNoStringId) {
            job.output_path = std::string(PathAt(out_id[i]));
          }
          std::string violation = ValidateJobRecord(job);
          if (!violation.empty()) {
            status = CorruptError("row " + std::to_string(i) + ": " +
                                  violation);
            return;
          }
        }
      },
      max_parallelism);
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }

  Trace trace(metadata_);

  // The id columns can be adopted as the trace's lazy indexes only when
  // they are exactly what the lazy build would produce: the job stream
  // sorted by submit time, dictionaries duplicate-free, ids in
  // first-appearance order (input before output per row), empty fields
  // mapped to kNoStringId, and no orphan dictionary entries. Files we wrote
  // always satisfy this; a foreign or damaged file that does not simply
  // falls back to SetJobs and rebuilds lazily.
  bool adoptable = true;
  for (size_t i = 0; i + 1 < n; ++i) {
    if (submit[i] > submit[i + 1]) {
      adoptable = false;
      break;
    }
  }
  if (adoptable) {
    uint32_t next_path = 0;
    uint32_t next_name = 0;
    auto canonical = [](uint32_t id, uint32_t* next) {
      if (id == *next) {
        ++(*next);
        return true;
      }
      return id < *next;
    };
    for (size_t i = 0; i < n && adoptable; ++i) {
      if (name_id[i] != kNoStringId) {
        adoptable = canonical(name_id[i], &next_name) &&
                    !NameAt(name_id[i]).empty();
      }
      if (adoptable && in_id[i] != kNoStringId) {
        adoptable = canonical(in_id[i], &next_path) &&
                    !PathAt(in_id[i]).empty();
      }
      if (adoptable && out_id[i] != kNoStringId) {
        adoptable = canonical(out_id[i], &next_path) &&
                    !PathAt(out_id[i]).empty();
      }
      if (adoptable) {
        adoptable = (name_id[i] != kNoStringId) != jobs[i].name.empty() &&
                    (in_id[i] != kNoStringId) != jobs[i].input_path.empty() &&
                    (out_id[i] != kNoStringId) != jobs[i].output_path.empty();
      }
    }
    adoptable = adoptable && next_path == path_count_ &&
                next_name == name_count_;
  }
  if (!adoptable) {
    trace.SetJobs(std::move(jobs));
    return trace;
  }

  StringInterner path_interner;
  path_interner.Reserve(path_count_);
  for (size_t i = 0; i < path_count_; ++i) {
    if (path_interner.Intern(PathAt(static_cast<uint32_t>(i))) != i) {
      // Duplicate dictionary entry: consistent rows, non-canonical dict.
      trace.SetJobs(std::move(jobs));
      return trace;
    }
  }
  StringInterner name_interner;
  name_interner.Reserve(name_count_);
  for (size_t i = 0; i < name_count_; ++i) {
    if (name_interner.Intern(NameAt(static_cast<uint32_t>(i))) != i) {
      trace.SetJobs(std::move(jobs));
      return trace;
    }
  }
  trace.SetJobsWithIndexes(
      std::move(jobs), std::move(path_interner),
      std::vector<uint32_t>(in_id.begin(), in_id.end()),
      std::vector<uint32_t>(out_id.begin(), out_id.end()),
      std::move(name_interner),
      std::vector<uint32_t>(name_id.begin(), name_id.end()));
  return trace;
}

StatusOr<Trace> TraceFromColumnarBytes(std::string_view bytes,
                                       const ColumnarOptions& options) {
  SWIM_ASSIGN_OR_RETURN(ColumnarTraceView view,
                        ColumnarTraceView::FromBytes(bytes));
  if (options.verify_checksums) {
    SWIM_RETURN_IF_ERROR(view.VerifyChecksums());
  }
  return view.Materialize(options.threads);
}

StatusOr<Trace> LoadTraceColumnar(const std::string& path,
                                  const ColumnarOptions& options) {
  SWIM_ASSIGN_OR_RETURN(ColumnarTraceView view,
                        ColumnarTraceView::Open(path, options));
  if (options.verify_checksums) {
    SWIM_RETURN_IF_ERROR(view.VerifyChecksums());
  }
  return view.Materialize(options.threads);
}

// ---------------------------------------------------------------------------
// Auto-sniffing
// ---------------------------------------------------------------------------

const char* TraceFormatName(TraceFormat format) {
  switch (format) {
    case TraceFormat::kCsv:
      return "csv";
    case TraceFormat::kStf1:
      return "stf1";
  }
  return "?";
}

StatusOr<TraceFormat> SniffTraceFormat(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return IoError("cannot open for reading: " + path);
  uint32_t magic = 0;
  const size_t got = std::fread(&magic, 1, sizeof(magic), in);
  std::fclose(in);
  if (got == 0) {
    // An empty file is neither format; classifying it as CSV would defer
    // to the row parser's less specific "missing header" diagnostic.
    return InvalidArgumentError("empty trace file: " + path);
  }
  if (got == sizeof(magic) && magic == kStf1Magic) return TraceFormat::kStf1;
  return TraceFormat::kCsv;
}

StatusOr<Trace> ReadTraceAuto(const std::string& path,
                              const ParseOptions& parse_options,
                              ParseReport* report,
                              const ColumnarOptions& columnar_options) {
  SWIM_ASSIGN_OR_RETURN(TraceFormat format, SniffTraceFormat(path));
  if (format == TraceFormat::kCsv) {
    return ReadTraceCsv(path, parse_options, report);
  }
  ColumnarOptions options = columnar_options;
  if (options.threads == 0) options.threads = parse_options.threads;
  SWIM_ASSIGN_OR_RETURN(Trace trace, LoadTraceColumnar(path, options));
  if (report) {
    *report = ParseReport{};
    report->mode = parse_options.mode;
    report->total_rows = trace.size();
    report->accepted = trace.size();
  }
  return trace;
}

bool HasColumnarExtension(std::string_view path) {
  const std::string lower = ToLower(path);
  return EndsWith(lower, ".stf") || EndsWith(lower, ".stf1");
}

Status WriteTraceAuto(const Trace& trace, const std::string& path) {
  if (HasColumnarExtension(path)) return WriteTraceColumnar(trace, path);
  return WriteTraceCsv(trace, path);
}

}  // namespace swim::trace

#ifndef SWIM_WORKLOADS_WORKLOAD_SPEC_H_
#define SWIM_WORKLOADS_WORKLOAD_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace swim::workloads {

/// A weighted job-name first word. `weight` is relative within the owning
/// job type; words are chosen per job and decorated by the name generator.
struct NameWeight {
  std::string word;
  double weight = 1.0;
};

/// One generative job class - a row of the paper's Table 2 used in the
/// forward direction: cluster centers become the medians of a lognormal
/// mixture component, and cluster sizes become mixture weights.
struct JobTypeSpec {
  std::string label;
  /// Relative share of job count (Table 2 "# Jobs" column).
  double count_weight = 0.0;

  /// Component medians. Zero means "exactly zero" (e.g. map-only jobs have
  /// shuffle_bytes == 0), not a small lognormal.
  double input_bytes = 0.0;
  double shuffle_bytes = 0.0;
  double output_bytes = 0.0;
  double duration_seconds = 0.0;
  double map_task_seconds = 0.0;
  double reduce_task_seconds = 0.0;

  /// Geometric spread around the medians (sigma of the log-normal, in
  /// natural log units). Intra-class spread in real traces is wide but far
  /// narrower than the 10-orders-of-magnitude inter-class spread.
  double log_sigma = 0.8;

  /// First words for names of jobs in this class. Empty falls back to the
  /// workload-level default grammar.
  std::vector<NameWeight> name_words;
};

/// Shape of the job arrival process (section 5).
struct ArrivalSpec {
  /// Amplitude of the 24-hour cycle in [0, 1); 0 disables diurnality.
  double diurnal_strength = 0.0;
  /// Multiplier applied to Saturday/Sunday rates (1 = no weekly pattern).
  double weekend_factor = 1.0;
  /// Sigma of the AR(1) lognormal modulation of the hourly rate - the
  /// burstiness knob. Larger values widen the percentile-to-median curve
  /// (Figure 8).
  double burst_log_sigma = 0.8;
  /// Hour-to-hour autocorrelation of the burst process in [0, 1).
  double burst_autocorrelation = 0.5;
  /// Documentation/calibration target from the paper (not enforced).
  double peak_to_median_target = 0.0;
};

/// Shape of the HDFS file population and its access process (section 4).
struct FilePopulationSpec {
  /// Distinct input files the workload draws from.
  size_t input_files = 10000;
  /// Zipf exponent for file popularity; the paper measures ~5/6 everywhere.
  double zipf_slope = 5.0 / 6.0;
  /// Probability that a job's input is a re-access of an existing input
  /// file (vs a never-before-seen file). Drives Figure 6.
  double input_reaccess_fraction = 0.3;
  /// Probability that a job reads a pre-existing *output* of an earlier job
  /// (chained computations). Drives Figure 6's second bar.
  double output_reaccess_fraction = 0.1;
  /// Probability that a re-access targets a recently used file rather than
  /// a popularity-ranked draw; with `recency_halflife_seconds` this shapes
  /// the re-access interval CDF (Figure 5).
  double recency_bias = 0.6;
  double recency_halflife_seconds = 3 * 3600.0;
  /// Jobs whose input exceeds this threshold mostly scan dedicated cold
  /// files (their re-access probabilities are multiplied by
  /// `large_job_reaccess_scale`). This reproduces the paper's storage
  /// skew: accesses concentrate on small hot files while most stored
  /// bytes sit in rarely-read large files (Figures 3/4, the 80-X rule).
  double large_job_bytes = 100e9;
  double large_job_reaccess_scale = 0.1;
  /// Only jobs writing less than this share the repeatedly-rewritten
  /// "hot" output destinations; bigger writers get dedicated paths (daily
  /// partition directories). Keeps popular output files small, matching
  /// Figure 4's stored-bytes skew.
  double hot_output_max_bytes = 1e9;
};

/// Which optional trace columns the source deployment logged; mirrors the
/// gaps in the paper's Table/Figure footnotes (e.g. FB-2010 lacks names and
/// output paths, FB-2009 and CC-a lack paths entirely).
struct TraceColumnAvailability {
  bool names = true;
  bool input_paths = true;
  bool output_paths = true;
};

/// Full declarative description of one workload; `paper_workloads.h`
/// provides the seven calibrated instances.
struct WorkloadSpec {
  trace::TraceMetadata metadata;
  /// Total jobs over the full span (Table 1).
  size_t total_jobs = 0;
  /// Trace length in seconds (Table 1).
  double span_seconds = 0.0;

  std::vector<JobTypeSpec> job_types;
  /// Default name grammar for job types without their own.
  std::vector<NameWeight> default_name_words;
  ArrivalSpec arrival;
  FilePopulationSpec files;
  TraceColumnAvailability columns;
};

/// Checks structural validity (positive totals, weights, spans; non-empty
/// mixture; probabilities in range).
Status ValidateSpec(const WorkloadSpec& spec);

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_WORKLOAD_SPEC_H_

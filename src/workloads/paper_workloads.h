#ifndef SWIM_WORKLOADS_PAPER_WORKLOADS_H_
#define SWIM_WORKLOADS_PAPER_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "workloads/workload_spec.h"

namespace swim::workloads {

/// The seven workloads the paper analyzes, as calibrated generator specs:
/// CC-a .. CC-e (Cloudera customers in e-commerce, telecom, media, retail)
/// and FB-2009 / FB-2010 (the same Facebook cluster two years apart).
///
/// Calibration sources, all from the paper:
///  - Table 1: total jobs, trace span, cluster size, year.
///  - Table 2: job classes (mixture medians and weights, labels).
///  - Figure 2: Zipf file-popularity slope ~ 5/6.
///  - Figures 5/6: re-access recency half-life and re-access fractions.
///  - Figure 8 / section 5.2: burstiness (peak-to-median targets; FB-2009
///    31:1, FB-2010 9:1, overall range 9:1 - 260:1).
///  - Figure 10: job-name first words and framework mix.
///  - Section 5.1: visible diurnality for FB-2010 submissions and CC-e.
std::vector<WorkloadSpec> AllPaperWorkloads();

/// Looks up one of the seven specs by Table 1 name ("FB-2009", "CC-a", ...).
StatusOr<WorkloadSpec> PaperWorkloadByName(const std::string& name);

/// Names of all seven workloads in Table 1 order.
std::vector<std::string> PaperWorkloadNames();

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_PAPER_WORKLOADS_H_

#include "workloads/file_population.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

namespace swim::workloads {
namespace {

std::string HotInputPath(size_t rank) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "in/h%06zu", rank);
  return buffer;
}

// Hot universe for large scans (big warehouse tables, re-read daily).
// Kept disjoint from the small-job universe so the size of a popular small
// file is never inflated by one TB-scale scan of the same path.
std::string HotLargeInputPath(size_t rank) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "in/H%06zu", rank);
  return buffer;
}

std::string HotOutputPath(size_t rank) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "out/h%06zu", rank);
  return buffer;
}

}  // namespace

FilePopulationSim::AccessHistory::AccessHistory(double halflife_seconds)
    : rate_(std::numbers::ln2 / halflife_seconds) {}

void FilePopulationSim::AccessHistory::Record(double time,
                                              const std::string& path) {
  // Outputs become available at job *finish* time, which is not monotone in
  // submission order; clamp to keep the ascending invariant binary search
  // relies on (distortion is negligible - most jobs run for seconds).
  if (!times_.empty() && time < times_.back()) time = times_.back();
  times_.push_back(time);
  paths_.push_back(path);
}

const std::string& FilePopulationSim::AccessHistory::SampleRecent(
    double now, Pcg32& rng) const {
  double age = rng.NextExponential(rate_);
  double target = now - age;
  auto it = std::lower_bound(times_.begin(), times_.end(), target);
  size_t index = static_cast<size_t>(it - times_.begin());
  if (index >= times_.size()) index = times_.size() - 1;
  // Avoid handing out entries "from the future" (long-running producers
  // whose clamped record time exceeds `now`).
  while (index > 0 && times_[index] > now) --index;
  return paths_[index];
}

FilePopulationSim::FilePopulationSim(const FilePopulationSpec& spec,
                                     const TraceColumnAvailability& columns,
                                     Pcg32 rng)
    : spec_(spec),
      columns_(columns),
      rng_(rng),
      input_popularity_(spec.input_files, spec.zipf_slope),
      large_input_popularity_(std::max<size_t>(1, spec.input_files / 8),
                              spec.zipf_slope),
      output_popularity_(std::max<size_t>(1, spec.input_files / 4),
                         spec.zipf_slope),
      input_history_(spec.recency_halflife_seconds),
      output_history_(spec.recency_halflife_seconds) {}

void FilePopulationSim::AssignPaths(trace::JobRecord& job) {
  if (columns_.input_paths) {
    const bool is_large_scan = job.input_bytes > spec_.large_job_bytes;
    double branch = rng_.NextDouble();
    // Large scans mostly hit dedicated cold files (see
    // FilePopulationSpec::large_job_bytes): shrink their re-access odds.
    if (is_large_scan && spec_.large_job_reaccess_scale < 1.0) {
      branch /= spec_.large_job_reaccess_scale;
    }
    if (is_large_scan &&
        branch < spec_.output_reaccess_fraction +
                     spec_.input_reaccess_fraction) {
      // Re-scanned big table from the dedicated large-file universe.
      job.input_path = HotLargeInputPath(large_input_popularity_.Sample(rng_));
    } else if (branch < spec_.output_reaccess_fraction &&
               !output_history_.empty()) {
      // Chained computation: read an earlier job's output.
      job.input_path = output_history_.SampleRecent(job.submit_time, rng_);
    } else if (branch < spec_.output_reaccess_fraction +
                            spec_.input_reaccess_fraction) {
      if (rng_.NextBernoulli(spec_.recency_bias) && !input_history_.empty()) {
        job.input_path = input_history_.SampleRecent(job.submit_time, rng_);
      } else {
        job.input_path = HotInputPath(input_popularity_.Sample(rng_));
      }
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "in/f%08zu", fresh_inputs_++);
      job.input_path = buffer;
    }
    input_history_.Record(job.submit_time, job.input_path);
  }
  if (columns_.output_paths && job.output_bytes > 0.0) {
    // Large writers land in dedicated destinations (daily partition dirs),
    // never in the small-job hot-output universe - otherwise one big write
    // would inflate the recorded size of a popular small output.
    if (job.output_bytes <= spec_.hot_output_max_bytes &&
        rng_.NextBernoulli(0.45)) {
      job.output_path = HotOutputPath(output_popularity_.Sample(rng_));
    } else {
      job.output_path = "out/j" + std::to_string(job.job_id);
    }
    output_history_.Record(job.FinishTime(), job.output_path);
  }
}

}  // namespace swim::workloads

#ifndef SWIM_WORKLOADS_NAME_GENERATOR_H_
#define SWIM_WORKLOADS_NAME_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace swim::workloads {

/// Expands a first word into a full job name with framework-appropriate
/// decoration, e.g. "insert" -> "INSERT OVERWRITE TABLE t_417(Stage-1)"
/// (Hive), "piglatin" -> "PigLatin:report_417.pig" (Pig),
/// "oozie" -> "oozie:launcher:T=map-reduce:W=wf-417". The decoration
/// matters only for realism: the paper's section 6.1 analysis reduces names
/// back to the lowercased first word.
std::string DecorateJobName(const std::string& first_word, uint64_t job_id,
                            Pcg32& rng);

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_NAME_GENERATOR_H_

#include "workloads/paper_workloads.h"

#include "common/logging.h"
#include "common/units.h"

namespace swim::workloads {
namespace {

/// Shorthand for a Table 2 row. Durations/medians are the paper's values
/// converted to seconds/bytes.
JobTypeSpec Row(std::string label, double count, double input, double shuffle,
                double output, double duration, double map_secs,
                double reduce_secs,
                std::vector<NameWeight> name_words = {}) {
  JobTypeSpec jt;
  jt.label = std::move(label);
  jt.count_weight = count;
  jt.input_bytes = input;
  jt.shuffle_bytes = shuffle;
  jt.output_bytes = output;
  jt.duration_seconds = duration;
  jt.map_task_seconds = map_secs;
  jt.reduce_task_seconds = reduce_secs;
  jt.name_words = std::move(name_words);
  return jt;
}

WorkloadSpec MakeCcA() {
  WorkloadSpec spec;
  spec.metadata.name = "CC-a";
  spec.metadata.machines = 80;  // Table 1 says "<100"
  spec.metadata.year = 2011;
  spec.total_jobs = 5759;
  spec.span_seconds = 30 * kDay;
  // Table 2, CC-a.
  spec.job_types = {
      Row("Small jobs", 5525, 51 * kMB, 0, 3.9 * kMB, 39, 33, 0),
  };
  // CC-a is the sparsest cluster (~8 jobs/hour); its k-means "Small jobs"
  // class absorbs a wide range of member sizes, so give it a wider
  // intra-class spread than the default.
  spec.job_types[0].log_sigma = 1.4;
  spec.job_types.push_back(Row("Transform", 194, 14 * kGB, 12 * kGB,
                               10 * kGB, 35 * kMinute, 65100, 15410));
  spec.job_types.push_back(Row("Map only, huge", 31, 1.2 * kTB, 0, 27 * kGB,
                               2.5 * kHour, 437615, 0,
                               {{"distcp", 1}, {"snapshot", 1}}));
  spec.job_types.push_back(Row("Transform and aggregate", 9, 273 * kGB,
                               185 * kGB, 21 * kMB, 4.5 * kHour, 191351,
                               831181, {{"piglatin", 2}, {"insert", 1}}));
  // Figure 10: Pig and Oozie dominate; media-industry extractor jobs.
  spec.default_name_words = {
      {"piglatin", 34}, {"oozie", 24},    {"insert", 10}, {"select", 8},
      {"twitch", 8},    {"snapshot", 6},  {"ad", 4},      {"cascade", 3},
      {"hourly", 2},    {"parallel", 1},
  };
  spec.arrival.diurnal_strength = 0.2;
  spec.arrival.weekend_factor = 0.9;
  spec.arrival.burst_log_sigma = 1.6;
  spec.arrival.burst_autocorrelation = 0.3;
  spec.arrival.peak_to_median_target = 260.0;
  // CC-a's trace carries no file paths.
  spec.columns.input_paths = false;
  spec.columns.output_paths = false;
  spec.files.input_files = 2000;
  return spec;
}

WorkloadSpec MakeCcB() {
  WorkloadSpec spec;
  spec.metadata.name = "CC-b";
  spec.metadata.machines = 300;
  spec.metadata.year = 2011;
  spec.total_jobs = 22974;
  spec.span_seconds = 9 * kDay;
  spec.job_types = {
      Row("Small jobs", 21210, 4.6 * kKB, 0, 4.7 * kKB, 23, 11, 0),
      Row("Transform, small", 1565, 41 * kGB, 10 * kGB, 2.1 * kGB,
          4 * kMinute, 15837, 12392),
      Row("Transform, medium", 165, 123 * kGB, 43 * kGB, 13 * kGB,
          6 * kMinute, 36265, 31389),
      Row("Aggregate and transform", 31, 4.7 * kTB, 374 * kMB, 24 * kMB,
          9 * kMinute, 876786, 705, {{"flow", 1}, {"select", 1}}),
      Row("Aggregate", 3, 600 * kGB, 1.6 * kGB, 550 * kMB,
          6 * kHour + 45 * kMinute, 3092977, 230976,
          {{"bmdailyjob", 1}, {"flow", 1}}),
  };
  spec.default_name_words = {
      {"oozie", 28},      {"piglatin", 30}, {"select", 12}, {"insert", 8},
      {"flow", 8},        {"importjob", 5}, {"bmdailyjob", 4},
      {"metrodataextractor", 3}, {"distcp", 2},
  };
  spec.arrival.diurnal_strength = 0.3;
  spec.arrival.weekend_factor = 0.85;
  spec.arrival.burst_log_sigma = 1.1;
  spec.arrival.burst_autocorrelation = 0.45;
  spec.arrival.peak_to_median_target = 50.0;
  spec.files.input_files = 8000;
  spec.files.input_reaccess_fraction = 0.40;
  spec.files.zipf_slope = 1.40;  // calibrated so measured slope ~ 5/6
  spec.files.output_reaccess_fraction = 0.15;
  return spec;
}

WorkloadSpec MakeCcC() {
  WorkloadSpec spec;
  spec.metadata.name = "CC-c";
  spec.metadata.machines = 700;
  spec.metadata.year = 2011;
  spec.total_jobs = 21030;
  spec.span_seconds = 30 * kDay;
  spec.job_types = {
      Row("Small jobs", 19975, 5.7 * kGB, 3.0 * kGB, 200 * kMB, 4 * kMinute,
          10933, 6586),
      Row("Transform, light reduce", 477, 1.0 * kTB, 4.2 * kTB, 920 * kGB,
          47 * kMinute, 1927432, 462070),
      Row("Aggregate", 246, 887 * kGB, 57 * kGB, 22 * kMB,
          4 * kHour + 14 * kMinute, 569391, 158930,
          {{"insert", 2}, {"edwsequence", 1}}),
      Row("Transform, heavy reduce", 197, 1.1 * kTB, 3.7 * kTB, 3.7 * kTB,
          53 * kMinute, 1895403, 886347),
      Row("Aggregate, large", 105, 32 * kGB, 37 * kGB, 2.4 * kGB,
          2 * kHour + 11 * kMinute, 14865972, 369846),
      Row("Long jobs", 23, 3.7 * kTB, 562 * kGB, 37 * kGB, 17 * kHour,
          9779062, 14989871, {{"etl", 1}, {"flow", 1}}),
      Row("Aggregate, huge", 7, 220 * kTB, 18 * kGB, 2.8 * kGB,
          5 * kHour + 15 * kMinute, 66839710, 758957,
          {{"hyperlocaldataextractor", 1}, {"insert", 1}}),
  };
  spec.default_name_words = {
      {"insert", 34},   {"select", 24}, {"flow", 10}, {"sywr", 8},
      {"edwsequence", 8}, {"snapshot", 5}, {"etl", 4},  {"distcp", 2},
      {"piglatin", 3},  {"stage", 2},
  };
  spec.arrival.diurnal_strength = 0.3;
  spec.arrival.weekend_factor = 0.8;
  spec.arrival.burst_log_sigma = 0.9;
  spec.arrival.burst_autocorrelation = 0.5;
  spec.arrival.peak_to_median_target = 25.0;
  spec.files.input_files = 8000;
  spec.files.input_reaccess_fraction = 0.50;
  spec.files.zipf_slope = 0.88;  // calibrated so measured slope ~ 5/6
  spec.files.output_reaccess_fraction = 0.35;
  spec.files.recency_bias = 0.7;
  return spec;
}

WorkloadSpec MakeCcD() {
  WorkloadSpec spec;
  spec.metadata.name = "CC-d";
  spec.metadata.machines = 450;  // Table 1 says 400-500
  spec.metadata.year = 2011;
  spec.total_jobs = 13283;
  spec.span_seconds = 66 * kDay;  // "2+ months"
  spec.job_types = {
      Row("Small jobs", 12736, 3.1 * kGB, 753 * kMB, 231 * kMB, 67, 7376,
          5085),
      Row("Expand and aggregate", 214, 633 * kGB, 2.9 * kTB, 332 * kGB,
          11 * kMinute, 544433, 352692),
      Row("Transform and aggregate", 162, 5.3 * kGB, 6.1 * kTB, 33 * kGB,
          23 * kMinute, 2011911, 910673),
      Row("Expand and transform", 128, 1.0 * kTB, 6.2 * kTB, 6.7 * kTB,
          20 * kMinute, 847286, 900395),
      Row("Aggregate", 43, 17 * kGB, 4.0 * kGB, 1.7 * kGB, 36 * kMinute,
          6259747, 7067, {{"edw", 1}, {"tr", 1}}),
  };
  spec.default_name_words = {
      {"insert", 30}, {"select", 24}, {"edw", 10},       {"queryresult", 8},
      {"ajax", 7},    {"si", 6},      {"tr", 6},         {"etl", 4},
      {"edwsequence", 3}, {"iteminquiry", 2},
  };
  spec.arrival.diurnal_strength = 0.25;
  spec.arrival.weekend_factor = 0.85;
  spec.arrival.burst_log_sigma = 1.3;
  spec.arrival.burst_autocorrelation = 0.4;
  spec.arrival.peak_to_median_target = 100.0;
  spec.files.input_files = 6000;
  spec.files.input_reaccess_fraction = 0.55;
  spec.files.zipf_slope = 1.30;  // calibrated so measured slope ~ 5/6
  spec.files.output_reaccess_fraction = 0.28;
  spec.files.recency_bias = 0.7;
  return spec;
}

WorkloadSpec MakeCcE() {
  WorkloadSpec spec;
  spec.metadata.name = "CC-e";
  spec.metadata.machines = 100;
  spec.metadata.year = 2011;
  spec.total_jobs = 10790;
  spec.span_seconds = 9 * kDay;
  spec.job_types = {
      Row("Small jobs", 10243, 8.1 * kMB, 0, 970 * kKB, 18, 15, 0),
      Row("Transform, large", 452, 166 * kGB, 180 * kGB, 118 * kGB,
          31 * kMinute, 35606, 38194),
      Row("Transform, very large", 68, 543 * kGB, 502 * kGB, 166 * kGB,
          2 * kHour, 115077, 108745),
      Row("Map only summary", 20, 3.0 * kTB, 0, 200, 5 * kMinute, 137077, 0,
          {{"search", 1}, {"item", 1}}),
      // The paper labels this class "Map only transform" although it shows
      // a small shuffle volume; transcribed as printed.
      Row("Map only transform", 7, 6.7 * kTB, 2.3 * kGB, 6.7 * kTB,
          3 * kHour + 47 * kMinute, 335807, 0, {{"esb", 1}, {"select", 1}}),
  };
  spec.default_name_words = {
      {"insert", 32}, {"select", 26}, {"search", 10}, {"item", 8},
      {"iteminquiry", 7}, {"esb", 6},  {"tr", 5},      {"edw", 4},
      {"columnset", 2},
  };
  // CC-e's utilization shows a clear diurnal cycle (section 5.1).
  spec.arrival.diurnal_strength = 0.5;
  spec.arrival.weekend_factor = 0.7;
  spec.arrival.burst_log_sigma = 1.0;
  spec.arrival.burst_autocorrelation = 0.55;
  spec.arrival.peak_to_median_target = 15.0;
  spec.files.input_files = 5000;
  spec.files.input_reaccess_fraction = 0.60;
  spec.files.zipf_slope = 1.12;  // calibrated so measured slope ~ 5/6
  spec.files.output_reaccess_fraction = 0.22;
  spec.files.recency_bias = 0.7;
  return spec;
}

WorkloadSpec MakeFb2009() {
  WorkloadSpec spec;
  spec.metadata.name = "FB-2009";
  spec.metadata.machines = 600;
  spec.metadata.year = 2009;
  spec.total_jobs = 1129193;
  spec.span_seconds = 180 * kDay;
  spec.job_types = {
      Row("Small jobs", 1081918, 21 * kKB, 0, 871 * kKB, 32, 20, 0),
      Row("Load data, fast", 37038, 381 * kKB, 0, 1.9 * kGB, 21 * kMinute,
          6079, 0, {{"insert", 3}, {"ad", 1}}),
      Row("Load data, slow", 2070, 10 * kKB, 0, 4.2 * kGB,
          1 * kHour + 50 * kMinute, 26321, 0, {{"insert", 1}}),
      Row("Load data, large", 602, 405 * kKB, 0, 447 * kGB,
          1 * kHour + 10 * kMinute, 66657, 0, {{"insert", 3}, {"from", 1}}),
      Row("Load data, huge", 180, 446 * kKB, 0, 1.1 * kTB,
          5 * kHour + 5 * kMinute, 125662, 0, {{"insert", 3}, {"from", 1}}),
      Row("Aggregate, fast", 6035, 230 * kGB, 8.8 * kGB, 491 * kMB,
          15 * kMinute, 104338, 66760, {{"from", 1}, {"insert", 2}}),
      Row("Aggregate and expand", 379, 1.9 * kTB, 502 * kMB, 2.6 * kGB,
          30 * kMinute, 348942, 76736, {{"from", 1}, {"select", 1}, {"insert", 1}}),
      Row("Expand and aggregate", 159, 418 * kGB, 2.5 * kTB, 45 * kGB,
          1 * kHour + 25 * kMinute, 1076089, 974395,
          {{"from", 1}, {"insert", 2}}),
      Row("Data transform", 793, 255 * kGB, 788 * kGB, 1.6 * kGB,
          35 * kMinute, 384562, 338050, {{"piglatin", 2}, {"from", 1}}),
      Row("Data summary", 19, 7.6 * kTB, 51 * kGB, 104 * kKB, 55 * kMinute,
          4843452, 853911, {{"from", 1}}),
  };
  // Figure 10 top: 44% of FB-2009 jobs begin with "ad", 12% with "insert".
  spec.default_name_words = {
      {"ad", 28},     {"insert", 9},  {"select", 6}, {"from", 2},
      {"piglatin", 4}, {"oozie", 3},  {"metrics", 3}, {"hourly", 2},
      {"pipeline", 2}, {"stage", 1},
  };
  spec.arrival.diurnal_strength = 0.3;
  spec.arrival.weekend_factor = 0.9;
  spec.arrival.burst_log_sigma = 1.2;
  spec.arrival.burst_autocorrelation = 0.4;
  spec.arrival.peak_to_median_target = 31.0;
  // FB-2009's trace carries no file paths.
  spec.columns.input_paths = false;
  spec.columns.output_paths = false;
  spec.files.input_files = 100000;
  return spec;
}

WorkloadSpec MakeFb2010() {
  WorkloadSpec spec;
  spec.metadata.name = "FB-2010";
  spec.metadata.machines = 3000;
  spec.metadata.year = 2010;
  spec.total_jobs = 1169184;
  spec.span_seconds = 45 * kDay;
  spec.job_types = {
      Row("Small jobs", 1145663, 6.9 * kMB, 600, 60 * kKB, 60, 48, 34),
      Row("Map only transform, 8 hrs", 7911, 50 * kGB, 0, 61 * kGB, 8 * kHour,
          60664, 0),
      Row("Map only transform, 45 min", 779, 3.6 * kTB, 0, 4.4 * kTB,
          45 * kMinute, 3081710, 0),
      Row("Map only aggregate", 670, 2.1 * kTB, 0, 2.7 * kGB,
          1 * kHour + 20 * kMinute, 9457592, 0),
      Row("Map only transform, 3 days", 104, 35 * kGB, 0, 3.5 * kGB, 3 * kDay,
          198436, 0),
      Row("Aggregate", 11491, 1.5 * kTB, 30 * kGB, 2.2 * kGB, 30 * kMinute,
          1112765, 387191),
      Row("Transform, 2 hrs", 1876, 711 * kGB, 2.6 * kTB, 860 * kGB,
          2 * kHour, 1618792, 2056439),
      Row("Aggregate and transform", 454, 9.0 * kTB, 1.5 * kTB, 1.2 * kTB,
          1 * kHour, 1795682, 818344),
      Row("Expand and aggregate", 169, 2.7 * kTB, 12 * kTB, 260 * kGB,
          2 * kHour + 7 * kMinute, 2862726, 3091678),
      Row("Transform, 18 hrs", 67, 630 * kGB, 1.2 * kTB, 140 * kGB,
          18 * kHour, 1545220, 18144174),
  };
  // FB-2010's trace has no job names (Figure 10 note).
  spec.columns.names = false;
  spec.columns.output_paths = false;
  // FB-2010's submissions show the clearest diurnal pattern (section 5.1);
  // multiplexing many organizations cut peak-to-median from 31:1 to 9:1.
  spec.arrival.diurnal_strength = 0.55;
  spec.arrival.weekend_factor = 0.8;
  spec.arrival.burst_log_sigma = 0.7;
  spec.arrival.burst_autocorrelation = 0.6;
  spec.arrival.peak_to_median_target = 9.0;
  spec.files.input_files = 200000;
  spec.files.input_reaccess_fraction = 0.45;
  spec.files.zipf_slope = 1.50;  // calibrated so measured slope ~ 5/6
  spec.files.output_reaccess_fraction = 0.0;  // no output paths logged
  return spec;
}

}  // namespace

std::vector<WorkloadSpec> AllPaperWorkloads() {
  return {MakeCcA(), MakeCcB(), MakeCcC(), MakeCcD(),
          MakeCcE(), MakeFb2009(), MakeFb2010()};
}

StatusOr<WorkloadSpec> PaperWorkloadByName(const std::string& name) {
  for (auto& spec : AllPaperWorkloads()) {
    if (spec.metadata.name == name) return spec;
  }
  return NotFoundError("unknown paper workload: " + name);
}

std::vector<std::string> PaperWorkloadNames() {
  return {"CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009", "FB-2010"};
}

}  // namespace swim::workloads

#ifndef SWIM_WORKLOADS_SPEC_IO_H_
#define SWIM_WORKLOADS_SPEC_IO_H_

#include <string>

#include "common/statusor.h"
#include "workloads/workload_spec.h"

namespace swim::workloads {

/// Serializes a workload spec as a self-contained text file, so users can
/// define their own workloads for swim_generate (or tweak the calibrated
/// paper specs) without recompiling. The format is line-oriented
/// key=value with one `job_type=` line per mixture component; see
/// SpecToText's output for a template.
std::string SpecToText(const WorkloadSpec& spec);

/// Parses SpecToText's format. The result is validated (ValidateSpec).
StatusOr<WorkloadSpec> SpecFromText(const std::string& text);

Status SaveSpec(const WorkloadSpec& spec, const std::string& path);
StatusOr<WorkloadSpec> LoadSpec(const std::string& path);

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_SPEC_IO_H_

#include "workloads/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "common/random.h"
#include "stats/sampling.h"
#include "workloads/file_population.h"
#include "workloads/name_generator.h"

namespace swim::workloads {
namespace {

/// Hourly arrival-rate envelope: diurnal x weekly x AR(1) lognormal burst.
std::vector<double> BuildRateEnvelope(const ArrivalSpec& arrival,
                                      size_t hours, Pcg32& rng) {
  std::vector<double> rate(hours, 1.0);
  double burst_state = 0.0;
  const double rho = arrival.burst_autocorrelation;
  const double innovation_sigma =
      arrival.burst_log_sigma * std::sqrt(1.0 - rho * rho);
  for (size_t h = 0; h < hours; ++h) {
    // Diurnal peak in the local "afternoon" (hour 14 of each day).
    double day_phase = 2.0 * std::numbers::pi *
                       (static_cast<double>(h % 24) - 14.0) / 24.0;
    double diurnal = 1.0 + arrival.diurnal_strength * std::cos(day_phase);
    size_t day_of_week = (h / 24) % 7;
    double weekly = (day_of_week >= 5) ? arrival.weekend_factor : 1.0;
    burst_state = rho * burst_state + innovation_sigma * rng.NextGaussian();
    double burst = std::exp(burst_state);
    rate[h] = diurnal * weekly * burst;
  }
  return rate;
}

/// Per-job dimension sampling around a job type's medians. `shared` is the
/// per-job common factor that induces correlation between data size and
/// compute time; `rng` provides independent per-dimension noise.
double SampleDimension(double median, double log_sigma, double shared,
                       Pcg32& rng) {
  if (median <= 0.0) return 0.0;
  // shared^2-weight + independent^2-weight = 1 keeps the marginal sigma.
  constexpr double kSharedLoading = 0.8;
  constexpr double kIndependentLoading = 0.6;
  double z = kSharedLoading * shared + kIndependentLoading * rng.NextGaussian();
  return median * std::exp(log_sigma * z);
}

}  // namespace

StatusOr<trace::Trace> GenerateTrace(const WorkloadSpec& spec,
                                     const GeneratorOptions& options) {
  SWIM_RETURN_IF_ERROR(ValidateSpec(spec));

  const size_t total_jobs = options.job_count_override > 0
                                ? options.job_count_override
                                : spec.total_jobs;
  const double span = options.span_override_seconds > 0.0
                          ? options.span_override_seconds
                          : spec.span_seconds;
  const size_t hours = static_cast<size_t>(std::ceil(span / 3600.0));

  Pcg32 master(options.seed, /*stream=*/0x5411);
  Pcg32 arrival_rng = master.Fork();
  Pcg32 type_rng = master.Fork();
  Pcg32 dims_rng = master.Fork();
  Pcg32 name_rng = master.Fork();
  Pcg32 file_rng = master.Fork();

  // --- 1. Arrival times ----------------------------------------------------
  // Interactive (small) jobs follow the full bursty envelope - they are
  // human- and pipeline-triggered exploration. Batch (large) classes run on
  // their own steadier schedule (daily reports, ETL): diurnal/weekly cycles
  // but only mild bursts. This decoupling is what keeps the paper's
  // jobs-vs-bytes and jobs-vs-compute hourly correlations low (~0.2) while
  // bytes-vs-compute stays high (~0.6): job counts are dominated by the
  // small-job stream, bytes and compute by the batch stream.
  std::vector<double> interactive_envelope =
      BuildRateEnvelope(spec.arrival, hours, arrival_rng);
  ArrivalSpec batch_arrival = spec.arrival;
  // Batch pipelines burst less than the interactive stream but not zero -
  // backfills and re-runs cluster; half the interactive sigma matches the
  // paper's Figure 8 spread.
  batch_arrival.burst_log_sigma = 0.5 * spec.arrival.burst_log_sigma;
  std::vector<double> batch_envelope =
      BuildRateEnvelope(batch_arrival, hours, arrival_rng);
  // Batch load is not fully independent of the interactive stream - shared
  // triggers (data landing, backlogs) couple them mildly. The 0.25 blend
  // reproduces the paper's weak-but-nonzero jobs-bytes/jobs-compute hourly
  // correlations (~0.2) without re-tying the peaks.
  for (size_t h = 0; h < hours; ++h) {
    batch_envelope[h] =
        0.75 * batch_envelope[h] + 0.25 * interactive_envelope[h];
  }
  stats::DiscreteSampler interactive_sampler(interactive_envelope);
  stats::DiscreteSampler batch_sampler(batch_envelope);

  std::vector<double> type_weights;
  std::vector<bool> type_is_batch;
  type_weights.reserve(spec.job_types.size());
  for (const auto& jt : spec.job_types) {
    type_weights.push_back(jt.count_weight);
    double total = jt.input_bytes + jt.shuffle_bytes + jt.output_bytes;
    type_is_batch.push_back(total >= 10e9);  // the paper's 10 GB dichotomy
  }
  stats::DiscreteSampler type_sampler(type_weights);

  // (type, submit time) pairs, then chronological order. Interactive jobs
  // draw their hour from the bursty envelope. Batch jobs of each class are
  // cron-like: spread evenly across the span with jitter and a mild
  // preference for the batch envelope's hours - production pipelines fire
  // on schedules, they do not bunch with interactive bursts.
  std::vector<std::pair<double, uint32_t>> schedule(total_jobs);
  std::vector<std::vector<size_t>> batch_instances(spec.job_types.size());
  for (size_t i = 0; i < total_jobs; ++i) {
    uint32_t type_index =
        static_cast<uint32_t>(type_sampler.Sample(type_rng));
    schedule[i].second = type_index;
    if (type_is_batch[type_index]) {
      batch_instances[type_index].push_back(i);
    } else {
      double hour = static_cast<double>(interactive_sampler.Sample(arrival_rng));
      schedule[i].first = (hour + arrival_rng.NextDouble()) * 3600.0;
    }
  }
  for (const auto& instances : batch_instances) {
    const double interval =
        span / static_cast<double>(std::max<size_t>(1, instances.size()));
    for (size_t k = 0; k < instances.size(); ++k) {
      double slot_start = static_cast<double>(k) * interval;
      if (arrival_rng.NextBernoulli(0.25)) {
        // A quarter of batch runs are ad-hoc re-runs following the batch
        // envelope instead of the schedule.
        double hour = static_cast<double>(batch_sampler.Sample(arrival_rng));
        schedule[instances[k]].first =
            (hour + arrival_rng.NextDouble()) * 3600.0;
      } else {
        schedule[instances[k]].first =
            slot_start + arrival_rng.NextDouble() * interval;
      }
    }
  }
  std::sort(schedule.begin(), schedule.end());

  FilePopulationSim files(spec.files, spec.columns, file_rng);

  trace::TraceMetadata metadata = spec.metadata;
  metadata.has_names = spec.columns.names;
  metadata.has_input_paths = spec.columns.input_paths;
  metadata.has_output_paths = spec.columns.output_paths;
  trace::Trace result(metadata);

  for (size_t i = 0; i < total_jobs; ++i) {
    const JobTypeSpec& jt = spec.job_types[schedule[i].second];
    trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = schedule[i].first;

    double shared = dims_rng.NextGaussian();
    job.input_bytes =
        SampleDimension(jt.input_bytes, jt.log_sigma, shared, dims_rng);
    job.shuffle_bytes =
        SampleDimension(jt.shuffle_bytes, jt.log_sigma, shared, dims_rng);
    job.output_bytes =
        SampleDimension(jt.output_bytes, jt.log_sigma, shared, dims_rng);
    job.map_task_seconds =
        SampleDimension(jt.map_task_seconds, jt.log_sigma, shared, dims_rng);
    job.reduce_task_seconds = SampleDimension(jt.reduce_task_seconds,
                                              jt.log_sigma, shared, dims_rng);
    // Durations spread less than sizes: a class is defined by its latency
    // envelope (e.g. "small jobs" finish interactively).
    job.duration = SampleDimension(jt.duration_seconds, 0.5 * jt.log_sigma,
                                   shared, dims_rng);

    // Task counts: tasks last tens of seconds in Hadoop; very small jobs
    // degenerate to a single wave of one map (and one reduce) task - the
    // straggler-detection hazard the paper highlights in section 6.2.
    double typical_task = dims_rng.NextDouble(20.0, 60.0);
    job.map_tasks = std::max<int64_t>(
        1, static_cast<int64_t>(job.map_task_seconds / typical_task));
    if (jt.reduce_task_seconds > 0.0) {
      job.reduce_tasks = std::max<int64_t>(
          1, static_cast<int64_t>(job.reduce_task_seconds / typical_task));
    }

    // Names.
    if (spec.columns.names) {
      const std::vector<NameWeight>& grammar =
          jt.name_words.empty() ? spec.default_name_words : jt.name_words;
      if (!grammar.empty()) {
        std::vector<double> weights;
        weights.reserve(grammar.size());
        for (const auto& nw : grammar) weights.push_back(nw.weight);
        size_t pick = name_rng.NextDiscrete(weights);
        job.name = DecorateJobName(grammar[pick].word, job.job_id, name_rng);
      }
    }

    files.AssignPaths(job);
    result.AddJob(std::move(job));
  }
  return result;
}

}  // namespace swim::workloads

#include "workloads/workload_spec.h"

namespace swim::workloads {
namespace {

bool InUnitInterval(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

Status ValidateSpec(const WorkloadSpec& spec) {
  if (spec.metadata.name.empty()) {
    return InvalidArgumentError("spec has no name");
  }
  if (spec.total_jobs == 0) return InvalidArgumentError("total_jobs == 0");
  if (spec.span_seconds <= 0.0) {
    return InvalidArgumentError("span_seconds must be positive");
  }
  if (spec.job_types.empty()) {
    return InvalidArgumentError("no job types defined");
  }
  double total_weight = 0.0;
  for (const auto& jt : spec.job_types) {
    if (jt.count_weight < 0.0) {
      return InvalidArgumentError("job type '" + jt.label +
                                  "' has negative count_weight");
    }
    if (jt.log_sigma < 0.0) {
      return InvalidArgumentError("job type '" + jt.label +
                                  "' has negative log_sigma");
    }
    if (jt.input_bytes < 0 || jt.shuffle_bytes < 0 || jt.output_bytes < 0 ||
        jt.duration_seconds < 0 || jt.map_task_seconds < 0 ||
        jt.reduce_task_seconds < 0) {
      return InvalidArgumentError("job type '" + jt.label +
                                  "' has a negative dimension");
    }
    total_weight += jt.count_weight;
  }
  if (total_weight <= 0.0) {
    return InvalidArgumentError("job type weights sum to zero");
  }
  const ArrivalSpec& a = spec.arrival;
  if (!InUnitInterval(a.diurnal_strength) || a.diurnal_strength >= 1.0) {
    return InvalidArgumentError("diurnal_strength must be in [0, 1)");
  }
  if (a.weekend_factor < 0.0) {
    return InvalidArgumentError("weekend_factor must be >= 0");
  }
  if (a.burst_log_sigma < 0.0) {
    return InvalidArgumentError("burst_log_sigma must be >= 0");
  }
  if (!InUnitInterval(a.burst_autocorrelation) ||
      a.burst_autocorrelation >= 1.0) {
    return InvalidArgumentError("burst_autocorrelation must be in [0, 1)");
  }
  const FilePopulationSpec& f = spec.files;
  if (f.input_files == 0) {
    return InvalidArgumentError("input_files must be >= 1");
  }
  if (f.zipf_slope < 0.0) {
    return InvalidArgumentError("zipf_slope must be >= 0");
  }
  if (!InUnitInterval(f.input_reaccess_fraction) ||
      !InUnitInterval(f.output_reaccess_fraction) ||
      !InUnitInterval(f.recency_bias)) {
    return InvalidArgumentError("file probabilities must be in [0, 1]");
  }
  if (f.input_reaccess_fraction + f.output_reaccess_fraction > 1.0) {
    return InvalidArgumentError(
        "input + output re-access fractions exceed 1");
  }
  if (f.recency_halflife_seconds <= 0.0) {
    return InvalidArgumentError("recency_halflife_seconds must be positive");
  }
  if (f.large_job_bytes <= 0.0) {
    return InvalidArgumentError("large_job_bytes must be positive");
  }
  if (f.large_job_reaccess_scale <= 0.0 || f.large_job_reaccess_scale > 1.0) {
    return InvalidArgumentError("large_job_reaccess_scale must be in (0, 1]");
  }
  if (f.hot_output_max_bytes <= 0.0) {
    return InvalidArgumentError("hot_output_max_bytes must be positive");
  }
  return Status::Ok();
}

}  // namespace swim::workloads

#ifndef SWIM_WORKLOADS_FILE_POPULATION_H_
#define SWIM_WORKLOADS_FILE_POPULATION_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "stats/zipf.h"
#include "trace/job_record.h"
#include "workloads/workload_spec.h"

namespace swim::workloads {

/// Stateful HDFS path assigner shared by the calibrated trace generator and
/// the SWIM-style synthesizer. Jobs MUST be fed in non-decreasing submit
/// time order. The model (see FilePopulationSpec):
///
///  - an input universe of N "hot" files with Zipf(slope) popularity;
///  - fresh never-again-read files for the cold fraction;
///  - chained reads of earlier outputs (output -> input re-access);
///  - recency-biased re-access with an exponential age distribution,
///    producing the paper's Figure 5 interval CDF.
class FilePopulationSim {
 public:
  FilePopulationSim(const FilePopulationSpec& spec,
                    const TraceColumnAvailability& columns, Pcg32 rng);

  /// Assigns input_path (if the spec logs input paths) and output_path (if
  /// it logs output paths and the job writes bytes). submit_time, duration
  /// and byte fields must already be set.
  void AssignPaths(trace::JobRecord& job);

 private:
  /// Time-ordered access log supporting recency-biased sampling.
  class AccessHistory {
   public:
    explicit AccessHistory(double halflife_seconds);
    void Record(double time, const std::string& path);
    bool empty() const { return times_.empty(); }
    const std::string& SampleRecent(double now, Pcg32& rng) const;

   private:
    double rate_;
    std::vector<double> times_;
    std::vector<std::string> paths_;
  };

  FilePopulationSpec spec_;
  TraceColumnAvailability columns_;
  Pcg32 rng_;
  stats::ZipfSampler input_popularity_;
  stats::ZipfSampler large_input_popularity_;
  stats::ZipfSampler output_popularity_;
  AccessHistory input_history_;
  AccessHistory output_history_;
  size_t fresh_inputs_ = 0;
};

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_FILE_POPULATION_H_

#ifndef SWIM_WORKLOADS_TRACE_GENERATOR_H_
#define SWIM_WORKLOADS_TRACE_GENERATOR_H_

#include <cstdint>

#include "common/statusor.h"
#include "trace/trace.h"
#include "workloads/workload_spec.h"

namespace swim::workloads {

struct GeneratorOptions {
  uint64_t seed = 42;
  /// Overrides WorkloadSpec::total_jobs when non-zero. Use to scale a
  /// workload down (or up) while preserving its per-job statistics - the
  /// paper's "scaled-down workloads" discussion (section 7).
  size_t job_count_override = 0;
  /// Overrides WorkloadSpec::span_seconds when positive.
  double span_override_seconds = 0.0;
};

/// Synthesizes a full job trace from a declarative workload description.
///
/// This is the substitution for the paper's proprietary Facebook/Cloudera
/// traces: the generator's parameters are the statistics the paper
/// publishes, so the analysis pipelines downstream see data with the same
/// shape (see DESIGN.md, "Substitutions"). The generation process:
///
///  1. Arrival envelope: an hourly rate = diurnal cycle x weekly cycle x
///     AR(1) lognormal burst modulation; each job's submit hour is a
///     weighted draw, its offset uniform within the hour.
///  2. Job dimensions: a lognormal mixture whose component medians/weights
///     are Table 2 rows; one shared per-job factor correlates bytes with
///     task-seconds (the paper's strongest time-series correlation).
///  3. Names: per-class first-word grammars (Figure 10 masses), decorated
///     per framework.
///  4. File population: Zipf(popularity slope ~5/6) input universe plus
///     output-chaining and recency-biased re-access (Figures 2, 5, 6).
///
/// Deterministic: same (spec, options) => bit-identical trace.
StatusOr<trace::Trace> GenerateTrace(const WorkloadSpec& spec,
                                     const GeneratorOptions& options = {});

}  // namespace swim::workloads

#endif  // SWIM_WORKLOADS_TRACE_GENERATOR_H_

#include "workloads/name_generator.h"

#include <array>

#include "trace/frameworks.h"

namespace swim::workloads {
namespace {

std::string Upper(const std::string& word) {
  std::string out = word;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

std::string DecorateJobName(const std::string& first_word, uint64_t job_id,
                            Pcg32& rng) {
  const uint64_t tag = job_id % 100000;
  switch (trace::ClassifyFramework(first_word)) {
    case trace::Framework::kHive: {
      static constexpr std::array<const char*, 3> kTargets = {
          "TABLE dst_tbl", "DIRECTORY '/warehouse/q'", "TABLE tmp_agg"};
      return Upper(first_word) + " OVERWRITE " +
             kTargets[rng.NextBounded(kTargets.size())] + "_" +
             std::to_string(tag) + "(Stage-" +
             std::to_string(1 + rng.NextBounded(4)) + ")";
    }
    case trace::Framework::kPig:
      return "PigLatin:job_" + std::to_string(tag) + ".pig";
    case trace::Framework::kOozie:
      return "oozie:launcher:T=map-reduce:W=wf_" + std::to_string(tag);
    case trace::Framework::kNative:
      return first_word + "_" + std::to_string(tag);
  }
  return first_word;
}

}  // namespace swim::workloads

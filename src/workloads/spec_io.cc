#include "workloads/spec_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace swim::workloads {
namespace {

std::string NameWeightsToText(const std::vector<NameWeight>& words) {
  std::string text;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) text += ",";
    text += words[i].word + ":" + std::to_string(words[i].weight);
  }
  return text;
}

StatusOr<std::vector<NameWeight>> NameWeightsFromText(
    const std::string& text) {
  std::vector<NameWeight> words;
  if (StripWhitespace(text).empty()) return words;
  for (const auto& token : Split(text, ',')) {
    auto parts = Split(token, ':');
    if (parts.size() != 2) {
      return InvalidArgumentError("bad name weight: " + token);
    }
    NameWeight nw;
    nw.word = std::string(StripWhitespace(parts[0]));
    if (nw.word.empty() || !ParseDouble(parts[1], &nw.weight) ||
        nw.weight <= 0.0) {
      return InvalidArgumentError("bad name weight: " + token);
    }
    words.push_back(std::move(nw));
  }
  return words;
}

}  // namespace

std::string SpecToText(const WorkloadSpec& spec) {
  std::ostringstream os;
  os.precision(17);
  os << "#swim-spec v1\n";
  os << "name=" << spec.metadata.name << "\n";
  os << "machines=" << spec.metadata.machines << "\n";
  os << "year=" << spec.metadata.year << "\n";
  os << "total_jobs=" << spec.total_jobs << "\n";
  os << "span_seconds=" << spec.span_seconds << "\n";
  os << "columns=" << spec.columns.names << "," << spec.columns.input_paths
     << "," << spec.columns.output_paths << "\n";
  const ArrivalSpec& a = spec.arrival;
  os << "arrival=" << a.diurnal_strength << "," << a.weekend_factor << ","
     << a.burst_log_sigma << "," << a.burst_autocorrelation << ","
     << a.peak_to_median_target << "\n";
  const FilePopulationSpec& f = spec.files;
  os << "files=" << f.input_files << "," << f.zipf_slope << ","
     << f.input_reaccess_fraction << "," << f.output_reaccess_fraction << ","
     << f.recency_bias << "," << f.recency_halflife_seconds << ","
     << f.large_job_bytes << "," << f.large_job_reaccess_scale << ","
     << f.hot_output_max_bytes << "\n";
  os << "default_names=" << NameWeightsToText(spec.default_name_words)
     << "\n";
  for (const auto& jt : spec.job_types) {
    os << "job_type=" << jt.label << "|" << jt.count_weight << "|"
       << jt.input_bytes << "|" << jt.shuffle_bytes << "|" << jt.output_bytes
       << "|" << jt.duration_seconds << "|" << jt.map_task_seconds << "|"
       << jt.reduce_task_seconds << "|" << jt.log_sigma << "|"
       << NameWeightsToText(jt.name_words) << "\n";
  }
  return os.str();
}

StatusOr<WorkloadSpec> SpecFromText(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || !StartsWith(line, "#swim-spec")) {
    return InvalidArgumentError("not a swim spec (missing magic line)");
  }
  WorkloadSpec spec;
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": expected key=value");
    }
    std::string key(StripWhitespace(line.substr(0, eq)));
    std::string value = line.substr(eq + 1);
    auto fail = [&](const std::string& what) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": bad " + what);
    };
    if (key == "name") {
      spec.metadata.name = std::string(StripWhitespace(value));
    } else if (key == "machines" || key == "year" || key == "total_jobs") {
      int64_t v = 0;
      if (!ParseInt64(value, &v) || v < 0) return fail(key);
      if (key == "machines") spec.metadata.machines = static_cast<int>(v);
      if (key == "year") spec.metadata.year = static_cast<int>(v);
      if (key == "total_jobs") spec.total_jobs = static_cast<size_t>(v);
    } else if (key == "span_seconds") {
      if (!ParseDouble(value, &spec.span_seconds)) return fail(key);
    } else if (key == "columns") {
      auto parts = Split(value, ',');
      if (parts.size() != 3) return fail(key);
      spec.columns.names = StripWhitespace(parts[0]) == "1";
      spec.columns.input_paths = StripWhitespace(parts[1]) == "1";
      spec.columns.output_paths = StripWhitespace(parts[2]) == "1";
    } else if (key == "arrival") {
      auto parts = Split(value, ',');
      if (parts.size() != 5) return fail(key);
      ArrivalSpec& a = spec.arrival;
      if (!ParseDouble(parts[0], &a.diurnal_strength) ||
          !ParseDouble(parts[1], &a.weekend_factor) ||
          !ParseDouble(parts[2], &a.burst_log_sigma) ||
          !ParseDouble(parts[3], &a.burst_autocorrelation) ||
          !ParseDouble(parts[4], &a.peak_to_median_target)) {
        return fail(key);
      }
    } else if (key == "files") {
      auto parts = Split(value, ',');
      if (parts.size() != 9) return fail(key);
      FilePopulationSpec& f = spec.files;
      int64_t files = 0;
      if (!ParseInt64(parts[0], &files) || files <= 0 ||
          !ParseDouble(parts[1], &f.zipf_slope) ||
          !ParseDouble(parts[2], &f.input_reaccess_fraction) ||
          !ParseDouble(parts[3], &f.output_reaccess_fraction) ||
          !ParseDouble(parts[4], &f.recency_bias) ||
          !ParseDouble(parts[5], &f.recency_halflife_seconds) ||
          !ParseDouble(parts[6], &f.large_job_bytes) ||
          !ParseDouble(parts[7], &f.large_job_reaccess_scale) ||
          !ParseDouble(parts[8], &f.hot_output_max_bytes)) {
        return fail(key);
      }
      f.input_files = static_cast<size_t>(files);
    } else if (key == "default_names") {
      SWIM_ASSIGN_OR_RETURN(spec.default_name_words,
                            NameWeightsFromText(value));
    } else if (key == "job_type") {
      auto parts = Split(value, '|');
      if (parts.size() != 10) return fail("job_type (need 10 '|' fields)");
      JobTypeSpec jt;
      jt.label = std::string(StripWhitespace(parts[0]));
      if (!ParseDouble(parts[1], &jt.count_weight) ||
          !ParseDouble(parts[2], &jt.input_bytes) ||
          !ParseDouble(parts[3], &jt.shuffle_bytes) ||
          !ParseDouble(parts[4], &jt.output_bytes) ||
          !ParseDouble(parts[5], &jt.duration_seconds) ||
          !ParseDouble(parts[6], &jt.map_task_seconds) ||
          !ParseDouble(parts[7], &jt.reduce_task_seconds) ||
          !ParseDouble(parts[8], &jt.log_sigma)) {
        return fail("job_type numeric fields");
      }
      SWIM_ASSIGN_OR_RETURN(jt.name_words, NameWeightsFromText(parts[9]));
      spec.job_types.push_back(std::move(jt));
    } else {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": unknown key '" + key + "'");
    }
  }
  SWIM_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

Status SaveSpec(const WorkloadSpec& spec, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open for writing: " + path);
  out << SpecToText(spec);
  out.flush();
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<WorkloadSpec> LoadSpec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SpecFromText(buffer.str());
}

}  // namespace swim::workloads

#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace swim {

int DefaultParallelism() {
  if (const char* env = std::getenv("SWIM_THREADS")) {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<int>(std::min<long>(value, kMaxParallelism));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min<unsigned>(hw, kMaxParallelism));
}

int ResolveParallelism(int requested) {
  if (requested > 0) return std::min(requested, kMaxParallelism);
  return DefaultParallelism();
}

ThreadPool::ThreadPool(int threads) {
  int count = std::max(1, threads);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = []() {
    unsigned hw = std::thread::hardware_concurrency();
    int size = std::max(DefaultParallelism(), static_cast<int>(hw));
    return new ThreadPool(std::max(1, size));  // leaked: outlives all users
  }();
  return *pool;
}

namespace {

/// Shared state for one ParallelFor call. Helper tasks hold it by
/// shared_ptr so a helper that only gets scheduled after the call has
/// already returned (all chunks drained by other lanes) finds no work and
/// exits without touching anything freed.
struct ParallelForState {
  std::function<void(size_t, size_t)> body;
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t chunks = 0;
  std::atomic<size_t> next{0};      // next chunk index to claim
  std::atomic<size_t> finished{0};  // chunks executed or abandoned
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain. Every chunk index is
  /// counted in `finished` exactly once (abandoned ones too, after a
  /// failure), so finished == chunks is the completion condition.
  void Work() {
    size_t chunk;
    while ((chunk = next.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          size_t lo = begin + chunk * grain;
          body(lo, std::min(end, lo + grain));
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mu);  // pair with the waiter
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 int max_parallelism) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t chunks = (end - begin + grain - 1) / grain;

  const int parallelism = ResolveParallelism(max_parallelism);
  if (parallelism <= 1 || chunks <= 1) {
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      size_t lo = begin + chunk * grain;
      body(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->body = body;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->chunks = chunks;

  // IMPORTANT for nesting: the caller participates and we never block on a
  // helper future. If the pool is saturated (e.g. this call runs inside a
  // pool task), the caller alone drains every chunk; helpers that start
  // late find `next` exhausted and return immediately. The wait below is
  // on chunk completion, not on helper-task completion, so a queued helper
  // stuck behind us in the pool cannot deadlock us.
  ThreadPool& pool = ThreadPool::Shared();
  const size_t helpers =
      std::min<size_t>({static_cast<size_t>(parallelism) - 1, chunks - 1,
                        static_cast<size_t>(pool.size())});
  for (size_t i = 0; i < helpers; ++i) {
    pool.Submit([state]() { state->Work(); });
  }
  state->Work();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&]() {
      return state->finished.load(std::memory_order_acquire) >= chunks;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void RunConcurrently(const std::vector<std::function<void()>>& tasks,
                     int max_parallelism) {
  ParallelFor(
      0, tasks.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) tasks[i]();
      },
      max_parallelism);
}

}  // namespace swim

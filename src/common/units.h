#ifndef SWIM_COMMON_UNITS_H_
#define SWIM_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace swim {

// Decimal byte units, matching the paper's KB/MB/GB/TB axes.
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;
inline constexpr double kEB = 1e18;

// Time units in seconds.
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24.0 * kHour;
inline constexpr double kWeek = 7.0 * kDay;

/// Renders a byte count with a decimal unit suffix, e.g. "1.5 GB".
/// Negative values are rendered with a leading minus sign.
std::string FormatBytes(double bytes);

/// Renders a duration in seconds with an adaptive unit, e.g. "4 min",
/// "2.5 hrs", "3 days".
std::string FormatDuration(double seconds);

/// Renders a plain count with thousands separators, e.g. "1,129,193".
std::string FormatCount(uint64_t count);

}  // namespace swim

#endif  // SWIM_COMMON_UNITS_H_

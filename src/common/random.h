#ifndef SWIM_COMMON_RANDOM_H_
#define SWIM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace swim {

/// PCG32 (Permuted Congruential Generator, O'Neill 2014): a small, fast,
/// statistically strong 32-bit generator with a 64-bit state. swimcpp uses
/// its own engine (rather than std::mt19937) so that synthesized workloads
/// are bit-identical across platforms and standard library versions.
///
/// Satisfies the UniformRandomBitGenerator concept.
class Pcg32 {
 public:
  using result_type = uint32_t;

  /// Seeds the generator. Distinct (seed, stream) pairs yield independent
  /// sequences; the stream selector lets subsystems derive non-overlapping
  /// generators from one user-level seed.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Returns the next 32 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// debiased modulo (Lemire-style rejection) so all values are
  /// equally likely.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller; deterministic, no cached spare).
  double NextGaussian();

  /// Lognormal deviate: exp(N(mu, sigma)). `sigma` must be >= 0.
  double NextLognormal(double mu, double sigma);

  /// Exponential deviate with the given rate (mean 1/rate). `rate` > 0.
  double NextExponential(double rate);

  /// Pareto deviate with scale x_m > 0 and shape alpha > 0.
  double NextPareto(double x_min, double alpha);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Returns a new generator seeded deterministically from this one; use to
  /// hand independent streams to subcomponents.
  Pcg32 Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace swim

#endif  // SWIM_COMMON_RANDOM_H_

#ifndef SWIM_COMMON_LOGGING_H_
#define SWIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace swim {
namespace internal_logging {

/// Log severities. kFatal aborts the process after emitting the message.
enum class Severity { kInfo, kWarning, kError, kFatal };

/// Accumulates one log line; emits (and possibly aborts) in the destructor.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

/// Allows `SWIM_CHECK(...) << ...` to appear in a void context.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace swim

#define SWIM_LOG(severity)                                        \
  ::swim::internal_logging::LogMessage(                           \
      ::swim::internal_logging::Severity::k##severity, __FILE__,  \
      __LINE__)

/// Fatal assertion on programmer errors (invariant violations). Not for
/// recoverable conditions - those return Status.
#define SWIM_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::swim::internal_logging::Voidify() &           \
                    SWIM_LOG(Fatal) << "Check failed: " #condition " "

#define SWIM_CHECK_OK(expr)                                        \
  do {                                                             \
    const auto& swim_check_ok_status = (expr);                     \
    SWIM_CHECK(swim_check_ok_status.ok()) << swim_check_ok_status; \
  } while (false)

#define SWIM_CHECK_EQ(a, b) SWIM_CHECK((a) == (b))
#define SWIM_CHECK_NE(a, b) SWIM_CHECK((a) != (b))
#define SWIM_CHECK_LT(a, b) SWIM_CHECK((a) < (b))
#define SWIM_CHECK_LE(a, b) SWIM_CHECK((a) <= (b))
#define SWIM_CHECK_GT(a, b) SWIM_CHECK((a) > (b))
#define SWIM_CHECK_GE(a, b) SWIM_CHECK((a) >= (b))

#endif  // SWIM_COMMON_LOGGING_H_

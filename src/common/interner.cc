#include "common/interner.h"

#include <algorithm>
#include <cstring>

namespace swim {

StringInterner::StringInterner(const StringInterner& other) {
  Reserve(other.size());
  for (std::string_view name : other.names_) Intern(name);
}

StringInterner& StringInterner::operator=(const StringInterner& other) {
  if (this == &other) return *this;
  Clear();
  Reserve(other.size());
  for (std::string_view name : other.names_) Intern(name);
  return *this;
}

uint32_t StringInterner::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  std::string_view stored = CopyToArena(text);
  names_.push_back(stored);
  ids_.TryEmplace(stored, id);
  return id;
}

uint32_t StringInterner::Find(std::string_view text) const {
  auto it = ids_.find(text);
  return it != ids_.end() ? it->second : kNoStringId;
}

void StringInterner::Reserve(size_t distinct_strings) {
  names_.reserve(distinct_strings);
  ids_.reserve(distinct_strings);
}

void StringInterner::Clear() {
  blocks_.clear();
  block_used_ = 0;
  block_capacity_ = 0;
  names_.clear();
  ids_.clear();
}

std::string_view StringInterner::CopyToArena(std::string_view text) {
  if (text.empty()) return std::string_view("", 0);
  if (block_capacity_ == 0 ||
      text.size() > block_capacity_ - block_used_) {
    size_t block_bytes = std::max(text.size(), kBlockBytes);
    blocks_.push_back(std::make_unique<char[]>(block_bytes));
    block_used_ = 0;
    block_capacity_ = block_bytes;
  }
  char* destination = blocks_.back().get() + block_used_;
  std::memcpy(destination, text.data(), text.size());
  block_used_ += text.size();
  return std::string_view(destination, text.size());
}

ShardedInterner::ShardedInterner(size_t expected_distinct)
    : arenas_(std::make_unique<ShardArena[]>(map_.shard_count())) {
  if (expected_distinct > 0) map_.Reserve(expected_distinct);
}

uint32_t ShardedInterner::Intern(std::string_view text) {
  size_t shard = map_.ShardOf(text);
  auto [id, inserted] = map_.GetOrEmplace(text, [&] {
    // Runs under the shard's write latch, so the shard arena needs no
    // locking of its own; the global id counter is atomic because shards
    // draw from one dense id space.
    std::string_view stored = arenas_[shard].Copy(text);
    return std::make_pair(stored,
                          next_id_.fetch_add(1, std::memory_order_relaxed));
  });
  return id;
}

std::vector<std::string_view> ShardedInterner::ViewsByProvisionalId() const {
  std::vector<std::string_view> views(size());
  map_.ForEach([&](std::string_view name, uint32_t id) { views[id] = name; });
  return views;
}

std::string_view ShardedInterner::ShardArena::Copy(std::string_view text) {
  if (text.empty()) return std::string_view("", 0);
  constexpr size_t kShardBlockBytes = 1 << 14;  // 64 shards: smaller blocks
  if (capacity == 0 || text.size() > capacity - used) {
    size_t block_bytes = std::max(text.size(), kShardBlockBytes);
    blocks.push_back(std::make_unique<char[]>(block_bytes));
    used = 0;
    capacity = block_bytes;
  }
  char* destination = blocks.back().get() + used;
  std::memcpy(destination, text.data(), text.size());
  used += text.size();
  return std::string_view(destination, text.size());
}

}  // namespace swim

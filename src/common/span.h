#ifndef SWIM_COMMON_SPAN_H_
#define SWIM_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>

namespace swim {

/// Read-only view over a contiguous sequence — the sliver of std::span
/// (C++20) this codebase needs. Lets one interface accept both
/// std::vector<T> and ArenaVector<T> without copying: the replay engine's
/// hot-path containers are arena-backed while tests and the legacy engine
/// use plain vectors, and Scheduler::PickJob must serve both.
template <typename T>
class Span {
 public:
  constexpr Span() noexcept = default;
  constexpr Span(const T* data, size_t size) noexcept
      : data_(data), size_(size) {}

  /// Implicit view of any contiguous container whose data() yields
  /// something convertible to const T* (std::vector, ArenaVector, ...).
  template <typename C,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<const C&>().data()), const T*>>>
  constexpr Span(const C& container) noexcept  // NOLINT
      : data_(container.data()), size_(container.size()) {}

  constexpr const T* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const noexcept { return data_; }
  constexpr const T* end() const noexcept { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace swim

#endif  // SWIM_COMMON_SPAN_H_

#include "common/arena.h"

#include <algorithm>

namespace swim {

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  if (alignment == 0) alignment = 1;
  for (;;) {
    if (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
      const uintptr_t aligned =
          (base + offset_ + alignment - 1) & ~static_cast<uintptr_t>(alignment - 1);
      const size_t end = static_cast<size_t>(aligned - base) + bytes;
      if (end <= block.size) {
        offset_ = end;
        used_bytes_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // This epoch's bump passed the block; move on to the next kept
      // block (its tail space is abandoned until Reset).
      ++current_;
      offset_ = 0;
      continue;
    }
    // Out of kept blocks: grow. `bytes + alignment` guarantees the
    // worst-case alignment skip fits, and requests beyond the default
    // block size get a dedicated block (large-block fallback).
    const size_t want = std::max(bytes + alignment, block_bytes_);
    Block block;
    block.data = std::make_unique<unsigned char[]>(want);
    block.size = want;
    reserved_bytes_ += want;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

}  // namespace swim

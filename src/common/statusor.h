#ifndef SWIM_COMMON_STATUSOR_H_
#define SWIM_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace swim {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored StatusOr is a fatal
/// programmer error (CHECK failure), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SWIM_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    SWIM_CHECK(ok()) << "value() on errored StatusOr: " << status_;
    return *value_;
  }
  T& value() & {
    SWIM_CHECK(ok()) << "value() on errored StatusOr: " << status_;
    return *value_;
  }
  T value() && {
    SWIM_CHECK(ok()) << "value() on errored StatusOr: " << status_;
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace swim

#endif  // SWIM_COMMON_STATUSOR_H_

#ifndef SWIM_COMMON_CHECKSUM_H_
#define SWIM_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace swim {

/// 64-bit content checksum (the XXH64 algorithm) used by the STF1 columnar
/// trace format to detect bit rot and torn writes per section. Chosen over
/// CRC64 for speed: the hot loop consumes 32 bytes per iteration with four
/// independent accumulators, so verification of a multi-hundred-MB column
/// file runs at memory bandwidth instead of becoming a second parse tax.
/// Not cryptographic — it guards against corruption, not adversaries.
uint64_t Checksum64(const void* data, size_t size, uint64_t seed = 0);

}  // namespace swim

#endif  // SWIM_COMMON_CHECKSUM_H_

#ifndef SWIM_COMMON_INTERNER_H_
#define SWIM_COMMON_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"

namespace swim {

/// Sentinel id for "no string" (e.g. a job with no output path).
inline constexpr uint32_t kNoStringId = 0xffffffffu;

/// Maps strings to dense uint32_t ids assigned in first-appearance order,
/// so interning the same sequence always yields the same ids — the
/// determinism anchor that lets id-keyed analyses stay byte-identical at
/// any thread count (ids are assigned during the single-threaded trace
/// index build, never in worker threads).
///
/// Interned bytes live in an internal arena; the string_views returned by
/// NameOf() and held as map keys stay valid until Clear()/destruction,
/// regardless of how many strings are added.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(StringInterner&&) noexcept = default;
  StringInterner& operator=(StringInterner&&) noexcept = default;
  // Copies re-intern every name into a fresh arena (map keys must point
  // into the copy's own storage); ids are preserved exactly.
  StringInterner(const StringInterner& other);
  StringInterner& operator=(const StringInterner& other);

  /// Returns the id for `text`, assigning the next dense id (== size()
  /// before the call) on first appearance.
  uint32_t Intern(std::string_view text);

  /// Returns the id for `text`, or kNoStringId when never interned.
  uint32_t Find(std::string_view text) const;

  /// The interned bytes for a valid id (0 <= id < size()).
  std::string_view NameOf(uint32_t id) const { return names_[id]; }

  /// Number of distinct strings interned.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  void Reserve(size_t distinct_strings);
  void Clear();

 private:
  std::string_view CopyToArena(std::string_view text);

  static constexpr size_t kBlockBytes = 1 << 16;

  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;
  size_t block_capacity_ = 0;

  std::vector<std::string_view> names_;          // id -> arena bytes
  FlatHashMap<std::string_view, uint32_t> ids_;  // arena bytes -> id
};

}  // namespace swim

#endif  // SWIM_COMMON_INTERNER_H_

#ifndef SWIM_COMMON_INTERNER_H_
#define SWIM_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/concurrent_hash.h"
#include "common/flat_hash.h"

namespace swim {

/// Sentinel id for "no string" (e.g. a job with no output path).
inline constexpr uint32_t kNoStringId = 0xffffffffu;

/// Maps strings to dense uint32_t ids assigned in first-appearance order,
/// so interning the same sequence always yields the same ids — the
/// determinism anchor that lets id-keyed analyses stay byte-identical at
/// any thread count (ids are assigned during the single-threaded trace
/// index build, never in worker threads).
///
/// Interned bytes live in an internal arena; the string_views returned by
/// NameOf() and held as map keys stay valid until Clear()/destruction,
/// regardless of how many strings are added.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(StringInterner&&) noexcept = default;
  StringInterner& operator=(StringInterner&&) noexcept = default;
  // Copies re-intern every name into a fresh arena (map keys must point
  // into the copy's own storage); ids are preserved exactly.
  StringInterner(const StringInterner& other);
  StringInterner& operator=(const StringInterner& other);

  /// Returns the id for `text`, assigning the next dense id (== size()
  /// before the call) on first appearance.
  uint32_t Intern(std::string_view text);

  /// Returns the id for `text`, or kNoStringId when never interned.
  uint32_t Find(std::string_view text) const;

  /// The interned bytes for a valid id (0 <= id < size()).
  std::string_view NameOf(uint32_t id) const { return names_[id]; }

  /// Number of distinct strings interned.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  void Reserve(size_t distinct_strings);
  void Clear();

 private:
  std::string_view CopyToArena(std::string_view text);

  static constexpr size_t kBlockBytes = 1 << 16;

  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;
  size_t block_capacity_ = 0;

  std::vector<std::string_view> names_;          // id -> arena bytes
  FlatHashMap<std::string_view, uint32_t> ids_;  // arena bytes -> id
};

/// Thread-safe in-place interner: many workers intern concurrently into ONE
/// shared table (no per-worker tables, no serial merge). Built on
/// ConcurrentHashMap with one arena per map shard, so a string's bytes are
/// copied under the same write latch that first inserts it.
///
/// Ids returned by Intern() are PROVISIONAL: dense and unique, but assigned
/// in interleaving order, so they differ run to run. Callers needing the
/// deterministic first-appearance ids of StringInterner record provisional
/// ids during the parallel pass, then run a serial post-pass over their rows
/// in canonical order, mapping each provisional id to its first-appearance
/// rank (Trace::EnsurePathIndex is the reference implementation). The
/// distinct-string SET and the per-row id structure are
/// interleaving-independent; only the numbering needs the post-pass.
///
/// Views returned by ViewsByProvisionalId() stay valid until destruction.
/// size()/ViewsByProvisionalId() are quiescent-only (no concurrent Intern).
class ShardedInterner {
 public:
  /// `expected_distinct` pre-sizes the shards (optional but avoids rehash
  /// latches mid-flight).
  explicit ShardedInterner(size_t expected_distinct = 0);

  ShardedInterner(const ShardedInterner&) = delete;
  ShardedInterner& operator=(const ShardedInterner&) = delete;

  /// Returns the provisional id for `text`, copying the bytes into the
  /// owning shard's arena on first appearance. Thread-safe.
  uint32_t Intern(std::string_view text);

  /// Distinct strings interned so far. Exact at quiescence.
  size_t size() const { return next_id_.load(std::memory_order_acquire); }

  /// provisional id -> interned bytes, for the canonical post-pass.
  /// Quiescent-only.
  std::vector<std::string_view> ViewsByProvisionalId() const;

 private:
  /// Per-shard bump arena; only touched under its shard's write latch.
  struct ShardArena {
    std::vector<std::unique_ptr<char[]>> blocks;
    size_t used = 0;
    size_t capacity = 0;
    std::string_view Copy(std::string_view text);
  };

  ConcurrentHashMap<std::string_view, uint32_t> map_;
  std::unique_ptr<ShardArena[]> arenas_;  // parallel to map_ shards
  std::atomic<uint32_t> next_id_{0};
};

}  // namespace swim

#endif  // SWIM_COMMON_INTERNER_H_

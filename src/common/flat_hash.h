#ifndef SWIM_COMMON_FLAT_HASH_H_
#define SWIM_COMMON_FLAT_HASH_H_

// Open-addressing hash map/set with a separate one-byte metadata array,
// SwissTable-style: each slot's control byte is either kEmpty, kDeleted
// (tombstone), or the low 7 bits of the key's hash (H2). Lookups scan the
// metadata in 16-byte groups, touching slot memory only on an H2 match, so
// a probe costs one cache line of control bytes instead of a chained-bucket
// pointer walk. Capacity is a power of two; the probe sequence steps over
// groups with triangular increments, which visits every group exactly once.
//
// Group scans go through one `Group` abstraction with three backends —
// SSE2 (one _mm_cmpeq_epi8 + movemask per 16 control bytes), NEON
// (vceqq_u8 + horizontal add on AArch64), and a portable word-at-a-time
// fallback — so the probe loops are written once and the ISA is an
// implementation detail. `FlatHashSimdName()` reports which backend this
// translation unit compiled in; benches pin GroupPortable explicitly via
// the GroupPolicy template parameter to measure the SIMD delta.
//
// The default hashers are transparent: FlatHashMap<std::string, V> lookups
// accept std::string_view (and const char*) without constructing a
// temporary std::string. Iteration order is unspecified but deterministic
// for a fixed insertion/erasure history (no randomized seeding), which the
// repo's byte-identical-output contract relies on.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <limits>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define SWIM_FLAT_HASH_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define SWIM_FLAT_HASH_NEON 1
#include <arm_neon.h>
#endif

namespace swim {

// --- Hashing -----------------------------------------------------------

/// 64-bit finalizer (splitmix64); turns sequential integers into
/// well-distributed hashes, required because table capacity is a power of
/// two and interned ids are dense small integers.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// MurmurHash64A-shaped string hash: 8-byte multiply-mix chunks, tail
/// bytes folded in, finalized with two xor-shift rounds.
inline uint64_t HashBytes(const void* data, size_t len) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x8445d61a4e774912ULL ^ (len * kMul);
  size_t chunks = len / 8;
  for (size_t i = 0; i < chunks; ++i) {
    uint64_t k;
    std::memcpy(&k, p + i * 8, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  const unsigned char* tail = p + chunks * 8;
  uint64_t t = 0;
  switch (len & 7) {
    case 7: t ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: t ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: t ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: t ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: t ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: t ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      t ^= static_cast<uint64_t>(tail[0]);
      h ^= t;
      h *= kMul;
      break;
    case 0: break;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

/// Transparent default hasher. Integral/enum/pointer keys go through
/// MixHash64; strings (and anything convertible to string_view) through
/// HashBytes. `is_transparent` enables heterogeneous lookup.
struct FlatHash {
  using is_transparent = void;

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>,
                             int> = 0>
  uint64_t operator()(T value) const {
    return MixHash64(static_cast<uint64_t>(value));
  }
  /// Pointer identity hash — except character pointers, which fall through
  /// to the string_view overload so `find("literal")` hashes contents.
  template <typename T,
            std::enable_if_t<!std::is_convertible_v<T*, std::string_view>,
                             int> = 0>
  uint64_t operator()(T* pointer) const {
    return MixHash64(reinterpret_cast<uintptr_t>(pointer));
  }
  uint64_t operator()(std::string_view text) const {
    return HashBytes(text.data(), text.size());
  }
};

/// Transparent equality: lets std::string keys compare against
/// std::string_view probes without a conversion.
struct FlatEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a == b;
  }
};

/// Drop-in aliases for code that stays on std::unordered_map but should
/// stop constructing temporary std::strings on lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const {
    return static_cast<size_t>(HashBytes(text.data(), text.size()));
  }
};
using TransparentStringEq = std::equal_to<>;

// --- Control bytes ------------------------------------------------------

namespace flat_internal {

inline constexpr size_t kGroupWidth = 16;
inline constexpr uint8_t kEmpty = 0x80;    // high bit set, not a tombstone
inline constexpr uint8_t kDeleted = 0xfe;  // tombstone
// Full slots hold H2 in [0x00, 0x7f] (high bit clear).

inline bool IsFull(uint8_t ctrl) { return (ctrl & 0x80) == 0; }

inline uint8_t H2(uint64_t hash) { return static_cast<uint8_t>(hash & 0x7f); }
inline uint64_t H1(uint64_t hash) { return hash >> 7; }

// Each Group backend loads one 16-byte control group and answers three
// queries as 16-bit masks (bit i set <=> control byte i matches):
//   Match(h2)      — full slots whose H2 tag equals h2
//   MatchEmpty()   — kEmpty bytes (probe chains terminate here)
//   MatchNonFull() — kEmpty or kDeleted bytes (insertable slots)

/// Portable fallback: two 8-byte words, zero-byte trick for Match, high-bit
/// extraction compressed to a movemask-shaped result via multiply.
class GroupPortable {
 public:
  explicit GroupPortable(const uint8_t* ctrl) {
    std::memcpy(&lo_, ctrl, 8);
    std::memcpy(&hi_, ctrl + 8, 8);
  }

  uint32_t Match(uint8_t byte) const {
    const uint64_t pattern = kLsb * byte;
    return HighBitsToMask(ZeroBytes(lo_ ^ pattern)) |
           (HighBitsToMask(ZeroBytes(hi_ ^ pattern)) << 8);
  }

  uint32_t MatchEmpty() const { return Match(kEmpty); }

  uint32_t MatchNonFull() const {
    // High bit set <=> empty or deleted.
    return HighBitsToMask(lo_ & kMsb) | (HighBitsToMask(hi_ & kMsb) << 8);
  }

 private:
  static constexpr uint64_t kLsb = 0x0101010101010101ULL;
  static constexpr uint64_t kMsb = 0x8080808080808080ULL;

  /// High bit of each zero byte in x. Exact (no false positives): adding
  /// 0x7f to the low 7 bits of each byte sets bit 7 iff those bits are
  /// nonzero, and cannot carry across bytes — unlike the classic
  /// (x - kLsb) & ~x trick, whose borrows mark bytes after a true zero.
  /// Exactness keeps all Group backends bitwise-identical, which the
  /// portable-vs-SIMD regression test pins.
  static uint64_t ZeroBytes(uint64_t x) {
    return ~(((x & ~kMsb) + ~kMsb) | x) & kMsb;
  }
  /// Compresses the 8 high bits (positions 7,15,..,63) to mask bits 0..7:
  /// byte k's indicator bit lands at position 56+k (the multiplier has one
  /// bit per byte at 2^(56-7k); all partial products occupy distinct bit
  /// positions, so there are no carries and the pack is exact).
  static uint32_t HighBitsToMask(uint64_t high) {
    return static_cast<uint32_t>(((high >> 7) * 0x0102040810204080ULL) >> 56);
  }

  uint64_t lo_;
  uint64_t hi_;
};

#if defined(SWIM_FLAT_HASH_SSE2)
/// SSE2: one 16-byte compare + sign-bit movemask per query.
class GroupSse2 {
 public:
  explicit GroupSse2(const uint8_t* ctrl)
      : group_(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}

  uint32_t Match(uint8_t byte) const {
    return static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(group_, _mm_set1_epi8(static_cast<char>(byte)))));
  }
  uint32_t MatchEmpty() const { return Match(kEmpty); }
  uint32_t MatchNonFull() const {
    // movemask collects the high bit of every byte directly.
    return static_cast<uint32_t>(_mm_movemask_epi8(group_));
  }

 private:
  __m128i group_;
};
using Group = GroupSse2;
#elif defined(SWIM_FLAT_HASH_NEON)
/// NEON (AArch64): byte-equality compare, then per-byte bit weights summed
/// horizontally into a 16-bit movemask equivalent.
class GroupNeon {
 public:
  explicit GroupNeon(const uint8_t* ctrl) : group_(vld1q_u8(ctrl)) {}

  uint32_t Match(uint8_t byte) const {
    return MoveMask(vceqq_u8(group_, vdupq_n_u8(byte)));
  }
  uint32_t MatchEmpty() const { return Match(kEmpty); }
  uint32_t MatchNonFull() const {
    return MoveMask(vcgeq_u8(group_, vdupq_n_u8(0x80)));
  }

 private:
  static uint32_t MoveMask(uint8x16_t comparison) {
    static const uint8_t kWeights[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                         1, 2, 4, 8, 16, 32, 64, 128};
    uint8x16_t bits = vandq_u8(comparison, vld1q_u8(kWeights));
    return static_cast<uint32_t>(vaddv_u8(vget_low_u8(bits))) |
           (static_cast<uint32_t>(vaddv_u8(vget_high_u8(bits))) << 8);
  }

  uint8x16_t group_;
};
using Group = GroupNeon;
#else
using Group = GroupPortable;
#endif

}  // namespace flat_internal

/// True when this build's default Group backend is SIMD-accelerated.
inline constexpr bool kFlatHashSimdGroups =
    !std::is_same_v<flat_internal::Group, flat_internal::GroupPortable>;

/// Name of the default Group backend compiled into this translation unit.
inline const char* FlatHashSimdName() {
#if defined(SWIM_FLAT_HASH_SSE2)
  return "sse2";
#elif defined(SWIM_FLAT_HASH_NEON)
  return "neon";
#else
  return "portable";
#endif
}

// --- FlatHashMap --------------------------------------------------------

/// `GroupPolicy` selects the 16-byte control-group scanner; the default is
/// the widest ISA available at compile time. Benches pin
/// flat_internal::GroupPortable to measure the SIMD probing delta — the
/// two policies produce identical tables (the policy only affects how a
/// group is scanned, never which slot is chosen).
template <typename K, typename V, typename Hash = FlatHash,
          typename Eq = FlatEq, typename GroupPolicy = flat_internal::Group>
class FlatHashMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;

  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return *slot_; }
    value_type* operator->() const { return slot_; }
    iterator& operator++() {
      ++index_;
      SkipNonFull();
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    friend class FlatHashMap;
    iterator(const FlatHashMap* table, size_t index)
        : table_(table), index_(index) {
      SkipNonFull();
    }
    void SkipNonFull() {
      while (index_ < table_->capacity_ &&
             !flat_internal::IsFull(table_->ctrl_[index_])) {
        ++index_;
      }
      slot_ = index_ < table_->capacity_ ? table_->slots_ + index_ : nullptr;
    }
    const FlatHashMap* table_ = nullptr;
    size_t index_ = 0;
    value_type* slot_ = nullptr;
  };
  using const_iterator = iterator;  // values are not mutable through const
                                    // use; kept simple for internal usage

  FlatHashMap() = default;
  explicit FlatHashMap(size_t initial_capacity) { reserve(initial_capacity); }
  FlatHashMap(std::initializer_list<value_type> init) {
    reserve(init.size());
    for (const auto& kv : init) insert(kv);
  }

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  ~FlatHashMap() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// Live tombstones (erased slots not yet reclaimed by a rehash). Exposed
  /// so tests can pin the load-factor invariant size() + tombstones() <=
  /// 7/8 * capacity() under erase-heavy churn.
  size_t tombstones() const { return deleted_; }

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, capacity_); }

  void clear() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (flat_internal::IsFull(ctrl_[i])) slots_[i].~value_type();
    }
    std::memset(ctrl_, flat_internal::kEmpty, capacity_);
    size_ = 0;
    deleted_ = 0;
    growth_left_ = GrowthCapacity(capacity_);
  }

  /// Ensures capacity for `n` total elements without rehashing
  /// mid-insertion. Tombstone-aware: even when the capacity is already
  /// large enough, accumulated tombstones that would eat the insertion
  /// headroom (growth triggers on size + deleted, not size alone) force a
  /// purging rehash now, so the subsequent inserts never rehash.
  void reserve(size_t n) {
    size_t needed = NormalizeCapacity(n);
    if (needed > capacity_ || (n > size_ && growth_left_ < n - size_)) {
      Rehash(std::max(needed, capacity_));
    }
  }

  template <typename Key>
  iterator find(const Key& key) const {
    size_t index = FindIndex(key);
    return index == kNotFound ? end() : iterator(this, index);
  }

  template <typename Key>
  bool contains(const Key& key) const {
    return FindIndex(key) != kNotFound;
  }

  template <typename Key>
  size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  template <typename Key>
  V& at(const Key& key) {
    size_t index = FindIndex(key);
    assert(index != kNotFound && "FlatHashMap::at: key not found");
    return slots_[index].second;
  }
  template <typename Key>
  const V& at(const Key& key) const {
    size_t index = FindIndex(key);
    assert(index != kNotFound && "FlatHashMap::at: key not found");
    return slots_[index].second;
  }

  V& operator[](const K& key) {
    return TryEmplace(key).first->second;
  }
  V& operator[](K&& key) {
    return TryEmplace(std::move(key)).first->second;
  }
  /// Heterogeneous subscript: materializes K only on first insertion.
  template <typename Key,
            std::enable_if_t<!std::is_convertible_v<Key&&, const K&> &&
                                 !std::is_convertible_v<Key&&, K&&>,
                             int> = 0>
  V& operator[](Key&& key) {
    return TryEmplace(std::forward<Key>(key)).first->second;
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    auto [it, inserted] = TryEmplace(kv.first);
    if (inserted) it->second = kv.second;
    return {it, inserted};
  }
  std::pair<iterator, bool> insert(value_type&& kv) {
    auto [it, inserted] = TryEmplace(std::move(kv.first));
    if (inserted) it->second = std::move(kv.second);
    return {it, inserted};
  }

  template <typename Key, typename... Args>
  std::pair<iterator, bool> emplace(Key&& key, Args&&... args) {
    auto [it, inserted] = TryEmplace(std::forward<Key>(key));
    if (inserted) it->second = V(std::forward<Args>(args)...);
    return {it, inserted};
  }

  /// try_emplace semantics: default-constructs (or constructs from `args`)
  /// the value only when the key is absent. Accepts heterogeneous keys; K
  /// is materialized from `key` only on insertion.
  template <typename Key, typename... Args>
  std::pair<iterator, bool> TryEmplace(Key&& key, Args&&... args) {
    uint64_t hash = hash_(key);
    size_t index = FindIndexHashed(key, hash);
    if (index != kNotFound) return {iterator(this, index), false};
    index = PrepareInsert(hash);
    new (slots_ + index) value_type(
        std::piecewise_construct,
        std::forward_as_tuple(std::forward<Key>(key)),
        std::forward_as_tuple(std::forward<Args>(args)...));
    return {iterator(this, index), true};
  }

  template <typename Key>
  size_t erase(const Key& key) {
    size_t index = FindIndex(key);
    if (index == kNotFound) return 0;
    EraseAt(index);
    return 1;
  }

  iterator erase(iterator pos) {
    size_t index = pos.index_;
    EraseAt(index);
    return iterator(this, index + 1);
  }

 private:
  static constexpr size_t kNotFound = std::numeric_limits<size_t>::max();

  static size_t NormalizeCapacity(size_t n) {
    // Smallest power of two holding n elements at 7/8 load.
    size_t capacity = flat_internal::kGroupWidth;
    while (GrowthCapacity(capacity) < n) capacity *= 2;
    return capacity;
  }
  static size_t GrowthCapacity(size_t capacity) {
    return capacity - capacity / 8;  // 7/8 load factor
  }

  template <typename Key>
  size_t FindIndex(const Key& key) const {
    return FindIndexHashed(key, hash_(key));
  }

  template <typename Key>
  size_t FindIndexHashed(const Key& key, uint64_t hash) const {
    if (capacity_ == 0) return kNotFound;
    const size_t group_count = capacity_ / flat_internal::kGroupWidth;
    const size_t group_mask = group_count - 1;
    size_t group = flat_internal::H1(hash) & group_mask;
    const uint8_t h2 = flat_internal::H2(hash);
    for (size_t step = 0;; ++step) {
      const GroupPolicy ctrl_group(ctrl_ + group * flat_internal::kGroupWidth);
      uint32_t match = ctrl_group.Match(h2);
      while (match != 0) {
        int offset = __builtin_ctz(match);
        size_t index = group * flat_internal::kGroupWidth + offset;
        if (eq_(slots_[index].first, key)) return index;
        match &= match - 1;
      }
      if (ctrl_group.MatchEmpty() != 0) return kNotFound;
      group = (group + step + 1) & group_mask;  // triangular probing
      assert(step <= group_count && "flat hash table is over-full");
    }
  }

  /// Finds the first insertable slot for `hash`, growing/rehashing first if
  /// the load factor would be exceeded. Returns the slot index and writes
  /// its control byte; the caller constructs the element.
  ///
  /// Growth accounting: growth_left_ == GrowthCapacity(capacity) -
  /// (size + deleted), so the trigger fires on live entries PLUS
  /// tombstones — an erase-heavy workload whose size stays flat still
  /// rehashes (in place, purging tombstones) once churn has consumed 7/8
  /// of the slots, instead of degrading probe chains without bound.
  size_t PrepareInsert(uint64_t hash) {
    if (growth_left_ == 0) {
      // Mostly-tombstones rehash in place (same capacity, purge); a table
      // that is at least half live genuinely needs the doubling.
      Rehash(size_ >= capacity_ / 2 ? std::max<size_t>(capacity_ * 2,
                                                       flat_internal::kGroupWidth)
                                    : std::max<size_t>(capacity_,
                                                       flat_internal::kGroupWidth));
    }
    const size_t group_count = capacity_ / flat_internal::kGroupWidth;
    const size_t group_mask = group_count - 1;
    size_t group = flat_internal::H1(hash) & group_mask;
    for (size_t step = 0;; ++step) {
      const GroupPolicy ctrl_group(ctrl_ + group * flat_internal::kGroupWidth);
      uint32_t non_full = ctrl_group.MatchNonFull();
      if (non_full != 0) {
        int offset = __builtin_ctz(non_full);
        size_t index = group * flat_internal::kGroupWidth + offset;
        if (ctrl_[index] == flat_internal::kEmpty) {
          --growth_left_;
        } else {
          --deleted_;  // reclaimed a tombstone; growth debt already paid
        }
        ctrl_[index] = flat_internal::H2(hash);
        ++size_;
        return index;
      }
      group = (group + step + 1) & group_mask;
      assert(step <= group_count && "flat hash table is over-full");
    }
  }

  void EraseAt(size_t index) {
    assert(flat_internal::IsFull(ctrl_[index]));
    slots_[index].~value_type();
    ctrl_[index] = flat_internal::kDeleted;
    --size_;
    ++deleted_;  // growth_left_ stays: the slot still lengthens probes
  }

  void Rehash(size_t new_capacity) {
    uint8_t* old_ctrl = ctrl_;
    value_type* old_slots = slots_;
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    ctrl_ = static_cast<uint8_t*>(::operator new(capacity_));
    std::memset(ctrl_, flat_internal::kEmpty, capacity_);
    slots_ = static_cast<value_type*>(::operator new(
        capacity_ * sizeof(value_type), std::align_val_t(alignof(value_type))));
    size_ = 0;
    deleted_ = 0;
    growth_left_ = GrowthCapacity(capacity_);

    for (size_t i = 0; i < old_capacity; ++i) {
      if (!flat_internal::IsFull(old_ctrl[i])) continue;
      uint64_t hash = hash_(old_slots[i].first);
      size_t index = PrepareInsert(hash);
      new (slots_ + index) value_type(std::move(old_slots[i]));
      old_slots[i].~value_type();
    }
    FreeArrays(old_ctrl, old_slots);
  }

  void CopyFrom(const FlatHashMap& other) {
    reserve(other.size());
    for (const auto& kv : other) {
      TryEmplace(kv.first, kv.second);
    }
  }

  void MoveFrom(FlatHashMap& other) noexcept {
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    deleted_ = other.deleted_;
    growth_left_ = other.growth_left_;
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.deleted_ = 0;
    other.growth_left_ = 0;
  }

  void Destroy() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (flat_internal::IsFull(ctrl_[i])) slots_[i].~value_type();
    }
    FreeArrays(ctrl_, slots_);
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
    size_ = 0;
    deleted_ = 0;
    growth_left_ = 0;
  }

  static void FreeArrays(uint8_t* ctrl, value_type* slots) {
    if (ctrl == nullptr) return;
    ::operator delete(ctrl);
    ::operator delete(slots, std::align_val_t(alignof(value_type)));
  }

  uint8_t* ctrl_ = nullptr;
  value_type* slots_ = nullptr;
  size_t capacity_ = 0;  // always 0 or a power of two multiple of 16
  size_t size_ = 0;
  size_t deleted_ = 0;       // live tombstones
  size_t growth_left_ = 0;   // GrowthCapacity(capacity_) - (size_ + deleted_)
  [[no_unique_address]] Hash hash_;
  [[no_unique_address]] Eq eq_;
};

// --- FlatHashSet --------------------------------------------------------

namespace flat_internal {
struct Unit {};
}  // namespace flat_internal

/// Open-addressing set over the same table. Iteration yields `const K&`.
template <typename K, typename Hash = FlatHash, typename Eq = FlatEq,
          typename GroupPolicy = flat_internal::Group>
class FlatHashSet {
  using Table = FlatHashMap<K, flat_internal::Unit, Hash, Eq, GroupPolicy>;

 public:
  class iterator {
   public:
    iterator() = default;
    const K& operator*() const { return it_->first; }
    const K* operator->() const { return &it_->first; }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    friend class FlatHashSet;
    explicit iterator(typename Table::iterator it) : it_(it) {}
    typename Table::iterator it_;
  };
  using const_iterator = iterator;

  FlatHashSet() = default;
  explicit FlatHashSet(size_t initial_capacity) : table_(initial_capacity) {}

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  iterator begin() const { return iterator(table_.begin()); }
  iterator end() const { return iterator(table_.end()); }

  template <typename Key>
  bool contains(const Key& key) const {
    return table_.contains(key);
  }
  template <typename Key>
  size_t count(const Key& key) const {
    return table_.count(key);
  }
  template <typename Key>
  iterator find(const Key& key) const {
    return iterator(table_.find(key));
  }

  template <typename Key>
  std::pair<iterator, bool> insert(Key&& key) {
    auto [it, inserted] = table_.TryEmplace(std::forward<Key>(key));
    return {iterator(it), inserted};
  }

  template <typename Key>
  size_t erase(const Key& key) {
    return table_.erase(key);
  }

 private:
  Table table_;
};

}  // namespace swim

#endif  // SWIM_COMMON_FLAT_HASH_H_

#ifndef SWIM_COMMON_FLAT_HASH_H_
#define SWIM_COMMON_FLAT_HASH_H_

// Open-addressing hash map/set with a separate one-byte metadata array,
// SwissTable-style: each slot's control byte is either kEmpty, kDeleted
// (tombstone), or the low 7 bits of the key's hash (H2). Lookups scan the
// metadata in 16-byte groups, touching slot memory only on an H2 match, so
// a probe costs one cache line of control bytes instead of a chained-bucket
// pointer walk. Capacity is a power of two; the probe sequence steps over
// groups with triangular increments, which visits every group exactly once.
//
// The default hashers are transparent: FlatHashMap<std::string, V> lookups
// accept std::string_view (and const char*) without constructing a
// temporary std::string. Iteration order is unspecified but deterministic
// for a fixed insertion/erasure history (no randomized seeding), which the
// repo's byte-identical-output contract relies on.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <limits>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace swim {

// --- Hashing -----------------------------------------------------------

/// 64-bit finalizer (splitmix64); turns sequential integers into
/// well-distributed hashes, required because table capacity is a power of
/// two and interned ids are dense small integers.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// MurmurHash64A-shaped string hash: 8-byte multiply-mix chunks, tail
/// bytes folded in, finalized with two xor-shift rounds.
inline uint64_t HashBytes(const void* data, size_t len) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x8445d61a4e774912ULL ^ (len * kMul);
  size_t chunks = len / 8;
  for (size_t i = 0; i < chunks; ++i) {
    uint64_t k;
    std::memcpy(&k, p + i * 8, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  const unsigned char* tail = p + chunks * 8;
  uint64_t t = 0;
  switch (len & 7) {
    case 7: t ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: t ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: t ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: t ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: t ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: t ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      t ^= static_cast<uint64_t>(tail[0]);
      h ^= t;
      h *= kMul;
      break;
    case 0: break;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

/// Transparent default hasher. Integral/enum/pointer keys go through
/// MixHash64; strings (and anything convertible to string_view) through
/// HashBytes. `is_transparent` enables heterogeneous lookup.
struct FlatHash {
  using is_transparent = void;

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>,
                             int> = 0>
  uint64_t operator()(T value) const {
    return MixHash64(static_cast<uint64_t>(value));
  }
  /// Pointer identity hash — except character pointers, which fall through
  /// to the string_view overload so `find("literal")` hashes contents.
  template <typename T,
            std::enable_if_t<!std::is_convertible_v<T*, std::string_view>,
                             int> = 0>
  uint64_t operator()(T* pointer) const {
    return MixHash64(reinterpret_cast<uintptr_t>(pointer));
  }
  uint64_t operator()(std::string_view text) const {
    return HashBytes(text.data(), text.size());
  }
};

/// Transparent equality: lets std::string keys compare against
/// std::string_view probes without a conversion.
struct FlatEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a == b;
  }
};

/// Drop-in aliases for code that stays on std::unordered_map but should
/// stop constructing temporary std::strings on lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const {
    return static_cast<size_t>(HashBytes(text.data(), text.size()));
  }
};
using TransparentStringEq = std::equal_to<>;

// --- Control bytes ------------------------------------------------------

namespace flat_internal {

inline constexpr size_t kGroupWidth = 16;
inline constexpr uint8_t kEmpty = 0x80;    // high bit set, not a tombstone
inline constexpr uint8_t kDeleted = 0xfe;  // tombstone
// Full slots hold H2 in [0x00, 0x7f] (high bit clear).

inline bool IsFull(uint8_t ctrl) { return (ctrl & 0x80) == 0; }

inline uint8_t H2(uint64_t hash) { return static_cast<uint8_t>(hash & 0x7f); }
inline uint64_t H1(uint64_t hash) { return hash >> 7; }

/// Scans one 16-byte control group as two 8-byte words. Returns a bitmask
/// of byte positions matching `byte` (word-at-a-time zero-byte trick on
/// ctrl XOR broadcast(byte)).
inline uint32_t MatchByteMask(const uint8_t* group, uint8_t byte) {
  constexpr uint64_t kLsb = 0x0101010101010101ULL;
  constexpr uint64_t kMsb = 0x8080808080808080ULL;
  const uint64_t pattern = kLsb * byte;
  uint32_t mask = 0;
  for (int w = 0; w < 2; ++w) {
    uint64_t word;
    std::memcpy(&word, group + w * 8, 8);
    uint64_t x = word ^ pattern;
    uint64_t zeros = (x - kLsb) & ~x & kMsb;
    // One bit per zero byte, compressed to positions 0..7.
    while (zeros != 0) {
      int byte_index = __builtin_ctzll(zeros) >> 3;
      mask |= 1u << (w * 8 + byte_index);
      zeros &= zeros - 1;
    }
  }
  return mask;
}

/// Bitmask of empty (not tombstone) bytes in the group.
inline uint32_t MatchEmptyMask(const uint8_t* group) {
  return MatchByteMask(group, kEmpty);
}

/// Bitmask of empty-or-tombstone bytes (insertable slots).
inline uint32_t MatchNonFullMask(const uint8_t* group) {
  constexpr uint64_t kMsb = 0x8080808080808080ULL;
  uint32_t mask = 0;
  for (int w = 0; w < 2; ++w) {
    uint64_t word;
    std::memcpy(&word, group + w * 8, 8);
    uint64_t high = word & kMsb;  // high bit set <=> empty or deleted
    while (high != 0) {
      int byte_index = __builtin_ctzll(high) >> 3;
      mask |= 1u << (w * 8 + byte_index);
      high &= high - 1;
    }
  }
  return mask;
}

}  // namespace flat_internal

// --- FlatHashMap --------------------------------------------------------

template <typename K, typename V, typename Hash = FlatHash,
          typename Eq = FlatEq>
class FlatHashMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;

  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return *slot_; }
    value_type* operator->() const { return slot_; }
    iterator& operator++() {
      ++index_;
      SkipNonFull();
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    friend class FlatHashMap;
    iterator(const FlatHashMap* table, size_t index)
        : table_(table), index_(index) {
      SkipNonFull();
    }
    void SkipNonFull() {
      while (index_ < table_->capacity_ &&
             !flat_internal::IsFull(table_->ctrl_[index_])) {
        ++index_;
      }
      slot_ = index_ < table_->capacity_ ? table_->slots_ + index_ : nullptr;
    }
    const FlatHashMap* table_ = nullptr;
    size_t index_ = 0;
    value_type* slot_ = nullptr;
  };
  using const_iterator = iterator;  // values are not mutable through const
                                    // use; kept simple for internal usage

  FlatHashMap() = default;
  explicit FlatHashMap(size_t initial_capacity) { reserve(initial_capacity); }
  FlatHashMap(std::initializer_list<value_type> init) {
    reserve(init.size());
    for (const auto& kv : init) insert(kv);
  }

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  ~FlatHashMap() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, capacity_); }

  void clear() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (flat_internal::IsFull(ctrl_[i])) slots_[i].~value_type();
    }
    std::memset(ctrl_, flat_internal::kEmpty, capacity_);
    size_ = 0;
    growth_left_ = GrowthCapacity(capacity_);
  }

  /// Ensures capacity for `n` elements without rehashing mid-insertion.
  void reserve(size_t n) {
    size_t needed = NormalizeCapacity(n);
    if (needed > capacity_) Rehash(needed);
  }

  template <typename Key>
  iterator find(const Key& key) const {
    size_t index = FindIndex(key);
    return index == kNotFound ? end() : iterator(this, index);
  }

  template <typename Key>
  bool contains(const Key& key) const {
    return FindIndex(key) != kNotFound;
  }

  template <typename Key>
  size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  template <typename Key>
  V& at(const Key& key) {
    size_t index = FindIndex(key);
    assert(index != kNotFound && "FlatHashMap::at: key not found");
    return slots_[index].second;
  }
  template <typename Key>
  const V& at(const Key& key) const {
    size_t index = FindIndex(key);
    assert(index != kNotFound && "FlatHashMap::at: key not found");
    return slots_[index].second;
  }

  V& operator[](const K& key) {
    return TryEmplace(key).first->second;
  }
  V& operator[](K&& key) {
    return TryEmplace(std::move(key)).first->second;
  }
  /// Heterogeneous subscript: materializes K only on first insertion.
  template <typename Key,
            std::enable_if_t<!std::is_convertible_v<Key&&, const K&> &&
                                 !std::is_convertible_v<Key&&, K&&>,
                             int> = 0>
  V& operator[](Key&& key) {
    return TryEmplace(std::forward<Key>(key)).first->second;
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    auto [it, inserted] = TryEmplace(kv.first);
    if (inserted) it->second = kv.second;
    return {it, inserted};
  }
  std::pair<iterator, bool> insert(value_type&& kv) {
    auto [it, inserted] = TryEmplace(std::move(kv.first));
    if (inserted) it->second = std::move(kv.second);
    return {it, inserted};
  }

  template <typename Key, typename... Args>
  std::pair<iterator, bool> emplace(Key&& key, Args&&... args) {
    auto [it, inserted] = TryEmplace(std::forward<Key>(key));
    if (inserted) it->second = V(std::forward<Args>(args)...);
    return {it, inserted};
  }

  /// try_emplace semantics: default-constructs (or constructs from `args`)
  /// the value only when the key is absent. Accepts heterogeneous keys; K
  /// is materialized from `key` only on insertion.
  template <typename Key, typename... Args>
  std::pair<iterator, bool> TryEmplace(Key&& key, Args&&... args) {
    uint64_t hash = hash_(key);
    size_t index = FindIndexHashed(key, hash);
    if (index != kNotFound) return {iterator(this, index), false};
    index = PrepareInsert(hash);
    new (slots_ + index) value_type(
        std::piecewise_construct,
        std::forward_as_tuple(std::forward<Key>(key)),
        std::forward_as_tuple(std::forward<Args>(args)...));
    return {iterator(this, index), true};
  }

  template <typename Key>
  size_t erase(const Key& key) {
    size_t index = FindIndex(key);
    if (index == kNotFound) return 0;
    EraseAt(index);
    return 1;
  }

  iterator erase(iterator pos) {
    size_t index = pos.index_;
    EraseAt(index);
    return iterator(this, index + 1);
  }

 private:
  static constexpr size_t kNotFound = std::numeric_limits<size_t>::max();

  static size_t NormalizeCapacity(size_t n) {
    // Smallest power of two holding n elements at 7/8 load.
    size_t capacity = flat_internal::kGroupWidth;
    while (GrowthCapacity(capacity) < n) capacity *= 2;
    return capacity;
  }
  static size_t GrowthCapacity(size_t capacity) {
    return capacity - capacity / 8;  // 7/8 load factor
  }

  template <typename Key>
  size_t FindIndex(const Key& key) const {
    return FindIndexHashed(key, hash_(key));
  }

  template <typename Key>
  size_t FindIndexHashed(const Key& key, uint64_t hash) const {
    if (capacity_ == 0) return kNotFound;
    const size_t group_count = capacity_ / flat_internal::kGroupWidth;
    const size_t group_mask = group_count - 1;
    size_t group = flat_internal::H1(hash) & group_mask;
    const uint8_t h2 = flat_internal::H2(hash);
    for (size_t step = 0;; ++step) {
      const uint8_t* ctrl_group =
          ctrl_ + group * flat_internal::kGroupWidth;
      uint32_t match = flat_internal::MatchByteMask(ctrl_group, h2);
      while (match != 0) {
        int offset = __builtin_ctz(match);
        size_t index = group * flat_internal::kGroupWidth + offset;
        if (eq_(slots_[index].first, key)) return index;
        match &= match - 1;
      }
      if (flat_internal::MatchEmptyMask(ctrl_group) != 0) return kNotFound;
      group = (group + step + 1) & group_mask;  // triangular probing
      assert(step <= group_count && "flat hash table is over-full");
    }
  }

  /// Finds the first insertable slot for `hash`, growing/rehashing first if
  /// the load factor would be exceeded. Returns the slot index and writes
  /// its control byte; the caller constructs the element.
  size_t PrepareInsert(uint64_t hash) {
    if (growth_left_ == 0) {
      // Tombstone-heavy tables rehash in place; otherwise double.
      Rehash(size_ >= capacity_ / 2 ? std::max<size_t>(capacity_ * 2,
                                                       flat_internal::kGroupWidth)
                                    : std::max<size_t>(capacity_,
                                                       flat_internal::kGroupWidth));
    }
    const size_t group_count = capacity_ / flat_internal::kGroupWidth;
    const size_t group_mask = group_count - 1;
    size_t group = flat_internal::H1(hash) & group_mask;
    for (size_t step = 0;; ++step) {
      const uint8_t* ctrl_group =
          ctrl_ + group * flat_internal::kGroupWidth;
      uint32_t non_full = flat_internal::MatchNonFullMask(ctrl_group);
      if (non_full != 0) {
        int offset = __builtin_ctz(non_full);
        size_t index = group * flat_internal::kGroupWidth + offset;
        if (ctrl_[index] == flat_internal::kEmpty) --growth_left_;
        ctrl_[index] = flat_internal::H2(hash);
        ++size_;
        return index;
      }
      group = (group + step + 1) & group_mask;
      assert(step <= group_count && "flat hash table is over-full");
    }
  }

  void EraseAt(size_t index) {
    assert(flat_internal::IsFull(ctrl_[index]));
    slots_[index].~value_type();
    ctrl_[index] = flat_internal::kDeleted;
    --size_;
  }

  void Rehash(size_t new_capacity) {
    uint8_t* old_ctrl = ctrl_;
    value_type* old_slots = slots_;
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    ctrl_ = static_cast<uint8_t*>(::operator new(capacity_));
    std::memset(ctrl_, flat_internal::kEmpty, capacity_);
    slots_ = static_cast<value_type*>(::operator new(
        capacity_ * sizeof(value_type), std::align_val_t(alignof(value_type))));
    size_ = 0;
    growth_left_ = GrowthCapacity(capacity_);

    for (size_t i = 0; i < old_capacity; ++i) {
      if (!flat_internal::IsFull(old_ctrl[i])) continue;
      uint64_t hash = hash_(old_slots[i].first);
      size_t index = PrepareInsert(hash);
      new (slots_ + index) value_type(std::move(old_slots[i]));
      old_slots[i].~value_type();
    }
    FreeArrays(old_ctrl, old_slots);
  }

  void CopyFrom(const FlatHashMap& other) {
    reserve(other.size());
    for (const auto& kv : other) {
      TryEmplace(kv.first, kv.second);
    }
  }

  void MoveFrom(FlatHashMap& other) noexcept {
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    growth_left_ = other.growth_left_;
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.growth_left_ = 0;
  }

  void Destroy() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (flat_internal::IsFull(ctrl_[i])) slots_[i].~value_type();
    }
    FreeArrays(ctrl_, slots_);
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
    size_ = 0;
    growth_left_ = 0;
  }

  static void FreeArrays(uint8_t* ctrl, value_type* slots) {
    if (ctrl == nullptr) return;
    ::operator delete(ctrl);
    ::operator delete(slots, std::align_val_t(alignof(value_type)));
  }

  uint8_t* ctrl_ = nullptr;
  value_type* slots_ = nullptr;
  size_t capacity_ = 0;  // always 0 or a power of two multiple of 16
  size_t size_ = 0;
  size_t growth_left_ = 0;
  [[no_unique_address]] Hash hash_;
  [[no_unique_address]] Eq eq_;
};

// --- FlatHashSet --------------------------------------------------------

namespace flat_internal {
struct Unit {};
}  // namespace flat_internal

/// Open-addressing set over the same table. Iteration yields `const K&`.
template <typename K, typename Hash = FlatHash, typename Eq = FlatEq>
class FlatHashSet {
  using Table = FlatHashMap<K, flat_internal::Unit, Hash, Eq>;

 public:
  class iterator {
   public:
    iterator() = default;
    const K& operator*() const { return it_->first; }
    const K* operator->() const { return &it_->first; }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    friend class FlatHashSet;
    explicit iterator(typename Table::iterator it) : it_(it) {}
    typename Table::iterator it_;
  };
  using const_iterator = iterator;

  FlatHashSet() = default;
  explicit FlatHashSet(size_t initial_capacity) : table_(initial_capacity) {}

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  iterator begin() const { return iterator(table_.begin()); }
  iterator end() const { return iterator(table_.end()); }

  template <typename Key>
  bool contains(const Key& key) const {
    return table_.contains(key);
  }
  template <typename Key>
  size_t count(const Key& key) const {
    return table_.count(key);
  }
  template <typename Key>
  iterator find(const Key& key) const {
    return iterator(table_.find(key));
  }

  template <typename Key>
  std::pair<iterator, bool> insert(Key&& key) {
    auto [it, inserted] = table_.TryEmplace(std::forward<Key>(key));
    return {iterator(it), inserted};
  }

  template <typename Key>
  size_t erase(const Key& key) {
    return table_.erase(key);
  }

 private:
  Table table_;
};

}  // namespace swim

#endif  // SWIM_COMMON_FLAT_HASH_H_

#ifndef SWIM_COMMON_STATUS_H_
#define SWIM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace swim {

/// Canonical error space, modeled after absl::StatusCode. Only the codes the
/// library actually produces are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
};

/// Returns the canonical spelling of a status code, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. swimcpp is exception-free (per the
/// Google C++ style guide): fallible operations return Status or
/// StatusOr<T>, and callers must inspect the result.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers mirroring absl's ErrorSpace constructors.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status IoError(std::string message);

}  // namespace swim

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define SWIM_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::swim::Status swim_status_macro_value = (expr); \
    if (!swim_status_macro_value.ok()) {             \
      return swim_status_macro_value;                \
    }                                                \
  } while (false)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define SWIM_ASSIGN_OR_RETURN(lhs, rexpr)               \
  SWIM_ASSIGN_OR_RETURN_IMPL_(                          \
      SWIM_STATUS_MACRO_CONCAT_(swim_statusor, __LINE__), lhs, rexpr)

#define SWIM_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) {                                   \
    return std::move(statusor).status();                  \
  }                                                       \
  lhs = std::move(statusor).value()

#define SWIM_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define SWIM_STATUS_MACRO_CONCAT_(x, y) SWIM_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // SWIM_COMMON_STATUS_H_

#ifndef SWIM_COMMON_CONCURRENT_HASH_H_
#define SWIM_COMMON_CONCURRENT_HASH_H_

// Concurrent hash containers for shared-state parallelism: the layer that
// lets parallel CSV ingest, the interner, and the counting analyses build
// ONE shared index across ParallelFor workers instead of N private tables
// merged serially (the partition-then-merge tax every parallel pass used
// to pay).
//
// Two containers, two contention strategies:
//
// - ConcurrentHashMap<K, V>: the trace population is Zipf-skewed but the
//   key set is unbounded, so the map is sharded 64 ways by high hash bits;
//   each shard is a FlatHashMap behind a writer-preferring versioned latch
//   (readers enter optimistically with a CAS when no writer holds the
//   shard, writers take a mutex, raise the writer bit, and wait readers
//   out). A raw seqlock — readers racing a rehash and retrying on version
//   mismatch — was rejected deliberately: a rehash frees the slot arrays,
//   so an optimistic reader could fault on unmapped memory, and the racy
//   reads would (correctly) fail TSan, which gates this header in CI.
//   Read-mostly lookups therefore cost one CAS + one uncontended atomic
//   decrement per probe; writes serialize only within their shard.
//
// - ConcurrentCounter<K>: increment-heavy Zipf workloads (file-popularity
//   counting) never erase and never read mid-stream, so the counter drops
//   locks entirely: an open-addressed table of atomic key slots claimed by
//   CAS, each with an atomic count bumped by fetch_add. Reads and
//   increments are lock-free; hot keys contend only on their own count
//   cache line. The table does not grow in place — Reserve() before the
//   parallel region; keys past the fill cap spill to a small mutex-guarded
//   overflow map so under-reservation degrades instead of breaking.
//
// Both containers are TSan-clean by construction (every shared word is a
// std::atomic or accessed under a latch) and deterministic in CONTENT at
// quiescence: sums and key sets are interleaving-independent, iteration
// order is not — callers needing byte-stable output index by key (dense
// ids) or sort, exactly as ShardedInterner's canonical post-pass does.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/flat_hash.h"

namespace swim {

// --- Shard latch --------------------------------------------------------

/// Writer-preferring reader/writer latch, sized for one-per-shard use.
/// state_ holds (reader_count << 1) | writer_bit. Readers spin-CAS the
/// count up while the writer bit is clear; a writer takes the (per-latch)
/// mutex to serialize with other writers, raises the bit to stop new
/// readers, then waits the reader count down to zero.
class ShardLatch {
 public:
  void lock_shared() const {
    int spins = 0;
    for (;;) {
      uint64_t state = state_.load(std::memory_order_relaxed);
      if ((state & kWriterBit) == 0) {
        if (state_.compare_exchange_weak(state, state + kReaderUnit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;  // lost the CAS to another reader; retry immediately
      }
      Backoff(&spins);
    }
  }
  void unlock_shared() const {
    state_.fetch_sub(kReaderUnit, std::memory_order_release);
  }

  void lock() {
    writer_mu_.lock();
    state_.fetch_or(kWriterBit, std::memory_order_acquire);
    int spins = 0;
    while (state_.load(std::memory_order_acquire) != kWriterBit) {
      Backoff(&spins);  // drain in-flight readers
    }
  }
  void unlock() {
    state_.fetch_and(~kWriterBit, std::memory_order_release);
    writer_mu_.unlock();
  }

 private:
  static constexpr uint64_t kWriterBit = 1;
  static constexpr uint64_t kReaderUnit = 2;

  static void Backoff(int* spins) {
    if (++*spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else {
      std::this_thread::yield();
    }
  }

  mutable std::atomic<uint64_t> state_{0};
  std::mutex writer_mu_;
};

/// RAII guards matching std::shared_lock / std::unique_lock shapes.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(const ShardLatch& latch) : latch_(latch) {
    latch_.lock_shared();
  }
  ~SharedLatchGuard() { latch_.unlock_shared(); }
  SharedLatchGuard(const SharedLatchGuard&) = delete;
  SharedLatchGuard& operator=(const SharedLatchGuard&) = delete;

 private:
  const ShardLatch& latch_;
};

class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(ShardLatch& latch) : latch_(latch) {
    latch_.lock();
  }
  ~ExclusiveLatchGuard() { latch_.unlock(); }
  ExclusiveLatchGuard(const ExclusiveLatchGuard&) = delete;
  ExclusiveLatchGuard& operator=(const ExclusiveLatchGuard&) = delete;

 private:
  ShardLatch& latch_;
};

// --- ConcurrentHashMap --------------------------------------------------

/// Sharded concurrent map. Keys hash once; the top hash bits pick the
/// shard (disjoint from the bits FlatHashMap probes with), the FlatHashMap
/// inside the shard does the rest. All methods are thread-safe unless
/// noted; values are returned BY COPY because references into a shard
/// would dangle the moment its latch drops.
template <typename K, typename V, typename Hash = FlatHash,
          typename Eq = FlatEq>
class ConcurrentHashMap {
 public:
  /// `shard_count` is rounded up to a power of two; 0 means the default
  /// (64 — enough that 8 workers on distinct keys rarely collide, small
  /// enough that ForEach stays cheap).
  explicit ConcurrentHashMap(size_t shard_count = 0) {
    size_t shards = shard_count == 0 ? kDefaultShards : shard_count;
    size_t rounded = 1;
    while (rounded < shards) rounded *= 2;
    shards_ = std::make_unique<Shard[]>(rounded);
    shard_mask_ = rounded - 1;
  }

  size_t shard_count() const { return shard_mask_ + 1; }

  /// Which shard a key lands in; stable for the map's lifetime. Lets
  /// companion per-shard state (e.g. ShardedInterner's arenas) key off the
  /// same partition.
  template <typename LookupKey>
  size_t ShardOf(const LookupKey& key) const {
    return ShardIndex(hash_(key));
  }

  /// Pre-sizes every shard for `expected_total` entries spread evenly.
  /// NOT thread-safe; call before the parallel region.
  void Reserve(size_t expected_total) {
    size_t per_shard = expected_total / shard_count() + 1;
    for (size_t i = 0; i <= shard_mask_; ++i) {
      shards_[i].map.reserve(per_shard);
    }
  }

  template <typename LookupKey>
  bool Contains(const LookupKey& key) const {
    const Shard& shard = shards_[ShardOf(key)];
    SharedLatchGuard guard(shard.latch);
    return shard.map.contains(key);
  }

  /// Copies the value for `key` into `*out`; false when absent.
  template <typename LookupKey>
  bool Find(const LookupKey& key, V* out) const {
    const Shard& shard = shards_[ShardOf(key)];
    SharedLatchGuard guard(shard.latch);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  /// Inserts or overwrites; returns true when the key was new.
  bool InsertOrAssign(const K& key, V value) {
    Shard& shard = shards_[ShardOf(key)];
    ExclusiveLatchGuard guard(shard.latch);
    auto [it, inserted] = shard.map.TryEmplace(key);
    it->second = std::move(value);
    return inserted;
  }

  /// Read-mostly upsert: probes under the shared latch first (the hit path
  /// takes no exclusive lock at all), then upgrades and re-checks. On first
  /// insertion `make()` runs under the shard's write latch and must return
  /// the {key, value} pair to store — which lets callers materialize owned
  /// keys (arena copies) exactly once, inside the critical section.
  /// Returns {value copy, inserted}.
  template <typename LookupKey, typename EmplaceFn>
  std::pair<V, bool> GetOrEmplace(const LookupKey& key, EmplaceFn&& make) {
    Shard& shard = shards_[ShardOf(key)];
    {
      SharedLatchGuard guard(shard.latch);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) return {it->second, false};
    }
    ExclusiveLatchGuard guard(shard.latch);
    auto it = shard.map.find(key);  // may have raced in between
    if (it != shard.map.end()) return {it->second, false};
    std::pair<K, V> stored = make();
    V value = stored.second;
    shard.map.TryEmplace(std::move(stored.first), std::move(stored.second));
    return {std::move(value), true};
  }

  template <typename LookupKey>
  size_t Erase(const LookupKey& key) {
    Shard& shard = shards_[ShardOf(key)];
    ExclusiveLatchGuard guard(shard.latch);
    return shard.map.erase(key);
  }

  /// Sum of shard sizes. Exact at quiescence; a racing snapshot otherwise.
  size_t size() const {
    size_t total = 0;
    for (size_t i = 0; i <= shard_mask_; ++i) {
      SharedLatchGuard guard(shards_[i].latch);
      total += shards_[i].map.size();
    }
    return total;
  }

  /// Visits every entry shard by shard under that shard's read latch.
  /// Within-shard order is FlatHashMap iteration order and across-shard
  /// order is shard index order — stable for a fixed insertion history but
  /// NOT across different thread interleavings; determinism-sensitive
  /// callers must sort or re-index what they collect.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i <= shard_mask_; ++i) {
      SharedLatchGuard guard(shards_[i].latch);
      for (const auto& kv : shards_[i].map) fn(kv.first, kv.second);
    }
  }

  void Clear() {
    for (size_t i = 0; i <= shard_mask_; ++i) {
      ExclusiveLatchGuard guard(shards_[i].latch);
      shards_[i].map.clear();
    }
  }

 private:
  static constexpr size_t kDefaultShards = 64;

  struct Shard {
    mutable ShardLatch latch;
    FlatHashMap<K, V, Hash, Eq> map;
  };

  /// Top hash bits pick the shard; FlatHashMap consumes the low bits, so
  /// within-shard probing stays well distributed.
  size_t ShardIndex(uint64_t hash) const {
    return (hash >> 48) & shard_mask_;
  }

  std::unique_ptr<Shard[]> shards_;
  size_t shard_mask_ = 0;
  [[no_unique_address]] Hash hash_;
};

// --- ConcurrentCounter --------------------------------------------------

/// Lock-free counting table for integral keys (interned ids, dense ranks,
/// 64-bit hashes) under Zipf-skewed, increment-heavy load. Add() and
/// Count() never take a lock as long as the table was Reserve()d for the
/// distinct-key population; the few keys past the fill cap spill to a
/// mutex-guarded overflow map rather than corrupting the table.
///
/// Key encoding: slots store key + 1 so the zero word doubles as the empty
/// sentinel; keys up to 2^64 - 2 are representable, which covers every id
/// space in the repo (kNoStringId included).
template <typename K>
class ConcurrentCounter {
  static_assert(std::is_integral_v<K>, "ConcurrentCounter keys are integral");

 public:
  explicit ConcurrentCounter(size_t expected_keys = 0) {
    Reserve(expected_keys);
  }

  ConcurrentCounter(const ConcurrentCounter&) = delete;
  ConcurrentCounter& operator=(const ConcurrentCounter&) = delete;

  /// Sizes the table for `expected_keys` distinct keys at <= 50% load.
  /// NOT thread-safe: call before the parallel region. Existing counts are
  /// discarded (the counter is a build-once structure, not a store).
  void Reserve(size_t expected_keys) {
    size_t capacity = kMinCapacity;
    while (capacity < expected_keys * 2) capacity *= 2;
    capacity_ = capacity;
    mask_ = capacity - 1;
    fill_cap_ = capacity - capacity / 4;  // >= 1/4 empty: probes terminate
    slots_ = std::make_unique<Slot[]>(capacity);
    filled_.store(0, std::memory_order_relaxed);
    overflow_.clear();
  }

  /// Thread-safe increment. Lock-free unless the table is past its fill
  /// cap and `key` is unseen (overflow path).
  void Add(K key, uint64_t delta = 1) {
    const uint64_t encoded = Encode(key);
    size_t index = IndexFor(key);
    for (;;) {
      uint64_t current = slots_[index].key.load(std::memory_order_acquire);
      if (current == encoded) {
        slots_[index].count.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
      if (current == 0) {
        if (filled_.load(std::memory_order_relaxed) >= fill_cap_) {
          AddOverflow(key, delta);
          return;
        }
        uint64_t expected = 0;
        if (slots_[index].key.compare_exchange_strong(
                expected, encoded, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          filled_.fetch_add(1, std::memory_order_relaxed);
          slots_[index].count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
        if (expected == encoded) {
          slots_[index].count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
        // Another key claimed this slot between the load and the CAS.
      }
      index = (index + 1) & mask_;
    }
  }

  /// Thread-safe read; lock-free when `key` lives in the main table (it
  /// always does if Reserve() covered the population). Counts racing with
  /// concurrent Add()s are lower bounds; exact at quiescence.
  uint64_t Count(K key) const {
    const uint64_t encoded = Encode(key);
    size_t index = IndexFor(key);
    for (;;) {
      uint64_t current = slots_[index].key.load(std::memory_order_acquire);
      if (current == encoded) {
        return slots_[index].count.load(std::memory_order_relaxed);
      }
      if (current == 0) break;
      index = (index + 1) & mask_;
    }
    std::lock_guard<std::mutex> guard(overflow_mu_);
    auto it = overflow_.find(key);
    return it != overflow_.end() ? it->second : 0;
  }

  /// Distinct keys seen. Exact at quiescence.
  size_t Distinct() const {
    size_t total = filled_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> guard(overflow_mu_);
    return total + overflow_.size();
  }

  /// True when some keys spilled past the reserved table (reservation was
  /// too small for the population).
  bool Overflowed() const {
    std::lock_guard<std::mutex> guard(overflow_mu_);
    return !overflow_.empty();
  }

  /// Visits every (key, count) once. Quiescent use only (no concurrent
  /// Add). Order is slot order — interleaving-dependent; callers needing
  /// deterministic output index by key.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      uint64_t encoded = slots_[i].key.load(std::memory_order_acquire);
      if (encoded == 0) continue;
      fn(Decode(encoded), slots_[i].count.load(std::memory_order_relaxed));
    }
    std::lock_guard<std::mutex> guard(overflow_mu_);
    for (const auto& [key, count] : overflow_) fn(key, count);
  }

 private:
  static constexpr size_t kMinCapacity = 64;

  struct Slot {
    std::atomic<uint64_t> key{0};  // 0 = empty, else Encode(key)
    std::atomic<uint64_t> count{0};
  };

  static uint64_t Encode(K key) { return static_cast<uint64_t>(key) + 1; }
  static K Decode(uint64_t encoded) { return static_cast<K>(encoded - 1); }

  size_t IndexFor(K key) const {
    return MixHash64(static_cast<uint64_t>(key)) & mask_;
  }

  void AddOverflow(K key, uint64_t delta) {
    std::lock_guard<std::mutex> guard(overflow_mu_);
    overflow_[key] += delta;
  }

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t fill_cap_ = 0;
  std::atomic<size_t> filled_{0};
  mutable std::mutex overflow_mu_;
  FlatHashMap<K, uint64_t> overflow_;
};

}  // namespace swim

#endif  // SWIM_COMMON_CONCURRENT_HASH_H_

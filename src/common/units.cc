#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace swim {
namespace {

std::string FormatWithUnit(double value, const char* unit) {
  char buffer[64];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, unit);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, unit);
  }
  return buffer;
}

}  // namespace

std::string FormatBytes(double bytes) {
  if (bytes < 0) return "-" + FormatBytes(-bytes);
  if (bytes >= kEB) return FormatWithUnit(bytes / kEB, "EB");
  if (bytes >= kPB) return FormatWithUnit(bytes / kPB, "PB");
  if (bytes >= kTB) return FormatWithUnit(bytes / kTB, "TB");
  if (bytes >= kGB) return FormatWithUnit(bytes / kGB, "GB");
  if (bytes >= kMB) return FormatWithUnit(bytes / kMB, "MB");
  if (bytes >= kKB) return FormatWithUnit(bytes / kKB, "KB");
  return FormatWithUnit(bytes, "B");
}

std::string FormatDuration(double seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  if (seconds >= kDay) return FormatWithUnit(seconds / kDay, "days");
  if (seconds >= kHour) return FormatWithUnit(seconds / kHour, "hrs");
  if (seconds >= kMinute) return FormatWithUnit(seconds / kMinute, "min");
  return FormatWithUnit(seconds, "sec");
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string result;
  int position = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++position) {
    if (position > 0 && position % 3 == 0) result.push_back(',');
    result.push_back(*it);
  }
  return std::string(result.rbegin(), result.rend());
}

}  // namespace swim

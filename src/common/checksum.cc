#include "common/checksum.h"

#include <cstring>

namespace swim {
namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

inline uint64_t Load64(const unsigned char* p) {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint32_t Load32(const unsigned char* p) {
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t lane) {
  acc ^= Round(0, lane);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t Checksum64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + size;
  uint64_t hash;

  if (size >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    hash = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    hash = MergeRound(hash, v1);
    hash = MergeRound(hash, v2);
    hash = MergeRound(hash, v3);
    hash = MergeRound(hash, v4);
  } else {
    hash = seed + kPrime5;
  }

  hash += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    hash ^= Round(0, Load64(p));
    hash = Rotl64(hash, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    hash = Rotl64(hash, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    hash ^= static_cast<uint64_t>(*p) * kPrime5;
    hash = Rotl64(hash, 11) * kPrime1;
    ++p;
  }

  hash ^= hash >> 33;
  hash *= kPrime2;
  hash ^= hash >> 29;
  hash *= kPrime3;
  hash ^= hash >> 32;
  return hash;
}

}  // namespace swim

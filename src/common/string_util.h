#ifndef SWIM_COMMON_STRING_UTIL_H_
#define SWIM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace swim {

/// Splits `text` at every occurrence of `delimiter`. Adjacent delimiters
/// produce empty fields; the result always has (number of delimiters + 1)
/// entries.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `delimiter` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Extracts the leading alphabetic word of a job name, lowercased - the
/// tokenization the paper applies in section 6.1 ("we focus on the first
/// word of job names, ignoring any capitalization, numbers, or other
/// symbols"). Returns an empty string when the name contains no letters
/// before the first separator.
std::string FirstWordOfJobName(std::string_view job_name);

/// Parses a double, requiring the whole string be consumed.
bool ParseDouble(std::string_view text, double* value);

/// Parses a signed 64-bit integer, requiring the whole string be consumed.
bool ParseInt64(std::string_view text, int64_t* value);

}  // namespace swim

#endif  // SWIM_COMMON_STRING_UTIL_H_

#ifndef SWIM_COMMON_PARALLEL_H_
#define SWIM_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace swim {

/// Hard cap on worker lanes; guards against absurd SWIM_THREADS values.
inline constexpr int kMaxParallelism = 256;

/// The default number of worker lanes: the `SWIM_THREADS` environment
/// variable when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()`, clamped to [1, kMaxParallelism].
/// Re-reads the environment on every call so a long-lived process can be
/// retuned between pipeline invocations.
int DefaultParallelism();

/// Maps a caller-supplied thread count to an effective one: values > 0 are
/// clamped to [1, kMaxParallelism]; 0 (or negative) means DefaultParallelism().
int ResolveParallelism(int requested);

/// A fixed-size pool of worker threads draining one FIFO task queue.
///
/// Most swim code should not construct pools directly: use the
/// process-wide ThreadPool::Shared() via ParallelFor / RunConcurrently,
/// which also keep the calling thread busy so nested use cannot deadlock.
class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are treated as 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured in the future and rethrown by `.get()`.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// The process-wide pool, created on first use and sized
  /// max(DefaultParallelism(), hardware_concurrency()) at creation time.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Chunked parallel loop over [begin, end). Splits the range into
/// ceil((end - begin) / grain) chunks and invokes
/// `body(chunk_begin, chunk_end)` once per chunk.
///
/// Determinism contract: chunk boundaries depend only on (begin, end,
/// grain) — never on the thread count — so bodies that write per-chunk
/// partial results which the caller merges in chunk order produce
/// byte-identical output at any parallelism, including 1.
///
/// The calling thread participates in chunk processing alongside
/// ThreadPool::Shared() workers, so ParallelFor may be nested (e.g. inside
/// a Submit task) without deadlock: if all pool workers are busy, the
/// caller alone drains every chunk. Chunks run in unspecified order and
/// must be independent.
///
/// `max_parallelism` bounds the worker lanes for this call; 0 means
/// DefaultParallelism(). With an effective parallelism of 1 the chunks run
/// serially, in order, on the calling thread.
///
/// If a body throws, remaining chunks are abandoned and one of the thrown
/// exceptions is rethrown here. (swim library code reports errors via
/// Status in its merged results instead; this path exists so bugs cannot
/// vanish silently.)
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 int max_parallelism = 0);

/// Runs independent nullary tasks, the calling thread participating, and
/// returns when all have finished. Equivalent to ParallelFor over the task
/// indices with grain 1; same nesting and exception behaviour.
void RunConcurrently(const std::vector<std::function<void()>>& tasks,
                     int max_parallelism = 0);

}  // namespace swim

#endif  // SWIM_COMMON_PARALLEL_H_

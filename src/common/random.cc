#include "common/random.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace swim {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  operator()();
  state_ += seed;
  operator()();
}

Pcg32::result_type Pcg32::operator()() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
}

double Pcg32::NextDouble() {
  // 53 random bits into [0, 1).
  uint64_t hi = operator()();
  uint64_t lo = operator()();
  uint64_t bits = (hi << 21u) ^ (lo >> 11u);
  return static_cast<double>(bits & ((1ULL << 53u) - 1u)) /
         static_cast<double>(1ULL << 53u);
}

double Pcg32::NextDouble(double lo, double hi) {
  SWIM_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Pcg32::NextBounded(uint64_t bound) {
  SWIM_CHECK_GT(bound, 0u);
  if (bound == 1) return 0;
  // Rejection sampling over 64 random bits to remove modulo bias.
  uint64_t threshold = (~bound + 1u) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = (static_cast<uint64_t>(operator()()) << 32u) | operator()();
    if (r >= threshold) return r % bound;
  }
}

int64_t Pcg32::NextInt(int64_t lo, int64_t hi) {
  SWIM_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1u));
}

double Pcg32::NextGaussian() {
  // Box-Muller without the cached second deviate, to keep the generator
  // state a pure function of the call count.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Pcg32::NextLognormal(double mu, double sigma) {
  SWIM_CHECK_GE(sigma, 0.0);
  return std::exp(mu + sigma * NextGaussian());
}

double Pcg32::NextExponential(double rate) {
  SWIM_CHECK_GT(rate, 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

double Pcg32::NextPareto(double x_min, double alpha) {
  SWIM_CHECK_GT(x_min, 0.0);
  SWIM_CHECK_GT(alpha, 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return x_min / std::pow(u, 1.0 / alpha);
}

bool Pcg32::NextBernoulli(double p) { return NextDouble() < p; }

size_t Pcg32::NextDiscrete(const std::vector<double>& weights) {
  SWIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SWIM_CHECK_GE(w, 0.0);
    total += w;
  }
  SWIM_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Pcg32 Pcg32::Fork() {
  uint64_t seed = (static_cast<uint64_t>(operator()()) << 32u) | operator()();
  uint64_t stream = (static_cast<uint64_t>(operator()()) << 32u) | operator()();
  return Pcg32(seed, stream);
}

}  // namespace swim

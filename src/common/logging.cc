#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace swim {
namespace internal_logging {
namespace {

const char* SeverityTag(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace swim

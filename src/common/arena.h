#ifndef SWIM_COMMON_ARENA_H_
#define SWIM_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace swim {

/// Monotonic bump allocator with block reuse: allocations carve aligned
/// slices off large blocks, individual frees are no-ops, and Reset()
/// rewinds to the first block while keeping every block for the next
/// epoch. Built for the replay sweep's per-lane hot loop — a lane replays
/// one configuration, Reset()s, and replays the next entirely inside
/// memory it already owns, so a config run performs ~zero heap mallocs
/// after the first (warm-up) run sized the blocks.
///
/// Requests larger than the default block size get a dedicated block
/// sized to the request (large-block fallback); that block is kept and
/// reused on later epochs like any other.
///
/// Not thread-safe: one Arena per lane. Pointers handed out are valid
/// until the next Reset() or destruction.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 20;  // 1 MiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Zero-byte requests return a valid unique pointer.
  void* Allocate(size_t bytes, size_t alignment);

  /// Rewinds to the start of the first block, keeping every block for
  /// reuse. Everything previously allocated becomes invalid.
  void Reset() {
    current_ = 0;
    offset_ = 0;
    used_bytes_ = 0;
  }

  /// Total bytes held in blocks (capacity, not live allocations). Stable
  /// across Reset(); a warm arena replaying same-shaped configs should
  /// not grow it further.
  size_t reserved_bytes() const { return reserved_bytes_; }

  /// Bytes handed out since the last Reset() (excluding alignment skip).
  size_t used_bytes() const { return used_bytes_; }

  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  std::vector<Block> blocks_;
  size_t block_bytes_;
  size_t current_ = 0;        // block being bumped
  size_t offset_ = 0;         // bytes consumed in blocks_[current_]
  size_t used_bytes_ = 0;
  size_t reserved_bytes_ = 0;
};

/// Minimal std allocator over an Arena. Deallocation is a no-op (the
/// arena reclaims in bulk on Reset); a default-constructed instance has
/// no arena and falls back to the heap, so arena-parameterized containers
/// stay usable in contexts that never touch an arena.
///
/// Copies (including rebound copies) share the arena pointer; two
/// allocators compare equal iff they point at the same arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t /*n*/) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }

 private:
  Arena* arena_ = nullptr;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a,
                const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}

template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a,
                const ArenaAllocator<U>& b) noexcept {
  return a.arena() != b.arena();
}

/// std::vector backed by an Arena (heap when default-constructed).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace swim

#endif  // SWIM_COMMON_ARENA_H_

#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace swim {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(delimiter);
    result.append(parts[i]);
  }
  return result;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FirstWordOfJobName(std::string_view job_name) {
  std::string word;
  for (char c : job_name) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!word.empty()) {
      break;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Names that begin with digits (timestamps etc.) still have their
      // first alphabetic word extracted after the digits, so keep scanning.
      continue;
    }
  }
  return word;
}

bool ParseDouble(std::string_view text, double* value) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  // ERANGE with an infinite result is a genuine overflow; ERANGE with a
  // finite result is gradual underflow to a subnormal (e.g. 5e-324), which
  // must parse so extreme doubles round-trip through CSV.
  if (errno != 0 && (errno != ERANGE || !std::isfinite(parsed))) return false;
  *value = parsed;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

}  // namespace swim

#ifndef SWIM_STATS_KMEANS_H_
#define SWIM_STATS_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"

namespace swim::stats {

/// Result of one k-means fit.
struct KMeansResult {
  /// Cluster centroids, k rows of `dims` columns, in the (possibly
  /// transformed) feature space handed to Fit.
  std::vector<std::vector<double>> centroids;
  /// Cluster index per input point.
  std::vector<int> assignments;
  /// Points per cluster.
  std::vector<size_t> sizes;
  /// Total within-cluster sum of squared distances.
  double residual_variance = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct KMeansOptions {
  int max_iterations = 100;
  /// Lloyd restarts; the best (lowest residual, ties to the lowest restart
  /// index) run wins. Restarts run concurrently, each on an independent
  /// Pcg32 stream seeded from `seed` + restart index, so the fit is
  /// byte-identical at any thread count.
  int restarts = 3;
  uint64_t seed = 1;
  /// Worker lanes for the assignment/update steps and the restarts: 0 =
  /// default (SWIM_THREADS env var, else hardware concurrency), 1 =
  /// serial. Never changes the result, only the wall clock.
  int threads = 0;
};

/// Lloyd's algorithm with k-means++ seeding, the clustering method the paper
/// uses (section 6.2) to derive Table 2's job categories. Points must be
/// non-empty rows of equal dimension; k must satisfy 1 <= k <= points.
StatusOr<KMeansResult> KMeansFit(
    const std::vector<std::vector<double>>& points, int k,
    const KMeansOptions& options = {});

struct ChooseKResult {
  int k = 0;
  /// Residual variance per candidate k (index 0 <-> k = 1).
  std::vector<double> residuals;
};

/// Chooses k by the paper's rule: "increment k until there is diminishing
/// return in the decrease of intra-cluster (residual) variance".
/// Concretely, stops at the first k whose residual improvement over k-1,
/// measured as a fraction of the TOTAL variance (the k=1 residual), falls
/// below `min_improvement`, or at max_k. Normalizing by total variance
/// (rather than the previous residual) makes the rule scale-aware: once
/// the real cluster structure is captured, splitting a single dense blob
/// gains only a sliver of total variance and the search stops.
StatusOr<ChooseKResult> ChooseKByElbow(
    const std::vector<std::vector<double>>& points, int max_k,
    double min_improvement = 0.1, const KMeansOptions& options = {});

/// Standardizes columns to zero mean / unit variance in place. Columns with
/// zero variance are left centered. Returns per-column (mean, stddev) so
/// centroids can be mapped back.
struct ColumnScaling {
  std::vector<double> mean;
  std::vector<double> stddev;
};
ColumnScaling StandardizeColumns(std::vector<std::vector<double>>& points);

/// Inverse of StandardizeColumns for a single row.
std::vector<double> UnstandardizeRow(const std::vector<double>& row,
                                     const ColumnScaling& scaling);

}  // namespace swim::stats

#endif  // SWIM_STATS_KMEANS_H_

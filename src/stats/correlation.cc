#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"

namespace swim::stats {

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(values.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    double average_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                              2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  SWIM_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double n = static_cast<double>(x.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xx += x[i] * x[i];
    sum_yy += y[i] * y[i];
    sum_xy += x[i] * y[i];
  }
  double cov = sum_xy - sum_x * sum_y / n;
  double var_x = sum_xx - sum_x * sum_x / n;
  double var_y = sum_yy - sum_y * sum_y / n;
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  SWIM_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

namespace {

/// All-pairs Pearson over preprocessed columns. Each upper-triangle pair
/// index maps to fixed (i, j) coordinates independent of the thread count,
/// and each pair writes only its own two symmetric slots - deterministic
/// by construction, per the common/parallel.h sharding contract.
CorrelationMatrix PairwisePearson(const std::vector<std::vector<double>>& cols,
                                  int threads) {
  CorrelationMatrix matrix;
  matrix.dims = cols.size();
  if (matrix.dims == 0) return matrix;
  matrix.values.assign(matrix.dims * matrix.dims, 0.0);
  const size_t d = matrix.dims;
  for (size_t i = 0; i < d; ++i) {
    // A constant (or too-short) series correlates 0 with everything,
    // including itself, matching PearsonCorrelation's degenerate rule.
    matrix.values[i * d + i] = PearsonCorrelation(cols[i], cols[i]);
  }
  const size_t pairs = d * (d - 1) / 2;
  ParallelFor(
      0, pairs, /*grain=*/1,
      [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          // Unflatten the upper-triangle index: row i is the largest with
          // i*(2d-i-1)/2 <= p.
          size_t i = 0;
          size_t skipped = 0;
          while (skipped + (d - i - 1) <= p) {
            skipped += d - i - 1;
            ++i;
          }
          size_t j = i + 1 + (p - skipped);
          double r = PearsonCorrelation(cols[i], cols[j]);
          matrix.values[i * d + j] = r;
          matrix.values[j * d + i] = r;
        }
      },
      threads);
  return matrix;
}

}  // namespace

CorrelationMatrix PearsonMatrix(const std::vector<std::vector<double>>& series,
                                int threads) {
  return PairwisePearson(series, threads);
}

CorrelationMatrix SpearmanMatrix(
    const std::vector<std::vector<double>>& series, int threads) {
  // Rank each series exactly once (the Spearman preprocessing is the
  // n log n part; doing it per pair is what made the all-pairs matrix
  // O(d^2 n log n)). One series per shard; each writes its own slot.
  std::vector<std::vector<double>> ranks(series.size());
  ParallelFor(
      0, series.size(), /*grain=*/1,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ranks[i] = FractionalRanks(series[i]);
      },
      threads);
  return PairwisePearson(ranks, threads);
}

}  // namespace swim::stats

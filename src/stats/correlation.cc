#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace swim::stats {
namespace {

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(values.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    double average_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                              2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  SWIM_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double n = static_cast<double>(x.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xx += x[i] * x[i];
    sum_yy += y[i] * y[i];
    sum_xy += x[i] * y[i];
  }
  double cov = sum_xy - sum_x * sum_y / n;
  double var_x = sum_xx - sum_x * sum_x / n;
  double var_y = sum_yy - sum_y * sum_y / n;
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  SWIM_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

}  // namespace swim::stats

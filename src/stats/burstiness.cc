#include "stats/burstiness.h"

#include <cmath>
#include <numbers>

namespace swim::stats {

BurstinessProfile::BurstinessProfile(const std::vector<double>& series)
    : stats_(series) {
  median_ = stats_.Median();
  if (median_ <= 0.0) {
    // A zero median makes every ratio infinite; treat as degenerate.
    stats_ = SortedStats();
    median_ = 0.0;
  }
}

double BurstinessProfile::RatioAtPercentile(double n) const {
  if (stats_.empty()) return 0.0;
  return stats_.Quantile(n / 100.0) / median_;
}

std::vector<double> BurstinessProfile::Curve() const {
  std::vector<double> curve;
  curve.reserve(101);
  for (int n = 0; n <= 100; ++n) {
    curve.push_back(RatioAtPercentile(static_cast<double>(n)));
  }
  return curve;
}

std::vector<double> SineReferenceSeries(double offset, size_t hours) {
  std::vector<double> series(hours);
  for (size_t t = 0; t < hours; ++t) {
    series[t] = offset + std::sin(2.0 * std::numbers::pi *
                                  static_cast<double>(t) / 24.0);
  }
  return series;
}

}  // namespace swim::stats

#ifndef SWIM_STATS_ZIPF_H_
#define SWIM_STATS_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "stats/sampling.h"

namespace swim::stats {

/// Result of fitting frequency ~ C * rank^{-slope} on log-log axes, the
/// analysis behind the paper's Figure 2 (all seven workloads show file
/// access popularity following a Zipf-like line with slope ~ 5/6).
struct ZipfFitResult {
  double slope = 0.0;      // positive: frequency decays as rank^-slope
  double intercept = 0.0;  // log10 frequency at rank 1
  double r_squared = 0.0;
  size_t ranks = 0;
};

/// Fits a Zipf model to access counts. `frequencies` are per-item access
/// counts in any order; items with zero count are ignored. The fit sorts by
/// descending frequency and regresses log10(freq) on log10(rank).
ZipfFitResult FitZipf(const std::vector<double>& frequencies);

/// Draws ranks in [0, n) with probability proportional to (rank+1)^-s.
/// Uses a precomputed Walker/Vose alias table: O(n) construction once,
/// O(1) per sample, exact. This is the inner loop of the synthetic file
/// population (every generated job draws its input path rank here).
class ZipfSampler {
 public:
  /// `n` >= 1, `s` >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  size_t Sample(Pcg32& rng) const { return table_.Sample(rng); }

  size_t n() const { return pmf_.size(); }
  double s() const { return s_; }

  /// Probability mass of rank i.
  double Pmf(size_t i) const;

 private:
  double s_;
  std::vector<double> pmf_;  // normalized mass per rank
  AliasTable table_;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_ZIPF_H_

#ifndef SWIM_STATS_DESCRIPTIVE_H_
#define SWIM_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace swim::stats {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Median (linear-interpolated). Returns 0 for an empty input.
double Median(const std::vector<double>& values);

/// p-th quantile with linear interpolation, p in [0, 1]. Returns 0 for an
/// empty input. p outside [0,1] is clamped.
double Quantile(std::vector<double> values, double p);

/// Same as Quantile but requires `sorted` be ascending; no copy is made.
double QuantileSorted(const std::vector<double>& sorted, double p);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);
double Sum(const std::vector<double>& values);

/// Geometric mean of strictly positive values; zero/negative entries are
/// skipped. Returns 0 when no positive entries exist.
double GeometricMean(const std::vector<double>& values);

struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
  double sum = 0;
};

/// One-pass descriptive summary (sorts a copy internally).
Summary Summarize(const std::vector<double>& values);

}  // namespace swim::stats

#endif  // SWIM_STATS_DESCRIPTIVE_H_

#ifndef SWIM_STATS_DESCRIPTIVE_H_
#define SWIM_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace swim::stats {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Median (linear-interpolated). Returns 0 for an empty input.
double Median(const std::vector<double>& values);

/// p-th quantile with linear interpolation, p in [0, 1]. Returns 0 for an
/// empty input. p outside [0,1] is clamped.
///
/// COLD PATH: takes `values` by value and sorts the copy on every call.
/// Fine for a one-off quantile; any caller reading two or more quantiles
/// (or a quantile plus moments) from the same data must build a
/// SortedStats (or call QuantileSorted on data it sorted itself) instead.
double Quantile(std::vector<double> values, double p);

/// Same as Quantile but requires `sorted` be ascending; no copy is made.
double QuantileSorted(const std::vector<double>& sorted, double p);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);
double Sum(const std::vector<double>& values);

/// Geometric mean of strictly positive values; zero/negative entries are
/// skipped. Returns 0 when no positive entries exist.
double GeometricMean(const std::vector<double>& values);

struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
  double sum = 0;
};

/// Sort-once view over a sample: the constructor sorts the (moved-in)
/// values once and computes all moments in a single Welford pass; every
/// quantile read afterwards is O(1). Use this wherever the same data
/// feeds more than one Quantile / Median / Mean / StdDev call - the
/// per-call copy-and-sort of the free functions above is the single
/// largest avoidable cost in the report hot paths.
class SortedStats {
 public:
  SortedStats() = default;

  /// Takes ownership, sorts ascending, accumulates moments in one pass.
  explicit SortedStats(std::vector<double> values);

  bool empty() const { return sorted_.empty(); }
  size_t count() const { return sorted_.size(); }

  /// p-th quantile (linear interpolation, p clamped to [0,1]); O(1).
  double Quantile(double p) const { return QuantileSorted(sorted_, p); }
  double Median() const { return Quantile(0.5); }

  double Min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double Max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  double Mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double Variance() const;
  double StdDev() const;
  double Sum() const { return sum_; }

  /// The full descriptive summary; all fields read from the precomputed
  /// state, no further passes.
  Summary ToSummary() const;

  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford sum of squared deviations
  double sum_ = 0.0;
};

/// Descriptive summary: one sort plus one moment pass over the data
/// (equivalent to SortedStats(values).ToSummary()).
Summary Summarize(const std::vector<double>& values);

}  // namespace swim::stats

#endif  // SWIM_STATS_DESCRIPTIVE_H_

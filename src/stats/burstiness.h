#ifndef SWIM_STATS_BURSTINESS_H_
#define SWIM_STATS_BURSTINESS_H_

#include <cstddef>
#include <vector>

#include "stats/descriptive.h"

namespace swim::stats {

/// The paper's burstiness metric (section 5.2): for a time series of
/// arrival rates (e.g. task-seconds submitted per hour), compute the vector
/// of nth-percentile-to-median ratios. Plotting ratio (x) against n (y)
/// yields "a cumulative distribution of arrival rates per time unit,
/// normalized by the median" - a more horizontal curve is a burstier
/// workload; a vertical line at x=1 is a constant-rate workload.
class BurstinessProfile {
 public:
  /// Empty profile (every ratio reports 0).
  BurstinessProfile() = default;

  /// Builds from a (non-negative) rate series. An all-zero or empty series
  /// produces an empty profile.
  explicit BurstinessProfile(const std::vector<double>& series);

  bool empty() const { return stats_.empty(); }

  /// nth-percentile-to-median ratio, n in [0, 100].
  double RatioAtPercentile(double n) const;

  /// Peak-to-median ratio == RatioAtPercentile(100). The paper reports this
  /// ranging from 9:1 (FB-2010) to 260:1 across workloads.
  double PeakToMedian() const { return RatioAtPercentile(100.0); }

  double P99ToMedian() const { return RatioAtPercentile(99.0); }

  double median() const { return median_; }

  /// The full curve at integer percentiles 0..100 (101 points), for
  /// plotting against a reference signal.
  std::vector<double> Curve() const;

 private:
  SortedStats stats_;  // sort once; every percentile read is O(1)
  double median_ = 0.0;
};

/// Reference series used in the paper's Figure 8: one week of hourly
/// samples of `offset + sin(2*pi*t/24h)`. "sine + 2" has min-max range
/// equal to the mean; "sine + 20" has range 10% of the mean.
std::vector<double> SineReferenceSeries(double offset, size_t hours = 168);

}  // namespace swim::stats

#endif  // SWIM_STATS_BURSTINESS_H_

#include "stats/sampling.h"

#include <algorithm>

namespace swim::stats {

std::vector<double> Resample(const std::vector<double>& values, size_t count,
                             Pcg32& rng) {
  std::vector<double> result;
  if (values.empty()) return result;
  result.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    result.push_back(values[rng.NextBounded(values.size())]);
  }
  return result;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  SWIM_CHECK(!weights.empty());
  const size_t n = weights.size();
  SWIM_CHECK_LE(n, static_cast<size_t>(UINT32_MAX));
  double total = 0.0;
  for (double w : weights) {
    SWIM_CHECK_GE(w, 0.0);
    total += w;
  }
  SWIM_CHECK_GT(total, 0.0);

  // Vose's method: scale each weight so the average column mass is 1, then
  // repeatedly top up an underfull ("small") column from an overfull
  // ("large") one. Worklists are filled and drained in ascending index
  // order - construction is pure arithmetic, so the table is deterministic.
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (rounding residue) have mass ~1: accept unconditionally.
  // A zero-weight entry can never land here - it enters the small list
  // with mass exactly 0, is paired with a large column above, and keeps
  // prob_ == 0, so Sample always redirects it to its alias.
  for (uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (uint32_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

}  // namespace swim::stats

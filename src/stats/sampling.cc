#include "stats/sampling.h"

#include <algorithm>

namespace swim::stats {

std::vector<double> Resample(const std::vector<double>& values, size_t count,
                             Pcg32& rng) {
  std::vector<double> result;
  if (values.empty()) return result;
  result.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    result.push_back(values[rng.NextBounded(values.size())]);
  }
  return result;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  SWIM_CHECK(!weights.empty());
  cumulative_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    SWIM_CHECK_GE(weights[i], 0.0);
    total += weights[i];
    cumulative_[i] = total;
  }
  SWIM_CHECK_GT(total, 0.0);
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;
}

size_t DiscreteSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace swim::stats

#include "stats/histogram.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace swim::stats {

LogHistogram::LogHistogram(double lo, double hi, int bins_per_decade)
    : log_lo_(std::log10(lo)), bins_per_decade_(bins_per_decade) {
  SWIM_CHECK_GT(lo, 0.0);
  SWIM_CHECK_GT(hi, lo);
  SWIM_CHECK_GE(bins_per_decade, 1);
  double decades = std::log10(hi) - log_lo_;
  size_t regular = static_cast<size_t>(std::ceil(decades * bins_per_decade));
  counts_.assign(regular + 2, 0.0);  // + underflow + overflow
}

void LogHistogram::Add(double value, double weight) {
  total_weight_ += weight;
  if (value <= 0.0 || std::log10(value) < log_lo_) {
    counts_.front() += weight;
    return;
  }
  double offset = (std::log10(value) - log_lo_) * bins_per_decade_;
  size_t bin = static_cast<size_t>(offset) + 1;
  if (bin >= counts_.size() - 1) {
    counts_.back() += weight;
  } else {
    counts_[bin] += weight;
  }
}

double LogHistogram::BinLowerEdge(size_t i) const {
  SWIM_CHECK_LT(i, counts_.size());
  if (i == 0) return 0.0;
  return std::pow(10.0, log_lo_ + static_cast<double>(i - 1) / bins_per_decade_);
}

double LogHistogram::BinUpperEdge(size_t i) const {
  SWIM_CHECK_LT(i, counts_.size());
  if (i == counts_.size() - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, log_lo_ + static_cast<double>(i) / bins_per_decade_);
}

std::vector<double> LogHistogram::CumulativeFractions() const {
  std::vector<double> fractions(counts_.size(), 0.0);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    fractions[i] = total_weight_ > 0.0 ? cumulative / total_weight_ : 0.0;
  }
  return fractions;
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0.0) continue;
    os << "[" << BinLowerEdge(i) << ", " << BinUpperEdge(i)
       << "): " << counts_[i] << "\n";
  }
  return os.str();
}

LinearHistogram::LinearHistogram(double lo, double hi, size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)) {
  SWIM_CHECK_GT(hi, lo);
  SWIM_CHECK_GT(bins, 0u);
  counts_.assign(bins, 0.0);
}

void LinearHistogram::Add(double value, double weight) {
  total_weight_ += weight;
  double offset = (value - lo_) / width_;
  if (offset < 0.0) offset = 0.0;
  size_t bin = static_cast<size_t>(offset);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  counts_[bin] += weight;
}

double LinearHistogram::BinLowerEdge(size_t i) const {
  SWIM_CHECK_LT(i, counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace swim::stats

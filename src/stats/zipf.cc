#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/regression.h"

namespace swim::stats {

ZipfFitResult FitZipf(const std::vector<double>& frequencies) {
  std::vector<double> sorted;
  sorted.reserve(frequencies.size());
  for (double f : frequencies) {
    if (f > 0.0) sorted.push_back(f);
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  ZipfFitResult result;
  result.ranks = sorted.size();
  if (sorted.size() < 2) return result;

  // Sample ranks log-uniformly (24 per decade). Fitting every rank would
  // let the long plateau of once-accessed files dominate the regression;
  // log spacing matches how a straight line is judged on the paper's
  // log-log axes (Figure 2).
  std::vector<double> log_rank;
  std::vector<double> log_freq;
  const double n = static_cast<double>(sorted.size());
  const double step = std::pow(10.0, 1.0 / 24.0);
  size_t last_rank = 0;
  for (double r = 1.0; r <= n; r *= step) {
    size_t rank = static_cast<size_t>(r);
    if (rank == last_rank) continue;
    last_rank = rank;
    log_rank.push_back(std::log10(static_cast<double>(rank)));
    log_freq.push_back(std::log10(sorted[rank - 1]));
  }
  LinearFit fit = FitLine(log_rank, log_freq);
  result.slope = -fit.slope;
  result.intercept = fit.intercept;
  result.r_squared = fit.r_squared;
  return result;
}

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  SWIM_CHECK_GE(n, 1u);
  SWIM_CHECK_GE(s, 0.0);
  pmf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = std::pow(static_cast<double>(i + 1), -s);
    total += pmf_[i];
  }
  for (double& p : pmf_) p /= total;
  table_ = AliasTable(pmf_);
}

double ZipfSampler::Pmf(size_t i) const {
  SWIM_CHECK_LT(i, pmf_.size());
  return pmf_[i];
}

}  // namespace swim::stats

#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/regression.h"

namespace swim::stats {

ZipfFitResult FitZipf(const std::vector<double>& frequencies) {
  std::vector<double> sorted;
  sorted.reserve(frequencies.size());
  for (double f : frequencies) {
    if (f > 0.0) sorted.push_back(f);
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  ZipfFitResult result;
  result.ranks = sorted.size();
  if (sorted.size() < 2) return result;

  // Sample ranks log-uniformly (24 per decade). Fitting every rank would
  // let the long plateau of once-accessed files dominate the regression;
  // log spacing matches how a straight line is judged on the paper's
  // log-log axes (Figure 2).
  std::vector<double> log_rank;
  std::vector<double> log_freq;
  const double n = static_cast<double>(sorted.size());
  const double step = std::pow(10.0, 1.0 / 24.0);
  size_t last_rank = 0;
  for (double r = 1.0; r <= n; r *= step) {
    size_t rank = static_cast<size_t>(r);
    if (rank == last_rank) continue;
    last_rank = rank;
    log_rank.push_back(std::log10(static_cast<double>(rank)));
    log_freq.push_back(std::log10(sorted[rank - 1]));
  }
  LinearFit fit = FitLine(log_rank, log_freq);
  result.slope = -fit.slope;
  result.intercept = fit.intercept;
  result.r_squared = fit.r_squared;
  return result;
}

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  SWIM_CHECK_GE(n, 1u);
  SWIM_CHECK_GE(s, 0.0);
  cumulative_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cumulative_[i] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;
}

size_t ZipfSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  SWIM_CHECK_LT(i, cumulative_.size());
  if (i == 0) return cumulative_[0];
  return cumulative_[i] - cumulative_[i - 1];
}

}  // namespace swim::stats

#ifndef SWIM_STATS_SAMPLING_H_
#define SWIM_STATS_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace swim::stats {

/// Algorithm R reservoir sampler: maintains a uniform sample of up to
/// `capacity` items from a stream of unknown length.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, Pcg32 rng)
      : capacity_(capacity), rng_(rng) {
    SWIM_CHECK_GT(capacity, 0u);
  }

  void Add(T item) {
    ++seen_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(std::move(item));
      return;
    }
    size_t slot = rng_.NextBounded(seen_);
    if (slot < capacity_) reservoir_[slot] = std::move(item);
  }

  size_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return reservoir_; }

 private:
  size_t capacity_;
  Pcg32 rng_;
  size_t seen_ = 0;
  std::vector<T> reservoir_;
};

/// Fisher-Yates shuffle driven by the library's deterministic RNG.
template <typename T>
void Shuffle(std::vector<T>& items, Pcg32& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(items[i - 1], items[j]);
  }
}

/// Draws `count` samples (with replacement) from `values`.
std::vector<double> Resample(const std::vector<double>& values, size_t count,
                             Pcg32& rng);

/// Samples indices proportionally to fixed non-negative weights in
/// O(log n) per draw via a precomputed cumulative table. Use this instead
/// of Pcg32::NextDiscrete (O(n) per draw) when drawing many times from the
/// same weights.
class DiscreteSampler {
 public:
  /// Weights must be non-empty, non-negative, with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  size_t Sample(Pcg32& rng) const;
  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized, back() == 1
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SAMPLING_H_

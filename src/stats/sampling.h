#ifndef SWIM_STATS_SAMPLING_H_
#define SWIM_STATS_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace swim::stats {

/// Algorithm R reservoir sampler: maintains a uniform sample of up to
/// `capacity` items from a stream of unknown length.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, Pcg32 rng)
      : capacity_(capacity), rng_(rng) {
    SWIM_CHECK_GT(capacity, 0u);
  }

  void Add(T item) {
    ++seen_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(std::move(item));
      return;
    }
    size_t slot = rng_.NextBounded(seen_);
    if (slot < capacity_) reservoir_[slot] = std::move(item);
  }

  size_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return reservoir_; }

 private:
  size_t capacity_;
  Pcg32 rng_;
  size_t seen_ = 0;
  std::vector<T> reservoir_;
};

/// Fisher-Yates shuffle driven by the library's deterministic RNG.
template <typename T>
void Shuffle(std::vector<T>& items, Pcg32& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(items[i - 1], items[j]);
  }
}

/// Draws `count` samples (with replacement) from `values`.
std::vector<double> Resample(const std::vector<double>& values, size_t count,
                             Pcg32& rng);

/// Walker/Vose alias table: O(n) construction, O(1) sampling from a fixed
/// discrete distribution. Each draw consumes exactly one uniform deviate
/// (the integer part picks a column, the fractional part flips the biased
/// coin), so RNG stream consumption is identical to one cumulative-table
/// probe and sample streams stay deterministic in (weights, seed).
/// Construction is deterministic: the small/large worklists are filled in
/// index order, so the table - and therefore every sample stream - is
/// identical across platforms and runs.
class AliasTable {
 public:
  AliasTable() = default;

  /// Weights must be non-empty, non-negative, with a positive sum.
  /// Zero-weight entries are never returned by Sample.
  explicit AliasTable(const std::vector<double>& weights);

  size_t Sample(Pcg32& rng) const {
    const double scaled = rng.NextDouble() * static_cast<double>(prob_.size());
    size_t column = static_cast<size_t>(scaled);
    if (column >= prob_.size()) column = prob_.size() - 1;
    return (scaled - static_cast<double>(column)) < prob_[column]
               ? column
               : alias_[column];
  }

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;     // acceptance threshold per column
  std::vector<uint32_t> alias_;  // fallback index per column
};

/// Samples indices proportionally to fixed non-negative weights in O(1)
/// per draw via a Walker/Vose alias table (O(n) once at construction).
/// This is the inner loop of the synthesizer and trace generator when
/// emitting millions of jobs; use it instead of Pcg32::NextDiscrete
/// (O(n) per draw) whenever drawing more than a handful of times from the
/// same weights.
class DiscreteSampler {
 public:
  /// Weights must be non-empty, non-negative, with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights)
      : table_(weights) {}

  size_t Sample(Pcg32& rng) const { return table_.Sample(rng); }
  size_t size() const { return table_.size(); }

 private:
  AliasTable table_;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SAMPLING_H_

#ifndef SWIM_STATS_REGRESSION_H_
#define SWIM_STATS_REGRESSION_H_

#include <cstddef>
#include <vector>

namespace swim::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  size_t n = 0;
};

/// Ordinary least squares fit y = slope * x + intercept. Inputs must be the
/// same length; fewer than two points yields a zero fit with n recorded.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace swim::stats

#endif  // SWIM_STATS_REGRESSION_H_

#include "stats/fourier.h"

#include <cmath>
#include <numbers>
#include <utility>

#include "stats/descriptive.h"

namespace swim::stats {
namespace {

using Complex = std::complex<double>;

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Iterative in-place radix-2 Cooley-Tukey. `n` must be a power of two.
/// Twiddles come from a direct-trig table (one std::polar per entry), so
/// rounding error stays O(log n * eps) instead of the O(n * eps) drift of
/// repeated-multiplication twiddle generation - the 1e-9 relative-power
/// agreement with the naive DFT holds out to n = 64k and beyond.
void Radix2Fft(std::vector<Complex>& a, bool inverse) {
  const size_t n = a.size();
  if (n < 2) return;
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  std::vector<Complex> twiddle(n / 2);
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n / 2; ++k) {
    twiddle[k] = std::polar(
        1.0, sign * 2.0 * std::numbers::pi * static_cast<double>(k) /
                 static_cast<double>(n));
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const size_t half = len / 2;
    const size_t stride = n / len;
    for (size_t block = 0; block < n; block += len) {
      for (size_t j = 0; j < half; ++j) {
        Complex u = a[block + j];
        Complex v = a[block + j + half] * twiddle[j * stride];
        a[block + j] = u + v;
        a[block + j + half] = u - v;
      }
    }
  }
}

/// Bluestein's chirp-z algorithm: an arbitrary-n DFT as a convolution of
/// chirp-premultiplied input with the conjugate chirp, evaluated by two
/// power-of-two FFTs of length m >= 2n-1. The chirp angle uses
/// (j^2 mod 2n) so the argument to polar stays small and exact even when
/// j^2 overflows the double mantissa's integer range.
void BluesteinFft(std::vector<Complex>& a) {
  const size_t n = a.size();
  const size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> chirp(n);
  for (size_t j = 0; j < n; ++j) {
    const uint64_t j2 = (static_cast<uint64_t>(j) * j) %
                        (2 * static_cast<uint64_t>(n));
    chirp[j] = std::polar(1.0, -std::numbers::pi * static_cast<double>(j2) /
                                   static_cast<double>(n));
  }
  std::vector<Complex> x(m, Complex(0.0, 0.0));
  std::vector<Complex> y(m, Complex(0.0, 0.0));
  for (size_t j = 0; j < n; ++j) x[j] = a[j] * chirp[j];
  y[0] = std::conj(chirp[0]);
  for (size_t j = 1; j < n; ++j) {
    y[j] = std::conj(chirp[j]);
    y[m - j] = std::conj(chirp[j]);
  }
  Radix2Fft(x, /*inverse=*/false);
  Radix2Fft(y, /*inverse=*/false);
  for (size_t k = 0; k < m; ++k) x[k] *= y[k];
  Radix2Fft(x, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(m);
  for (size_t k = 0; k < n; ++k) a[k] = x[k] * scale * chirp[k];
}

}  // namespace

void Fft(std::vector<Complex>& data) {
  if (data.size() < 2) return;
  if (IsPowerOfTwo(data.size())) {
    Radix2Fft(data, /*inverse=*/false);
  } else {
    BluesteinFft(data);
  }
}

void InverseFft(std::vector<Complex>& data) {
  const size_t n = data.size();
  if (n < 2) return;
  for (Complex& v : data) v = std::conj(v);
  Fft(data);
  const double scale = 1.0 / static_cast<double>(n);
  for (Complex& v : data) v = std::conj(v) * scale;
}

std::vector<SpectralPeak> Periodogram(const std::vector<double>& series) {
  std::vector<SpectralPeak> peaks;
  const size_t n = series.size();
  if (n < 4) return peaks;

  const double mean = Mean(series);
  std::vector<Complex> spectrum(n);
  for (size_t t = 0; t < n; ++t) spectrum[t] = Complex(series[t] - mean, 0.0);
  Fft(spectrum);

  double total_power = 0.0;
  peaks.reserve(n / 2);
  for (size_t k = 1; k <= n / 2; ++k) {
    SpectralPeak peak;
    peak.period = static_cast<double>(n) / static_cast<double>(k);
    peak.power = std::norm(spectrum[k]);
    total_power += peak.power;
    peaks.push_back(peak);
  }
  if (total_power > 0.0) {
    for (auto& p : peaks) p.power_fraction = p.power / total_power;
  }
  return peaks;
}

std::vector<SpectralPeak> NaivePeriodogram(const std::vector<double>& series) {
  std::vector<SpectralPeak> peaks;
  const size_t n = series.size();
  if (n < 4) return peaks;

  double mean = Mean(series);
  double total_power = 0.0;
  peaks.reserve(n / 2);
  for (size_t k = 1; k <= n / 2; ++k) {
    double real = 0.0;
    double imag = 0.0;
    for (size_t t = 0; t < n; ++t) {
      double angle = 2.0 * std::numbers::pi * static_cast<double>(k) *
                     static_cast<double>(t) / static_cast<double>(n);
      double centered = series[t] - mean;
      real += centered * std::cos(angle);
      imag -= centered * std::sin(angle);
    }
    SpectralPeak peak;
    peak.period = static_cast<double>(n) / static_cast<double>(k);
    peak.power = real * real + imag * imag;
    total_power += peak.power;
    peaks.push_back(peak);
  }
  if (total_power > 0.0) {
    for (auto& p : peaks) p.power_fraction = p.power / total_power;
  }
  return peaks;
}

SpectralPeak DominantPeriod(const std::vector<double>& series) {
  SpectralPeak best;
  for (const auto& peak : Periodogram(series)) {
    if (peak.power > best.power) best = peak;
  }
  return best;
}

double PeriodStrength(const std::vector<double>& series, double period,
                      double tolerance) {
  double strength = 0.0;
  for (const auto& peak : Periodogram(series)) {
    if (std::fabs(peak.period - period) <= tolerance) {
      strength += peak.power_fraction;
    }
  }
  return strength;
}

}  // namespace swim::stats

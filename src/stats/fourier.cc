#include "stats/fourier.h"

#include <cmath>
#include <numbers>

#include "stats/descriptive.h"

namespace swim::stats {

std::vector<SpectralPeak> Periodogram(const std::vector<double>& series) {
  std::vector<SpectralPeak> peaks;
  const size_t n = series.size();
  if (n < 4) return peaks;

  double mean = Mean(series);
  double total_power = 0.0;
  peaks.reserve(n / 2);
  for (size_t k = 1; k <= n / 2; ++k) {
    double real = 0.0;
    double imag = 0.0;
    for (size_t t = 0; t < n; ++t) {
      double angle = 2.0 * std::numbers::pi * static_cast<double>(k) *
                     static_cast<double>(t) / static_cast<double>(n);
      double centered = series[t] - mean;
      real += centered * std::cos(angle);
      imag -= centered * std::sin(angle);
    }
    SpectralPeak peak;
    peak.period = static_cast<double>(n) / static_cast<double>(k);
    peak.power = real * real + imag * imag;
    total_power += peak.power;
    peaks.push_back(peak);
  }
  if (total_power > 0.0) {
    for (auto& p : peaks) p.power_fraction = p.power / total_power;
  }
  return peaks;
}

SpectralPeak DominantPeriod(const std::vector<double>& series) {
  SpectralPeak best;
  for (const auto& peak : Periodogram(series)) {
    if (peak.power > best.power) best = peak;
  }
  return best;
}

double PeriodStrength(const std::vector<double>& series, double period,
                      double tolerance) {
  double strength = 0.0;
  for (const auto& peak : Periodogram(series)) {
    if (std::fabs(peak.period - period) <= tolerance) {
      strength += peak.power_fraction;
    }
  }
  return strength;
}

}  // namespace swim::stats

#include "stats/regression.h"

#include "common/logging.h"

namespace swim::stats {

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  SWIM_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  fit.n = x.size();
  if (x.size() < 2) return fit;

  double n = static_cast<double>(x.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0, sum_yy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xx += x[i] * x[i];
    sum_xy += x[i] * y[i];
    sum_yy += y[i] * y[i];
  }
  double sxx = sum_xx - sum_x * sum_x / n;
  double sxy = sum_xy - sum_x * sum_y / n;
  double syy = sum_yy - sum_y * sum_y / n;
  if (sxx <= 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = (sum_y - fit.slope * sum_x) / n;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace swim::stats

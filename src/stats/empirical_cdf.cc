#include "stats/empirical_cdf.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace swim::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Fraction(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double p) const {
  return QuantileSorted(sorted_, p);
}

double EmpiricalCdf::Sample(Pcg32& rng) const {
  if (sorted_.empty()) return 0.0;
  return Quantile(rng.NextDouble());
}

double EmpiricalCdf::min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
double EmpiricalCdf::max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

double EmpiricalCdf::KsDistance(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  double distance = 0.0;
  // Evaluate at every sample point of both distributions.
  for (double x : a.sorted_) {
    distance = std::max(distance, std::fabs(a.Fraction(x) - b.Fraction(x)));
  }
  for (double x : b.sorted_) {
    distance = std::max(distance, std::fabs(a.Fraction(x) - b.Fraction(x)));
  }
  return distance;
}

EmpiricalCdf::Curve EmpiricalCdf::LogCurve(size_t points, double floor) const {
  Curve curve;
  if (sorted_.empty() || points == 0) return curve;
  double lo = std::max(min(), floor);
  if (lo <= 0.0) {
    // A log axis cannot reach zero: zero-byte jobs with a non-positive
    // floor would feed log10 a non-positive value and poison the curve
    // with NaN/-inf. Start at the smallest positive sample instead.
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), 0.0);
    if (it == sorted_.end()) {
      // No positive mass at all; the whole distribution sits at <= 0.
      curve.x.push_back(0.0);
      curve.fraction.push_back(1.0);
      return curve;
    }
    lo = *it;
  }
  double hi = std::max(max(), lo);
  if (hi <= lo || points == 1) {
    // Degenerate span (or a single requested point, which would divide by
    // zero below): one point at the top of the range covers everything.
    curve.x.push_back(hi);
    curve.fraction.push_back(1.0);
    return curve;
  }
  double log_lo = std::log10(lo);
  double log_hi = std::log10(hi);
  curve.x.reserve(points);
  curve.fraction.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(points - 1);
    double x = std::pow(10.0, log_lo + t * (log_hi - log_lo));
    curve.x.push_back(x);
    curve.fraction.push_back(Fraction(x));
  }
  return curve;
}

}  // namespace swim::stats

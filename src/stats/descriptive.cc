#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swim::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - mean) * (v - mean);
  return accum / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Median(const std::vector<double>& values) {
  return Quantile(values, 0.5);
}

double Quantile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, p);
}

double QuantileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  double index = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(index));
  size_t hi = static_cast<size_t>(std::ceil(index));
  double fraction = index - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * fraction;
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double GeometricMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(count));
}

SortedStats::SortedStats(std::vector<double> values)
    : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
  // One pass for all moments: plain sum (so Mean matches the free-function
  // Sum/size exactly) plus Welford's update for the squared deviations.
  double welford_mean = 0.0;
  size_t n = 0;
  for (double v : sorted_) {
    sum_ += v;
    ++n;
    double delta = v - welford_mean;
    welford_mean += delta / static_cast<double>(n);
    m2_ += delta * (v - welford_mean);
  }
  if (n > 0) mean_ = sum_ / static_cast<double>(n);
}

double SortedStats::Variance() const {
  if (sorted_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(sorted_.size() - 1);
}

double SortedStats::StdDev() const { return std::sqrt(Variance()); }

Summary SortedStats::ToSummary() const {
  Summary summary;
  summary.count = sorted_.size();
  if (sorted_.empty()) return summary;
  summary.mean = mean_;
  summary.stddev = StdDev();
  summary.min = sorted_.front();
  summary.p25 = Quantile(0.25);
  summary.median = Quantile(0.5);
  summary.p75 = Quantile(0.75);
  summary.p90 = Quantile(0.90);
  summary.p99 = Quantile(0.99);
  summary.max = sorted_.back();
  summary.sum = sum_;
  return summary;
}

Summary Summarize(const std::vector<double>& values) {
  return SortedStats(values).ToSummary();
}

}  // namespace swim::stats

#ifndef SWIM_STATS_EMPIRICAL_CDF_H_
#define SWIM_STATS_EMPIRICAL_CDF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace swim::stats {

/// Empirical cumulative distribution over a sample. This is the paper's
/// workhorse representation: section 7 argues MapReduce workload dimensions
/// do not fit well-known closed-form distributions, so "the workload traces
/// are the model" - synthesis resamples empirical CDFs directly.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds from (possibly unsorted) samples. Keeps a sorted copy.
  explicit EmpiricalCdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  size_t size() const { return sorted_.size(); }

  /// Fraction of samples <= x, in [0, 1].
  double Fraction(double x) const;

  /// p-th quantile with linear interpolation, p clamped to [0, 1].
  double Quantile(double p) const;

  /// Inverse-transform sampling: draws a value distributed per this CDF,
  /// interpolating between adjacent order statistics so synthesized values
  /// are not restricted to observed points.
  double Sample(Pcg32& rng) const;

  double min() const;
  double max() const;
  double median() const { return Quantile(0.5); }

  /// Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)| between two
  /// empirical CDFs. Returns 1 when either is empty and the other is not,
  /// and 0 when both are empty.
  static double KsDistance(const EmpiricalCdf& a, const EmpiricalCdf& b);

  /// Evaluation points and fractions for plotting on a log axis: `points`
  /// log-spaced over [max(min, floor), max], clamped below by `floor`
  /// (default 1.0, suitable for byte-valued data).
  struct Curve {
    std::vector<double> x;
    std::vector<double> fraction;
  };
  Curve LogCurve(size_t points = 64, double floor = 1.0) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_EMPIRICAL_CDF_H_

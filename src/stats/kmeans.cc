#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"

namespace swim::stats {
namespace {

/// Points per ParallelFor chunk in the assignment/update/residual passes.
/// Fixed (independent of thread count) so per-chunk partial sums merge in
/// the same order at any parallelism, keeping centroids byte-identical.
constexpr size_t kPointGrain = 2048;

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double total = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    total += diff * diff;
  }
  return total;
}

/// k-means++ initialization: the first centroid is uniform, each subsequent
/// centroid is drawn with probability proportional to squared distance to
/// the nearest chosen centroid.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, int k, Pcg32& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.NextBounded(points.size())]);

  std::vector<double> nearest(points.size(),
                              std::numeric_limits<double>::max());
  while (static_cast<int>(centroids.size()) < k) {
    const auto& latest = centroids.back();
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      nearest[i] = std::min(nearest[i], SquaredDistance(points[i], latest));
      total += nearest[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.NextBounded(points.size())]);
      continue;
    }
    double target = rng.NextDouble() * total;
    double cumulative = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      cumulative += nearest[i];
      if (target < cumulative) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

/// Per-chunk partial accumulator for the fused assignment + update pass.
struct ChunkPartial {
  std::vector<std::vector<double>> sums;  // k x dims
  std::vector<size_t> counts;             // k
  bool changed = false;
  double residual = 0.0;
};

KMeansResult LloydOnce(const std::vector<std::vector<double>>& points, int k,
                       int max_iterations, Pcg32& rng, int threads) {
  const size_t dims = points[0].size();
  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignments.assign(points.size(), -1);

  const size_t chunk_count = (points.size() + kPointGrain - 1) / kPointGrain;
  std::vector<ChunkPartial> partials(chunk_count);

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Fused assignment + partial update: each chunk assigns its points
    // (disjoint writes) and accumulates per-cluster sums/counts locally.
    ParallelFor(
        0, points.size(), kPointGrain,
        [&](size_t lo, size_t hi) {
          ChunkPartial& part = partials[lo / kPointGrain];
          part.sums.assign(k, std::vector<double>(dims, 0.0));
          part.counts.assign(k, 0);
          part.changed = false;
          for (size_t i = lo; i < hi; ++i) {
            int best = 0;
            double best_dist = std::numeric_limits<double>::max();
            for (int c = 0; c < k; ++c) {
              double dist = SquaredDistance(points[i], result.centroids[c]);
              if (dist < best_dist) {
                best_dist = dist;
                best = c;
              }
            }
            if (result.assignments[i] != best) {
              result.assignments[i] = best;
              part.changed = true;
            }
            for (size_t d = 0; d < dims; ++d) part.sums[best][d] += points[i][d];
            ++part.counts[best];
          }
        },
        threads);

    bool changed = false;
    for (const ChunkPartial& part : partials) changed |= part.changed;
    result.iterations = iter + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
    // Merge partials in chunk order (fixed by kPointGrain, not by thread
    // count) so the new centroids are byte-identical at any parallelism.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (const ChunkPartial& part : partials) {
      for (int c = 0; c < k; ++c) {
        counts[c] += part.counts[c];
        for (size_t d = 0; d < dims; ++d) sums[c][d] += part.sums[c][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextBounded(points.size())];
        continue;
      }
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  // Final sizes + residual, again via chunk partials merged in order.
  ParallelFor(
      0, points.size(), kPointGrain,
      [&](size_t lo, size_t hi) {
        ChunkPartial& part = partials[lo / kPointGrain];
        part.counts.assign(k, 0);
        part.residual = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          int c = result.assignments[i];
          ++part.counts[c];
          part.residual += SquaredDistance(points[i], result.centroids[c]);
        }
      },
      threads);
  result.sizes.assign(k, 0);
  result.residual_variance = 0.0;
  for (const ChunkPartial& part : partials) {
    for (int c = 0; c < k; ++c) result.sizes[c] += part.counts[c];
    result.residual_variance += part.residual;
  }
  return result;
}

}  // namespace

StatusOr<KMeansResult> KMeansFit(
    const std::vector<std::vector<double>>& points, int k,
    const KMeansOptions& options) {
  if (points.empty()) {
    return InvalidArgumentError("k-means requires at least one point");
  }
  if (k < 1 || static_cast<size_t>(k) > points.size()) {
    return InvalidArgumentError("k must be in [1, number of points]");
  }
  const size_t dims = points[0].size();
  if (dims == 0) return InvalidArgumentError("points must have dimension > 0");
  for (const auto& p : points) {
    if (p.size() != dims) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  // Restarts are independent: each gets its own Pcg32 stream derived from
  // the user seed and its restart index, so they can run concurrently and
  // still produce byte-identical fits at any thread count.
  const int restarts = std::max(1, options.restarts);
  std::vector<KMeansResult> runs(restarts);
  ParallelFor(
      0, static_cast<size_t>(restarts), 1,
      [&](size_t lo, size_t hi) {
        for (size_t r = lo; r < hi; ++r) {
          Pcg32 rng(options.seed + r, /*stream=*/17);
          runs[r] =
              LloydOnce(points, k, options.max_iterations, rng, options.threads);
        }
      },
      options.threads);
  // Lowest residual wins; ties break to the lowest restart index.
  KMeansResult best;
  best.residual_variance = std::numeric_limits<double>::max();
  for (KMeansResult& run : runs) {
    if (run.residual_variance < best.residual_variance) best = std::move(run);
  }
  return best;
}

StatusOr<ChooseKResult> ChooseKByElbow(
    const std::vector<std::vector<double>>& points, int max_k,
    double min_improvement, const KMeansOptions& options) {
  if (max_k < 1) return InvalidArgumentError("max_k must be >= 1");
  if (points.empty()) {
    // Without this, max_k clamps to 0, the loop never runs, and a default
    // ChooseKResult{k=0} would be returned as success. Match KMeansFit.
    return InvalidArgumentError("k-means requires at least one point");
  }
  max_k = std::min<int>(max_k, static_cast<int>(points.size()));

  ChooseKResult chosen;
  double total_variance = 0.0;  // the k = 1 residual
  double previous = 0.0;
  for (int k = 1; k <= max_k; ++k) {
    SWIM_ASSIGN_OR_RETURN(KMeansResult run, KMeansFit(points, k, options));
    chosen.residuals.push_back(run.residual_variance);
    if (k == 1) {
      chosen.k = 1;
      total_variance = run.residual_variance;
      previous = run.residual_variance;
      if (total_variance <= 1e-12) break;  // all points identical
      continue;
    }
    double improvement = (previous - run.residual_variance) / total_variance;
    if (improvement < min_improvement) break;
    chosen.k = k;
    previous = run.residual_variance;
    if (run.residual_variance <= 1e-12) break;  // perfect fit; stop early
  }
  return chosen;
}

ColumnScaling StandardizeColumns(std::vector<std::vector<double>>& points) {
  ColumnScaling scaling;
  if (points.empty()) return scaling;
  const size_t dims = points[0].size();
  scaling.mean.assign(dims, 0.0);
  scaling.stddev.assign(dims, 0.0);
  const double n = static_cast<double>(points.size());

  for (const auto& p : points) {
    for (size_t d = 0; d < dims; ++d) scaling.mean[d] += p[d];
  }
  for (size_t d = 0; d < dims; ++d) scaling.mean[d] /= n;
  for (const auto& p : points) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = p[d] - scaling.mean[d];
      scaling.stddev[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    scaling.stddev[d] = std::sqrt(scaling.stddev[d] / n);
  }
  for (auto& p : points) {
    for (size_t d = 0; d < dims; ++d) {
      p[d] -= scaling.mean[d];
      if (scaling.stddev[d] > 0.0) p[d] /= scaling.stddev[d];
    }
  }
  return scaling;
}

std::vector<double> UnstandardizeRow(const std::vector<double>& row,
                                     const ColumnScaling& scaling) {
  SWIM_CHECK_EQ(row.size(), scaling.mean.size());
  std::vector<double> result(row.size());
  for (size_t d = 0; d < row.size(); ++d) {
    double scale = scaling.stddev[d] > 0.0 ? scaling.stddev[d] : 1.0;
    result[d] = row[d] * scale + scaling.mean[d];
  }
  return result;
}

}  // namespace swim::stats

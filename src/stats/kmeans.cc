#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace swim::stats {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double total = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    total += diff * diff;
  }
  return total;
}

/// k-means++ initialization: the first centroid is uniform, each subsequent
/// centroid is drawn with probability proportional to squared distance to
/// the nearest chosen centroid.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, int k, Pcg32& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.NextBounded(points.size())]);

  std::vector<double> nearest(points.size(),
                              std::numeric_limits<double>::max());
  while (static_cast<int>(centroids.size()) < k) {
    const auto& latest = centroids.back();
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      nearest[i] = std::min(nearest[i], SquaredDistance(points[i], latest));
      total += nearest[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.NextBounded(points.size())]);
      continue;
    }
    double target = rng.NextDouble() * total;
    double cumulative = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      cumulative += nearest[i];
      if (target < cumulative) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult LloydOnce(const std::vector<std::vector<double>>& points, int k,
                       int max_iterations, Pcg32& rng) {
  const size_t dims = points[0].size();
  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignments.assign(points.size(), -1);

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double dist = SquaredDistance(points[i], result.centroids[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      int c = result.assignments[i];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextBounded(points.size())];
        continue;
      }
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.sizes.assign(k, 0);
  result.residual_variance = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    int c = result.assignments[i];
    ++result.sizes[c];
    result.residual_variance +=
        SquaredDistance(points[i], result.centroids[c]);
  }
  return result;
}

}  // namespace

StatusOr<KMeansResult> KMeansFit(
    const std::vector<std::vector<double>>& points, int k,
    const KMeansOptions& options) {
  if (points.empty()) {
    return InvalidArgumentError("k-means requires at least one point");
  }
  if (k < 1 || static_cast<size_t>(k) > points.size()) {
    return InvalidArgumentError("k must be in [1, number of points]");
  }
  const size_t dims = points[0].size();
  if (dims == 0) return InvalidArgumentError("points must have dimension > 0");
  for (const auto& p : points) {
    if (p.size() != dims) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  Pcg32 rng(options.seed, /*stream=*/17);
  KMeansResult best;
  best.residual_variance = std::numeric_limits<double>::max();
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    KMeansResult run = LloydOnce(points, k, options.max_iterations, rng);
    if (run.residual_variance < best.residual_variance) best = std::move(run);
  }
  return best;
}

StatusOr<ChooseKResult> ChooseKByElbow(
    const std::vector<std::vector<double>>& points, int max_k,
    double min_improvement, const KMeansOptions& options) {
  if (max_k < 1) return InvalidArgumentError("max_k must be >= 1");
  max_k = std::min<int>(max_k, static_cast<int>(points.size()));

  ChooseKResult chosen;
  double total_variance = 0.0;  // the k = 1 residual
  double previous = 0.0;
  for (int k = 1; k <= max_k; ++k) {
    SWIM_ASSIGN_OR_RETURN(KMeansResult run, KMeansFit(points, k, options));
    chosen.residuals.push_back(run.residual_variance);
    if (k == 1) {
      chosen.k = 1;
      total_variance = run.residual_variance;
      previous = run.residual_variance;
      if (total_variance <= 1e-12) break;  // all points identical
      continue;
    }
    double improvement = (previous - run.residual_variance) / total_variance;
    if (improvement < min_improvement) break;
    chosen.k = k;
    previous = run.residual_variance;
    if (run.residual_variance <= 1e-12) break;  // perfect fit; stop early
  }
  return chosen;
}

ColumnScaling StandardizeColumns(std::vector<std::vector<double>>& points) {
  ColumnScaling scaling;
  if (points.empty()) return scaling;
  const size_t dims = points[0].size();
  scaling.mean.assign(dims, 0.0);
  scaling.stddev.assign(dims, 0.0);
  const double n = static_cast<double>(points.size());

  for (const auto& p : points) {
    for (size_t d = 0; d < dims; ++d) scaling.mean[d] += p[d];
  }
  for (size_t d = 0; d < dims; ++d) scaling.mean[d] /= n;
  for (const auto& p : points) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = p[d] - scaling.mean[d];
      scaling.stddev[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    scaling.stddev[d] = std::sqrt(scaling.stddev[d] / n);
  }
  for (auto& p : points) {
    for (size_t d = 0; d < dims; ++d) {
      p[d] -= scaling.mean[d];
      if (scaling.stddev[d] > 0.0) p[d] /= scaling.stddev[d];
    }
  }
  return scaling;
}

std::vector<double> UnstandardizeRow(const std::vector<double>& row,
                                     const ColumnScaling& scaling) {
  SWIM_CHECK_EQ(row.size(), scaling.mean.size());
  std::vector<double> result(row.size());
  for (size_t d = 0; d < row.size(); ++d) {
    double scale = scaling.stddev[d] > 0.0 ? scaling.stddev[d] : 1.0;
    result[d] = row[d] * scale + scaling.mean[d];
  }
  return result;
}

}  // namespace swim::stats

#ifndef SWIM_STATS_FOURIER_H_
#define SWIM_STATS_FOURIER_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace swim::stats {

/// One spectral line of a periodogram.
struct SpectralPeak {
  double period = 0.0;  // in samples (e.g. hours when fed hourly series)
  double power = 0.0;   // squared magnitude, mean-removed
  double power_fraction = 0.0;  // share of total non-DC power
};

/// In-place forward FFT (sign convention e^{-2*pi*i*k*t/n}, no scaling) of
/// an arbitrary-length complex sequence. Power-of-two lengths run the
/// iterative radix-2 Cooley-Tukey kernel directly; other lengths go through
/// Bluestein's chirp-z reduction to a power-of-two convolution, so every
/// length is O(n log n).
void Fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (scaled by 1/n), any length.
void InverseFft(std::vector<std::complex<double>>& data);

/// FFT-based periodogram of a real series (mean removed). Returns power at
/// each frequency k = 1 .. n/2, as (period, power) pairs. O(n log n) at any
/// length, so minute-granularity multi-month series (n ~ 64k+) are cheap.
std::vector<SpectralPeak> Periodogram(const std::vector<double>& series);

/// O(n^2) direct-evaluation reference periodogram (the pre-FFT kernel).
/// Kept as the golden oracle for tests and the bench_stats baseline; do not
/// call on hot paths.
std::vector<SpectralPeak> NaivePeriodogram(const std::vector<double>& series);

/// Detects periodicity the way the paper does for Figure 7 ("some workloads
/// exhibit daily diurnal patterns, revealed by Fourier analysis"): returns
/// the dominant spectral peak. A series shorter than 4 samples yields a
/// zero peak.
SpectralPeak DominantPeriod(const std::vector<double>& series);

/// Strength of a specific period (e.g. 24 for diurnal in hourly data):
/// fraction of non-DC power within +-tolerance of the period. Returns 0
/// for degenerate inputs.
double PeriodStrength(const std::vector<double>& series, double period,
                      double tolerance = 2.0);

}  // namespace swim::stats

#endif  // SWIM_STATS_FOURIER_H_

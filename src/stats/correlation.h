#ifndef SWIM_STATS_CORRELATION_H_
#define SWIM_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

namespace swim::stats {

/// Pearson product-moment correlation of two equal-length series; the
/// statistic behind the paper's Figure 9 (pairwise correlation of the
/// hourly jobs / bytes / task-seconds submission series). Returns 0 when
/// either series is constant or shorter than 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Fractional ranks of `values` (ties get average ranks, 1-based). This is
/// the Spearman preprocessing step; compute it once per series when a
/// series participates in many pairwise correlations.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Spearman rank correlation (Pearson on fractional ranks; ties get
/// average ranks). Ranks both inputs per call - for all-pairs work use
/// SpearmanMatrix, which ranks each series exactly once.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Symmetric all-pairs correlation matrix over d series (the Figure 9
/// shape). Stored dense row-major; diagonal is 1 for non-degenerate
/// series.
struct CorrelationMatrix {
  size_t dims = 0;
  std::vector<double> values;  // dims x dims, row-major

  double at(size_t i, size_t j) const { return values[i * dims + j]; }
};

/// All-pairs Pearson matrix. The d*(d-1)/2 upper-triangle pairs are
/// sharded over common/parallel.h workers; every pair writes only its own
/// two (symmetric) slots, so the result is byte-identical at any thread
/// count. `threads` <= 0 defers to SWIM_THREADS / hardware concurrency.
CorrelationMatrix PearsonMatrix(const std::vector<std::vector<double>>& series,
                                int threads = 0);

/// All-pairs Spearman matrix. Ranks each series exactly once (O(d n log n)
/// total) and then correlates rank vectors pairwise (O(d^2 n)), instead of
/// the O(d^2 n log n) of calling SpearmanCorrelation per pair. Rank and
/// accumulate loops are sharded like PearsonMatrix; deterministic at any
/// thread count.
CorrelationMatrix SpearmanMatrix(
    const std::vector<std::vector<double>>& series, int threads = 0);

}  // namespace swim::stats

#endif  // SWIM_STATS_CORRELATION_H_

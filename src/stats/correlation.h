#ifndef SWIM_STATS_CORRELATION_H_
#define SWIM_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

namespace swim::stats {

/// Pearson product-moment correlation of two equal-length series; the
/// statistic behind the paper's Figure 9 (pairwise correlation of the
/// hourly jobs / bytes / task-seconds submission series). Returns 0 when
/// either series is constant or shorter than 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson on fractional ranks; ties get
/// average ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace swim::stats

#endif  // SWIM_STATS_CORRELATION_H_

#include "stats/sketch/sliding_window.h"

#include <algorithm>
#include <cmath>

namespace swim::stats {

SlidingWindowSeries::SlidingWindowSeries(double bucket_seconds,
                                         size_t window_buckets)
    : bucket_seconds_(bucket_seconds > 0.0 ? bucket_seconds : 3600.0),
      capacity_(std::max<size_t>(window_buckets, 1)),
      ring_(capacity_, 0.0) {}

void SlidingWindowSeries::Observe(double time, double value) {
  if (newest_bucket_ < 0) origin_ = time;
  const auto bucket =
      static_cast<int64_t>(std::floor((time - origin_) / bucket_seconds_));
  const int64_t window_start =
      newest_bucket_ - static_cast<int64_t>(capacity_) + 1;
  if (newest_bucket_ >= 0 && bucket < window_start) {
    ++dropped_stale_;
    return;
  }
  if (bucket > newest_bucket_) {
    // Zero every bucket the window slides past (bounded by one lap).
    const int64_t advance = std::min(
        bucket - newest_bucket_, static_cast<int64_t>(capacity_));
    for (int64_t b = bucket - advance + 1; b <= bucket; ++b) {
      ring_[static_cast<size_t>(((b % static_cast<int64_t>(capacity_)) +
                                 static_cast<int64_t>(capacity_)) %
                                static_cast<int64_t>(capacity_))] = 0.0;
    }
    newest_bucket_ = bucket;
  }
  ring_[static_cast<size_t>(((bucket % static_cast<int64_t>(capacity_)) +
                             static_cast<int64_t>(capacity_)) %
                            static_cast<int64_t>(capacity_))] += value;
}

std::vector<double> SlidingWindowSeries::Window() const {
  std::vector<double> out;
  if (newest_bucket_ < 0) return out;
  const int64_t live =
      std::min(newest_bucket_ + 1, static_cast<int64_t>(capacity_));
  out.reserve(static_cast<size_t>(live));
  for (int64_t b = newest_bucket_ - live + 1; b <= newest_bucket_; ++b) {
    out.push_back(
        ring_[static_cast<size_t>(((b % static_cast<int64_t>(capacity_)) +
                                   static_cast<int64_t>(capacity_)) %
                                  static_cast<int64_t>(capacity_))]);
  }
  return out;
}

}  // namespace swim::stats

#include "stats/sketch/zipf_online.h"

#include <algorithm>
#include <functional>

namespace swim::stats {

void OnlineZipf::Merge(const OnlineZipf& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t id = 0; id < other.counts_.size(); ++id) {
    if (other.counts_[id] == 0) continue;
    if (counts_[id] == 0) ++distinct_;
    counts_[id] += other.counts_[id];
  }
  total_ += other.total_;
}

OnlineZipf::Snapshot OnlineZipf::Fit() const {
  // Mirrors the batch popularity pipeline operation for operation (skip
  // zeros in id order, sort descending, exact FitZipf) so streaming and
  // batch agree to the last bit on identical access multisets.
  Snapshot snapshot;
  snapshot.frequencies.reserve(distinct_);
  for (uint64_t count : counts_) {
    if (count == 0) continue;
    snapshot.frequencies.push_back(static_cast<double>(count));
    snapshot.total_accesses += count;
  }
  snapshot.distinct_items = snapshot.frequencies.size();
  std::sort(snapshot.frequencies.begin(), snapshot.frequencies.end(),
            std::greater<double>());
  snapshot.fit = FitZipf(snapshot.frequencies);
  return snapshot;
}

}  // namespace swim::stats

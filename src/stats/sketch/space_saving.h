#ifndef SWIM_STATS_SKETCH_SPACE_SAVING_H_
#define SWIM_STATS_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_hash.h"

namespace swim::stats {

/// Space-Saving heavy-hitter sketch (Metwally et al., ICDT'05): tracks at
/// most `capacity` keys; on overflow the minimum-count entry is recycled to
/// the new key, inheriting its count as the new entry's error bound.
///
/// Guarantees, with N = total_weight():
///   - reported count >= true count (never an underestimate),
///   - reported count - error <= true count,
///   - every key with true count > N / capacity is present.
/// The streaming analyzer uses it for "hot file" tracking: the paper's
/// Zipf-distributed file popularity concentrates mass on few paths, which
/// is exactly the regime Space-Saving is designed for.
///
/// Deterministic: the victim on overflow is the lexicographically smallest
/// (count, key) pair, maintained in an indexed binary min-heap, so the same
/// key sequence always yields the same sketch. Not thread-safe.
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity);

  /// Observes `key` with the given weight.
  void Add(uint64_t key, uint64_t weight = 1);

  /// Folds `other` into this sketch: counts and error bounds add; a key
  /// absent from one side is charged the other side's possible untracked
  /// mass (its minimum count when full). Keeps the top `capacity` keys.
  void Merge(const SpaceSavingSketch& other);

  struct HeavyHitter {
    uint64_t key = 0;
    uint64_t count = 0;  // overestimate; true count in [count-error, count]
    uint64_t error = 0;
  };

  /// The k highest-count entries, ordered by descending count (ties: by
  /// ascending key). Deterministic.
  std::vector<HeavyHitter> TopK(size_t k) const;

  uint64_t total_weight() const { return total_; }
  size_t size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }

  /// Smallest tracked count (0 when not yet full) — the bound on any
  /// untracked key's true count.
  uint64_t MinCount() const;

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t count = 0;
    uint64_t error = 0;
    size_t heap_pos = 0;
  };

  bool HeapLess(size_t slot_a, size_t slot_b) const;
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);

  size_t capacity_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_;  // slot indices, min (count, key) at root
  FlatHashMap<uint64_t, uint32_t> index_;  // key -> slot index
  uint64_t total_ = 0;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SKETCH_SPACE_SAVING_H_

#ifndef SWIM_STATS_SKETCH_P2_QUANTILE_H_
#define SWIM_STATS_SKETCH_P2_QUANTILE_H_

#include <array>
#include <cstdint>

namespace swim::stats {

/// P-squared (Jain & Chlamtac, CACM'85) single-quantile estimator: tracks
/// one target quantile with five markers and O(1) memory per observation —
/// no buffer, no merge, no error bound. The cheap point estimator for
/// fixed dashboards (a follow-mode p99 line) where GkQuantileSketch's
/// guaranteed band or mergeability is not needed; sketch_test cross-checks
/// its convergence against the SortedStats oracle on smooth distributions.
///
/// Deterministic: the estimate is a pure function of the observation
/// sequence. Not mergeable (use GkQuantileSketch when shards must fold).
class P2Quantile {
 public:
  /// `p` in (0, 1): the single quantile this instance tracks.
  explicit P2Quantile(double p);

  void Add(double value);

  /// Current estimate of quantile p. Exact while count() < 5 (computed
  /// from the first observations directly); 0.0 when empty.
  double Estimate() const;

  uint64_t count() const { return count_; }
  double p() const { return p_; }

 private:
  double ParabolicAdjust(int i, double direction) const;

  double p_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};           // marker heights q_i
  std::array<double, 5> positions_{};         // actual marker positions n_i
  std::array<double, 5> desired_{};           // desired positions n'_i
  std::array<double, 5> desired_increment_{};  // dn'_i per observation
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SKETCH_P2_QUANTILE_H_

#include "stats/sketch/space_saving.h"

#include <algorithm>

namespace swim::stats {

SpaceSavingSketch::SpaceSavingSketch(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  slots_.reserve(capacity_);
  heap_.reserve(capacity_);
  index_.reserve(capacity_ * 2);
}

bool SpaceSavingSketch::HeapLess(size_t slot_a, size_t slot_b) const {
  const Slot& a = slots_[slot_a];
  const Slot& b = slots_[slot_b];
  if (a.count != b.count) return a.count < b.count;
  return a.key < b.key;
}

void SpaceSavingSketch::SiftUp(size_t pos) {
  const uint32_t slot = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!HeapLess(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = pos;
}

void SpaceSavingSketch::SiftDown(size_t pos) {
  const uint32_t slot = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && HeapLess(heap_[child + 1], heap_[child])) ++child;
    if (!HeapLess(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = pos;
}

void SpaceSavingSketch::Add(uint64_t key, uint64_t weight) {
  total_ += weight;
  auto it = index_.find(key);
  if (it != index_.end()) {
    const uint32_t slot = it->second;
    slots_[slot].count += weight;
    SiftDown(slots_[slot].heap_pos);  // count grew: can only move down
    return;
  }
  if (slots_.size() < capacity_) {
    const auto slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{key, weight, 0, heap_.size()});
    heap_.push_back(slot);
    index_[key] = slot;
    SiftUp(slots_[slot].heap_pos);
    return;
  }
  // Recycle the deterministic minimum: smallest (count, key).
  const uint32_t victim = heap_[0];
  Slot& slot = slots_[victim];
  index_.erase(slot.key);
  index_[key] = victim;
  slot.error = slot.count;
  slot.count += weight;
  slot.key = key;
  SiftDown(0);
}

uint64_t SpaceSavingSketch::MinCount() const {
  if (slots_.size() < capacity_ || heap_.empty()) return 0;
  return slots_[heap_[0]].count;
}

void SpaceSavingSketch::Merge(const SpaceSavingSketch& other) {
  if (other.slots_.empty()) {
    total_ += other.total_;
    return;
  }
  // Union with summed counts; a key missing on one side is charged that
  // side's untracked-mass bound (its minimum count when full), keeping the
  // overestimate and count-error invariants valid for the merged stream.
  const uint64_t this_floor = MinCount();
  const uint64_t other_floor = other.MinCount();
  std::vector<HeavyHitter> merged;
  merged.reserve(slots_.size() + other.slots_.size());
  for (const Slot& slot : slots_) {
    HeavyHitter entry{slot.key, slot.count, slot.error};
    auto it = other.index_.find(slot.key);
    if (it != other.index_.end()) {
      const Slot& theirs = other.slots_[it->second];
      entry.count += theirs.count;
      entry.error += theirs.error;
    } else {
      entry.count += other_floor;
      entry.error += other_floor;
    }
    merged.push_back(entry);
  }
  for (const Slot& slot : other.slots_) {
    if (index_.contains(slot.key)) continue;
    merged.push_back(
        HeavyHitter{slot.key, slot.count + this_floor, slot.error + this_floor});
  }
  std::sort(merged.begin(), merged.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (merged.size() > capacity_) merged.resize(capacity_);

  const uint64_t combined_total = total_ + other.total_;
  slots_.clear();
  heap_.clear();
  index_.clear();
  total_ = combined_total;
  for (const HeavyHitter& entry : merged) {
    const auto slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{entry.key, entry.count, entry.error, heap_.size()});
    heap_.push_back(slot);
    index_[entry.key] = slot;
    SiftUp(slots_[slot].heap_pos);
  }
}

std::vector<SpaceSavingSketch::HeavyHitter> SpaceSavingSketch::TopK(
    size_t k) const {
  std::vector<HeavyHitter> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(HeavyHitter{slot.key, slot.count, slot.error});
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace swim::stats

#include "stats/sketch/gk_quantile.h"

#include <algorithm>
#include <cmath>

namespace swim::stats {

GkQuantileSketch::GkQuantileSketch(double epsilon) {
  if (!(epsilon > 0.0)) epsilon = 0.005;
  epsilon_ = std::min(std::max(epsilon, 1e-5), 0.5);
  internal_epsilon_ = epsilon_ / 2.0;
  // Larger buffers amortize the fold better; 1/eps keeps the flush cost
  // (O(tuples + buffer log buffer)) at ~tens of ops per value.
  buffer_capacity_ = std::max<size_t>(
      256, static_cast<size_t>(1.0 / internal_epsilon_));
  buffer_.reserve(buffer_capacity_);
}

void GkQuantileSketch::Add(double value) {
  buffer_.push_back(value);
  if (buffer_.size() >= buffer_capacity_) FlushBuffer();
}

void GkQuantileSketch::FlushBuffer() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  size_t bi = 0;
  while (ti < tuples_.size() || bi < buffer_.size()) {
    const bool take_tuple =
        ti < tuples_.size() &&
        (bi >= buffer_.size() || tuples_[ti].value <= buffer_[bi]);
    if (take_tuple) {
      merged.push_back(tuples_[ti++]);
      continue;
    }
    const double value = buffer_[bi++];
    ++count_;
    Tuple t{value, 1, 0};
    // A value inserted strictly inside the summary carries the standard
    // GK uncertainty band floor(2*eps*n) - 1; a running min or max has an
    // exactly known rank at insertion time (delta = 0).
    const bool new_min = merged.empty();
    const bool new_max = ti >= tuples_.size();
    if (!new_min && !new_max) {
      const auto band = static_cast<uint64_t>(
          2.0 * internal_epsilon_ * static_cast<double>(count_));
      t.delta = band > 0 ? band - 1 : 0;
    }
    merged.push_back(t);
  }
  tuples_ = std::move(merged);
  buffer_.clear();
  Compress();
}

uint64_t GkQuantileSketch::CompressThreshold() const {
  return static_cast<uint64_t>(2.0 * internal_epsilon_ *
                               static_cast<double>(count_));
}

void GkQuantileSketch::Compress() const {
  if (tuples_.size() <= 2) return;
  const uint64_t threshold = CompressThreshold();
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.back());
  // Right-to-left greedy pass: absorb a tuple into its right neighbor
  // whenever the combined uncertainty g_i + g_next + delta_next stays
  // within the band. The first (minimum) tuple is always kept so p -> 0
  // queries stay anchored at the true minimum.
  for (size_t i = tuples_.size() - 1; i-- > 1;) {
    Tuple& absorber = out.back();
    const Tuple& t = tuples_[i];
    if (t.g + absorber.g + absorber.delta <= threshold) {
      absorber.g += t.g;
    } else {
      out.push_back(t);
    }
  }
  out.push_back(tuples_.front());
  std::reverse(out.begin(), out.end());
  tuples_ = std::move(out);
}

void GkQuantileSketch::Merge(const GkQuantileSketch& other) {
  if (&other == this) {
    GkQuantileSketch copy(other);
    Merge(copy);
    return;
  }
  if (other.count() == 0) return;
  other.FlushBuffer();
  FlushBuffer();
  // Standard mergeable-GK fold: interleave the two summaries by value;
  // a tuple inherits extra uncertainty from the first not-yet-consumed
  // tuple of the *other* summary (its g + delta - 1), which bounds how
  // many unseen other-side values may precede it.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  size_t a = 0;
  size_t b = 0;
  auto next_uncertainty = [](const std::vector<Tuple>& list, size_t index) {
    if (index >= list.size()) return static_cast<uint64_t>(0);
    const uint64_t gd = list[index].g + list[index].delta;
    return gd > 0 ? gd - 1 : 0;
  };
  while (a < tuples_.size() || b < other.tuples_.size()) {
    const bool take_a =
        a < tuples_.size() &&
        (b >= other.tuples_.size() ||
         tuples_[a].value <= other.tuples_[b].value);
    Tuple t;
    if (take_a) {
      t = tuples_[a++];
      t.delta += next_uncertainty(other.tuples_, b);
    } else {
      t = other.tuples_[b++];
      t.delta += next_uncertainty(tuples_, a);
    }
    merged.push_back(t);
  }
  count_ += other.count_;
  tuples_ = std::move(merged);
  Compress();
}

double GkQuantileSketch::Quantile(double p) const {
  FlushBuffer();
  if (count_ == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Same rank convention as QuantileSorted: rank 1 + p * (n - 1), 1-based.
  const double target = 1.0 + p * static_cast<double>(count_ - 1);
  const double margin = epsilon_ * static_cast<double>(count_);
  uint64_t cum = 0;  // rank_min of tuples_[i]
  for (size_t i = 0; i + 1 < tuples_.size(); ++i) {
    cum += tuples_[i].g;
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cum + next.g + next.delta) > target + margin) {
      return tuples_[i].value;
    }
  }
  return tuples_.back().value;
}

size_t GkQuantileSketch::TupleCount() const {
  FlushBuffer();
  return tuples_.size();
}

double GkQuantileSketch::RankUncertaintyBound() const {
  FlushBuffer();
  uint64_t worst = 0;
  for (const Tuple& t : tuples_) worst = std::max(worst, t.g + t.delta);
  return static_cast<double>(worst) / 2.0;
}

}  // namespace swim::stats

#include "stats/sketch/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace swim::stats {

P2Quantile::P2Quantile(double p) {
  p_ = std::min(std::max(p, 1e-6), 1.0 - 1e-6);
  desired_increment_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

double P2Quantile::ParabolicAdjust(int i, double d) const {
  // The paper's piecewise-parabolic (P^2) interpolation of marker i moved
  // by d in {-1, +1}.
  const double np = positions_[i - 1];
  const double n = positions_[i];
  const double nn = positions_[i + 1];
  const double qp = heights_[i - 1];
  const double q = heights_[i];
  const double qn = heights_[i + 1];
  return q + d / (nn - np) *
                 ((n - np + d) * (qn - q) / (nn - n) +
                  (nn - n - d) * (q - qp) / (n - np));
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }

  // Locate the cell containing the new observation, extending the extreme
  // markers when it falls outside them.
  int cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_increment_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    const bool move_right = gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const double d = move_right ? 1.0 : -1.0;
    double candidate = ParabolicAdjust(i, d);
    if (!(heights_[i - 1] < candidate && candidate < heights_[i + 1])) {
      // Parabolic fit left the bracket; fall back to linear interpolation.
      const int j = i + static_cast<int>(d);
      candidate = heights_[i] + d * (heights_[j] - heights_[i]) /
                                    (positions_[j] - positions_[i]);
    }
    heights_[i] = candidate;
    positions_[i] += d;
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample answer: nearest-rank over the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto rank = static_cast<size_t>(
        p_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, static_cast<size_t>(count_ - 1))];
  }
  return heights_[2];
}

}  // namespace swim::stats

#ifndef SWIM_STATS_SKETCH_ZIPF_ONLINE_H_
#define SWIM_STATS_SKETCH_ZIPF_ONLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/zipf.h"

namespace swim::stats {

/// Online Zipf popularity fit over dense ids: O(1) per access, with the
/// slope re-fit on demand from the distinct-item counts. The snapshot path
/// performs the exact same operations as the batch popularity analysis
/// (nonzero counts in id order, sorted descending, FitZipf), so a snapshot
/// after n accesses is byte-identical to a batch fit of those n accesses —
/// "no full-column sorts" holds because only the distinct counts (file
/// dictionary sized, not stream sized) are ever sorted.
///
/// Deterministic; memory O(max id seen). Not thread-safe.
class OnlineZipf {
 public:
  OnlineZipf() = default;

  /// Observes one access of item `id`, growing the dense table as needed.
  void Add(uint32_t id, uint64_t weight = 1) {
    if (id >= counts_.size()) counts_.resize(id + 1, 0);
    if (counts_[id] == 0) ++distinct_;
    counts_[id] += weight;
    total_ += weight;
  }

  /// Folds another tracker (counts add; ids must share the same space).
  void Merge(const OnlineZipf& other);

  struct Snapshot {
    std::vector<double> frequencies;  // descending access counts
    ZipfFitResult fit;
    size_t distinct_items = 0;
    uint64_t total_accesses = 0;
  };

  /// Fits the current counts: O(distinct log distinct).
  Snapshot Fit() const;

  size_t distinct() const { return distinct_; }
  uint64_t total() const { return total_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;  // id -> access count
  size_t distinct_ = 0;
  uint64_t total_ = 0;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SKETCH_ZIPF_ONLINE_H_

#ifndef SWIM_STATS_SKETCH_SLIDING_WINDOW_H_
#define SWIM_STATS_SKETCH_SLIDING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/burstiness.h"

namespace swim::stats {

/// Fixed-memory sliding-window rate series: a ring of `window_buckets`
/// time buckets of `bucket_seconds` each, fed by (time, value) observations
/// with nondecreasing time. Buckets older than the window fall off for
/// free; the live window can be rendered as a series and profiled with the
/// paper's burstiness metric (peak-to-median over the last week, say)
/// without keeping the unbounded full-trace series around — the follow
/// mode's "what does the last 168h look like" gauge.
///
/// Deterministic and O(window_buckets) memory. Not thread-safe.
class SlidingWindowSeries {
 public:
  /// Default window: one week of hourly buckets (the paper's Figure 7/8
  /// time unit).
  explicit SlidingWindowSeries(double bucket_seconds = 3600.0,
                               size_t window_buckets = 168);

  /// Accumulates `value` into the bucket containing `time`. Time must be
  /// nondecreasing up to one window of slack: observations older than the
  /// current window are counted in dropped_stale() and ignored.
  void Observe(double time, double value);

  /// The live window, oldest bucket first (at most window_buckets entries;
  /// empty before the first observation). Buckets with no observations
  /// are zero.
  std::vector<double> Window() const;

  /// Burstiness profile over the live window.
  BurstinessProfile Profile() const { return BurstinessProfile(Window()); }
  double PeakToMedian() const { return Profile().PeakToMedian(); }

  size_t window_buckets() const { return capacity_; }
  double bucket_seconds() const { return bucket_seconds_; }
  /// Observations rejected for falling before the live window.
  uint64_t dropped_stale() const { return dropped_stale_; }
  bool empty() const { return newest_bucket_ < 0; }

 private:
  double bucket_seconds_;
  size_t capacity_;
  std::vector<double> ring_;
  double origin_ = 0.0;        // time of bucket 0 (first observation)
  int64_t newest_bucket_ = -1;  // absolute bucket index, -1 before data
  uint64_t dropped_stale_ = 0;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SKETCH_SLIDING_WINDOW_H_

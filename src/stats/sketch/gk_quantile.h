#ifndef SWIM_STATS_SKETCH_GK_QUANTILE_H_
#define SWIM_STATS_SKETCH_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swim::stats {

/// Greenwald-Khanna streaming quantile sketch (SIGMOD'01), buffered and
/// mergeable. Holds O((1/eps) * log(eps * n)) tuples instead of the full
/// value stream: any rank query is answered to within `epsilon * n` ranks
/// of the exact answer over everything ever Add()ed or Merge()d in.
///
/// This is the streaming stand-in for SortedStats (the sort-once oracle the
/// tests pin it against): same quantile surface, but O(sketch) memory and
/// no full-column sort, so the analysis layer can fold production-rate job
/// streams tick by tick.
///
/// Internals follow the batched-insert variant used by the major production
/// implementations: Add() appends to a small buffer; a flush sorts the
/// buffer once and folds it into the tuple summary in a single merge +
/// compress pass (amortized O(log) per value rather than a vector insert
/// per value). The summary is built with an internal epsilon of eps/2 so
/// merge trees (per-chunk sketches folded in fixed order, follow-mode ticks
/// folded forever) keep observed error inside the advertised bound; the
/// sketch_test oracle suite pins this empirically across distributions and
/// merge shapes.
///
/// Determinism: given the same sequence of Add/Merge calls, the tuple list,
/// every Quantile() answer, and the serialized state are byte-identical —
/// there is no randomization and no dependence on thread count (callers
/// shard deterministically and merge in fixed order).
///
/// Not thread-safe; queries lazily flush the insert buffer.
class GkQuantileSketch {
 public:
  /// `epsilon` is the advertised rank-error bound as a fraction of the
  /// total count (default 0.5% — e.g. a p50 query over 1M values lands
  /// within +/-5000 ranks of the true median).
  explicit GkQuantileSketch(double epsilon = 0.005);

  /// Adds one observation. Amortized cost: O(log buffer) for the sort
  /// share + O(tuples / buffer) for the fold share.
  void Add(double value);

  /// Folds `other` into this sketch. Both sides keep their rank-error
  /// guarantees relative to the combined count. Deterministic: value ties
  /// take this sketch's tuples first.
  void Merge(const GkQuantileSketch& other);

  /// Value whose rank is within epsilon * count() of rank p * (count - 1)
  /// (the same rank convention as QuantileSorted, minus its interpolation).
  /// Returns 0.0 on an empty sketch.
  double Quantile(double p) const;

  /// Observations absorbed so far (buffered + summarized).
  uint64_t count() const { return count_ + buffer_.size(); }
  bool empty() const { return count() == 0; }
  double epsilon() const { return epsilon_; }

  /// Summary tuples currently held (flushes first) — the memory footprint
  /// the O(sketch) claim is about; exposed so tests can pin sublinearity.
  size_t TupleCount() const;

  /// Upper bound on the rank uncertainty of any single query, in ranks:
  /// max(g_i + delta_i) / 2 over the summary. Tests pin this against the
  /// advertised epsilon * count().
  double RankUncertaintyBound() const;

 private:
  struct Tuple {
    double value = 0.0;
    uint64_t g = 0;      // rank_min(this) - rank_min(previous)
    uint64_t delta = 0;  // rank_max(this) - rank_min(this)
  };

  void FlushBuffer() const;
  void Compress() const;
  uint64_t CompressThreshold() const;

  double epsilon_;           // advertised bound
  double internal_epsilon_;  // construction bound (epsilon / 2)
  size_t buffer_capacity_;

  // Buffered inserts + summary are mutable so that const queries can flush
  // lazily; the class is documented non-thread-safe.
  mutable std::vector<double> buffer_;
  mutable std::vector<Tuple> tuples_;  // ascending by value
  mutable uint64_t count_ = 0;         // summarized observations
};

}  // namespace swim::stats

#endif  // SWIM_STATS_SKETCH_GK_QUANTILE_H_

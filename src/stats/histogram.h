#ifndef SWIM_STATS_HISTOGRAM_H_
#define SWIM_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swim::stats {

/// Histogram with logarithmically spaced bins, suited to quantities spanning
/// many orders of magnitude (per-job bytes range from B to TB in the paper's
/// traces). Values below `lo` land in an underflow bin; values >= `hi` land
/// in an overflow bin.
class LogHistogram {
 public:
  /// `lo` and `hi` must be positive with lo < hi; `bins_per_decade` >= 1.
  LogHistogram(double lo, double hi, int bins_per_decade = 4);

  void Add(double value, double weight = 1.0);

  size_t bin_count() const { return counts_.size(); }
  double total_weight() const { return total_weight_; }

  /// Lower edge of bin i (i in [0, bin_count)). Bin 0 is the underflow bin
  /// whose lower edge is reported as 0.
  double BinLowerEdge(size_t i) const;
  double BinUpperEdge(size_t i) const;
  double BinWeight(size_t i) const { return counts_[i]; }

  /// Cumulative weight fraction at each bin upper edge.
  std::vector<double> CumulativeFractions() const;

  /// Crude terminal rendering for reports: one row per non-empty bin.
  std::string ToString() const;

 private:
  double log_lo_;
  double bins_per_decade_;
  std::vector<double> counts_;  // [underflow, regular bins..., overflow]
  double total_weight_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi).
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, size_t bins);

  void Add(double value, double weight = 1.0);

  size_t bin_count() const { return counts_.size(); }
  double total_weight() const { return total_weight_; }
  double BinLowerEdge(size_t i) const;
  double BinWeight(size_t i) const { return counts_[i]; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_weight_ = 0.0;
};

}  // namespace swim::stats

#endif  // SWIM_STATS_HISTOGRAM_H_

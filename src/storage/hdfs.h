#ifndef SWIM_STORAGE_HDFS_H_
#define SWIM_STORAGE_HDFS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"

namespace swim::storage {

/// Location of one block replica.
struct BlockLocation {
  uint64_t block_id = 0;
  std::vector<int> nodes;  // node indices holding replicas
};

struct HdfsFileInfo {
  std::string path;
  double bytes = 0.0;
  std::vector<BlockLocation> blocks;
};

struct HdfsOptions {
  int nodes = 10;
  double block_bytes = 128e6;  // Hadoop-era default block size
  int replication = 3;
  uint64_t seed = 7;
};

/// Minimal HDFS-like namespace: files are split into fixed-size blocks,
/// each replicated on `replication` distinct random nodes. Provides the
/// placement and capacity accounting the cluster simulator uses for map
/// locality, and the "bytes stored" denominator of Figures 3/4.
class HdfsNamespace {
 public:
  explicit HdfsNamespace(const HdfsOptions& options);

  /// Creates a file; fails if the path already exists (HDFS semantics) or
  /// size is negative. Paths are taken as string_view — the namespace map
  /// is transparent, so probes never construct a temporary std::string.
  Status CreateFile(std::string_view path, double bytes);

  /// Creates or replaces (delete + create).
  Status WriteFile(std::string_view path, double bytes);

  Status DeleteFile(std::string_view path);

  bool Exists(std::string_view path) const;
  StatusOr<HdfsFileInfo> Stat(std::string_view path) const;

  size_t file_count() const { return files_.size(); }
  double total_stored_bytes() const { return total_stored_bytes_; }
  /// Physical bytes including replication.
  double total_physical_bytes() const {
    return total_stored_bytes_ * options_.replication;
  }
  /// Physical bytes placed on one node.
  double NodeBytes(int node) const;
  int node_count() const { return options_.nodes; }

 private:
  std::vector<int> PlaceReplicas();

  HdfsOptions options_;
  Pcg32 rng_;
  uint64_t next_block_id_ = 1;
  FlatHashMap<std::string, HdfsFileInfo> files_;
  std::vector<double> node_bytes_;
  double total_stored_bytes_ = 0.0;
};

}  // namespace swim::storage

#endif  // SWIM_STORAGE_HDFS_H_

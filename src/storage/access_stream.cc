#include "storage/access_stream.h"

#include <algorithm>

namespace swim::storage {

std::vector<FileAccess> ExtractAccesses(const trace::Trace& trace) {
  std::vector<FileAccess> accesses;
  accesses.reserve(trace.size() * 2);
  for (const auto& job : trace.jobs()) {
    if (!job.input_path.empty()) {
      accesses.push_back({job.submit_time, job.input_path, job.input_bytes,
                          AccessKind::kRead, job.job_id});
    }
    if (!job.output_path.empty()) {
      accesses.push_back({job.FinishTime(), job.output_path,
                          job.output_bytes, AccessKind::kWrite, job.job_id});
    }
  }
  std::stable_sort(accesses.begin(), accesses.end(),
                   [](const FileAccess& a, const FileAccess& b) {
                     return a.time < b.time;
                   });
  return accesses;
}

std::unordered_map<std::string, double> ComputeFileSizes(
    const std::vector<FileAccess>& accesses) {
  std::unordered_map<std::string, double> sizes;
  for (const auto& access : accesses) {
    double& size = sizes[access.path];
    size = std::max(size, access.bytes);
  }
  return sizes;
}

}  // namespace swim::storage

#include "storage/access_stream.h"

#include <algorithm>

namespace swim::storage {

std::vector<FileAccess> ExtractAccesses(const trace::Trace& trace) {
  std::vector<FileAccess> accesses;
  accesses.reserve(trace.size() * 2);
  const std::vector<uint32_t>& input_ids = trace.input_path_ids();
  const std::vector<uint32_t>& output_ids = trace.output_path_ids();
  const std::vector<trace::JobRecord>& jobs = trace.jobs();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    if (!job.input_path.empty()) {
      accesses.push_back({job.submit_time, job.input_path, job.input_bytes,
                          AccessKind::kRead, job.job_id, input_ids[i]});
    }
    if (!job.output_path.empty()) {
      accesses.push_back({job.FinishTime(), job.output_path,
                          job.output_bytes, AccessKind::kWrite, job.job_id,
                          output_ids[i]});
    }
  }
  std::stable_sort(accesses.begin(), accesses.end(),
                   [](const FileAccess& a, const FileAccess& b) {
                     return a.time < b.time;
                   });
  return accesses;
}

std::unordered_map<std::string, double, TransparentStringHash,
                   TransparentStringEq>
ComputeFileSizes(const std::vector<FileAccess>& accesses) {
  std::unordered_map<std::string, double, TransparentStringHash,
                     TransparentStringEq>
      sizes;
  sizes.reserve(accesses.size());
  for (const auto& access : accesses) {
    double& size = sizes[access.path];
    size = std::max(size, access.bytes);
  }
  return sizes;
}

std::vector<double> ComputeFileSizesById(
    const std::vector<FileAccess>& accesses, size_t path_count) {
  std::vector<double> sizes(path_count, 0.0);
  for (const auto& access : accesses) {
    if (access.path_id == kNoStringId) continue;
    double& size = sizes[access.path_id];
    size = std::max(size, access.bytes);
  }
  return sizes;
}

}  // namespace swim::storage

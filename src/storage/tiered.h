#ifndef SWIM_STORAGE_TIERED_H_
#define SWIM_STORAGE_TIERED_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "storage/cache.h"

namespace swim::storage {

/// Builds a cache by policy name: "lru", "lfu", "fifo", "unbounded", or
/// "size-threshold" (which also uses `size_threshold_bytes`). Unknown
/// names fail.
StatusOr<std::unique_ptr<FileCache>> MakeCache(
    const std::string& policy, double capacity_bytes,
    double size_threshold_bytes = 1e9);

/// Two-tier read-path model (memory over disk), quantifying the paper's
/// section 4.2 suggestion that skewed access frequencies make "a tiered
/// storage architecture" worth exploring (the PACMan line of work it
/// cites). Reads served from the memory tier stream at memory bandwidth;
/// misses pay a disk seek plus disk-bandwidth transfer.
struct TierConfig {
  double memory_capacity_bytes = 1e12;
  /// Per-file streaming bandwidths (aggregate across the cluster's readers
  /// of one file), bytes/second.
  double memory_bandwidth = 3e9;
  double disk_bandwidth = 100e6;
  double disk_seek_seconds = 0.01;
  /// Memory-tier admission/eviction policy (see MakeCache).
  std::string policy = "lru";
  double size_threshold_bytes = 1e9;
};

struct TieredStats {
  /// Total read time with the memory tier.
  double read_seconds = 0.0;
  /// Total read time if every read went to disk.
  double disk_only_seconds = 0.0;
  /// Median per-access read latency with / without the tier. Total time is
  /// dominated by rare uncacheable TB-scale scans, so the per-access
  /// median is the number interactive jobs feel.
  double median_latency_seconds = 0.0;
  double median_disk_latency_seconds = 0.0;

  /// Byte-weighted speedup (total read time ratio).
  double Speedup() const {
    return read_seconds > 0.0 ? disk_only_seconds / read_seconds : 1.0;
  }
  /// Typical-access speedup (median latency ratio).
  double MedianSpeedup() const {
    return median_latency_seconds > 0.0
               ? median_disk_latency_seconds / median_latency_seconds
               : 1.0;
  }
  CacheStats cache;
};

/// Drives an access stream through the tiered read path.
StatusOr<TieredStats> SimulateTieredReads(
    const std::vector<FileAccess>& accesses, const TierConfig& config);

}  // namespace swim::storage

#endif  // SWIM_STORAGE_TIERED_H_

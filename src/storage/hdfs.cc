#include "storage/hdfs.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace swim::storage {

HdfsNamespace::HdfsNamespace(const HdfsOptions& options)
    : options_(options), rng_(options.seed, /*stream=*/0xd15) {
  SWIM_CHECK_GE(options_.nodes, 1);
  SWIM_CHECK_GT(options_.block_bytes, 0.0);
  SWIM_CHECK_GE(options_.replication, 1);
  options_.replication = std::min(options_.replication, options_.nodes);
  node_bytes_.assign(options_.nodes, 0.0);
}

std::vector<int> HdfsNamespace::PlaceReplicas() {
  // Random distinct nodes; with few nodes fall back to all of them.
  std::vector<int> nodes;
  nodes.reserve(options_.replication);
  while (static_cast<int>(nodes.size()) < options_.replication) {
    int candidate = static_cast<int>(rng_.NextBounded(options_.nodes));
    if (std::find(nodes.begin(), nodes.end(), candidate) == nodes.end()) {
      nodes.push_back(candidate);
    }
  }
  return nodes;
}

Status HdfsNamespace::CreateFile(std::string_view path, double bytes) {
  if (path.empty()) return InvalidArgumentError("empty path");
  if (bytes < 0.0) {
    return InvalidArgumentError("negative size: " + std::string(path));
  }
  if (files_.contains(path)) {
    return AlreadyExistsError("file exists: " + std::string(path));
  }
  HdfsFileInfo info;
  info.path = path;
  info.bytes = bytes;
  size_t block_count = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(bytes / options_.block_bytes)));
  info.blocks.reserve(block_count);
  for (size_t b = 0; b < block_count; ++b) {
    BlockLocation block;
    block.block_id = next_block_id_++;
    block.nodes = PlaceReplicas();
    double block_bytes =
        (b + 1 < block_count)
            ? options_.block_bytes
            : bytes - options_.block_bytes * static_cast<double>(b);
    block_bytes = std::max(block_bytes, 0.0);
    for (int node : block.nodes) node_bytes_[node] += block_bytes;
    info.blocks.push_back(std::move(block));
  }
  total_stored_bytes_ += bytes;
  files_.TryEmplace(path, std::move(info));
  return Status::Ok();
}

Status HdfsNamespace::WriteFile(std::string_view path, double bytes) {
  if (Exists(path)) SWIM_RETURN_IF_ERROR(DeleteFile(path));
  return CreateFile(path, bytes);
}

Status HdfsNamespace::DeleteFile(std::string_view path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + std::string(path));
  }
  const HdfsFileInfo& info = it->second;
  double remaining = info.bytes;
  for (const auto& block : info.blocks) {
    double block_bytes = std::min(remaining, options_.block_bytes);
    remaining -= block_bytes;
    for (int node : block.nodes) node_bytes_[node] -= block_bytes;
  }
  total_stored_bytes_ -= info.bytes;
  files_.erase(it);
  return Status::Ok();
}

bool HdfsNamespace::Exists(std::string_view path) const {
  return files_.contains(path);
}

StatusOr<HdfsFileInfo> HdfsNamespace::Stat(std::string_view path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + std::string(path));
  }
  return it->second;
}

double HdfsNamespace::NodeBytes(int node) const {
  SWIM_CHECK_GE(node, 0);
  SWIM_CHECK_LT(node, options_.nodes);
  return node_bytes_[node];
}

}  // namespace swim::storage

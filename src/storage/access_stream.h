#ifndef SWIM_STORAGE_ACCESS_STREAM_H_
#define SWIM_STORAGE_ACCESS_STREAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace swim::storage {

enum class AccessKind { kRead, kWrite };

/// One HDFS file touch derived from a job: its input path is read at submit
/// time; its output path is written at finish time.
struct FileAccess {
  double time = 0.0;
  std::string path;
  double bytes = 0.0;
  AccessKind kind = AccessKind::kRead;
  uint64_t job_id = 0;
};

/// Chronological file-access stream for a trace. Jobs without the relevant
/// path are skipped.
std::vector<FileAccess> ExtractAccesses(const trace::Trace& trace);

/// Estimated size of each distinct path: the maximum bytes any single
/// access moved. (Real HDFS metadata is unavailable in per-job traces;
/// the paper's Figures 3/4 similarly infer file size from per-job I/O.)
std::unordered_map<std::string, double> ComputeFileSizes(
    const std::vector<FileAccess>& accesses);

}  // namespace swim::storage

#endif  // SWIM_STORAGE_ACCESS_STREAM_H_

#ifndef SWIM_STORAGE_ACCESS_STREAM_H_
#define SWIM_STORAGE_ACCESS_STREAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.h"
#include "common/interner.h"
#include "trace/trace.h"

namespace swim::storage {

enum class AccessKind { kRead, kWrite };

/// One HDFS file touch derived from a job: its input path is read at submit
/// time; its output path is written at finish time.
struct FileAccess {
  double time = 0.0;
  std::string path;
  double bytes = 0.0;
  AccessKind kind = AccessKind::kRead;
  uint64_t job_id = 0;
  /// Dense path id from the trace's path interner (kNoStringId when the
  /// access was built by hand without a trace). All hot consumers key on
  /// this instead of re-hashing `path`.
  uint32_t path_id = kNoStringId;
};

/// Chronological file-access stream for a trace. Jobs without the relevant
/// path are skipped. Each access carries the trace's interned path id.
std::vector<FileAccess> ExtractAccesses(const trace::Trace& trace);

/// Estimated size of each distinct path: the maximum bytes any single
/// access moved. (Real HDFS metadata is unavailable in per-job traces;
/// the paper's Figures 3/4 similarly infer file size from per-job I/O.)
/// The map is transparent: lookups accept std::string_view.
std::unordered_map<std::string, double, TransparentStringHash,
                   TransparentStringEq>
ComputeFileSizes(const std::vector<FileAccess>& accesses);

/// Id-keyed variant for accesses that carry interned path ids: returns a
/// dense table indexed by path id (`path_count` == interner size; accesses
/// without an id are skipped). Entries never accessed stay 0.
std::vector<double> ComputeFileSizesById(
    const std::vector<FileAccess>& accesses, size_t path_count);

}  // namespace swim::storage

#endif  // SWIM_STORAGE_ACCESS_STREAM_H_

#include "storage/cache.h"

#include <limits>

#include "common/logging.h"

namespace swim::storage {

namespace cache_internal {

void IdList::Grow(uint32_t id) {
  if (id < linked_.size()) return;
  size_t new_size = static_cast<size_t>(id) + 1;
  next_.resize(new_size, kNil);
  prev_.resize(new_size, kNil);
  linked_.resize(new_size, 0);
}

void IdList::PushFront(uint32_t id) {
  Grow(id);
  SWIM_CHECK(!linked_[id]) << "id already linked";
  prev_[id] = kNil;
  next_[id] = head_;
  if (head_ != kNil) prev_[head_] = id;
  head_ = id;
  if (tail_ == kNil) tail_ = id;
  linked_[id] = 1;
}

void IdList::Remove(uint32_t id) {
  if (!Contains(id)) return;
  uint32_t before = prev_[id];
  uint32_t after = next_[id];
  if (before != kNil) next_[before] = after; else head_ = after;
  if (after != kNil) prev_[after] = before; else tail_ = before;
  next_[id] = kNil;
  prev_[id] = kNil;
  linked_[id] = 0;
}

}  // namespace cache_internal

uint32_t FileCache::ResolveId(const FileAccess& access) {
  if (access.path_id != kNoStringId) return access.path_id;
  return own_ids_.Intern(access.path);
}

uint32_t FileCache::AnyResident() const {
  for (size_t id = 0; id < resident_bytes_.size(); ++id) {
    if (resident_bytes_[id] >= 0.0) return static_cast<uint32_t>(id);
  }
  SWIM_LOG(Fatal) << "no resident file";
  return cache_internal::IdList::kNil;
}

bool FileCache::Access(const FileAccess& access) {
  if (access.kind == AccessKind::kWrite) {
    // Write-through: outputs land in the cache (refreshing size) so that
    // output->input chains (section 4.3) can hit.
    Insert(access, ResolveId(access));
    return false;
  }
  ++stats_.accesses;
  stats_.bytes_requested += access.bytes;
  uint32_t id = ResolveId(access);
  if (IsResident(id)) {
    ++stats_.hits;
    stats_.bytes_hit += access.bytes;
    OnHit(id);
    return true;
  }
  Insert(access, id);
  return false;
}

void FileCache::Insert(const FileAccess& access, uint32_t id) {
  if (access.bytes > capacity_bytes_ || !ShouldAdmit(access)) {
    ++stats_.admission_rejections;
    return;
  }
  if (id >= resident_bytes_.size()) {
    resident_bytes_.resize(static_cast<size_t>(id) + 1, -1.0);
  }
  if (resident_bytes_[id] >= 0.0) {
    // Refresh: adjust for a size change and touch recency.
    used_bytes_ += access.bytes - resident_bytes_[id];
    resident_bytes_[id] = access.bytes;
    OnHit(id);
  } else {
    resident_bytes_[id] = access.bytes;
    ++resident_count_;
    used_bytes_ += access.bytes;
    OnInsert(id);
  }
  while (used_bytes_ > capacity_bytes_ && resident_count_ > 1) {
    uint32_t victim = ChooseVictim();
    SWIM_CHECK(IsResident(victim)) << "policy evicted non-resident";
    if (victim == id && resident_count_ == 1) break;
    used_bytes_ -= resident_bytes_[victim];
    resident_bytes_[victim] = -1.0;
    --resident_count_;
    OnEvict(victim);
    ++stats_.evictions;
  }
  // A single file larger than capacity was rejected above, so the loop
  // always terminates with used_bytes_ <= capacity once alone.
  if (used_bytes_ > capacity_bytes_ && resident_count_ == 1) {
    uint32_t only = AnyResident();
    if (only != id) {
      used_bytes_ -= resident_bytes_[only];
      resident_bytes_[only] = -1.0;
      --resident_count_;
      OnEvict(only);
      ++stats_.evictions;
    }
  }
}

// --- LRU / FIFO -------------------------------------------------------

uint32_t LruCache::ChooseVictim() {
  SWIM_CHECK(!order_.empty());
  return order_.back();
}

uint32_t FifoCache::ChooseVictim() {
  SWIM_CHECK(!order_.empty());
  return order_.back();
}

// --- LFU --------------------------------------------------------------

void LfuCache::OnInsert(uint32_t id) {
  entries_[id] = Entry{1, ++clock_};
}

void LfuCache::OnHit(uint32_t id) {
  Entry& e = entries_[id];
  ++e.frequency;
  e.last_touch = ++clock_;
}

uint32_t LfuCache::ChooseVictim() {
  SWIM_CHECK(!entries_.empty());
  // The minimum over (frequency, last_touch) is unique because last_touch
  // is a strictly increasing clock, so the scan order cannot matter.
  uint32_t victim = cache_internal::IdList::kNil;
  uint64_t best_freq = std::numeric_limits<uint64_t>::max();
  uint64_t best_touch = std::numeric_limits<uint64_t>::max();
  for (const auto& [id, entry] : entries_) {
    if (entry.frequency < best_freq ||
        (entry.frequency == best_freq && entry.last_touch < best_touch)) {
      best_freq = entry.frequency;
      best_touch = entry.last_touch;
      victim = id;
    }
  }
  return victim;
}

void LfuCache::OnEvict(uint32_t id) { entries_.erase(id); }

// --- Size threshold / unbounded ----------------------------------------

std::string SizeThresholdLruCache::name() const {
  return "SizeThresholdLRU(<" + std::to_string(max_file_bytes_) + "B)";
}

UnboundedCache::UnboundedCache()
    : FileCache(std::numeric_limits<double>::max()) {}

uint32_t UnboundedCache::ChooseVictim() {
  SWIM_LOG(Fatal) << "UnboundedCache never evicts";
  return cache_internal::IdList::kNil;
}

CacheStats ReplayAccesses(const std::vector<FileAccess>& accesses,
                          FileCache& cache) {
  for (const auto& access : accesses) cache.Access(access);
  return cache.stats();
}

}  // namespace swim::storage

#include "storage/cache.h"

#include <limits>

#include "common/logging.h"

namespace swim::storage {

bool FileCache::Access(const FileAccess& access) {
  if (access.kind == AccessKind::kWrite) {
    // Write-through: outputs land in the cache (refreshing size) so that
    // output->input chains (section 4.3) can hit.
    Insert(access);
    return false;
  }
  ++stats_.accesses;
  stats_.bytes_requested += access.bytes;
  auto it = resident_.find(access.path);
  if (it != resident_.end()) {
    ++stats_.hits;
    stats_.bytes_hit += access.bytes;
    OnHit(access.path);
    return true;
  }
  Insert(access);
  return false;
}

void FileCache::Insert(const FileAccess& access) {
  if (access.bytes > capacity_bytes_ || !ShouldAdmit(access)) {
    ++stats_.admission_rejections;
    return;
  }
  auto it = resident_.find(access.path);
  if (it != resident_.end()) {
    // Refresh: adjust for a size change and touch recency.
    used_bytes_ += access.bytes - it->second;
    it->second = access.bytes;
    OnHit(access.path);
  } else {
    resident_[access.path] = access.bytes;
    used_bytes_ += access.bytes;
    OnInsert(access.path);
  }
  while (used_bytes_ > capacity_bytes_ && resident_.size() > 1) {
    std::string victim = ChooseVictim();
    auto victim_it = resident_.find(victim);
    SWIM_CHECK(victim_it != resident_.end()) << "policy evicted non-resident";
    if (victim == access.path && resident_.size() == 1) break;
    used_bytes_ -= victim_it->second;
    resident_.erase(victim_it);
    OnEvict(victim);
    ++stats_.evictions;
  }
  // A single file larger than capacity was rejected above, so the loop
  // always terminates with used_bytes_ <= capacity once alone.
  if (used_bytes_ > capacity_bytes_ && resident_.size() == 1 &&
      resident_.begin()->first != access.path) {
    std::string victim = resident_.begin()->first;
    used_bytes_ -= resident_.begin()->second;
    resident_.erase(resident_.begin());
    OnEvict(victim);
    ++stats_.evictions;
  }
}

// --- LRU --------------------------------------------------------------

void LruCache::Touch(const std::string& path) {
  auto it = where_.find(path);
  if (it != where_.end()) order_.erase(it->second);
  order_.push_front(path);
  where_[path] = order_.begin();
}

void LruCache::OnInsert(const std::string& path) { Touch(path); }
void LruCache::OnHit(const std::string& path) { Touch(path); }

std::string LruCache::ChooseVictim() {
  SWIM_CHECK(!order_.empty());
  return order_.back();
}

void LruCache::OnEvict(const std::string& path) {
  auto it = where_.find(path);
  if (it != where_.end()) {
    order_.erase(it->second);
    where_.erase(it);
  }
}

// --- FIFO -------------------------------------------------------------

void FifoCache::OnInsert(const std::string& path) {
  order_.push_front(path);
  where_[path] = order_.begin();
}

std::string FifoCache::ChooseVictim() {
  SWIM_CHECK(!order_.empty());
  return order_.back();
}

void FifoCache::OnEvict(const std::string& path) {
  auto it = where_.find(path);
  if (it != where_.end()) {
    order_.erase(it->second);
    where_.erase(it);
  }
}

// --- LFU --------------------------------------------------------------

void LfuCache::OnInsert(const std::string& path) {
  entries_[path] = Entry{1, ++clock_};
}

void LfuCache::OnHit(const std::string& path) {
  Entry& e = entries_[path];
  ++e.frequency;
  e.last_touch = ++clock_;
}

std::string LfuCache::ChooseVictim() {
  SWIM_CHECK(!entries_.empty());
  const std::string* victim = nullptr;
  uint64_t best_freq = std::numeric_limits<uint64_t>::max();
  uint64_t best_touch = std::numeric_limits<uint64_t>::max();
  for (const auto& [path, entry] : entries_) {
    if (entry.frequency < best_freq ||
        (entry.frequency == best_freq && entry.last_touch < best_touch)) {
      best_freq = entry.frequency;
      best_touch = entry.last_touch;
      victim = &path;
    }
  }
  return *victim;
}

void LfuCache::OnEvict(const std::string& path) { entries_.erase(path); }

// --- Size threshold / unbounded ----------------------------------------

std::string SizeThresholdLruCache::name() const {
  return "SizeThresholdLRU(<" + std::to_string(max_file_bytes_) + "B)";
}

UnboundedCache::UnboundedCache()
    : FileCache(std::numeric_limits<double>::max()) {}

std::string UnboundedCache::ChooseVictim() {
  SWIM_LOG(Fatal) << "UnboundedCache never evicts";
  return "";
}

CacheStats ReplayAccesses(const std::vector<FileAccess>& accesses,
                          FileCache& cache) {
  for (const auto& access : accesses) cache.Access(access);
  return cache.stats();
}

}  // namespace swim::storage

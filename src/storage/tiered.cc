#include "storage/tiered.h"

#include <vector>

#include "common/string_util.h"
#include "stats/descriptive.h"

namespace swim::storage {

StatusOr<std::unique_ptr<FileCache>> MakeCache(const std::string& policy,
                                               double capacity_bytes,
                                               double size_threshold_bytes) {
  if (capacity_bytes <= 0.0) {
    return InvalidArgumentError("capacity must be positive");
  }
  std::string normalized = ToLower(policy);
  if (normalized == "lru") {
    return std::unique_ptr<FileCache>(new LruCache(capacity_bytes));
  }
  if (normalized == "lfu") {
    return std::unique_ptr<FileCache>(new LfuCache(capacity_bytes));
  }
  if (normalized == "fifo") {
    return std::unique_ptr<FileCache>(new FifoCache(capacity_bytes));
  }
  if (normalized == "size-threshold" || normalized == "sizethreshold") {
    if (size_threshold_bytes <= 0.0) {
      return InvalidArgumentError("size threshold must be positive");
    }
    return std::unique_ptr<FileCache>(
        new SizeThresholdLruCache(capacity_bytes, size_threshold_bytes));
  }
  if (normalized == "unbounded") {
    return std::unique_ptr<FileCache>(new UnboundedCache());
  }
  return InvalidArgumentError("unknown cache policy: " + policy);
}

StatusOr<TieredStats> SimulateTieredReads(
    const std::vector<FileAccess>& accesses, const TierConfig& config) {
  if (config.memory_bandwidth <= 0.0 || config.disk_bandwidth <= 0.0) {
    return InvalidArgumentError("bandwidths must be positive");
  }
  if (config.disk_seek_seconds < 0.0) {
    return InvalidArgumentError("seek time must be >= 0");
  }
  SWIM_ASSIGN_OR_RETURN(std::unique_ptr<FileCache> memory_tier,
                        MakeCache(config.policy,
                                  config.memory_capacity_bytes,
                                  config.size_threshold_bytes));
  TieredStats stats;
  std::vector<double> latencies;
  std::vector<double> disk_latencies;
  for (const auto& access : accesses) {
    bool hit = memory_tier->Access(access);
    if (access.kind != AccessKind::kRead) continue;
    double disk_time =
        config.disk_seek_seconds + access.bytes / config.disk_bandwidth;
    double served_time =
        hit ? access.bytes / config.memory_bandwidth : disk_time;
    stats.disk_only_seconds += disk_time;
    stats.read_seconds += served_time;
    latencies.push_back(served_time);
    disk_latencies.push_back(disk_time);
  }
  // SortedStats consumes the vectors in place - no per-call copy+sort.
  stats.median_latency_seconds =
      stats::SortedStats(std::move(latencies)).Median();
  stats.median_disk_latency_seconds =
      stats::SortedStats(std::move(disk_latencies)).Median();
  stats.cache = memory_tier->stats();
  return stats;
}

}  // namespace swim::storage

#ifndef SWIM_STORAGE_CACHE_H_
#define SWIM_STORAGE_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/access_stream.h"

namespace swim::storage {

/// Whole-file cache statistics. The paper argues (section 4.2/4.3) that a
/// cache admitting only files below a size threshold, with LRU-like
/// eviction, captures most accesses with a small fraction of stored bytes.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  double bytes_requested = 0.0;
  double bytes_hit = 0.0;
  uint64_t evictions = 0;
  uint64_t admission_rejections = 0;

  double HitRate() const {
    return accesses > 0 ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
  double ByteHitRate() const {
    return bytes_requested > 0.0 ? bytes_hit / bytes_requested : 0.0;
  }
};

/// Whole-file cache with pluggable policy. Reads probe the cache and
/// insert on miss (if admitted); writes insert/refresh the file (write-
/// through semantics - HDFS outputs are immediately re-readable).
class FileCache {
 public:
  virtual ~FileCache() = default;

  /// Processes one access; returns true on hit (reads only; writes always
  /// return false but warm the cache).
  bool Access(const FileAccess& access);

  const CacheStats& stats() const { return stats_; }
  double capacity_bytes() const { return capacity_bytes_; }
  double used_bytes() const { return used_bytes_; }
  size_t resident_files() const { return resident_.size(); }
  virtual std::string name() const = 0;

 protected:
  explicit FileCache(double capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Policy hooks.
  virtual bool ShouldAdmit(const FileAccess& /*access*/) { return true; }
  virtual void OnInsert(const std::string& path) = 0;
  virtual void OnHit(const std::string& path) = 0;
  /// Chooses a victim; must return a resident path.
  virtual std::string ChooseVictim() = 0;
  virtual void OnEvict(const std::string& path) = 0;

  bool IsResident(const std::string& path) const {
    return resident_.count(path) > 0;
  }

 private:
  void Insert(const FileAccess& access);

  double capacity_bytes_;
  double used_bytes_ = 0.0;
  std::unordered_map<std::string, double> resident_;  // path -> bytes
  CacheStats stats_;
};

/// Least-recently-used eviction.
class LruCache : public FileCache {
 public:
  explicit LruCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "LRU"; }

 protected:
  void OnInsert(const std::string& path) override;
  void OnHit(const std::string& path) override;
  std::string ChooseVictim() override;
  void OnEvict(const std::string& path) override;

 private:
  void Touch(const std::string& path);
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> where_;
};

/// First-in-first-out eviction.
class FifoCache : public FileCache {
 public:
  explicit FifoCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "FIFO"; }

 protected:
  void OnInsert(const std::string& path) override;
  void OnHit(const std::string& /*path*/) override {}
  std::string ChooseVictim() override;
  void OnEvict(const std::string& path) override;

 private:
  std::list<std::string> order_;  // front = newest
  std::unordered_map<std::string, std::list<std::string>::iterator> where_;
};

/// Least-frequently-used eviction (ties broken by least recent).
class LfuCache : public FileCache {
 public:
  explicit LfuCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "LFU"; }

 protected:
  void OnInsert(const std::string& path) override;
  void OnHit(const std::string& path) override;
  std::string ChooseVictim() override;
  void OnEvict(const std::string& path) override;

 private:
  struct Entry {
    uint64_t frequency = 0;
    uint64_t last_touch = 0;
  };
  std::unordered_map<std::string, Entry> entries_;
  uint64_t clock_ = 0;
};

/// LRU restricted to files below a size threshold - the policy the paper
/// proposes: "a viable cache policy is to cache files whose size is less
/// than a threshold", decoupling cache growth from data growth.
class SizeThresholdLruCache : public LruCache {
 public:
  SizeThresholdLruCache(double capacity_bytes, double max_file_bytes)
      : LruCache(capacity_bytes), max_file_bytes_(max_file_bytes) {}
  std::string name() const override;

 protected:
  bool ShouldAdmit(const FileAccess& access) override {
    return access.bytes < max_file_bytes_;
  }

 private:
  double max_file_bytes_;
};

/// Infinite-capacity reference cache: its hit rate is the workload's
/// intrinsic re-access rate, an upper bound for any real policy.
class UnboundedCache : public FileCache {
 public:
  UnboundedCache();
  std::string name() const override { return "Unbounded"; }

 protected:
  void OnInsert(const std::string& /*path*/) override {}
  void OnHit(const std::string& /*path*/) override {}
  std::string ChooseVictim() override;
  void OnEvict(const std::string& /*path*/) override {}
};

/// Runs a full access stream through a cache.
CacheStats ReplayAccesses(const std::vector<FileAccess>& accesses,
                          FileCache& cache);

}  // namespace swim::storage

#endif  // SWIM_STORAGE_CACHE_H_

#ifndef SWIM_STORAGE_CACHE_H_
#define SWIM_STORAGE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/interner.h"
#include "storage/access_stream.h"

namespace swim::storage {

/// Whole-file cache statistics. The paper argues (section 4.2/4.3) that a
/// cache admitting only files below a size threshold, with LRU-like
/// eviction, captures most accesses with a small fraction of stored bytes.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  double bytes_requested = 0.0;
  double bytes_hit = 0.0;
  uint64_t evictions = 0;
  uint64_t admission_rejections = 0;

  double HitRate() const {
    return accesses > 0 ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
  double ByteHitRate() const {
    return bytes_requested > 0.0 ? bytes_hit / bytes_requested : 0.0;
  }
};

/// Whole-file cache with pluggable policy. Reads probe the cache and
/// insert on miss (if admitted); writes insert/refresh the file (write-
/// through semantics - HDFS outputs are immediately re-readable).
///
/// Internally every file is a dense uint32_t id: accesses carrying a
/// trace-interned path_id use it directly (no hashing at all on the hot
/// path); accesses without one are interned on first touch by a per-cache
/// interner (one flat-hash probe). A single cache instance must see a
/// consistent stream — either all accesses with path ids from one trace,
/// or all without. Residency, sizes, and the LRU/FIFO recency lists are
/// flat arrays indexed by id; no per-access heap allocation.
class FileCache {
 public:
  virtual ~FileCache() = default;

  /// Processes one access; returns true on hit (reads only; writes always
  /// return false but warm the cache).
  bool Access(const FileAccess& access);

  const CacheStats& stats() const { return stats_; }
  double capacity_bytes() const { return capacity_bytes_; }
  double used_bytes() const { return used_bytes_; }
  size_t resident_files() const { return resident_count_; }
  virtual std::string name() const = 0;

 protected:
  explicit FileCache(double capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Policy hooks, keyed by dense file id.
  virtual bool ShouldAdmit(const FileAccess& /*access*/) { return true; }
  virtual void OnInsert(uint32_t id) = 0;
  virtual void OnHit(uint32_t id) = 0;
  /// Chooses a victim; must return a resident id.
  virtual uint32_t ChooseVictim() = 0;
  virtual void OnEvict(uint32_t id) = 0;

  bool IsResident(uint32_t id) const {
    return id < resident_bytes_.size() && resident_bytes_[id] >= 0.0;
  }
  /// First resident id (scan); used only by the capacity edge case.
  uint32_t AnyResident() const;

 private:
  void Insert(const FileAccess& access, uint32_t id);
  uint32_t ResolveId(const FileAccess& access);

  double capacity_bytes_;
  double used_bytes_ = 0.0;
  /// id -> bytes; negative means not resident.
  std::vector<double> resident_bytes_;
  size_t resident_count_ = 0;
  StringInterner own_ids_;  // only for accesses without a path_id
  CacheStats stats_;
};

namespace cache_internal {

/// Doubly-linked recency list over dense ids, nodes stored in flat arrays
/// (an intrusive list without per-node allocation). Front = most recent.
class IdList {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  bool Contains(uint32_t id) const {
    return id < linked_.size() && linked_[id];
  }
  void PushFront(uint32_t id);
  void Remove(uint32_t id);
  void MoveToFront(uint32_t id) {
    Remove(id);
    PushFront(id);
  }
  uint32_t back() const { return tail_; }
  bool empty() const { return head_ == kNil; }

 private:
  void Grow(uint32_t id);

  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint8_t> linked_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
};

}  // namespace cache_internal

/// Least-recently-used eviction.
class LruCache : public FileCache {
 public:
  explicit LruCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "LRU"; }

 protected:
  void OnInsert(uint32_t id) override { order_.MoveToFront(id); }
  void OnHit(uint32_t id) override { order_.MoveToFront(id); }
  uint32_t ChooseVictim() override;
  void OnEvict(uint32_t id) override { order_.Remove(id); }

 private:
  cache_internal::IdList order_;  // front = most recent
};

/// First-in-first-out eviction.
class FifoCache : public FileCache {
 public:
  explicit FifoCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "FIFO"; }

 protected:
  void OnInsert(uint32_t id) override { order_.PushFront(id); }
  void OnHit(uint32_t /*id*/) override {}
  uint32_t ChooseVictim() override;
  void OnEvict(uint32_t id) override { order_.Remove(id); }

 private:
  cache_internal::IdList order_;  // front = newest
};

/// Least-frequently-used eviction (ties broken by least recent).
class LfuCache : public FileCache {
 public:
  explicit LfuCache(double capacity_bytes) : FileCache(capacity_bytes) {}
  std::string name() const override { return "LFU"; }

 protected:
  void OnInsert(uint32_t id) override;
  void OnHit(uint32_t id) override;
  uint32_t ChooseVictim() override;
  void OnEvict(uint32_t id) override;

 private:
  struct Entry {
    uint64_t frequency = 0;
    uint64_t last_touch = 0;
  };
  /// Resident entries only, so victim scans stay O(resident files).
  FlatHashMap<uint32_t, Entry> entries_;
  uint64_t clock_ = 0;
};

/// LRU restricted to files below a size threshold - the policy the paper
/// proposes: "a viable cache policy is to cache files whose size is less
/// than a threshold", decoupling cache growth from data growth.
class SizeThresholdLruCache : public LruCache {
 public:
  SizeThresholdLruCache(double capacity_bytes, double max_file_bytes)
      : LruCache(capacity_bytes), max_file_bytes_(max_file_bytes) {}
  std::string name() const override;

 protected:
  bool ShouldAdmit(const FileAccess& access) override {
    return access.bytes < max_file_bytes_;
  }

 private:
  double max_file_bytes_;
};

/// Infinite-capacity reference cache: its hit rate is the workload's
/// intrinsic re-access rate, an upper bound for any real policy.
class UnboundedCache : public FileCache {
 public:
  UnboundedCache();
  std::string name() const override { return "Unbounded"; }

 protected:
  void OnInsert(uint32_t /*id*/) override {}
  void OnHit(uint32_t /*id*/) override {}
  uint32_t ChooseVictim() override;
  void OnEvict(uint32_t /*id*/) override {}
};

/// Runs a full access stream through a cache.
CacheStats ReplayAccesses(const std::vector<FileAccess>& accesses,
                          FileCache& cache);

}  // namespace swim::storage

#endif  // SWIM_STORAGE_CACHE_H_

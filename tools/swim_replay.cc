// swim_replay: replay a trace on the simulated cluster.
//
//   swim_replay <trace.csv|trace.stf1> [--nodes N]
//               [--scheduler fifo|fair|two-tier|srpt|deadline]
//               [--stragglers P] [--on-error strict|skip|repair]
//               [--task-failures P] [--node-loss R] [--max-attempts N]
//               [--retry-backoff S] [--failure-point F] [--seed S]
//               [--sla-multiplier S[,L]] [--preemption-budget N]
//               [--tenants N] [--tenant-cap N]
//               [--sweep fifo,fair,...] [--sweep-nodes N1,N2,...]
//               [--sweep-seeds S1,S2,...] [--sweep-lanes N]
//               [--sweep-progress]
//
// Prints per-tier latency quantiles, utilization, and occupancy peaks -
// what a scheduler experiment on a real cluster would report. With
// failure injection enabled (--task-failures / --node-loss) an extra
// accounting block reports retries and wasted slot-seconds.
//
// The SLA tier: every job carries a deadline of ideal latency x the
// per-class multiplier (--sla-multiplier small[,large]); the report adds
// per-class SLA-miss fractions. --scheduler srpt|deadline selects the
// size-based and EDF policies; --preemption-budget enables elephant
// preemption (calendar engine only); --tenants/--tenant-cap turn on
// per-tenant admission control. Policy names are validated up front -
// unknown names are a hard error listing the valid policies.
//
// --sweep runs the policy x node-count x seed grid concurrently across
// the thread pool (sim/sweep.h) and prints one line per cell in grid
// order; unswept axes default to the single-run flags. Output is
// byte-identical at any SWIM_THREADS. --sweep-lanes bounds the worker
// lanes for this run without touching the environment; --sweep-progress
// tickers completed/total cells to stderr (stdout stays clean for
// redirection) so a 10k-configuration what-if sweep is observable while
// it runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "common/units.h"
#include "sim/replay.h"
#include "sim/sweep.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: swim_replay <trace.csv|trace.stf1> [--nodes N] "
      "[--scheduler fifo|fair|two-tier|srpt|deadline] [--stragglers P]\n"
      "                   [--on-error strict|skip|repair] "
      "[--task-failures P] [--node-loss R]\n"
      "                   [--max-attempts N] [--retry-backoff S] "
      "[--failure-point F] [--seed S]\n"
      "                   [--sla-multiplier S[,L]] [--preemption-budget N] "
      "[--tenants N] [--tenant-cap N]\n"
      "                   [--sweep fifo,fair,...] "
      "[--sweep-nodes N1,N2,...] [--sweep-seeds S1,S2,...]\n"
      "                   [--sweep-lanes N] [--sweep-progress]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 2) return Usage();

  sim::ReplayOptions options;
  trace::ParseOptions parse_options;
  bool sweep = false;
  bool sweep_progress = false;
  int sweep_lanes = 0;
  std::vector<std::string> sweep_policies;
  std::vector<int> sweep_nodes;
  std::vector<uint64_t> sweep_seeds;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--sweep-progress") {  // the one valueless flag
      sweep = true;
      sweep_progress = true;
      continue;
    }
    std::string value;
    // Accept both `--flag value` and `--flag=value`.
    size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag.resize(eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
        return 2;
      }
      value = argv[++i];
    }
    if (flag == "--nodes") {
      options.cluster.nodes = std::atoi(value.c_str());
    } else if (flag == "--scheduler") {
      options.scheduler = value;
    } else if (flag == "--stragglers") {
      options.straggler_probability = std::atof(value.c_str());
    } else if (flag == "--on-error") {
      auto mode = trace::ParseModeFromName(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 2;
      }
      parse_options.mode = *mode;
    } else if (flag == "--task-failures") {
      options.failures.task_failure_probability = std::atof(value.c_str());
    } else if (flag == "--node-loss") {
      options.failures.node_loss_per_hour = std::atof(value.c_str());
    } else if (flag == "--max-attempts") {
      options.failures.max_attempts = std::atoi(value.c_str());
    } else if (flag == "--retry-backoff") {
      options.failures.retry_backoff_seconds = std::atof(value.c_str());
    } else if (flag == "--failure-point") {
      options.failures.failure_point = std::atof(value.c_str());
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--sla-multiplier") {
      // One value sets the small (interactive) multiplier; "S,L" sets
      // both classes.
      std::vector<std::string> parts = Split(value, ',');
      if (parts.empty() || parts[0].empty()) {
        std::fprintf(stderr, "--sla-multiplier needs S or S,L\n");
        return 2;
      }
      options.sla.small_multiplier = std::atof(parts[0].c_str());
      if (parts.size() > 1 && !parts[1].empty()) {
        options.sla.large_multiplier = std::atof(parts[1].c_str());
      }
    } else if (flag == "--preemption-budget") {
      options.sla.preemption_budget = std::atoll(value.c_str());
    } else if (flag == "--tenants") {
      options.sla.tenants = std::atoi(value.c_str());
    } else if (flag == "--tenant-cap") {
      options.sla.tenant_max_running = std::atoi(value.c_str());
    } else if (flag == "--sweep") {
      sweep = true;
      for (const std::string& policy : Split(value, ',')) {
        if (!policy.empty()) sweep_policies.push_back(policy);
      }
    } else if (flag == "--sweep-nodes") {
      sweep = true;
      for (const std::string& n : Split(value, ',')) {
        if (!n.empty()) sweep_nodes.push_back(std::atoi(n.c_str()));
      }
    } else if (flag == "--sweep-seeds") {
      sweep = true;
      for (const std::string& s : Split(value, ',')) {
        if (!s.empty()) {
          sweep_seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
        }
      }
    } else if (flag == "--sweep-lanes") {
      sweep = true;
      sweep_lanes = std::atoi(value.c_str());
      if (sweep_lanes < 1) {
        std::fprintf(stderr, "--sweep-lanes needs a positive lane count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  // Validate every policy name up front: a typo'd --sweep=fare must die
  // here with the valid names, not after loading a month-long trace (and
  // never, as before the MakeScheduler fix, by silently replaying the
  // whole grid as FIFO).
  {
    std::vector<std::string> policies = sweep_policies;
    policies.push_back(options.scheduler);
    for (const std::string& policy : policies) {
      auto scheduler = sim::MakeScheduler(policy);
      if (!scheduler.ok()) {
        std::fprintf(stderr, "%s\n", scheduler.status().ToString().c_str());
        return 2;
      }
    }
  }

  trace::ParseReport report;
  auto trace = trace::ReadTraceAuto(argv[1], parse_options, &report);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                 trace.status().ToString().c_str());
    return 1;
  }
  if (!report.clean()) {
    std::fprintf(stderr, "%s\n", report.ToString().c_str());
  }

  if (sweep) {
    // Unswept axes fall back to the single-run flags.
    if (sweep_policies.empty()) sweep_policies.push_back(options.scheduler);
    if (sweep_nodes.empty()) sweep_nodes.push_back(options.cluster.nodes);
    if (sweep_seeds.empty()) sweep_seeds.push_back(options.seed);
    std::vector<sim::SweepConfig> configs = sim::SweepGrid(
        *trace, options, sweep_policies, sweep_nodes, sweep_seeds);
    sim::SweepOptions sweep_options;
    sweep_options.max_parallelism = sweep_lanes;
    if (sweep_progress) {
      // Throttle the ticker to ~1% steps. Lanes report counts slightly
      // out of order, but each fprintf is one atomic write and the
      // done == total line always fires, so the display converges.
      sweep_options.progress = [](size_t done, size_t total) {
        const size_t step = std::max<size_t>(1, total / 100);
        if (done % step == 0 || done == total) {
          std::fprintf(stderr, "\rsweep: %zu/%zu configs%s", done, total,
                       done == total ? "\n" : "");
        }
      };
    }
    std::vector<StatusOr<sim::ReplayResult>> results =
        sim::RunSweep(configs, sweep_options);
    std::printf("sweep: %zu configurations over %zu jobs\n", configs.size(),
                trace->size());
    int failures = 0;
    for (size_t i = 0; i < configs.size(); ++i) {
      if (!results[i].ok()) {
        std::printf("  %-24s FAILED: %s\n", configs[i].label.c_str(),
                    results[i].status().ToString().c_str());
        ++failures;
        continue;
      }
      const sim::ReplayResult& r = *results[i];
      stats::SortedStats small_latencies = r.LatencyStats(true);
      std::printf(
          "  %-24s makespan=%s util=%.0f%% small-p50=%s sla-miss=%.1f%% "
          "retries=%lld%s\n",
          configs[i].label.c_str(), FormatDuration(r.makespan).c_str(),
          100 * r.utilization,
          r.CountJobs(true) > 0
              ? FormatDuration(small_latencies.Quantile(0.5)).c_str()
              : "n/a",
          100 * r.sla.MissFraction(true),
          static_cast<long long>(r.failures.retries),
          r.unfinished_jobs > 0 ? " (unfinished jobs)" : "");
    }
    return failures == 0 ? 0 : 1;
  }

  auto result = sim::ReplayTrace(*trace, options);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("replayed %zu jobs on %d nodes under %s\n",
              result->outcomes.size(), options.cluster.nodes,
              result->scheduler.c_str());
  std::printf("  makespan: %s, utilization: %.0f%%\n",
              FormatDuration(result->makespan).c_str(),
              100 * result->utilization);
  for (bool small : {true, false}) {
    if (result->CountJobs(small) == 0) continue;
    // One filter + sort per tier; the three quantile reads are O(1).
    stats::SortedStats latencies = result->LatencyStats(small);
    std::printf("  %s jobs (%zu): p50=%s p90=%s p99=%s mean slowdown=%.1fx\n",
                small ? "small" : "large", result->CountJobs(small),
                FormatDuration(latencies.Quantile(0.5)).c_str(),
                FormatDuration(latencies.Quantile(0.9)).c_str(),
                FormatDuration(latencies.Quantile(0.99)).c_str(),
                result->MeanSlowdown(small));
  }
  const sim::SlaStats& sla = result->sla;
  for (bool small : {true, false}) {
    const int64_t total = small ? sla.small_jobs_with_deadline
                                : sla.large_jobs_with_deadline;
    if (total == 0) continue;
    std::printf("  %s-job SLA (%.0fx ideal): %lld/%lld missed (%.1f%%)\n",
                small ? "small" : "large",
                small ? options.sla.small_multiplier
                      : options.sla.large_multiplier,
                static_cast<long long>(small ? sla.small_misses
                                             : sla.large_misses),
                static_cast<long long>(total),
                100 * sla.MissFraction(small));
  }
  if (options.sla.preemption_enabled()) {
    std::printf("  preemption: %lld tasks revoked in %lld rounds "
                "(budget %lld)\n",
                static_cast<long long>(sla.preempted_tasks),
                static_cast<long long>(sla.preemption_rounds),
                static_cast<long long>(options.sla.preemption_budget));
  }
  if (options.sla.admission_enabled()) {
    std::printf("  admission: %d tenants (cap %d), %lld jobs parked, "
                "%s total queueing\n",
                options.sla.tenants, options.sla.tenant_max_running,
                static_cast<long long>(sla.admission_parked_jobs),
                FormatDuration(sla.total_admission_delay).c_str());
  }
  double peak = 0;
  for (double o : result->hourly_occupancy) peak = std::max(peak, o);
  std::printf("  peak hourly occupancy: %.0f slots of %d\n", peak,
              options.cluster.total_map_slots() +
                  options.cluster.total_reduce_slots());
  if (options.failures.enabled()) {
    const sim::FailureStats& f = result->failures;
    std::printf(
        "  failures: %lld task, %lld node losses (%lld tasks lost), "
        "%lld retries\n",
        static_cast<long long>(f.task_failures),
        static_cast<long long>(f.node_losses),
        static_cast<long long>(f.tasks_lost_to_nodes),
        static_cast<long long>(f.retries));
    std::printf("  wasted by failures: %s slot-time, %lld jobs killed\n",
                FormatDuration(f.failed_task_seconds).c_str(),
                static_cast<long long>(f.failed_jobs));
  }
  if (result->unfinished_jobs > 0) {
    std::printf("  WARNING: %zu jobs never completed\n",
                result->unfinished_jobs);
  }
  return 0;
}

// swim_replay: replay a trace on the simulated cluster.
//
//   swim_replay <trace.csv> [--nodes N] [--scheduler fifo|fair|two-tier]
//               [--stragglers P]
//
// Prints per-tier latency quantiles, utilization, and occupancy peaks -
// what a scheduler experiment on a real cluster would report.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/units.h"
#include "sim/replay.h"
#include "trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: swim_replay <trace.csv> [--nodes N] "
                 "[--scheduler fifo|fair|two-tier] [--stragglers P]\n");
    return 2;
  }
  sim::ReplayOptions options;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "--nodes") {
      options.cluster.nodes = std::atoi(argv[i + 1]);
    } else if (flag == "--scheduler") {
      options.scheduler = argv[i + 1];
    } else if (flag == "--stragglers") {
      options.straggler_probability = std::atof(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  auto trace = trace::ReadTraceCsv(argv[1]);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                 trace.status().ToString().c_str());
    return 1;
  }
  auto result = sim::ReplayTrace(*trace, options);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("replayed %zu jobs on %d nodes under %s\n",
              result->outcomes.size(), options.cluster.nodes,
              result->scheduler.c_str());
  std::printf("  makespan: %s, utilization: %.0f%%\n",
              FormatDuration(result->makespan).c_str(),
              100 * result->utilization);
  for (bool small : {true, false}) {
    if (result->CountJobs(small) == 0) continue;
    // One filter + sort per tier; the three quantile reads are O(1).
    stats::SortedStats latencies = result->LatencyStats(small);
    std::printf("  %s jobs (%zu): p50=%s p90=%s p99=%s mean slowdown=%.1fx\n",
                small ? "small" : "large", result->CountJobs(small),
                FormatDuration(latencies.Quantile(0.5)).c_str(),
                FormatDuration(latencies.Quantile(0.9)).c_str(),
                FormatDuration(latencies.Quantile(0.99)).c_str(),
                result->MeanSlowdown(small));
  }
  double peak = 0;
  for (double o : result->hourly_occupancy) peak = std::max(peak, o);
  std::printf("  peak hourly occupancy: %.0f slots of %d\n", peak,
              options.cluster.total_map_slots() +
                  options.cluster.total_reduce_slots());
  if (result->unfinished_jobs > 0) {
    std::printf("  WARNING: %zu jobs never completed\n",
                result->unfinished_jobs);
  }
  return 0;
}

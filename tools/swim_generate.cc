// swim_generate: emit a calibrated paper workload as a trace file.
//
//   swim_generate <workload> <out> [jobs] [seed]
//
// Workload names are Table 1's: CC-a..CC-e, FB-2009, FB-2010
// (swim_analyze --list shows details). Output is STF1 when <out> ends in
// .stf/.stf1, CSV otherwise.
#include <cstdio>
#include <cstdlib>

#include "trace/columnar.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/spec_io.h"
#include "workloads/trace_generator.h"

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: swim_generate <workload-or-spec-file> <out> "
                 "[jobs] [seed]\n");
    return 2;
  }
  // The first argument is either a built-in paper workload name or a path
  // to a .spec file (see workloads/spec_io.h for the format).
  auto spec = workloads::PaperWorkloadByName(argv[1]);
  if (!spec.ok()) {
    spec = workloads::LoadSpec(argv[1]);
  }
  if (!spec.ok()) {
    std::fprintf(stderr,
                 "'%s' is neither a built-in workload nor a loadable spec "
                 "file: %s\n",
                 argv[1], spec.status().ToString().c_str());
    return 1;
  }
  workloads::GeneratorOptions options;
  if (argc > 3) {
    options.job_count_override =
        static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
  }
  if (argc > 4) {
    options.seed = std::strtoull(argv[4], nullptr, 10);
  }
  auto trace = workloads::GenerateTrace(*spec, options);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  Status written = trace::WriteTraceAuto(*trace, argv[2]);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu jobs shaped like %s to %s\n", trace->size(),
              argv[1], argv[2]);
  return 0;
}

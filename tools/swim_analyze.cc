// swim_analyze: run the paper's full workload analysis over a trace.
//
//   swim_analyze <trace.csv|trace.stf1> [--on-error strict|skip|repair]
//                                         analyze a trace (format sniffed
//                                         from the magic bytes)
//   swim_analyze --workload <name> [n]    analyze a generated paper
//                                         workload (optionally n jobs)
//   swim_analyze --list                   list built-in workloads
//
// Output: the combined data/temporal/compute report (sections 4-6).
// With --on-error skip|repair, malformed CSV rows are dropped or patched
// and an ingest report goes to stderr instead of the load aborting.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analysis/workload_report.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: swim_analyze <trace.csv|trace.stf1> "
               "[--on-error strict|skip|repair]\n"
               "       swim_analyze --workload <name> [jobs]\n"
               "       swim_analyze --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 2) return Usage();
  std::string arg = argv[1];

  if (arg == "--list") {
    for (const auto& name : workloads::PaperWorkloadNames()) {
      auto spec = workloads::PaperWorkloadByName(name);
      std::printf("%-9s %8zu jobs, %4d machines, %d\n", name.c_str(),
                  spec->total_jobs, spec->metadata.machines,
                  spec->metadata.year);
    }
    return 0;
  }

  trace::Trace trace;
  if (arg == "--workload") {
    if (argc < 3) return Usage();
    auto spec = workloads::PaperWorkloadByName(argv[2]);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    workloads::GeneratorOptions options;
    if (argc > 3) {
      options.job_count_override =
          static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
    } else if (spec->total_jobs > 100000) {
      options.job_count_override = 100000;
      std::fprintf(stderr, "(scaling %s to 100000 jobs; pass a job count "
                           "to override)\n",
                   argv[2]);
    }
    auto generated = workloads::GenerateTrace(*spec, options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    trace = *std::move(generated);
  } else {
    trace::ParseOptions parse_options;
    // Build the id indexes right after the parse: large traces use the
    // concurrent in-place interner while the parse's thread budget is hot.
    parse_options.warm_indexes = true;
    for (int i = 2; i < argc; ++i) {
      std::string flag = argv[i];
      std::string value;
      size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag.resize(eq);
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
          return 2;
        }
        value = argv[++i];
      }
      if (flag == "--on-error") {
        auto mode = trace::ParseModeFromName(value);
        if (!mode.ok()) {
          std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
          return 2;
        }
        parse_options.mode = *mode;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
        return 2;
      }
    }
    trace::ParseReport report;
    auto loaded = trace::ReadTraceAuto(arg, parse_options, &report);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", arg.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (!report.clean()) {
      std::fprintf(stderr, "%s\n", report.ToString().c_str());
    }
    trace = *std::move(loaded);
  }

  auto report = core::AnalyzeWorkload(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", core::FormatReport(*report).c_str());
  return 0;
}

// swim_analyze: run the paper's full workload analysis over a trace.
//
//   swim_analyze <trace.csv|trace.stf1> [--on-error strict|skip|repair]
//                                         analyze a trace (format sniffed
//                                         from the magic bytes)
//   swim_analyze <trace> --stream         streaming analysis: STF1 columns
//                                         are consumed in place (no
//                                         materialization, no full-column
//                                         sorts); quantiles are GK-backed
//   swim_analyze <trace> --follow [--interval s] [--repeat n] [--out file]
//                                         tail a growing trace, updating
//                                         the streaming report in O(new
//                                         rows) per tick
//   swim_analyze --workload <name> [n]    analyze a generated paper
//                                         workload (optionally n jobs)
//   swim_analyze --list                   list built-in workloads
//
// Output: the combined data/temporal/compute report (sections 4-6).
// With --on-error skip|repair, malformed CSV rows are dropped or patched
// and an ingest report goes to stderr instead of the load aborting.
// With --out, each report flush is atomic (temp file + rename), so a
// concurrent reader never sees a torn report.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/analysis/follow.h"
#include "core/analysis/streaming.h"
#include "core/analysis/workload_report.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: swim_analyze <trace.csv|trace.stf1> "
               "[--on-error strict|skip|repair] [--stream]\n"
               "       swim_analyze <trace> --follow [--interval seconds] "
               "[--repeat n] [--out file]\n"
               "       swim_analyze --workload <name> [jobs]\n"
               "       swim_analyze --list\n");
  return 2;
}

/// Writes `text` to `path` atomically: the bytes land in a sibling temp
/// file which is renamed over the target, so readers see either the old
/// report or the new one, never a partial flush.
bool WriteReportAtomic(const std::string& path, const std::string& text) {
  const std::string temp = path + ".tmp";
  std::FILE* out = std::fopen(temp.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", temp.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), out) == text.size();
  const bool flushed = std::fflush(out) == 0;
  std::fclose(out);
  if (!wrote || !flushed) {
    std::fprintf(stderr, "short write to %s\n", temp.c_str());
    std::remove(temp.c_str());
    return false;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s over %s\n", temp.c_str(),
                 path.c_str());
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

/// Emits the report to --out (atomically) or stdout.
bool EmitReport(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::printf("%s", text.c_str());
    std::fflush(stdout);
    return true;
  }
  return WriteReportAtomic(out_path, text);
}

struct AnalyzeFlags {
  swim::trace::ParseOptions parse_options;
  bool stream = false;
  bool follow = false;
  double interval_seconds = 1.0;
  /// Number of polls in follow mode; 0 = poll until interrupted.
  uint64_t repeat = 0;
  std::string out_path;
};

/// One-shot streaming analysis: the STF1 fast path consumes column spans in
/// place; CSV parses rows and feeds them through the same analyzer.
int RunStream(const std::string& path, const AnalyzeFlags& flags) {
  using namespace swim;
  auto format = trace::SniffTraceFormat(path);
  if (!format.ok()) {
    std::fprintf(stderr, "%s\n", format.status().ToString().c_str());
    return 1;
  }
  core::StreamingAnalyzer analyzer;
  StatusOr<core::StreamingReport> report = InvalidArgumentError("no input");
  if (*format == trace::TraceFormat::kStf1) {
    auto view = trace::ColumnarTraceView::Open(path);
    if (!view.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                   view.status().ToString().c_str());
      return 1;
    }
    auto status = analyzer.ObserveColumns(*view, 0, view->job_count());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    report = analyzer.Report(&*view);
  } else {
    trace::ParseReport parse_report;
    auto loaded = trace::ReadTraceCsv(path, flags.parse_options, &parse_report);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (!parse_report.clean()) {
      std::fprintf(stderr, "%s\n", parse_report.ToString().c_str());
    }
    analyzer.SetMetadata(loaded->metadata());
    auto status = analyzer.ObserveJobs(Span<const trace::JobRecord>(
        loaded->jobs().data(), loaded->jobs().size()));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    report = analyzer.Report();
  }
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  return EmitReport(flags.out_path, core::FormatStreamingReport(*report)) ? 0
                                                                          : 1;
}

/// Follow mode: poll the file, fold new rows, re-emit the report after
/// every tick that grew.
int RunFollow(const std::string& path, const AnalyzeFlags& flags) {
  using namespace swim;
  core::FollowOptions options;
  options.csv_parse = flags.parse_options;
  auto follower = core::TraceFollower::Open(path, options);
  if (!follower.ok()) {
    std::fprintf(stderr, "cannot follow %s: %s\n", path.c_str(),
                 follower.status().ToString().c_str());
    return 1;
  }
  uint64_t ticks = 0;
  while (true) {
    auto poll = follower->Poll();
    if (!poll.ok()) {
      // A torn producer state (mid-rewrite, truncated tail) is transient:
      // report it and retry at the next tick with the analyzer untouched.
      std::fprintf(stderr, "poll: %s\n", poll.status().ToString().c_str());
    } else if (poll->new_jobs > 0) {
      auto report = follower->Report();
      if (!report.ok()) {
        std::fprintf(stderr, "report: %s\n",
                     report.status().ToString().c_str());
      } else {
        std::string text = core::FormatStreamingReport(*report);
        std::fprintf(stderr, "[follow] +%zu jobs (%zu total)\n",
                     poll->new_jobs, poll->total_jobs);
        if (!EmitReport(flags.out_path, text)) return 1;
      }
    }
    ++ticks;
    if (flags.repeat > 0 && ticks >= flags.repeat) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(flags.interval_seconds));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 2) return Usage();
  std::string arg = argv[1];

  if (arg == "--list") {
    for (const auto& name : workloads::PaperWorkloadNames()) {
      auto spec = workloads::PaperWorkloadByName(name);
      std::printf("%-9s %8zu jobs, %4d machines, %d\n", name.c_str(),
                  spec->total_jobs, spec->metadata.machines,
                  spec->metadata.year);
    }
    return 0;
  }

  trace::Trace trace;
  if (arg == "--workload") {
    if (argc < 3) return Usage();
    auto spec = workloads::PaperWorkloadByName(argv[2]);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    workloads::GeneratorOptions options;
    if (argc > 3) {
      options.job_count_override =
          static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
    } else if (spec->total_jobs > 100000) {
      std::fprintf(stderr, "(scaling %s to 100000 jobs; pass a job count "
                           "to override)\n",
                   argv[2]);
      options.job_count_override = 100000;
    }
    auto generated = workloads::GenerateTrace(*spec, options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    trace = *std::move(generated);
  } else {
    AnalyzeFlags flags;
    // Build the id indexes right after the parse: large traces use the
    // concurrent in-place interner while the parse's thread budget is hot.
    flags.parse_options.warm_indexes = true;
    for (int i = 2; i < argc; ++i) {
      std::string flag = argv[i];
      if (flag == "--stream") {
        flags.stream = true;
        continue;
      }
      if (flag == "--follow") {
        flags.follow = true;
        continue;
      }
      std::string value;
      size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag.resize(eq);
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
          return 2;
        }
        value = argv[++i];
      }
      if (flag == "--on-error") {
        auto mode = trace::ParseModeFromName(value);
        if (!mode.ok()) {
          std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
          return 2;
        }
        flags.parse_options.mode = *mode;
      } else if (flag == "--interval") {
        flags.interval_seconds = std::strtod(value.c_str(), nullptr);
        if (!(flags.interval_seconds > 0.0)) {
          std::fprintf(stderr, "--interval needs a positive number\n");
          return 2;
        }
      } else if (flag == "--repeat") {
        flags.repeat = std::strtoull(value.c_str(), nullptr, 10);
      } else if (flag == "--out") {
        flags.out_path = value;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
        return 2;
      }
    }
    if (flags.follow) return RunFollow(arg, flags);
    if (flags.stream) return RunStream(arg, flags);

    trace::ParseReport report;
    auto loaded = trace::ReadTraceAuto(arg, flags.parse_options, &report);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", arg.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (!report.clean()) {
      std::fprintf(stderr, "%s\n", report.ToString().c_str());
    }
    trace = *std::move(loaded);
  }

  auto report = core::AnalyzeWorkload(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", core::FormatReport(*report).c_str());
  return 0;
}

// swim_synth: the SWIM pipeline as a command-line tool.
//
//   swim_synth fit <trace> <model.swim>          fit + save a model
//   swim_synth gen <model.swim> <out> [jobs]     synthesize a trace
//   swim_synth check <trace> <synth>             fidelity report
//
// Trace inputs may be CSV or STF1 (sniffed from the magic bytes); gen
// writes STF1 when the output path ends in .stf/.stf1, CSV otherwise.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/synth/fidelity.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: swim_synth fit <trace> <model.swim>\n"
               "       swim_synth gen <model.swim> <out> [jobs]\n"
               "       swim_synth check <trace> <synth>\n");
  return 2;
}

int Fail(const swim::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 4) return Usage();
  std::string command = argv[1];

  if (command == "fit") {
    auto trace = trace::ReadTraceAuto(argv[2]);
    if (!trace.ok()) return Fail(trace.status());
    auto model = core::BuildModel(*trace);
    if (!model.ok()) return Fail(model.status());
    Status saved = core::SaveModel(*model, argv[3]);
    if (!saved.ok()) return Fail(saved);
    std::printf("model: %zu exemplars from %zu jobs, span %.0f h, "
                "Zipf slope %.2f -> %s\n",
                model->exemplars.size(), model->total_jobs,
                model->span_seconds / 3600.0, model->file_model.zipf_slope,
                argv[3]);
    return 0;
  }
  if (command == "gen") {
    auto model = core::LoadModel(argv[2]);
    if (!model.ok()) return Fail(model.status());
    core::SynthesisOptions options;
    if (argc > 4) {
      options.job_count =
          static_cast<size_t>(std::strtoull(argv[4], nullptr, 10));
    }
    auto synth = core::SynthesizeTrace(*model, options);
    if (!synth.ok()) return Fail(synth.status());
    Status written = trace::WriteTraceAuto(*synth, argv[3]);
    if (!written.ok()) return Fail(written);
    std::printf("synthesized %zu jobs -> %s\n", synth->size(), argv[3]);
    return 0;
  }
  if (command == "check") {
    auto source = trace::ReadTraceAuto(argv[2]);
    if (!source.ok()) return Fail(source.status());
    auto synth = trace::ReadTraceAuto(argv[3]);
    if (!synth.ok()) return Fail(synth.status());
    core::FidelityReport report = core::CompareTraces(*source, *synth);
    std::printf("%s", core::FormatFidelity(report).c_str());
    return report.max_ks < 0.1 ? 0 : 1;
  }
  return Usage();
}

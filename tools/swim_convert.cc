// swim_convert: translate traces between CSV and STF1.
//
//   swim_convert <in> <out> [--to csv|stf1] [--on-error strict|skip|repair]
//                [--no-verify] [--stats]
//
// The input format is sniffed from the magic bytes; the output format
// defaults to the opposite direction when unambiguous — otherwise it
// follows <out>'s extension (.stf/.stf1 selects STF1) — and --to forces
// it. --on-error applies to CSV inputs only (STF1 is checksummed, not
// repaired); --no-verify skips STF1 checksum verification on input;
// --stats prints job/dictionary/byte counts for the conversion.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/columnar.h"
#include "trace/trace_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: swim_convert <in> <out> [--to csv|stf1]\n"
               "                    [--on-error strict|skip|repair] "
               "[--no-verify] [--stats]\n");
  return 2;
}

int Fail(const swim::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  if (argc < 3) return Usage();
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];

  trace::ParseOptions parse_options;
  parse_options.warm_indexes = true;  // STF1 output needs the id indexes
  trace::ColumnarOptions columnar_options;
  bool stats = false;
  bool forced_format = false;
  trace::TraceFormat out_format = trace::TraceFormat::kCsv;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--no-verify") {
      columnar_options.verify_checksums = false;
      continue;
    }
    if (flag == "--stats") {
      stats = true;
      continue;
    }
    std::string value;
    size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag.resize(eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
        return 2;
      }
      value = argv[++i];
    }
    if (flag == "--to") {
      if (value == "csv") {
        out_format = trace::TraceFormat::kCsv;
      } else if (value == "stf1") {
        out_format = trace::TraceFormat::kStf1;
      } else {
        std::fprintf(stderr, "--to wants csv or stf1, got '%s'\n",
                     value.c_str());
        return 2;
      }
      forced_format = true;
    } else if (flag == "--on-error") {
      auto mode = trace::ParseModeFromName(value);
      if (!mode.ok()) return Fail(mode.status());
      parse_options.mode = *mode;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  auto in_format = trace::SniffTraceFormat(in_path);
  if (!in_format.ok()) return Fail(in_format.status());
  if (!forced_format) {
    // Converting is the common case: flip the direction unless the output
    // extension explicitly says otherwise.
    out_format = trace::HasColumnarExtension(out_path)
                     ? trace::TraceFormat::kStf1
                 : *in_format == trace::TraceFormat::kCsv
                     ? trace::TraceFormat::kStf1
                     : trace::TraceFormat::kCsv;
  }

  trace::ParseReport report;
  auto loaded =
      trace::ReadTraceAuto(in_path, parse_options, &report, columnar_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", in_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  if (!report.clean()) {
    std::fprintf(stderr, "%s\n", report.ToString().c_str());
  }

  Status written = out_format == trace::TraceFormat::kStf1
                       ? trace::WriteTraceColumnar(*loaded, out_path)
                       : trace::WriteTraceCsv(*loaded, out_path);
  if (!written.ok()) return Fail(written);

  std::printf("%s (%s) -> %s (%s): %zu jobs\n", in_path.c_str(),
              trace::TraceFormatName(*in_format), out_path.c_str(),
              trace::TraceFormatName(out_format), loaded->size());
  if (stats) {
    std::printf("  names: %zu distinct, paths: %zu distinct\n",
                loaded->name_interner().size(),
                loaded->path_interner().size());
    const std::string stf1 = trace::TraceToColumnarBytes(*loaded);
    const std::string csv = trace::TraceToCsv(*loaded);
    std::printf("  csv: %zu bytes, stf1: %zu bytes (%.2fx)\n", csv.size(),
                stf1.size(),
                static_cast<double>(csv.size()) /
                    static_cast<double>(stf1.empty() ? 1 : stf1.size()));
  }
  return 0;
}

// Reproduces Figure 3: cumulative fraction of jobs vs input file size
// (top) and cumulative fraction of stored bytes vs input file size
// (bottom), plus the section 4.2 "80-X rule".
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/data_access.h"

int main() {
  using namespace swim;
  bench::Banner("Figure 3: Access patterns vs input file size");
  double worst_bytes_at_jobs90 = 0.0;
  double min_rule = 100.0, max_rule = 0.0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::SizeSkewCurve curve =
        core::ComputeSizeSkew(t, /*use_output=*/false);
    if (curve.points.empty()) {
      std::printf("%s: (no input paths)\n", name.c_str());
      continue;
    }
    std::printf("%s: %zu jobs with paths, %s stored\n", name.c_str(),
                curve.jobs_with_paths,
                FormatBytes(curve.total_stored_bytes).c_str());
    std::printf("  %14s %14s %14s\n", "file size <=", "frac jobs",
                "frac bytes");
    for (const auto& p : curve.points) {
      // Print a sparse subset of the curve (every 8th point).
      static int row = 0;
      if (row++ % 8 != 0) continue;
      std::printf("  %14s %13.0f%% %13.1f%%\n",
                  FormatBytes(p.file_bytes).c_str(),
                  100 * p.fraction_of_jobs, 100 * p.fraction_of_stored_bytes);
    }
    // Where do 90% of jobs sit, and how many stored bytes is that?
    for (const auto& p : curve.points) {
      if (p.fraction_of_jobs >= 0.9) {
        std::printf("  -> 90%% of jobs access files <= %s, holding %.1f%% "
                    "of stored bytes\n",
                    FormatBytes(p.file_bytes).c_str(),
                    100 * p.fraction_of_stored_bytes);
        worst_bytes_at_jobs90 =
            std::max(worst_bytes_at_jobs90, p.fraction_of_stored_bytes);
        break;
      }
    }
    double rule =
        100 * core::StoredBytesFractionForJobCoverage(t, 0.8, false);
    std::printf("  -> 80-X rule: 80%% of accesses -> %.1f%% of stored bytes "
                "(an 80-%.0f rule)\n",
                rule, rule);
    min_rule = std::min(min_rule, rule);
    max_rule = std::max(max_rule, rule);
  }

  bench::Banner("Paper comparison");
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", 100 * worst_bytes_at_jobs90);
  bench::PaperVsMeasured("bytes held by files serving 90% of jobs",
                         "<= 16%", buffer);
  std::snprintf(buffer, sizeof(buffer), "80-%.0f to 80-%.0f", min_rule,
                max_rule);
  bench::PaperVsMeasured("80-X rule range (inputs)", "80-1 to 80-8", buffer);
  return 0;
}

// bench_fuzz_ingest: CI corpus driver for the trace-parser fuzzer.
//
//   bench_fuzz_ingest [--iterations N] [--seed S]
//
// Runs the deterministic CsvMutator against TraceFromCsv in all three
// parse modes for N iterations and enforces the parser contracts (never
// crash, report counts exact, accepted rows valid, repair >= skip), then
// runs the Stf1Mutator against TraceFromColumnarBytes for the same N and
// enforces the binary-reader contract (never crash, errors are structured,
// accepted traces validate). Any violation prints the reproducing (seed,
// iteration) pair and exits non-zero. The CI fuzz-smoke step runs this
// under ASan/UBSan; the gtest twin (trace_fuzz_test / columnar_test) runs
// a short version in every test pass.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/columnar.h"
#include "trace/csv_mutator.h"
#include "trace/job_record.h"
#include "trace/stf1_mutator.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace {

using namespace swim;

/// Same corpus shape as trace_fuzz_test, scaled up: quoted commas,
/// embedded newlines, escaped quotes, empty optionals, map-only jobs.
trace::Trace BaseTrace() {
  trace::Trace t;
  t.mutable_metadata().name = "FUZZ-CI";
  t.mutable_metadata().machines = 600;
  t.mutable_metadata().year = 2010;
  for (uint64_t id = 1; id <= 200; ++id) {
    trace::JobRecord job;
    job.job_id = id;
    switch (id % 4) {
      case 0: job.name = "pipeline,stage " + std::to_string(id); break;
      case 1: job.name = "ad hoc \"select\""; break;
      case 2: job.name = "line1\nline2"; break;
      default: job.name = ""; break;
    }
    job.submit_time = static_cast<double>(id);
    job.duration = 30.0;
    job.input_bytes = 1e6 * static_cast<double>(id % 17 + 1);
    job.shuffle_bytes = id % 3 == 0 ? 0.0 : 5e5;
    job.output_bytes = 1e5;
    job.map_tasks = 1 + static_cast<int64_t>(id % 9);
    job.reduce_tasks = id % 3 == 0 ? 0 : 1;
    job.map_task_seconds = 40.0;
    job.reduce_task_seconds = id % 3 == 0 ? 0.0 : 10.0;
    job.input_path = "hdfs://warehouse/t" + std::to_string(id % 7) +
                     (id % 4 == 0 ? ",part=0" : "");
    job.output_path = id % 5 == 0 ? "" : "out/" + std::to_string(id);
    t.AddJob(std::move(job));
  }
  return t;
}

[[noreturn]] void Fail(uint64_t seed, uint64_t iteration, const char* what) {
  std::fprintf(stderr,
               "FUZZ FAILURE: %s (reproduce: --seed %llu, iteration %llu)\n",
               what, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(iteration));
  std::exit(1);
}

bool ReportHolds(const trace::ParseReport& report, const trace::Trace& t) {
  if (report.accepted != t.size()) return false;
  if (report.total_rows != report.accepted + report.skipped) return false;
  size_t categorized = 0;
  for (size_t count : report.error_counts) categorized += count;
  if (categorized != report.flagged()) return false;
  if (report.diagnostics.size() + report.dropped_diagnostics !=
      report.flagged()) {
    return false;
  }
  for (const trace::JobRecord& job : t.jobs()) {
    if (!trace::ValidateJobRecord(job).empty()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iterations = 100000;
  uint64_t seed = 2012;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "--iterations") {
      iterations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (flag == "--seed") {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  const trace::Trace base_trace = BaseTrace();
  const std::string base = trace::TraceToCsv(base_trace);
  const trace::CsvMutator mutator(seed);
  uint64_t strict_ok = 0, skip_rows = 0, repair_rows = 0;
  for (uint64_t iteration = 0; iteration < iterations; ++iteration) {
    const std::string mutated = mutator.Mutate(base, iteration);

    trace::ParseReport strict_report;
    auto strict = trace::TraceFromCsv(
        mutated, {trace::ParseMode::kStrict, 64, 0}, &strict_report);
    if (strict.ok()) {
      ++strict_ok;
      if (!strict_report.clean()) Fail(seed, iteration, "strict not clean");
    }

    trace::ParseReport skip_report;
    auto skipped = trace::TraceFromCsv(
        mutated, {trace::ParseMode::kSkip, 64, 0}, &skip_report);
    if (skipped.ok()) {
      if (!ReportHolds(skip_report, *skipped)) {
        Fail(seed, iteration, "skip report contract violated");
      }
      skip_rows += skipped->size();
    } else if (strict.ok()) {
      Fail(seed, iteration, "skip failed where strict succeeded");
    }

    trace::ParseReport repair_report;
    auto repaired = trace::TraceFromCsv(
        mutated, {trace::ParseMode::kRepair, 64, 0}, &repair_report);
    if (repaired.ok() != skipped.ok()) {
      Fail(seed, iteration, "repair/skip disagree on whole-file validity");
    }
    if (repaired.ok()) {
      if (!ReportHolds(repair_report, *repaired)) {
        Fail(seed, iteration, "repair report contract violated");
      }
      if (repaired->size() < skipped->size()) {
        Fail(seed, iteration, "repair kept fewer rows than skip");
      }
      repair_rows += repaired->size();
    }
  }

  std::printf(
      "fuzzed %llu mutated traces (seed %llu): %llu parsed strictly, "
      "%.1f rows/iter survived skip, %.1f rows/iter survived repair\n",
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(strict_ok),
      static_cast<double>(skip_rows) / static_cast<double>(iterations),
      static_cast<double>(repair_rows) / static_cast<double>(iterations));

  // Phase 2: the binary reader. The pristine encoding must round-trip;
  // every mutated encoding must either load a fully valid trace or fail
  // with a structured Status — never crash, never OOM on a lying header.
  const std::string stf1 = trace::TraceToColumnarBytes(base_trace);
  {
    auto pristine = trace::TraceFromColumnarBytes(stf1);
    if (!pristine.ok() || pristine->size() != base_trace.size()) {
      Fail(seed, 0, "pristine STF1 encoding failed to round-trip");
    }
  }
  const trace::Stf1Mutator stf1_mutator(seed);
  uint64_t stf1_ok = 0;
  for (uint64_t iteration = 0; iteration < iterations; ++iteration) {
    const std::string mutated = stf1_mutator.Mutate(stf1, iteration);
    auto loaded = trace::TraceFromColumnarBytes(mutated);
    if (loaded.ok()) {
      ++stf1_ok;
      for (const trace::JobRecord& job : loaded->jobs()) {
        if (!trace::ValidateJobRecord(job).empty()) {
          Fail(seed, iteration, "STF1 reader accepted an invalid job");
        }
      }
    } else if (loaded.status().message().empty()) {
      Fail(seed, iteration, "STF1 reader returned an unexplained error");
    }
  }
  std::printf(
      "fuzzed %llu mutated STF1 files (seed %llu): %llu loaded cleanly, "
      "%llu rejected with structured errors\n",
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(stf1_ok),
      static_cast<unsigned long long>(iterations - stf1_ok));
  return 0;
}

// Reproduces Figure 8: workload burstiness as the cumulative distribution
// of task-seconds per hour normalized by the median, with the paper's two
// sine reference curves. Paper: peak-to-median ranges 9:1 (FB-2010) to
// 260:1; FB-2009 is 31:1 and drops to 9:1 in FB-2010 as multiplexing
// grows.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/temporal.h"
#include "stats/burstiness.h"

namespace {

void PrintProfile(const char* label,
                  const swim::stats::BurstinessProfile& profile) {
  std::printf("  %-10s", label);
  for (double n : {10.0, 50.0, 90.0, 99.0, 100.0}) {
    std::printf(" p%3.0f/med=%-8.2f", n, profile.RatioAtPercentile(n));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 8: Burstiness (normalized task-seconds per hour)");

  double fb2009_ratio = 0, fb2010_ratio = 0;
  double min_ratio = 1e30, max_ratio = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/SIZE_MAX);
    core::BurstinessReport report = core::ComputeBurstiness(t);
    std::printf("%s:\n", name.c_str());
    PrintProfile("tasks", report.task_seconds);
    PrintProfile("jobs", report.jobs);
    double ratio = report.task_seconds.PeakToMedian();
    if (name == "FB-2009") fb2009_ratio = ratio;
    if (name == "FB-2010") fb2010_ratio = ratio;
    // CC-a is excluded from the range comparison: at ~8 jobs/hour its
    // hourly median is near zero, so the ratio explodes - see
    // EXPERIMENTS.md for the discussion of this scale artifact.
    if (name != "CC-a") {
      min_ratio = std::min(min_ratio, ratio);
      max_ratio = std::max(max_ratio, ratio);
    }
  }

  std::printf("reference signals:\n");
  PrintProfile("sine+2",
               stats::BurstinessProfile(stats::SineReferenceSeries(2.0)));
  PrintProfile("sine+20",
               stats::BurstinessProfile(stats::SineReferenceSeries(20.0)));

  bench::Banner("Paper comparison");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f:1 to %.0f:1", min_ratio,
                max_ratio);
  bench::PaperVsMeasured("peak-to-median range (excluding CC-a)",
                         "9:1 to 260:1", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.0f:1 -> %.0f:1", fb2009_ratio,
                fb2010_ratio);
  bench::PaperVsMeasured("Facebook year-over-year (multiplexing helps)",
                         "31:1 -> 9:1", buffer);
  std::printf("\nAll workload curves sit far to the right of both sine\n"
              "references: real MapReduce load is orders of magnitude\n"
              "burstier than any diurnal model.\n");
  return 0;
}

// Cross-workload diversity - the paper's central caution (sections 4-6
// and the summary): every dimension of workload behavior varies widely
// across the seven deployments, so no single workload is "typical"; the
// one stable feature is the Zipf file-popularity slope. A TPC-style big
// data benchmark therefore needs a *suite* of workloads (section 7).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/analysis/diversity.h"
#include "core/analysis/workload_report.h"

int main() {
  using namespace swim;
  bench::Banner("Cross-workload diversity (the 'no typical workload' claim)");
  std::vector<core::WorkloadReport> reports;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/40000);
    auto report = core::AnalyzeWorkload(t);
    SWIM_CHECK_OK(report.status());
    reports.push_back(*std::move(report));
  }
  auto comparison = core::CompareWorkloads(reports);
  SWIM_CHECK_OK(comparison.status());
  std::printf("%s", core::FormatDiversity(*comparison).c_str());

  bench::Banner("Paper comparison");
  // The paper's stability control: Zipf slope is ~the same everywhere,
  // while per-job medians span orders of magnitude.
  double zipf_cv = 0.0, input_cv = 0.0;
  for (const auto& metric : comparison->metrics) {
    if (metric.name == "Zipf popularity slope") zipf_cv = metric.cv;
    if (metric.name == "median input bytes") input_cv = metric.cv;
  }
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "CV %.2f vs CV %.2f", zipf_cv,
                input_cv);
  bench::PaperVsMeasured(
      "Zipf slope stable while data sizes vary wildly",
      "only stable feature", buffer);
  std::printf(
      "\nReading the table: metrics are ranked by coefficient of\n"
      "variation; per-job medians and burstiness span orders of\n"
      "magnitude across deployments while the Zipf slope and small-job\n"
      "dominance sit at the bottom - exactly the paper's summary list.\n");
  return 0;
}

// Microbenchmark for the open-addressing FlatHashMap and StringInterner
// against the std::unordered_map<std::string, ...> baseline they replaced
// on the analysis/storage/replay hot paths. The key stream is Zipf-skewed
// HDFS-style paths - the same shape ComputePopularity and the file caches
// see on real traces (Figure 2: file popularity is Zipf with slope ~5/6).
//
// Scenarios, each over the same generated key stream:
//   count/std:    unordered_map<string,double>   operator[] accumulate -
//                 the pre-change pattern (every analysis pass hashed and
//                 compared full path strings per job)
//   count/flat:   FlatHashMap<string,double>     operator[] accumulate
//   count/interned: dense-vector accumulate over the precomputed id
//                 column - the post-change pattern (ids are assigned once
//                 at trace load by Trace::EnsureIndexed, then every
//                 analysis pass runs id-indexed; the one-time intern cost
//                 is reported separately as intern/build)
//   lookup/std vs lookup/flat: read-only find() over a pre-built table,
//                 probing with string_view (heterogeneous lookup).
//
// --json <path> emits {name, jobs_per_sec, threads, median_seconds,
// repeats, warmups} rows (ops/sec in the jobs_per_sec field, matching the
// repo's BENCH_*.json convention); timing is median-of-N after warm-up
// (bench_common.h MedianOpsPerSec) so the CI gate is not single-shot.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/flat_hash.h"
#include "common/interner.h"
#include "common/random.h"

namespace {

/// Zipf(s ~ 5/6) ranks via inverse-CDF over precomputed weights.
std::vector<std::string> MakeZipfPathStream(size_t distinct, size_t draws,
                                            swim::Pcg32& rng) {
  std::vector<double> cumulative(distinct);
  double total = 0.0;
  for (size_t rank = 0; rank < distinct; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), 5.0 / 6.0);
    cumulative[rank] = total;
  }
  std::vector<std::string> stream;
  stream.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    double u = rng.NextDouble() * total;
    size_t rank =
        static_cast<size_t>(std::lower_bound(cumulative.begin(),
                                             cumulative.end(), u) -
                            cumulative.begin());
    if (rank >= distinct) rank = distinct - 1;
    stream.push_back("/user/warehouse/part-" + std::to_string(rank) +
                     "/data-r-" + std::to_string(rank % 1000) + ".lzo");
  }
  return stream;
}

double checksum_sink = 0.0;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;

  constexpr size_t kDistinct = 50000;
  constexpr size_t kDraws = 2000000;
  constexpr int kRepeats = 3;
  constexpr int kWarmups = 1;
  Pcg32 rng(bench::kBenchSeed, /*stream=*/0x4a5f);
  std::vector<std::string> stream = MakeZipfPathStream(kDistinct, kDraws, rng);

  bench::Banner("Hash microbenchmark: Zipf path stream");
  std::printf(
      "  %zu draws over %zu distinct paths, median of %d runs after "
      "%d warm-up\n\n",
      kDraws, kDistinct, kRepeats, kWarmups);

  // -- Counting (the ComputePopularity access pattern) --
  bench::BenchTiming std_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    std::unordered_map<std::string, double> counts;
    for (const std::string& key : stream) counts[key] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });
  bench::BenchTiming flat_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    FlatHashMap<std::string, double> counts;
    for (const std::string& key : stream) counts[key] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });
  // One-time id assignment (what Trace::EnsureIndexed pays at load)...
  StringInterner interner;
  std::vector<uint32_t> ids;
  bench::BenchTiming intern_build = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    interner.Clear();
    ids.clear();
    ids.reserve(stream.size());
    for (const std::string& key : stream) ids.push_back(interner.Intern(key));
    checksum_sink += static_cast<double>(interner.size());
  });
  // ...then every analysis pass over the trace is id-indexed: no string
  // hashing or comparison at all (the data_access.cc pattern).
  bench::BenchTiming interned_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    std::vector<double> counts(interner.size(), 0.0);
    for (uint32_t id : ids) counts[id] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });

  // -- Read-only lookup (heterogeneous string_view probe) --
  std::unordered_map<std::string, double> std_table;
  FlatHashMap<std::string, double> flat_table;
  for (const std::string& key : stream) {
    std_table[key] += 1.0;
    flat_table[key] += 1.0;
  }
  bench::BenchTiming std_lookup = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    double hits = 0.0;
    for (const std::string& key : stream) {
      auto it = std_table.find(key);
      if (it != std_table.end()) hits += it->second;
    }
    checksum_sink += hits;
  });
  bench::BenchTiming flat_lookup = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    double hits = 0.0;
    for (const std::string& key : stream) {
      auto it = flat_table.find(std::string_view(key));
      if (it != flat_table.end()) hits += it->second;
    }
    checksum_sink += hits;
  });

  auto report = [&](const char* name, const bench::BenchTiming& timing,
                    const bench::BenchTiming& baseline) {
    std::printf("  %-18s %12.0f ops/s   %.2fx vs std\n", name,
                timing.ops_per_sec, timing.ops_per_sec / baseline.ops_per_sec);
    json.Add(name, timing, 1);
  };
  report("count/std", std_count, std_count);
  report("count/flat", flat_count, std_count);
  report("intern/build", intern_build, std_count);
  report("count/interned", interned_count, std_count);
  report("lookup/std", std_lookup, std_lookup);
  report("lookup/flat", flat_lookup, std_lookup);

  double best_count =
      std::max(flat_count.ops_per_sec, interned_count.ops_per_sec);
  double speedup = best_count / std_count.ops_per_sec;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", speedup);
  bench::Banner("Speedup summary");
  bench::PaperVsMeasured("count path vs unordered_map<string,...>", ">= 2x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx",
                flat_lookup.ops_per_sec / std_lookup.ops_per_sec);
  bench::PaperVsMeasured("lookup path vs unordered_map<string,...>", "> 1x",
                         buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // Hard gate: the ISSUE acceptance criterion.
  if (speedup < 2.0) {
    std::printf("\nFAIL: count-path speedup %.2fx below the 2x gate\n",
                speedup);
    return 1;
  }
  std::printf("\n(checksum %.0f)\n", checksum_sink > 0 ? 1.0 : 0.0);
  return 0;
}

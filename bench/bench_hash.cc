// Microbenchmark for the open-addressing FlatHashMap and StringInterner
// against the std::unordered_map<std::string, ...> baseline they replaced
// on the analysis/storage/replay hot paths. The key stream is Zipf-skewed
// HDFS-style paths - the same shape ComputePopularity and the file caches
// see on real traces (Figure 2: file popularity is Zipf with slope ~5/6).
//
// Scenarios, each over the same generated key stream:
//   count/std:    unordered_map<string,double>   operator[] accumulate -
//                 the pre-change pattern (every analysis pass hashed and
//                 compared full path strings per job)
//   count/flat:   FlatHashMap<string,double>     operator[] accumulate
//   count/interned: dense-vector accumulate over the precomputed id
//                 column - the post-change pattern (ids are assigned once
//                 at trace load by Trace::EnsureIndexed, then every
//                 analysis pass runs id-indexed; the one-time intern cost
//                 is reported separately as intern/build)
//   lookup/std vs lookup/flat: read-only find() over a pre-built table,
//                 probing with string_view (heterogeneous lookup).
//   probe/simd vs probe/portable: the same FlatHashMap compiled with the
//                 vector Group policy vs GroupPortable, on a miss-heavy
//                 integer probe stream (misses walk the most control
//                 groups, so they isolate the 16-byte scan itself).
//                 Gated >= 1.2x when this build has a SIMD group policy.
//   concurrent_count/{shared,merge}/T{1,4,8}: T threads counting one
//                 contended Zipf id stream — ConcurrentCounter updated in
//                 place vs the partition-then-merge pattern (per-thread
//                 FlatHashMaps + serial merge) it replaces. Gated
//                 >= 1.3x at 8 threads on >= 4-core hosts (loud SKIP
//                 below: thread timings on one core measure the scheduler,
//                 not the table).
//
// --json <path> emits {name, jobs_per_sec, threads, median_seconds,
// repeats, warmups} rows (ops/sec in the jobs_per_sec field, matching the
// repo's BENCH_*.json convention); timing is median-of-N after warm-up
// (bench_common.h MedianOpsPerSec) so the CI gate is not single-shot.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/concurrent_hash.h"
#include "common/flat_hash.h"
#include "common/interner.h"
#include "common/random.h"

namespace {

/// Zipf(s ~ 5/6) ranks via inverse-CDF over precomputed weights.
std::vector<std::string> MakeZipfPathStream(size_t distinct, size_t draws,
                                            swim::Pcg32& rng) {
  std::vector<double> cumulative(distinct);
  double total = 0.0;
  for (size_t rank = 0; rank < distinct; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), 5.0 / 6.0);
    cumulative[rank] = total;
  }
  std::vector<std::string> stream;
  stream.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    double u = rng.NextDouble() * total;
    size_t rank =
        static_cast<size_t>(std::lower_bound(cumulative.begin(),
                                             cumulative.end(), u) -
                            cumulative.begin());
    if (rank >= distinct) rank = distinct - 1;
    stream.push_back("/user/warehouse/part-" + std::to_string(rank) +
                     "/data-r-" + std::to_string(rank % 1000) + ".lzo");
  }
  return stream;
}

double checksum_sink = 0.0;  // defeats dead-code elimination

/// Zipf(s ~ 5/6) dense-id stream: the shape ComputePopularity sees after
/// interning (integer ids, heavy head, long tail).
std::vector<uint32_t> MakeZipfIdStream(size_t distinct, size_t draws,
                                       swim::Pcg32& rng) {
  std::vector<double> cumulative(distinct);
  double total = 0.0;
  for (size_t rank = 0; rank < distinct; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), 5.0 / 6.0);
    cumulative[rank] = total;
  }
  std::vector<uint32_t> stream;
  stream.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    double u = rng.NextDouble() * total;
    size_t rank =
        static_cast<size_t>(std::lower_bound(cumulative.begin(),
                                             cumulative.end(), u) -
                            cumulative.begin());
    if (rank >= distinct) rank = distinct - 1;
    stream.push_back(static_cast<uint32_t>(rank));
  }
  return stream;
}

/// T threads count disjoint contiguous slices of `stream` into ONE shared
/// ConcurrentCounter (reserved for the population: every Add lock-free).
void CountShared(const std::vector<uint32_t>& stream, size_t distinct,
                 int threads) {
  swim::ConcurrentCounter<uint32_t> counter(distinct);
  std::vector<std::thread> workers;
  size_t per_thread = stream.size() / static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    size_t begin = static_cast<size_t>(t) * per_thread;
    size_t end = t == threads - 1 ? stream.size() : begin + per_thread;
    workers.emplace_back([&, begin, end] {
      for (size_t i = begin; i < end; ++i) counter.Add(stream[i]);
    });
  }
  for (auto& worker : workers) worker.join();
  checksum_sink += static_cast<double>(counter.Distinct());
}

/// The partition-then-merge baseline this PR retires: T private
/// FlatHashMaps built in parallel, then merged serially on the caller.
void CountPartitionMerge(const std::vector<uint32_t>& stream, size_t distinct,
                         int threads) {
  std::vector<swim::FlatHashMap<uint32_t, uint64_t>> partials(
      static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  size_t per_thread = stream.size() / static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    size_t begin = static_cast<size_t>(t) * per_thread;
    size_t end = t == threads - 1 ? stream.size() : begin + per_thread;
    workers.emplace_back([&, begin, end, t] {
      auto& local = partials[static_cast<size_t>(t)];
      for (size_t i = begin; i < end; ++i) ++local[stream[i]];
    });
  }
  for (auto& worker : workers) worker.join();
  swim::FlatHashMap<uint32_t, uint64_t> merged;
  merged.reserve(distinct);
  for (const auto& partial : partials) {
    for (const auto& [id, count] : partial) merged[id] += count;
  }
  checksum_sink += static_cast<double>(merged.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;

  constexpr size_t kDistinct = 50000;
  constexpr size_t kDraws = 2000000;
  constexpr int kRepeats = 3;
  constexpr int kWarmups = 1;
  Pcg32 rng(bench::kBenchSeed, /*stream=*/0x4a5f);
  std::vector<std::string> stream = MakeZipfPathStream(kDistinct, kDraws, rng);

  bench::Banner("Hash microbenchmark: Zipf path stream");
  std::printf(
      "  %zu draws over %zu distinct paths, median of %d runs after "
      "%d warm-up\n\n",
      kDraws, kDistinct, kRepeats, kWarmups);

  // -- Counting (the ComputePopularity access pattern) --
  bench::BenchTiming std_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    std::unordered_map<std::string, double> counts;
    for (const std::string& key : stream) counts[key] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });
  bench::BenchTiming flat_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    FlatHashMap<std::string, double> counts;
    for (const std::string& key : stream) counts[key] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });
  // One-time id assignment (what Trace::EnsureIndexed pays at load)...
  StringInterner interner;
  std::vector<uint32_t> ids;
  bench::BenchTiming intern_build = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    interner.Clear();
    ids.clear();
    ids.reserve(stream.size());
    for (const std::string& key : stream) ids.push_back(interner.Intern(key));
    checksum_sink += static_cast<double>(interner.size());
  });
  // ...then every analysis pass over the trace is id-indexed: no string
  // hashing or comparison at all (the data_access.cc pattern).
  bench::BenchTiming interned_count = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    std::vector<double> counts(interner.size(), 0.0);
    for (uint32_t id : ids) counts[id] += 1.0;
    checksum_sink += static_cast<double>(counts.size());
  });

  // -- Read-only lookup (heterogeneous string_view probe) --
  std::unordered_map<std::string, double> std_table;
  FlatHashMap<std::string, double> flat_table;
  for (const std::string& key : stream) {
    std_table[key] += 1.0;
    flat_table[key] += 1.0;
  }
  bench::BenchTiming std_lookup = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    double hits = 0.0;
    for (const std::string& key : stream) {
      auto it = std_table.find(key);
      if (it != std_table.end()) hits += it->second;
    }
    checksum_sink += hits;
  });
  bench::BenchTiming flat_lookup = bench::MedianOpsPerSec(kDraws, kWarmups, kRepeats, [&] {
    double hits = 0.0;
    for (const std::string& key : stream) {
      auto it = flat_table.find(std::string_view(key));
      if (it != flat_table.end()) hits += it->second;
    }
    checksum_sink += hits;
  });

  auto report = [&](const char* name, const bench::BenchTiming& timing,
                    const bench::BenchTiming& baseline) {
    std::printf("  %-18s %12.0f ops/s   %.2fx vs std\n", name,
                timing.ops_per_sec, timing.ops_per_sec / baseline.ops_per_sec);
    json.Add(name, timing, 1);
  };
  report("count/std", std_count, std_count);
  report("count/flat", flat_count, std_count);
  report("intern/build", intern_build, std_count);
  report("count/interned", interned_count, std_count);
  report("lookup/std", std_lookup, std_lookup);
  report("lookup/flat", flat_lookup, std_lookup);

  // -- SIMD group probe vs portable scalar groups (miss-heavy) --
  bench::Banner("Group probing: SIMD vs portable, miss-heavy integer probes");
  std::printf("  this build's group policy: %s\n\n", FlatHashSimdName());
  constexpr size_t kProbeDistinct = 200000;
  constexpr size_t kProbeDraws = 2000000;
  FlatHashMap<uint64_t, uint64_t> simd_table;
  FlatHashMap<uint64_t, uint64_t, FlatHash, FlatEq,
              flat_internal::GroupPortable>
      portable_table;
  std::vector<uint64_t> inserted_keys(kProbeDistinct);
  for (size_t i = 0; i < kProbeDistinct; ++i) {
    uint64_t key = rng();
    inserted_keys[i] = key;
    simd_table[key] = i;
    portable_table[key] = i;
  }
  // 3 of 4 probes are random 64-bit keys (virtually all miss), 1 of 4 hits.
  std::vector<uint64_t> probes(kProbeDraws);
  for (size_t i = 0; i < kProbeDraws; ++i) {
    probes[i] = i % 4 == 0 ? inserted_keys[rng.NextBounded(kProbeDistinct)]
                           : rng();
  }
  bench::BenchTiming simd_probe =
      bench::MedianOpsPerSec(kProbeDraws, kWarmups, kRepeats, [&] {
        uint64_t hits = 0;
        for (uint64_t key : probes) hits += simd_table.contains(key);
        checksum_sink += static_cast<double>(hits);
      });
  bench::BenchTiming portable_probe =
      bench::MedianOpsPerSec(kProbeDraws, kWarmups, kRepeats, [&] {
        uint64_t hits = 0;
        for (uint64_t key : probes) hits += portable_table.contains(key);
        checksum_sink += static_cast<double>(hits);
      });
  double probe_ratio = simd_probe.ops_per_sec / portable_probe.ops_per_sec;
  std::printf("  %-18s %12.0f ops/s\n", "probe/portable",
              portable_probe.ops_per_sec);
  std::printf("  %-18s %12.0f ops/s   %.2fx vs portable\n", "probe/simd",
              simd_probe.ops_per_sec, probe_ratio);
  json.Add("probe/portable", portable_probe, 1);
  json.Add("probe/simd", simd_probe, 1);

  // -- Concurrent counting vs partition-then-merge (contended Zipf ids) --
  bench::Banner("Concurrent counting: shared table vs partition-then-merge");
  const unsigned cores = std::thread::hardware_concurrency();
  constexpr size_t kIdDistinct = 200000;
  constexpr size_t kIdDraws = 2000000;
  std::vector<uint32_t> id_stream =
      MakeZipfIdStream(kIdDistinct, kIdDraws, rng);
  std::printf(
      "  %zu draws over %zu distinct ids, %u hardware threads detected\n\n",
      kIdDraws, kIdDistinct, cores);
  double shared8 = 0.0;
  double merge8 = 0.0;
  for (int threads : {1, 4, 8}) {
    bench::BenchTiming shared_timing =
        bench::MedianOpsPerSec(kIdDraws, kWarmups, kRepeats, [&] {
          CountShared(id_stream, kIdDistinct, threads);
        });
    bench::BenchTiming merge_timing =
        bench::MedianOpsPerSec(kIdDraws, kWarmups, kRepeats, [&] {
          CountPartitionMerge(id_stream, kIdDistinct, threads);
        });
    char name[64];
    std::snprintf(name, sizeof(name), "concurrent_count/shared/T%d", threads);
    json.Add(name, shared_timing, threads);
    std::printf("  %-26s %12.0f ops/s\n", name, shared_timing.ops_per_sec);
    std::snprintf(name, sizeof(name), "concurrent_count/merge/T%d", threads);
    json.Add(name, merge_timing, threads);
    std::printf("  %-26s %12.0f ops/s   (shared %.2fx)\n", name,
                merge_timing.ops_per_sec,
                shared_timing.ops_per_sec / merge_timing.ops_per_sec);
    if (threads == 8) {
      shared8 = shared_timing.ops_per_sec;
      merge8 = merge_timing.ops_per_sec;
    }
  }

  double best_count =
      std::max(flat_count.ops_per_sec, interned_count.ops_per_sec);
  double speedup = best_count / std_count.ops_per_sec;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", speedup);
  bench::Banner("Speedup summary");
  bench::PaperVsMeasured("count path vs unordered_map<string,...>", ">= 2x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx",
                flat_lookup.ops_per_sec / std_lookup.ops_per_sec);
  bench::PaperVsMeasured("lookup path vs unordered_map<string,...>", "> 1x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", probe_ratio);
  bench::PaperVsMeasured("SIMD group probe vs portable (miss-heavy)",
                         ">= 1.2x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx",
                merge8 > 0.0 ? shared8 / merge8 : 0.0);
  bench::PaperVsMeasured("shared counter vs partition-then-merge @8T",
                         ">= 1.3x", buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // Hard gates: the ISSUE acceptance criteria.
  if (speedup < 2.0) {
    std::printf("\nFAIL: count-path speedup %.2fx below the 2x gate\n",
                speedup);
    return 1;
  }
  if (kFlatHashSimdGroups) {
    if (probe_ratio < 1.2) {
      std::printf("\nFAIL: SIMD probe %.2fx below the 1.2x gate\n",
                  probe_ratio);
      return 1;
    }
  } else {
    std::printf(
        "\nSKIP: SIMD probe gate — this build has no vector group policy "
        "(portable fallback), nothing to compare\n");
  }
  if (cores >= 4) {
    double concurrent_ratio = merge8 > 0.0 ? shared8 / merge8 : 0.0;
    if (concurrent_ratio < 1.3) {
      std::printf(
          "\nFAIL: shared counter %.2fx below the 1.3x gate vs "
          "partition-then-merge at 8 threads\n",
          concurrent_ratio);
      return 1;
    }
  } else {
    std::printf(
        "\nSKIP: concurrent-counter gate needs >= 4 hardware threads "
        "(found %u) — 8-thread timings on this host measure the scheduler, "
        "not the table\n",
        cores);
  }
  std::printf("\n(checksum %.0f)\n", checksum_sink > 0 ? 1.0 : 0.0);
  return 0;
}

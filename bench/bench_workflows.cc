// Workflow-level analysis and replay - the capability the paper calls for
// beyond per-job tracing (sec. 6.1: "for workflow management frameworks
// such as Oozie, it will be beneficial to have UUIDs to identify jobs
// belonging to the same workflow"; sec. 8: better Hive/Pig-level tracing).
//
// Generates a trace of compiled Hive/Pig workflows with W=<id> tags and
// stage dependencies, reconstructs the workflows from the trace, and
// replays them dependency-aware under different schedulers to show how
// per-job scheduling decisions compound across multi-stage queries.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "frameworks/workflow.h"
#include "sim/sweep.h"
#include "stats/descriptive.h"

int main() {
  using namespace swim;
  bench::Banner("Workflow generation and reconstruction");
  frameworks::WorkflowGeneratorOptions options;
  options.workflows = 400;
  options.span_seconds = 2 * kDay;
  options.seed = bench::kBenchSeed;
  auto wt = frameworks::GenerateWorkflowTrace(options);
  SWIM_CHECK_OK(wt.status());

  frameworks::WorkflowReport report =
      frameworks::ReconstructWorkflows(wt->trace);
  std::printf("jobs: %zu across %zu workflows (all tagged: %s)\n",
              wt->trace.size(), report.workflows.size(),
              report.untagged_jobs == 0 ? "yes" : "no");
  std::printf("stages per workflow: mean=%.2f max=%.0f; multi-stage "
              "workflows: %.0f%%\n",
              report.mean_stages, report.max_stages,
              100 * report.multi_stage_fraction);

  // Framework mix across workflows.
  size_t by_framework[trace::kFrameworkCount] = {};
  std::vector<double> spans;
  std::vector<double> data_reduction;
  for (const auto& summary : report.workflows) {
    ++by_framework[static_cast<int>(summary.framework)];
    spans.push_back(summary.span_seconds);
    if (summary.input_bytes > 0) {
      data_reduction.push_back(summary.output_bytes / summary.input_bytes);
    }
  }
  std::printf("workflow frameworks: Hive=%zu Pig=%zu Oozie=%zu Native=%zu\n",
              by_framework[0], by_framework[1], by_framework[2],
              by_framework[3]);
  stats::SortedStats span_stats(std::move(spans));
  std::printf("workflow spans: median=%s p90=%s\n",
              FormatDuration(span_stats.Quantile(0.5)).c_str(),
              FormatDuration(span_stats.Quantile(0.9)).c_str());
  std::printf("end-to-end data reduction (out/in): median=%.3g\n",
              stats::SortedStats(std::move(data_reduction)).Median());

  bench::Banner("Dependency-aware replay: scheduling compounds per stage");
  // Interactive workflows compete with batch background load (a CC-b-shaped
  // stream compressed into the same two days) on a small cluster.
  auto background_spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions bg_options;
  bg_options.seed = bench::kBenchSeed + 1;
  bg_options.job_count_override = 4000;
  bg_options.span_override_seconds = options.span_seconds;
  auto background = workloads::GenerateTrace(*background_spec, bg_options);
  SWIM_CHECK_OK(background.status());
  trace::Trace combined = wt->trace;
  for (auto job : background->jobs()) {
    job.job_id += 1000000;  // keep ids disjoint from workflow jobs
    job.name.clear();       // background jobs carry no workflow tags
    combined.AddJob(std::move(job));
  }
  std::printf("(+%zu background batch jobs on 40 nodes)\n",
              background->size());
  std::printf("  %-9s %18s %18s %14s\n", "policy", "wf latency p50",
              "wf latency p90", "unfinished");
  // The three policy replays of the combined trace run concurrently
  // (sim::RunSweep, results in configuration order).
  sim::ReplayOptions base_options;
  base_options.cluster.nodes = 40;
  base_options.dependencies = wt->dependencies;
  std::vector<sim::SweepConfig> configs =
      sim::SweepGrid(combined, base_options, {"fifo", "fair", "two-tier"},
                     {base_options.cluster.nodes}, {base_options.seed});
  std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
  for (size_t c = 0; c < configs.size(); ++c) {
    const char* policy = configs[c].options.scheduler.c_str();
    SWIM_CHECK_OK(results[c].status());
    const sim::ReplayResult& result = *results[c];
    // Per-workflow end-to-end latency: last finish - first submit.
    std::unordered_map<uint64_t, double> first_submit, last_finish;
    std::unordered_map<uint64_t, double> submit_of;
    for (const auto& job : wt->trace.jobs()) {
      submit_of[job.job_id] = job.submit_time;
    }
    for (const auto& outcome : result.outcomes) {
      auto wf_it = wt->workflow_of.find(outcome.job_id);
      if (wf_it == wt->workflow_of.end()) continue;  // background job
      uint64_t w = wf_it->second;
      double submit = submit_of[outcome.job_id];
      double finish = submit + outcome.latency;
      auto [s_it, s_new] = first_submit.emplace(w, submit);
      if (!s_new) s_it->second = std::min(s_it->second, submit);
      auto [f_it, f_new] = last_finish.emplace(w, finish);
      if (!f_new) f_it->second = std::max(f_it->second, finish);
    }
    std::vector<double> latencies;
    for (const auto& [w, start] : first_submit) {
      latencies.push_back(last_finish[w] - start);
    }
    stats::SortedStats latency_stats(std::move(latencies));
    std::printf("  %-9s %18s %18s %14zu\n", policy,
                FormatDuration(latency_stats.Quantile(0.5)).c_str(),
                FormatDuration(latency_stats.Quantile(0.9)).c_str(),
                result.unfinished_jobs);
  }

  std::printf(
      "\nTakeaway: a multi-stage query pays scheduler queueing once per\n"
      "stage, so head-of-line blocking compounds: FIFO's workflow p90 is\n"
      "an order of magnitude above fair share. Note two-tier does NOT fix\n"
      "it - its quota protects small jobs, while TB-scale workflow stages\n"
      "sit in the capacity tier behind background batch (FIFO within\n"
      "tier). Workflow-aware scheduling is the multi-operator planning\n"
      "translation the paper's section 8 calls for.\n");
  return 0;
}

// Reproduces Figure 9: pairwise correlation between the hourly submission
// series (jobs, bytes, task-seconds). Paper averages: jobs-bytes 0.21,
// jobs-compute 0.14, bytes-compute 0.62 - data size and compute are by far
// the most coupled, so "maximum jobs per second is the wrong metric".
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/temporal.h"

int main() {
  using namespace swim;
  bench::Banner("Figure 9: Correlation between submission time series");
  std::printf("%-9s %12s %12s %12s\n", "Trace", "jobs-bytes", "jobs-tasks",
              "bytes-tasks");
  double sum_jb = 0, sum_jt = 0, sum_bt = 0;
  int n = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/SIZE_MAX);
    core::SeriesCorrelations corr = core::ComputeSeriesCorrelations(t);
    std::printf("%-9s %12.2f %12.2f %12.2f\n", name.c_str(), corr.jobs_bytes,
                corr.jobs_task_seconds, corr.bytes_task_seconds);
    sum_jb += corr.jobs_bytes;
    sum_jt += corr.jobs_task_seconds;
    sum_bt += corr.bytes_task_seconds;
    ++n;
  }
  std::printf("%-9s %12.2f %12.2f %12.2f\n", "Average", sum_jb / n,
              sum_jt / n, sum_bt / n);

  bench::Banner("Paper comparison");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", sum_jb / n);
  bench::PaperVsMeasured("avg jobs-bytes correlation", "0.21", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2f", sum_jt / n);
  bench::PaperVsMeasured("avg jobs-compute correlation", "0.14", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2f", sum_bt / n);
  bench::PaperVsMeasured("avg bytes-compute correlation (strongest)", "0.62",
                         buffer);
  return 0;
}

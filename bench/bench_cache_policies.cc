// Ablation for section 4.2/4.3: cache policy comparison on the generated
// access streams. The paper argues (a) the Zipf skew means any cache that
// captures hot files wins, (b) a size-threshold admission policy decouples
// cache capacity from data growth, and (c) 6-hour temporal locality makes
// LRU-like eviction sensible. We compare LRU / FIFO / LFU / size-threshold
// LRU / unbounded across cache capacities.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "storage/access_stream.h"
#include "storage/cache.h"

int main() {
  using namespace swim;
  bench::Banner("Cache policy ablation (sec. 4 claims)");
  for (const auto& name : {"CC-c", "CC-d", "CC-e", "FB-2010"}) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/40000);
    auto accesses = storage::ExtractAccesses(t);
    double total_read_bytes = 0.0;
    for (const auto& a : accesses) {
      if (a.kind == storage::AccessKind::kRead) total_read_bytes += a.bytes;
    }
    storage::UnboundedCache unbounded;
    storage::ReplayAccesses(accesses, unbounded);
    std::printf("%s: %zu accesses, %s read; intrinsic hit rate %.0f%%\n",
                name, accesses.size(), FormatBytes(total_read_bytes).c_str(),
                100 * unbounded.stats().HitRate());
    std::printf("  %-26s %10s %10s %10s %12s\n", "policy", "capacity",
                "hit rate", "byte hits", "evictions");
    for (double capacity : {1 * kTB, 10 * kTB, 100 * kTB}) {
      std::vector<std::unique_ptr<storage::FileCache>> caches;
      caches.push_back(std::make_unique<storage::LruCache>(capacity));
      caches.push_back(std::make_unique<storage::FifoCache>(capacity));
      caches.push_back(std::make_unique<storage::LfuCache>(capacity));
      caches.push_back(std::make_unique<storage::SizeThresholdLruCache>(
          capacity, /*max_file_bytes=*/10 * kGB));
      for (auto& cache : caches) {
        storage::ReplayAccesses(accesses, *cache);
        std::printf("  %-26s %10s %9.0f%% %9.0f%% %12llu\n",
                    cache->name().c_str(), FormatBytes(capacity).c_str(),
                    100 * cache->stats().HitRate(),
                    100 * cache->stats().ByteHitRate(),
                    static_cast<unsigned long long>(
                        cache->stats().evictions));
      }
    }
  }

  bench::Banner("Takeaways vs paper");
  std::printf(
      "- LRU-family policies approach the intrinsic (unbounded) hit rate\n"
      "  with a small fraction of stored bytes: Zipf + temporal locality\n"
      "  make caching effective (sec. 4.2).\n"
      "- SizeThresholdLRU keeps most of LRU's hit rate at low capacity\n"
      "  while never admitting capacity-busting files - the paper's\n"
      "  proposed policy for decoupling cache growth from data growth.\n"
      "- FIFO trails LRU: eviction should respect recency (sec. 4.3).\n");
  return 0;
}

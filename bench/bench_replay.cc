// Replay engine benchmark: the calendar-queue core (sim/replay.cc) against
// the retired std::priority_queue engine (sim/replay_legacy.cc), plus the
// parallel sweep driver's thread scaling.
//
// Single-replay scenario: a 1M-task day-long synthetic trace shaped like
// the paper's FB workloads after task-cap merging - tens of thousands of
// jobs, tens of tasks each, long waves, so ~1200 jobs are in flight at
// once. This is exactly the regime the rebuild targets: the legacy engine
// rescans every active job on each grant round (O(active) per event, even
// with nothing runnable) and pays a log-depth heap sift per batch, where
// the new engine's incremental runnable lists and calendar queue make both
// O(1). Both engines replay the same trace; their ReplayResults are
// required to match exactly (latencies to the last bit) before timing
// counts - disagreement is a correctness bug, not a perf result.
//
// Sweep scenario (ISSUE 6): a 10k-configuration what-if grid - policy x
// nodes x failure-model x seed - on a small trace, three ways:
//   sweep/baseline   one ReplayTrace per cell (trace -> jobs conversion
//                    and heap allocation paid 10k times - the pre-rebuild
//                    sweep inner loop)
//   sweep/serial     RunSweep at 1 lane: one shared ReplayTemplate,
//                    arena-backed runs
//   sweep/parallel8  RunSweep at 8 lanes
// All 10k cells must be byte-identical between 1 and 8 lanes and against
// the per-cell baseline; a deterministic subsample is additionally
// replayed through the legacy priority_queue engine and must match
// bit-for-bit.
//
// --json <path> emits {name, jobs_per_sec, threads, median_seconds,
// repeats, warmups} rows (jobs or configs per second). Hard gates:
// calendar engine >= 4x legacy on the 1M-task replay (ISSUE 5), template
// sweep >= 1.15x the per-cell baseline (hardware-independent), and
// sweep/parallel8 >= 3x sweep/serial - the latter only enforced when the
// host has >= 4 cores (CI runners do; a 1-core dev box cannot scale by
// fiat and reports SKIPPED instead).
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/replay.h"
#include "sim/sweep.h"
#include "trace/trace.h"

namespace {

/// Day-long trace of `jobs` map-reduce jobs with ~`tasks_per_job` tasks
/// each: multi-hour map waves so in-flight jobs pile up, jittered submits
/// and durations so event times spread realistically.
swim::trace::Trace SyntheticTrace(size_t jobs, int64_t maps, int64_t reduces,
                                  uint64_t seed) {
  swim::trace::Trace t;
  swim::Pcg32 rng(seed, /*stream=*/0xbe7c);
  const double span = 24.0 * 3600.0;
  for (size_t i = 0; i < jobs; ++i) {
    swim::trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = span * static_cast<double>(i) /
                          static_cast<double>(jobs) +
                      rng.NextDouble(0.0, 1.0);
    job.map_tasks = maps;
    job.map_task_seconds =
        static_cast<double>(maps) * rng.NextDouble(3000.0, 4200.0);
    job.reduce_tasks = reduces;
    job.reduce_task_seconds =
        static_cast<double>(reduces) * rng.NextDouble(400.0, 800.0);
    job.input_bytes = rng.NextDouble(1e6, 1e9);
    job.duration = job.map_task_seconds / static_cast<double>(maps) +
                   (reduces > 0 ? job.reduce_task_seconds /
                                      static_cast<double>(reduces)
                                : 0.0);
    t.AddJob(std::move(job));
  }
  return t;
}

bool SameResult(const swim::sim::ReplayResult& a,
                const swim::sim::ReplayResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].job_id != b.outcomes[i].job_id ||
        a.outcomes[i].latency != b.outcomes[i].latency ||
        a.outcomes[i].retries != b.outcomes[i].retries) {
      return false;
    }
  }
  if (a.makespan != b.makespan || a.utilization != b.utilization ||
      a.hourly_occupancy != b.hourly_occupancy ||
      a.unfinished_jobs != b.unfinished_jobs ||
      a.failures.task_failures != b.failures.task_failures ||
      a.failures.retries != b.failures.retries ||
      a.failures.failed_task_seconds != b.failures.failed_task_seconds) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;

  // -- 1M-task single replay: calendar engine vs retired engine --
  constexpr size_t kJobs = 25000;
  constexpr int64_t kMaps = 32;
  constexpr int64_t kReduces = 8;
  bench::Banner("Replay engine: calendar queue vs priority_queue");
  trace::Trace big = SyntheticTrace(kJobs, kMaps, kReduces, bench::kBenchSeed);
  sim::ReplayOptions options;
  options.cluster.nodes = 5000;  // free slots stay available: every event
                                 // reaches the legacy engine's grant scan
  options.scheduler = "fair";
  options.straggler_probability = 0.05;  // splits completion batches
  std::printf("  %zu jobs, %lld tasks, fair scheduler, %d nodes\n", kJobs,
              static_cast<long long>(kJobs * (kMaps + kReduces)),
              options.cluster.nodes);

  auto legacy_result = sim::ReplayTraceLegacy(big, options);
  SWIM_CHECK_OK(legacy_result.status());
  auto calendar_result = sim::ReplayTrace(big, options);
  SWIM_CHECK_OK(calendar_result.status());
  if (!SameResult(*legacy_result, *calendar_result)) {
    std::printf("\nFAIL: engines disagree on the 1M-task trace\n");
    return 1;
  }
  std::printf("  engines agree bit-for-bit (%zu outcomes, makespan %s)\n",
              calendar_result->outcomes.size(),
              FormatDuration(calendar_result->makespan).c_str());

  bench::BenchTiming legacy = bench::MedianOpsPerSec(kJobs, 0, 3, [&] {
    auto r = sim::ReplayTraceLegacy(big, options);
    SWIM_CHECK_OK(r.status());
  });
  bench::BenchTiming calendar = bench::MedianOpsPerSec(kJobs, 1, 3, [&] {
    auto r = sim::ReplayTrace(big, options);
    SWIM_CHECK_OK(r.status());
  });
  double speedup = calendar.ops_per_sec / legacy.ops_per_sec;
  std::printf("  %-18s %12.0f jobs/s   (median %.3fs)\n", "replay/legacy",
              legacy.ops_per_sec, legacy.median_seconds);
  std::printf("  %-18s %12.0f jobs/s   (median %.3fs)   %.1fx\n",
              "replay/calendar", calendar.ops_per_sec,
              calendar.median_seconds, speedup);
  json.Add("replay/legacy", legacy, 1);
  json.Add("replay/calendar", calendar, 1);

  // -- 10k-configuration what-if sweep: baseline vs template vs lanes --
  bench::Banner("Sweep driver: 10k-configuration what-if grid");
  trace::Trace small = SyntheticTrace(250, 10, 3, bench::kBenchSeed + 1);
  std::vector<sim::SweepConfig> grid;
  {
    // policy(3) x nodes(2) x failure-model(2) x seeds(834) = 10008 cells.
    std::vector<uint64_t> seeds(834);
    for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = i + 1;
    for (const char* policy : {"fifo", "fair", "two-tier"}) {
      for (int nodes : {40, 80}) {
        for (int failures = 0; failures < 2; ++failures) {
          for (uint64_t seed : seeds) {
            sim::SweepConfig config;
            config.trace = &small;
            config.options.scheduler = policy;
            config.options.cluster.nodes = nodes;
            config.options.seed = seed;
            config.options.straggler_probability = 0.05;
            if (failures != 0) {
              config.options.failures.task_failure_probability = 0.02;
              config.options.failures.node_loss_per_hour = 0.2;
            }
            config.label = std::string(policy) + "/n" +
                           std::to_string(nodes) +
                           (failures != 0 ? "/fail" : "/ok") + "/s" +
                           std::to_string(seed);
            grid.push_back(std::move(config));
          }
        }
      }
    }
  }
  std::printf(
      "  %zu configurations (policy x nodes x failures x seed), "
      "%zu-job trace\n",
      grid.size(), small.jobs().size());

  // Pre-rebuild sweep inner loop: every cell pays its own trace -> jobs
  // conversion and allocates on the heap.
  std::vector<StatusOr<sim::ReplayResult>> baseline_results;
  bench::BenchTiming baseline =
      bench::MedianOpsPerSec(grid.size(), 0, 3, [&] {
        baseline_results.clear();
        baseline_results.reserve(grid.size());
        for (const sim::SweepConfig& config : grid) {
          baseline_results.push_back(
              sim::ReplayTrace(*config.trace, config.options));
        }
      });
  std::vector<StatusOr<sim::ReplayResult>> serial_results;
  bench::BenchTiming serial =
      bench::MedianOpsPerSec(grid.size(), 0, 3, [&] {
        serial_results = sim::RunSweep(grid, /*max_parallelism=*/1);
      });
  std::vector<StatusOr<sim::ReplayResult>> parallel_results;
  bench::BenchTiming parallel =
      bench::MedianOpsPerSec(grid.size(), 0, 3, [&] {
        parallel_results = sim::RunSweep(grid, /*max_parallelism=*/8);
      });

  // Correctness before timing counts: all 10k cells byte-identical
  // between 1 and 8 lanes and against per-cell ReplayTrace, plus a
  // deterministic subsample through the legacy engine oracle.
  size_t legacy_checked = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    SWIM_CHECK_OK(baseline_results[i].status());
    SWIM_CHECK_OK(serial_results[i].status());
    SWIM_CHECK_OK(parallel_results[i].status());
    if (!SameResult(*serial_results[i], *parallel_results[i])) {
      std::printf("\nFAIL: sweep cell %s differs between 1 and 8 lanes\n",
                  grid[i].label.c_str());
      return 1;
    }
    if (!SameResult(*serial_results[i], *baseline_results[i])) {
      std::printf("\nFAIL: sweep cell %s differs from per-cell replay\n",
                  grid[i].label.c_str());
      return 1;
    }
    if (i % 97 == 0) {  // ~100 cells spread across every grid axis
      auto oracle = sim::ReplayTraceLegacy(*grid[i].trace, grid[i].options);
      SWIM_CHECK_OK(oracle.status());
      if (!SameResult(*serial_results[i], *oracle)) {
        std::printf("\nFAIL: sweep cell %s differs from legacy oracle\n",
                    grid[i].label.c_str());
        return 1;
      }
      ++legacy_checked;
    }
  }
  double template_speedup = serial.ops_per_sec / baseline.ops_per_sec;
  double scaling = parallel.ops_per_sec / serial.ops_per_sec;
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("  %-18s %12.0f configs/s (median %.3fs)\n", "sweep/baseline",
              baseline.ops_per_sec, baseline.median_seconds);
  std::printf(
      "  %-18s %12.0f configs/s (median %.3fs)   %.2fx vs baseline\n",
      "sweep/serial", serial.ops_per_sec, serial.median_seconds,
      template_speedup);
  std::printf(
      "  %-18s %12.0f configs/s (median %.3fs)   %.2fx at 8 lanes "
      "(%u cores)\n",
      "sweep/parallel8", parallel.ops_per_sec, parallel.median_seconds,
      scaling, cores);
  std::printf(
      "  all %zu cells bit-identical: 1 lane == 8 lanes == per-cell "
      "replay; %zu cells == legacy oracle\n",
      grid.size(), legacy_checked);
  json.Add("sweep/baseline", baseline, 1);
  json.Add("sweep/serial", serial, 1);
  json.Add("sweep/parallel8", parallel, 8);

  bench::Banner("Speedup summary");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1fx", speedup);
  bench::PaperVsMeasured("calendar engine vs priority_queue (1M tasks)",
                         ">= 4x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", template_speedup);
  bench::PaperVsMeasured("template+arena sweep vs per-cell replay (10k)",
                         ">= 1.15x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", scaling);
  bench::PaperVsMeasured("sweep at 8 worker lanes vs 1 (10k configs)",
                         ">= 3x (4+ cores)", buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // Hard gates. The first two are engine-vs-engine in one binary, so
  // hardware-independent; the lane-scaling gate needs real cores and is
  // skipped (loudly) on boxes that cannot physically scale.
  if (speedup < 4.0) {
    std::printf("\nFAIL: replay speedup %.1fx below the 4x gate\n", speedup);
    return 1;
  }
  if (template_speedup < 1.15) {
    std::printf(
        "\nFAIL: template sweep %.2fx below the 1.15x-vs-baseline gate\n",
        template_speedup);
    return 1;
  }
  if (cores >= 4) {
    if (scaling < 3.0) {
      std::printf(
          "\nFAIL: sweep scaling %.2fx at 8 lanes below the 3x gate "
          "(%u cores)\n",
          scaling, cores);
      return 1;
    }
  } else {
    std::printf(
        "\nSKIPPED: 3x lane-scaling gate needs >= 4 cores, host has %u\n",
        cores);
  }
  return 0;
}

// Replay engine benchmark: the calendar-queue core (sim/replay.cc) against
// the retired std::priority_queue engine (sim/replay_legacy.cc), plus the
// parallel sweep driver's thread scaling.
//
// Single-replay scenario: a 1M-task day-long synthetic trace shaped like
// the paper's FB workloads after task-cap merging - tens of thousands of
// jobs, tens of tasks each, long waves, so ~1200 jobs are in flight at
// once. This is exactly the regime the rebuild targets: the legacy engine
// rescans every active job on each grant round (O(active) per event, even
// with nothing runnable) and pays a log-depth heap sift per batch, where
// the new engine's incremental runnable lists and calendar queue make both
// O(1). Both engines replay the same trace; their ReplayResults are
// required to match exactly (latencies to the last bit) before timing
// counts - disagreement is a correctness bug, not a perf result.
//
// Sweep scenario: a policy x nodes x seeds grid on a smaller trace through
// sim::RunSweep at 1 worker lane and at 8, verifying bit-identical results
// and recording the scaling (informational: CI runners may have few
// cores, so only the single-replay speedup is gated).
//
// --json <path> emits {name, jobs_per_sec, threads, median_seconds,
// repeats, warmups} rows (jobs replayed per second). Hard gate (ISSUE 5
// acceptance criterion): calendar engine >= 4x legacy on the 1M-task
// replay.
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/replay.h"
#include "sim/sweep.h"
#include "trace/trace.h"

namespace {

/// Day-long trace of `jobs` map-reduce jobs with ~`tasks_per_job` tasks
/// each: multi-hour map waves so in-flight jobs pile up, jittered submits
/// and durations so event times spread realistically.
swim::trace::Trace SyntheticTrace(size_t jobs, int64_t maps, int64_t reduces,
                                  uint64_t seed) {
  swim::trace::Trace t;
  swim::Pcg32 rng(seed, /*stream=*/0xbe7c);
  const double span = 24.0 * 3600.0;
  for (size_t i = 0; i < jobs; ++i) {
    swim::trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = span * static_cast<double>(i) /
                          static_cast<double>(jobs) +
                      rng.NextDouble(0.0, 1.0);
    job.map_tasks = maps;
    job.map_task_seconds =
        static_cast<double>(maps) * rng.NextDouble(3000.0, 4200.0);
    job.reduce_tasks = reduces;
    job.reduce_task_seconds =
        static_cast<double>(reduces) * rng.NextDouble(400.0, 800.0);
    job.input_bytes = rng.NextDouble(1e6, 1e9);
    job.duration = job.map_task_seconds / static_cast<double>(maps) +
                   (reduces > 0 ? job.reduce_task_seconds /
                                      static_cast<double>(reduces)
                                : 0.0);
    t.AddJob(std::move(job));
  }
  return t;
}

bool SameResult(const swim::sim::ReplayResult& a,
                const swim::sim::ReplayResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].job_id != b.outcomes[i].job_id ||
        a.outcomes[i].latency != b.outcomes[i].latency ||
        a.outcomes[i].retries != b.outcomes[i].retries) {
      return false;
    }
  }
  if (a.makespan != b.makespan || a.utilization != b.utilization ||
      a.hourly_occupancy != b.hourly_occupancy ||
      a.unfinished_jobs != b.unfinished_jobs ||
      a.failures.task_failures != b.failures.task_failures ||
      a.failures.retries != b.failures.retries ||
      a.failures.failed_task_seconds != b.failures.failed_task_seconds) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;

  // -- 1M-task single replay: calendar engine vs retired engine --
  constexpr size_t kJobs = 25000;
  constexpr int64_t kMaps = 32;
  constexpr int64_t kReduces = 8;
  bench::Banner("Replay engine: calendar queue vs priority_queue");
  trace::Trace big = SyntheticTrace(kJobs, kMaps, kReduces, bench::kBenchSeed);
  sim::ReplayOptions options;
  options.cluster.nodes = 5000;  // free slots stay available: every event
                                 // reaches the legacy engine's grant scan
  options.scheduler = "fair";
  options.straggler_probability = 0.05;  // splits completion batches
  std::printf("  %zu jobs, %lld tasks, fair scheduler, %d nodes\n", kJobs,
              static_cast<long long>(kJobs * (kMaps + kReduces)),
              options.cluster.nodes);

  auto legacy_result = sim::ReplayTraceLegacy(big, options);
  SWIM_CHECK_OK(legacy_result.status());
  auto calendar_result = sim::ReplayTrace(big, options);
  SWIM_CHECK_OK(calendar_result.status());
  if (!SameResult(*legacy_result, *calendar_result)) {
    std::printf("\nFAIL: engines disagree on the 1M-task trace\n");
    return 1;
  }
  std::printf("  engines agree bit-for-bit (%zu outcomes, makespan %s)\n",
              calendar_result->outcomes.size(),
              FormatDuration(calendar_result->makespan).c_str());

  bench::BenchTiming legacy = bench::MedianOpsPerSec(kJobs, 0, 3, [&] {
    auto r = sim::ReplayTraceLegacy(big, options);
    SWIM_CHECK_OK(r.status());
  });
  bench::BenchTiming calendar = bench::MedianOpsPerSec(kJobs, 1, 3, [&] {
    auto r = sim::ReplayTrace(big, options);
    SWIM_CHECK_OK(r.status());
  });
  double speedup = calendar.ops_per_sec / legacy.ops_per_sec;
  std::printf("  %-18s %12.0f jobs/s   (median %.3fs)\n", "replay/legacy",
              legacy.ops_per_sec, legacy.median_seconds);
  std::printf("  %-18s %12.0f jobs/s   (median %.3fs)   %.1fx\n",
              "replay/calendar", calendar.ops_per_sec,
              calendar.median_seconds, speedup);
  json.Add("replay/legacy", legacy, 1);
  json.Add("replay/calendar", calendar, 1);

  // -- Sweep scaling: policy x nodes x seeds grid, 1 lane vs 8 --
  bench::Banner("Sweep driver: thread scaling");
  trace::Trace small =
      SyntheticTrace(5000, kMaps, kReduces, bench::kBenchSeed + 1);
  sim::ReplayOptions sweep_base;
  sweep_base.scheduler = "fair";
  sweep_base.straggler_probability = 0.05;
  sweep_base.failures.task_failure_probability = 0.01;
  std::vector<sim::SweepConfig> grid =
      sim::SweepGrid(small, sweep_base, {"fifo", "fair", "two-tier"},
                     {1000, 2000}, {19, 20});
  std::printf("  %zu configurations (policy x nodes x seed), 5000 jobs\n",
              grid.size());
  std::vector<StatusOr<sim::ReplayResult>> serial_results;
  bench::BenchTiming serial =
      bench::MedianOpsPerSec(grid.size(), 0, 3, [&] {
        serial_results = sim::RunSweep(grid, /*max_parallelism=*/1);
      });
  std::vector<StatusOr<sim::ReplayResult>> parallel_results;
  bench::BenchTiming parallel =
      bench::MedianOpsPerSec(grid.size(), 0, 3, [&] {
        parallel_results = sim::RunSweep(grid, /*max_parallelism=*/8);
      });
  for (size_t i = 0; i < grid.size(); ++i) {
    SWIM_CHECK_OK(serial_results[i].status());
    SWIM_CHECK_OK(parallel_results[i].status());
    if (!SameResult(*serial_results[i], *parallel_results[i])) {
      std::printf("\nFAIL: sweep cell %s differs between 1 and 8 lanes\n",
                  grid[i].label.c_str());
      return 1;
    }
  }
  double scaling = parallel.ops_per_sec / serial.ops_per_sec;
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("  %-18s %12.2f replays/s (median %.3fs)\n", "sweep/serial",
              serial.ops_per_sec, serial.median_seconds);
  std::printf(
      "  %-18s %12.2f replays/s (median %.3fs)   %.2fx at 8 lanes "
      "(%u cores)\n",
      "sweep/parallel8", parallel.ops_per_sec, parallel.median_seconds,
      scaling, cores);
  std::printf("  results bit-identical across lane counts\n");
  if (cores < 2) {
    std::printf(
        "  note: single-core host - scaling measures pool overhead only\n");
  }
  json.Add("sweep/serial", serial, 1);
  json.Add("sweep/parallel8", parallel, 8);

  bench::Banner("Speedup summary");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1fx", speedup);
  bench::PaperVsMeasured("calendar engine vs priority_queue (1M tasks)",
                         ">= 4x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", scaling);
  bench::PaperVsMeasured("sweep at 8 worker lanes vs 1 (12 replays)",
                         "near-linear", buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // Hard gate: the ISSUE acceptance criterion. Engine-vs-engine in one
  // binary, so the gate is hardware-independent.
  if (speedup < 4.0) {
    std::printf("\nFAIL: replay speedup %.1fx below the 4x gate\n", speedup);
    return 1;
  }
  return 0;
}

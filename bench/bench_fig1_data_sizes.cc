// Reproduces Figure 1: per-job input / shuffle / output size distributions
// for each workload. Prints each CDF at fixed percentiles plus the paper's
// headline checks (median spreads across workloads; most jobs MB-GB).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/data_access.h"

namespace {

void PrintCdf(const char* label, const swim::stats::EmpiricalCdf& cdf) {
  std::printf("  %-8s", label);
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    std::printf(" p%02.0f=%-10s", p * 100,
                swim::FormatBytes(cdf.Quantile(p)).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 1: Per-job data sizes (input / shuffle / output)");

  double min_median_input = 1e30, max_median_input = 0;
  double min_median_shuffle = 1e30, max_median_shuffle = 0;
  double min_median_output = 1e30, max_median_output = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::DataSizeCdfs cdfs = core::ComputeDataSizeCdfs(t);
    std::printf("%s:\n", name.c_str());
    PrintCdf("input", cdfs.input);
    PrintCdf("shuffle", cdfs.shuffle);
    PrintCdf("output", cdfs.output);
    auto track = [](double value, double& lo, double& hi) {
      if (value <= 0) return;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    };
    track(cdfs.input.median(), min_median_input, max_median_input);
    track(cdfs.shuffle.median(), min_median_shuffle, max_median_shuffle);
    track(cdfs.output.median(), min_median_output, max_median_output);
  }

  bench::Banner("Paper comparison");
  auto orders = [](double lo, double hi) {
    return lo > 0 ? std::log10(hi / lo) : 0.0;
  };
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f orders (%s..%s)",
                orders(min_median_input, max_median_input),
                FormatBytes(min_median_input).c_str(),
                FormatBytes(max_median_input).c_str());
  bench::PaperVsMeasured("median input spread across workloads", "6 orders",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.1f orders",
                orders(min_median_shuffle, max_median_shuffle));
  bench::PaperVsMeasured("median shuffle spread (non-zero medians)",
                         "8 orders", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.1f orders (%s..%s)",
                orders(min_median_output, max_median_output),
                FormatBytes(min_median_output).c_str(),
                FormatBytes(max_median_output).c_str());
  bench::PaperVsMeasured("median output spread across workloads", "4 orders",
                         buffer);
  return 0;
}

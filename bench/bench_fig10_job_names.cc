// Reproduces Figure 10: the first word of job names per workload, weighted
// by job count, total I/O bytes, and task-time; plus the framework
// (Hive / Pig / Oozie / native) attribution. Paper highlights: 44% of
// FB-2009 jobs begin with "ad" and 12% with "insert"; jobs named "from"
// carry 27% of FB-2009's I/O and 34% of its task-time; two frameworks
// dominate every workload; FB-2010 has no job names.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/compute.h"

namespace {

void PrintTop(const char* weighting, const swim::core::JobNameReport& report,
              double swim::core::NameShare::*member) {
  std::printf("  by %-10s", weighting);
  std::vector<swim::core::NameShare> words = report.words;
  std::sort(words.begin(), words.end(),
            [member](const auto& a, const auto& b) {
              return a.*member > b.*member;
            });
  size_t shown = 0;
  for (const auto& w : words) {
    if (shown++ >= 6) break;
    std::printf(" %s=%.0f%%", w.word.c_str(), 100 * (w.*member));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 10: First words of job names, three weightings");
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::JobNameReport report = core::AnalyzeJobNames(t);
    std::printf("%s:\n", name.c_str());
    if (report.named_jobs == 0) {
      std::printf("  (no job names - matches the paper: the FB-2010 trace "
                  "lacks them)\n");
      continue;
    }
    PrintTop("jobs", report, &core::NameShare::by_jobs);
    PrintTop("bytes", report, &core::NameShare::by_bytes);
    PrintTop("task-time", report, &core::NameShare::by_task_seconds);
    std::printf("  frameworks (by jobs): Hive=%.0f%% Pig=%.0f%% "
                "Oozie=%.0f%% Native=%.0f%%  top-two=%.0f%%\n",
                100 * report.framework_by_jobs[0],
                100 * report.framework_by_jobs[1],
                100 * report.framework_by_jobs[2],
                100 * report.framework_by_jobs[3],
                100 * report.TopTwoFrameworkJobShare());
  }

  bench::Banner("Paper comparison");
  trace::Trace fb = bench::BenchTrace("FB-2009");
  core::JobNameReport fb_report = core::AnalyzeJobNames(fb);
  double ad = 0, insert = 0, from_bytes = 0, from_tasks = 0;
  for (const auto& w : fb_report.words) {
    if (w.word == "ad") ad = w.by_jobs;
    if (w.word == "insert") insert = w.by_jobs;
    if (w.word == "from") {
      from_bytes = w.by_bytes;
      from_tasks = w.by_task_seconds;
    }
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f%%", 100 * ad);
  bench::PaperVsMeasured("FB-2009 jobs starting with \"ad\"", "44%", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.0f%%", 100 * insert);
  bench::PaperVsMeasured("FB-2009 jobs starting with \"insert\"", "12%",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.0f%%", 100 * from_bytes);
  bench::PaperVsMeasured("FB-2009 I/O from \"from\" jobs", "27%", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.0f%%", 100 * from_tasks);
  bench::PaperVsMeasured("FB-2009 task-time from \"from\" jobs", "34%",
                         buffer);
  return 0;
}

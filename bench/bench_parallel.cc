// Serial-vs-parallel throughput for the three parallelized hot paths:
// the full AnalyzeWorkload stage pipeline, CSV trace ingest, and k-means.
// Also asserts the determinism contract (identical output at any thread
// count) end to end on the bench-scale FB-2010 trace; exits non-zero on
// any mismatch so perf CI doubles as a correctness gate.
//
// Usage: bench_parallel [--json <path>]

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/analysis/workload_report.h"
#include "stats/kmeans.h"
#include "trace/trace_io.h"

namespace swim::bench {
namespace {

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Report(const char* name, size_t items, double serial_sec,
            double parallel_sec, int threads, BenchJsonWriter* json) {
  const double serial_rate = static_cast<double>(items) / serial_sec;
  const double parallel_rate = static_cast<double>(items) / parallel_sec;
  std::printf(
      "  %-10s serial: %10.0f jobs/sec   %d threads: %10.0f jobs/sec   "
      "speedup: %.2fx\n",
      name, serial_rate, threads, parallel_rate, serial_sec / parallel_sec);
  json->Add(std::string(name) + "_serial", serial_rate, 1);
  json->Add(std::string(name) + "_parallel", parallel_rate, threads);
}

int Run(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJsonWriter json;
  const int threads = DefaultParallelism();
  bool deterministic = true;

  Banner("parallel layer: serial vs " + std::to_string(threads) +
         " worker lanes (FB-2010 @ " + std::to_string(kJobCap) + " jobs)");
  trace::Trace trace = BenchTrace("FB-2010");

  // --- AnalyzeWorkload: the full stage fan-out + k-means pipeline -------
  core::AnalysisOptions serial_opts;
  serial_opts.threads = 1;
  core::AnalysisOptions parallel_opts;
  parallel_opts.threads = threads;
  StatusOr<core::WorkloadReport> serial_report = InvalidArgumentError("pending");
  StatusOr<core::WorkloadReport> parallel_report = InvalidArgumentError("pending");
  double analyze_serial =
      TimeSeconds([&]() { serial_report = AnalyzeWorkload(trace, serial_opts); });
  double analyze_parallel = TimeSeconds(
      [&]() { parallel_report = AnalyzeWorkload(trace, parallel_opts); });
  SWIM_CHECK_OK(serial_report.status());
  SWIM_CHECK_OK(parallel_report.status());
  if (FormatReport(*serial_report) != FormatReport(*parallel_report)) {
    std::printf("  !! analyze: serial and parallel reports DIFFER\n");
    deterministic = false;
  }
  Report("analyze", trace.size(), analyze_serial, analyze_parallel, threads,
         &json);

  // --- CSV ingest: sharded parse + zero-copy field splitting ------------
  const std::string csv = trace::TraceToCsv(trace);
  StatusOr<trace::Trace> serial_parsed = InvalidArgumentError("pending");
  StatusOr<trace::Trace> parallel_parsed = InvalidArgumentError("pending");
  double ingest_serial =
      TimeSeconds([&]() { serial_parsed = trace::TraceFromCsv(csv, 1); });
  double ingest_parallel =
      TimeSeconds([&]() { parallel_parsed = trace::TraceFromCsv(csv, threads); });
  SWIM_CHECK_OK(serial_parsed.status());
  SWIM_CHECK_OK(parallel_parsed.status());
  if (serial_parsed->jobs() != parallel_parsed->jobs()) {
    std::printf("  !! ingest: serial and parallel parses DIFFER\n");
    deterministic = false;
  }
  Report("ingest", trace.size(), ingest_serial, ingest_parallel, threads,
         &json);

  // --- k-means: parallel assignment + concurrent restarts ---------------
  Pcg32 rng(kBenchSeed);
  std::vector<std::vector<double>> points;
  points.reserve(60000);
  for (size_t i = 0; i < 60000; ++i) {
    points.push_back({rng.NextGaussian(), rng.NextGaussian(),
                      rng.NextGaussian(), rng.NextGaussian(),
                      rng.NextGaussian(), rng.NextGaussian()});
  }
  stats::KMeansOptions km_serial;
  km_serial.seed = kBenchSeed;
  km_serial.restarts = 4;
  km_serial.threads = 1;
  stats::KMeansOptions km_parallel = km_serial;
  km_parallel.threads = threads;
  StatusOr<stats::KMeansResult> serial_fit = InvalidArgumentError("pending");
  StatusOr<stats::KMeansResult> parallel_fit = InvalidArgumentError("pending");
  double kmeans_serial =
      TimeSeconds([&]() { serial_fit = stats::KMeansFit(points, 8, km_serial); });
  double kmeans_parallel = TimeSeconds(
      [&]() { parallel_fit = stats::KMeansFit(points, 8, km_parallel); });
  SWIM_CHECK_OK(serial_fit.status());
  SWIM_CHECK_OK(parallel_fit.status());
  if (serial_fit->centroids != parallel_fit->centroids ||
      serial_fit->assignments != parallel_fit->assignments ||
      serial_fit->residual_variance != parallel_fit->residual_variance) {
    std::printf("  !! kmeans: serial and parallel fits DIFFER\n");
    deterministic = false;
  }
  Report("kmeans", points.size(), kmeans_serial, kmeans_parallel, threads,
         &json);

  std::printf("  determinism (1 vs %d threads): %s\n", threads,
              deterministic ? "PASS" : "FAIL");
  if (!json.WriteTo(json_path)) {
    std::printf("  !! cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!json_path.empty()) std::printf("  wrote %s\n", json_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace swim::bench

int main(int argc, char** argv) { return swim::bench::Run(argc, argv); }

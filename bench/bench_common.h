#ifndef SWIM_BENCH_BENCH_COMMON_H_
#define SWIM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "trace/trace.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::bench {

/// Every figure/table bench uses the same seed so outputs are reproducible
/// run to run.
inline constexpr uint64_t kBenchSeed = 2012;  // the paper's year

/// Facebook traces hold > 1M jobs; benches generate them scaled down to
/// this cap (per-job statistics are unchanged; count-based statistics are
/// reported per scaled trace).
inline constexpr size_t kJobCap = 100000;

/// Generates the named paper workload at bench scale.
inline trace::Trace BenchTrace(const std::string& name,
                               size_t job_cap = kJobCap) {
  auto spec = workloads::PaperWorkloadByName(name);
  SWIM_CHECK_OK(spec.status());
  workloads::GeneratorOptions options;
  options.seed = kBenchSeed;
  if (spec->total_jobs > job_cap) {
    options.job_count_override = job_cap;
  }
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  return *std::move(trace);
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// One timed measurement: `warmups` untimed runs to populate caches / JIT
/// the branch predictors / fault in pages, then `repeats` timed runs with
/// the median reported. The CI bench-smoke gates compare these numbers
/// against hard thresholds, so single-shot timing (one cold run deciding
/// pass/fail) is not acceptable; the median is robust against one run
/// absorbing a scheduling hiccup on shared runners, where a min would
/// hide systematic noise and a mean would amplify it.
struct BenchTiming {
  double ops_per_sec = 0.0;
  double median_seconds = 0.0;
  int repeats = 1;
  int warmups = 0;
};

/// Runs `body` `warmups` untimed + `repeats` timed times; returns the
/// median-based throughput (ops / median seconds).
template <typename Body>
BenchTiming MedianOpsPerSec(size_t ops, int warmups, int repeats,
                            Body&& body) {
  using Clock = std::chrono::steady_clock;
  for (int w = 0; w < warmups; ++w) body();
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    auto start = Clock::now();
    body();
    seconds.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  std::sort(seconds.begin(), seconds.end());
  // Lower median for even repeat counts: deterministic, slightly
  // conservative-optimistic is fine since every row uses the same rule.
  double median = seconds[(seconds.size() - 1) / 2];
  BenchTiming timing;
  timing.median_seconds = median;
  timing.ops_per_sec = static_cast<double>(ops) / std::max(median, 1e-12);
  timing.repeats = repeats;
  timing.warmups = warmups;
  return timing;
}

/// One machine-readable throughput measurement; serialized by
/// BenchJsonWriter as {"name": ..., "jobs_per_sec": ..., "threads": ...,
/// "median_seconds": ..., "repeats": ..., "warmups": ...}. The throughput
/// field keeps its historical name so perf-trajectory tooling reads old
/// and new files uniformly; repeats=1/warmups=0 marks a single-shot row.
struct BenchJsonRow {
  std::string name;
  double jobs_per_sec = 0.0;
  int threads = 1;
  double median_seconds = 0.0;
  int repeats = 1;
  int warmups = 0;
};

/// Collects BenchJsonRows and writes them as a JSON array, one object per
/// row — the BENCH_*.json perf-trajectory format. Names must not contain
/// characters needing JSON escaping (bench code controls them).
class BenchJsonWriter {
 public:
  void Add(std::string name, double jobs_per_sec, int threads) {
    rows_.push_back({std::move(name), jobs_per_sec, threads, 0.0, 1, 0});
  }

  void Add(std::string name, const BenchTiming& timing, int threads) {
    rows_.push_back({std::move(name), timing.ops_per_sec, threads,
                     timing.median_seconds, timing.repeats, timing.warmups});
  }

  /// Writes the collected rows; no-op (success) when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (!out) return false;
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(out,
                   "  {\"name\": \"%s\", \"jobs_per_sec\": %.3f, "
                   "\"threads\": %d, \"median_seconds\": %.6f, "
                   "\"repeats\": %d, \"warmups\": %d}%s\n",
                   rows_[i].name.c_str(), rows_[i].jobs_per_sec,
                   rows_[i].threads, rows_[i].median_seconds,
                   rows_[i].repeats, rows_[i].warmups,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    return true;
  }

 private:
  std::vector<BenchJsonRow> rows_;
};

/// Returns the value following a `--json` flag (either "--json path" or
/// "--json=path"), or "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc) return argv[i + 1];
      std::fprintf(stderr, "--json requires a path argument\n");
      std::exit(2);
    }
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

/// "paper=X measured=Y" comparison row.
inline void PaperVsMeasured(const std::string& what, const std::string& paper,
                            const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace swim::bench

#endif  // SWIM_BENCH_BENCH_COMMON_H_

#ifndef SWIM_BENCH_BENCH_COMMON_H_
#define SWIM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "trace/trace.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::bench {

/// Every figure/table bench uses the same seed so outputs are reproducible
/// run to run.
inline constexpr uint64_t kBenchSeed = 2012;  // the paper's year

/// Facebook traces hold > 1M jobs; benches generate them scaled down to
/// this cap (per-job statistics are unchanged; count-based statistics are
/// reported per scaled trace).
inline constexpr size_t kJobCap = 100000;

/// Generates the named paper workload at bench scale.
inline trace::Trace BenchTrace(const std::string& name,
                               size_t job_cap = kJobCap) {
  auto spec = workloads::PaperWorkloadByName(name);
  SWIM_CHECK_OK(spec.status());
  workloads::GeneratorOptions options;
  options.seed = kBenchSeed;
  if (spec->total_jobs > job_cap) {
    options.job_count_override = job_cap;
  }
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  return *std::move(trace);
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// "paper=X measured=Y" comparison row.
inline void PaperVsMeasured(const std::string& what, const std::string& paper,
                            const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace swim::bench

#endif  // SWIM_BENCH_BENCH_COMMON_H_

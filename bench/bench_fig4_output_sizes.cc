// Reproduces Figure 4: cumulative fraction of jobs vs OUTPUT file size and
// cumulative fraction of stored bytes vs output file size. Output paths
// exist only for the CC-b..CC-e traces (matching the paper's footnote).
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/data_access.h"

int main() {
  using namespace swim;
  bench::Banner("Figure 4: Access patterns vs output file size");
  double min_rule = 100.0, max_rule = 0.0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::SizeSkewCurve curve = core::ComputeSizeSkew(t, /*use_output=*/true);
    if (curve.points.empty()) {
      std::printf("%s: (no output paths)\n", name.c_str());
      continue;
    }
    std::printf("%s: %zu jobs with output paths, %s stored\n", name.c_str(),
                curve.jobs_with_paths,
                FormatBytes(curve.total_stored_bytes).c_str());
    for (const auto& p : curve.points) {
      static int row = 0;
      if (row++ % 10 != 0) continue;
      std::printf("  <=%12s: %5.0f%% of jobs, %5.1f%% of bytes\n",
                  FormatBytes(p.file_bytes).c_str(),
                  100 * p.fraction_of_jobs, 100 * p.fraction_of_stored_bytes);
    }
    double rule = 100 * core::StoredBytesFractionForJobCoverage(t, 0.8, true);
    std::printf("  -> 80-X rule (outputs): 80-%.0f\n", rule);
    min_rule = std::min(min_rule, rule);
    max_rule = std::max(max_rule, rule);
  }

  bench::Banner("Paper comparison");
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "80-%.0f to 80-%.0f", min_rule,
                max_rule);
  bench::PaperVsMeasured("80-X rule range (outputs)",
                         "80% of accesses -> <10% of bytes", buffer);
  return 0;
}

// bench_ingest: trace ingest — CSV parse vs STF1 mmap open — plus the
// serialization paths.
//
//   bench_ingest [--jobs N] [--json out.json]
//
// Generates an FB-2010-shaped trace (default 1M jobs), writes it in both
// formats, and times:
//
//   csv_parse          full CSV file parse into a Trace (the old ingest)
//   stf1_open          ColumnarTraceView::Open — the mmap zero-copy open
//   stf1_open_cold     single-shot first open (includes page-cache faults)
//   stf1_column_scan   zero-copy sum over one mmap'd double column
//   stf1_load          full LoadTraceColumnar (checksums + materialize)
//   stf1_write / csv_write / csv_write_legacy   serialization paths
//
// Hard gate (CI bench-smoke): stf1_open must be >= 20x faster than
// csv_parse — the format exists so interactive tools stop paying the parse
// tax on every run. The CSV-writer rewrite speedup is recorded as its own
// JSON row (ratio in jobs_per_sec) but not gated: it is a satellite
// optimization whose magnitude depends on the allocator.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "common/logging.h"
#include "trace/columnar.h"
#include "trace/trace_io.h"

namespace {

using namespace swim;

/// The pre-rewrite CSV writer (ostringstream + per-field temporaries),
/// replicated so the rewrite's speedup row measures against the real
/// baseline rather than a strawman.
std::string LegacyFormatDouble(double value) {
  char buffer[64];
  for (int precision : {12, 15, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string LegacyQuoteField(std::string_view field) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted.push_back('"');
  return quoted;
}

std::string LegacyTraceToCsv(const trace::Trace& t) {
  std::ostringstream os;
  const trace::TraceMetadata& meta = t.metadata();
  if (!meta.name.empty()) os << "#name=" << meta.name << "\n";
  if (meta.machines > 0) os << "#machines=" << meta.machines << "\n";
  if (meta.year > 0) os << "#year=" << meta.year << "\n";
  os << trace::kTraceCsvHeader << "\n";
  char buffer[512];
  for (const auto& job : t.jobs()) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, job.job_id);
    os << buffer << ',' << LegacyQuoteField(job.name) << ','
       << LegacyFormatDouble(job.submit_time) << ','
       << LegacyFormatDouble(job.duration) << ','
       << LegacyFormatDouble(job.input_bytes) << ','
       << LegacyFormatDouble(job.shuffle_bytes) << ','
       << LegacyFormatDouble(job.output_bytes) << ',' << job.map_tasks << ','
       << job.reduce_tasks << ',' << LegacyFormatDouble(job.map_task_seconds)
       << ',' << LegacyFormatDouble(job.reduce_task_seconds) << ','
       << LegacyQuoteField(job.input_path) << ','
       << LegacyQuoteField(job.output_path) << "\n";
  }
  return os.str();
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir && *dir ? dir : "/tmp";
  if (path.back() != '/') path.push_back('/');
  return path + name;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  size_t jobs = 1000000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  bench::Banner("Ingest: generating FB-2010 at " + std::to_string(jobs) +
                " jobs");
  trace::Trace t = bench::BenchTrace("FB-2010", jobs);
  const size_t n = t.size();
  // Warm the id indexes so every serialization row measures serialization,
  // not the first lazy index build.
  (void)t.name_ids();
  (void)t.input_path_ids();

  const std::string csv_path = TempPath("bench_ingest.csv");
  const std::string stf1_path = TempPath("bench_ingest.stf1");
  SWIM_CHECK_OK(trace::WriteTraceCsv(t, csv_path));
  SWIM_CHECK_OK(trace::WriteTraceColumnar(t, stf1_path));

  bench::BenchJsonWriter json;
  char buffer[64];

  // --- The gated pair -----------------------------------------------------
  bench::Banner("Open/parse paths");

  // Cold first: one single-shot Open before any warmup touches the file.
  // (True cold cache needs drop_caches; this still captures first-fault
  // cost after the write, which is the interactive-user experience.)
  double cold_seconds = 0.0;
  {
    auto start = std::chrono::steady_clock::now();
    auto view = trace::ColumnarTraceView::Open(stf1_path);
    cold_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    SWIM_CHECK_OK(view.status());
    SWIM_CHECK(view->job_count() == n);
  }
  bench::BenchTiming cold_row;
  cold_row.median_seconds = cold_seconds;
  cold_row.ops_per_sec = static_cast<double>(n) / std::max(cold_seconds, 1e-12);
  json.Add("stf1_open_cold", cold_row, 1);
  std::printf("  stf1_open_cold: %.3f ms single-shot\n", cold_seconds * 1e3);

  auto csv_parse = bench::MedianOpsPerSec(n, 1, 5, [&] {
    auto loaded = trace::ReadTraceCsv(csv_path);
    SWIM_CHECK_OK(loaded.status());
    SWIM_CHECK(loaded->size() == n);
  });
  json.Add("csv_parse", csv_parse, 1);
  std::printf("  csv_parse: %.3f s median (%.0f jobs/s)\n",
              csv_parse.median_seconds, csv_parse.ops_per_sec);

  auto stf1_open = bench::MedianOpsPerSec(n, 1, 5, [&] {
    auto view = trace::ColumnarTraceView::Open(stf1_path);
    SWIM_CHECK_OK(view.status());
    SWIM_CHECK(view->job_count() == n);
  });
  json.Add("stf1_open", stf1_open, 1);
  std::printf("  stf1_open: %.3f ms median\n",
              stf1_open.median_seconds * 1e3);

  // Zero-copy consumption: scan one mmap'd column without materializing.
  double scan_sink = 0.0;
  auto column_scan = bench::MedianOpsPerSec(n, 1, 5, [&] {
    auto view = trace::ColumnarTraceView::Open(stf1_path);
    SWIM_CHECK_OK(view.status());
    double sum = 0.0;
    for (double v : view->input_bytes()) sum += v;
    scan_sink += sum;
  });
  json.Add("stf1_column_scan", column_scan, 1);
  std::printf("  stf1_column_scan: %.3f ms median (open + full column)\n",
              column_scan.median_seconds * 1e3);

  auto stf1_load = bench::MedianOpsPerSec(n, 1, 5, [&] {
    auto loaded = trace::LoadTraceColumnar(stf1_path);
    SWIM_CHECK_OK(loaded.status());
    SWIM_CHECK(loaded->size() == n);
  });
  json.Add("stf1_load", stf1_load, 1);
  std::printf("  stf1_load: %.3f s median (checksums + materialize, "
              "%.0f jobs/s)\n",
              stf1_load.median_seconds, stf1_load.ops_per_sec);

  // --- Serialization paths ------------------------------------------------
  bench::Banner("Write paths");
  size_t size_sink = 0;
  auto csv_write_legacy = bench::MedianOpsPerSec(n, 1, 3, [&] {
    size_sink += LegacyTraceToCsv(t).size();
  });
  json.Add("csv_write_legacy", csv_write_legacy, 1);
  auto csv_write = bench::MedianOpsPerSec(n, 1, 3, [&] {
    size_sink += trace::TraceToCsv(t).size();
  });
  json.Add("csv_write", csv_write, 1);
  auto stf1_write = bench::MedianOpsPerSec(n, 1, 3, [&] {
    size_sink += trace::TraceToColumnarBytes(t).size();
  });
  json.Add("stf1_write", stf1_write, 1);
  std::printf("  csv_write_legacy: %.3f s, csv_write: %.3f s, "
              "stf1_write: %.3f s\n",
              csv_write_legacy.median_seconds, csv_write.median_seconds,
              stf1_write.median_seconds);

  // --- Ratios -------------------------------------------------------------
  const double open_speedup =
      csv_parse.median_seconds / std::max(stf1_open.median_seconds, 1e-12);
  const double load_speedup =
      csv_parse.median_seconds / std::max(stf1_load.median_seconds, 1e-12);
  const double writer_speedup = csv_write_legacy.median_seconds /
                                std::max(csv_write.median_seconds, 1e-12);
  json.Add("stf1_open_speedup_vs_csv_parse", open_speedup, 1);
  json.Add("stf1_load_speedup_vs_csv_parse", load_speedup, 1);
  json.Add("csv_write_speedup_vs_legacy", writer_speedup, 1);

  bench::Banner("Speedup summary");
  std::snprintf(buffer, sizeof(buffer), "%.0fx", open_speedup);
  bench::PaperVsMeasured("STF1 open vs CSV parse", ">= 20x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", load_speedup);
  bench::PaperVsMeasured("STF1 full load vs CSV parse", "> 1x", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", writer_speedup);
  bench::PaperVsMeasured("CSV writer vs legacy ostringstream", "> 1x",
                         buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::remove(csv_path.c_str());
  std::remove(stf1_path.c_str());

  // Hard gate: the ISSUE acceptance criterion.
  if (open_speedup < 20.0) {
    std::printf("\nFAIL: STF1 open %.1fx below the 20x gate vs CSV parse\n",
                open_speedup);
    return 1;
  }
  std::printf("\n(sinks %.0f %zu)\n", scan_sink > 0 ? 1.0 : 0.0,
              size_sink > 0 ? size_t{1} : size_t{0});
  return 0;
}

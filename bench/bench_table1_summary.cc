// Reproduces Table 1: summary of the seven workload traces (jobs, span,
// machines, bytes moved). Facebook workloads are generated at 100k-job
// scale; their bytes-moved figure is also extrapolated back to full count
// for comparison with the paper.
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "trace/summary.h"

int main() {
  using namespace swim;
  bench::Banner("Table 1: Summary of traces");
  std::printf("%-9s %9s %9s %6s %12s %14s %18s\n", "Trace", "Machines",
              "Length", "Year", "Jobs(gen)", "BytesMoved", "BytesMoved@full");

  double total_bytes_full = 0.0;
  size_t total_jobs_full = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    auto spec = workloads::PaperWorkloadByName(name);
    trace::Trace t = bench::BenchTrace(name);
    trace::TraceSummary summary = trace::Summarize(t);
    double scale = static_cast<double>(spec->total_jobs) /
                   static_cast<double>(t.size());
    double bytes_full = summary.bytes_moved * scale;
    total_bytes_full += bytes_full;
    total_jobs_full += spec->total_jobs;
    std::printf("%-9s %9d %9s %6d %12s %14s %18s\n", name.c_str(),
                spec->metadata.machines,
                FormatDuration(spec->span_seconds).c_str(),
                spec->metadata.year, FormatCount(t.size()).c_str(),
                FormatBytes(summary.bytes_moved).c_str(),
                FormatBytes(bytes_full).c_str());
  }
  std::printf("%-9s %9s %9s %6s %12s %14s %18s\n", "Total", "-", "-", "-",
              FormatCount(total_jobs_full).c_str(), "-",
              FormatBytes(total_bytes_full).c_str());

  bench::Banner("Paper comparison");
  bench::PaperVsMeasured("total jobs", "2,372,213",
                         FormatCount(total_jobs_full));
  bench::PaperVsMeasured("total bytes moved", "~1.6 EB",
                         FormatBytes(total_bytes_full));
  std::printf(
      "\nNote: generated per-job sizes are lognormal around Table 2 medians,"
      "\nso totals land within a small factor of the paper's (mean > median"
      "\nfor lognormal mixtures); the dominant contributor (FB-2010) and the"
      "\nordering across workloads should match Table 1.\n");
  return 0;
}

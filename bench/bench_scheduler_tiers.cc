// Ablation for section 6.2: the small-big job dichotomy implies splitting
// the cluster into a performance tier (interactive small jobs) and a
// capacity tier (batch). We replay a generated FB-2009-shaped workload
// under FIFO, fair, and two-tier scheduling and compare small-job latency
// ("interactive latency ... durations of less than a minute") against
// large-job completion.
// All replay cells run concurrently through sim::RunSweep (results come
// back in configuration order, bit-identical at any SWIM_THREADS), so the
// ablation saturates cores instead of replaying policies one at a time.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "sim/sweep.h"

int main() {
  using namespace swim;
  bench::Banner("Scheduler ablation: protecting interactive jobs (sec. 6.2)");
  for (const auto& name : {"FB-2009", "CC-c"}) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/20000);
    auto spec = workloads::PaperWorkloadByName(name);
    // Shrink the cluster by the same factor the job count was scaled, so
    // load intensity matches the production deployment.
    int nodes = std::max<int>(
        10, static_cast<int>(static_cast<double>(spec->metadata.machines) *
                             static_cast<double>(t.size()) /
                             static_cast<double>(spec->total_jobs)));
    std::printf("%s (%zu jobs, cluster scaled to %d nodes):\n", name,
                t.size(), nodes);
    std::printf("  %-9s %14s %14s %14s %16s %12s\n", "policy",
                "small p50", "small p90", "small p99", "large p50",
                "utilization");
    sim::ReplayOptions base;
    base.cluster.nodes = nodes;
    std::vector<sim::SweepConfig> configs = sim::SweepGrid(
        t, base, {"fifo", "fair", "two-tier"}, {nodes}, {base.seed});
    std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
    for (size_t i = 0; i < configs.size(); ++i) {
      SWIM_CHECK_OK(results[i].status());
      const sim::ReplayResult& result = *results[i];
      stats::SortedStats small_latencies = result.LatencyStats(true);
      std::printf("  %-9s %14s %14s %14s %16s %11.0f%%\n",
                  configs[i].options.scheduler.c_str(),
                  FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.9)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                  FormatDuration(result.LatencyQuantile(false, 0.5)).c_str(),
                  100 * result.utilization);
    }
  }

  bench::Banner("Straggler sensitivity (sec. 6.2)");
  trace::Trace t = bench::BenchTrace("FB-2010", 15000);
  std::printf("  %-24s %14s %14s %16s\n", "straggler config", "small p50",
              "small p99", "p99+speculation");
  constexpr double kProbabilities[] = {0.0, 0.05, 0.2};
  std::vector<sim::SweepConfig> configs;
  for (double p : kProbabilities) {
    for (bool speculative : {false, true}) {
      sim::SweepConfig config;
      config.trace = &t;
      config.options.cluster.nodes = 60;  // 3000 scaled by the 15k/1.17M cap
      config.options.scheduler = "fair";
      config.options.straggler_probability = p;
      config.options.straggler_factor = 8.0;
      config.options.speculative_execution = speculative;
      configs.push_back(std::move(config));
    }
  }
  std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
  for (size_t i = 0; i < results.size(); i += 2) {
    SWIM_CHECK_OK(results[i].status());
    SWIM_CHECK_OK(results[i + 1].status());
    char label[32];
    std::snprintf(label, sizeof(label), "p=%.2f factor=8x",
                  configs[i].options.straggler_probability);
    stats::SortedStats small_latencies = results[i]->LatencyStats(true);
    std::printf("  %-24s %14s %14s %16s\n", label,
                FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                FormatDuration(
                    results[i + 1]->LatencyQuantile(true, 0.99)).c_str());
  }
  std::printf(
      "\nTakeaways vs paper: FIFO lets occasional huge jobs head-of-line\n"
      "block the >90%% small-job mass; fair sharing and the two-tier split\n"
      "restore interactive latency without starving the capacity tier.\n"
      "Stragglers hit small single-wave jobs directly (no other tasks to\n"
      "hide behind), inflating tail latency. Speculative execution only\n"
      "partially recovers the tail: single-task jobs have no sibling to\n"
      "compare against - the paper's re-assessment of straggler\n"
      "mitigation for small jobs.\n");
  return 0;
}

// Ablation for section 6.2: the small-big job dichotomy implies splitting
// the cluster into a performance tier (interactive small jobs) and a
// capacity tier (batch). We replay a generated FB-2009-shaped workload
// under FIFO, fair, and two-tier scheduling and compare small-job latency
// ("interactive latency ... durations of less than a minute") against
// large-job completion.
// All replay cells run concurrently through sim::RunSweep (results come
// back in configuration order, bit-identical at any SWIM_THREADS), so the
// ablation saturates cores instead of replaying policies one at a time.
//
// The SLA section replays a saturated FB-2010 mix with failure injection
// under every policy plus the preemption/admission variants and reports
// p99 interactive latency and SLA-miss fraction per policy; --json
// records the rows (BENCH_scheduler_tiers.json) with an informational
// srpt/deadline-vs-FIFO p99 gate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace swim;
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;
  bench::Banner("Scheduler ablation: protecting interactive jobs (sec. 6.2)");
  for (const auto& name : {"FB-2009", "CC-c"}) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/20000);
    auto spec = workloads::PaperWorkloadByName(name);
    // Shrink the cluster by the same factor the job count was scaled, so
    // load intensity matches the production deployment.
    int nodes = std::max<int>(
        10, static_cast<int>(static_cast<double>(spec->metadata.machines) *
                             static_cast<double>(t.size()) /
                             static_cast<double>(spec->total_jobs)));
    std::printf("%s (%zu jobs, cluster scaled to %d nodes):\n", name,
                t.size(), nodes);
    std::printf("  %-9s %14s %14s %14s %16s %12s\n", "policy",
                "small p50", "small p90", "small p99", "large p50",
                "utilization");
    sim::ReplayOptions base;
    base.cluster.nodes = nodes;
    std::vector<sim::SweepConfig> configs = sim::SweepGrid(
        t, base, {"fifo", "fair", "two-tier"}, {nodes}, {base.seed});
    std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
    for (size_t i = 0; i < configs.size(); ++i) {
      SWIM_CHECK_OK(results[i].status());
      const sim::ReplayResult& result = *results[i];
      stats::SortedStats small_latencies = result.LatencyStats(true);
      std::printf("  %-9s %14s %14s %14s %16s %11.0f%%\n",
                  configs[i].options.scheduler.c_str(),
                  FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.9)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                  FormatDuration(result.LatencyQuantile(false, 0.5)).c_str(),
                  100 * result.utilization);
    }
  }

  bench::Banner("Straggler sensitivity (sec. 6.2)");
  trace::Trace t = bench::BenchTrace("FB-2010", 15000);
  std::printf("  %-24s %14s %14s %16s\n", "straggler config", "small p50",
              "small p99", "p99+speculation");
  constexpr double kProbabilities[] = {0.0, 0.05, 0.2};
  std::vector<sim::SweepConfig> configs;
  for (double p : kProbabilities) {
    for (bool speculative : {false, true}) {
      sim::SweepConfig config;
      config.trace = &t;
      config.options.cluster.nodes = 60;  // 3000 scaled by the 15k/1.17M cap
      config.options.scheduler = "fair";
      config.options.straggler_probability = p;
      config.options.straggler_factor = 8.0;
      config.options.speculative_execution = speculative;
      configs.push_back(std::move(config));
    }
  }
  std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
  for (size_t i = 0; i < results.size(); i += 2) {
    SWIM_CHECK_OK(results[i].status());
    SWIM_CHECK_OK(results[i + 1].status());
    char label[32];
    std::snprintf(label, sizeof(label), "p=%.2f factor=8x",
                  configs[i].options.straggler_probability);
    stats::SortedStats small_latencies = results[i]->LatencyStats(true);
    std::printf("  %-24s %14s %14s %16s\n", label,
                FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                FormatDuration(
                    results[i + 1]->LatencyQuantile(true, 0.99)).c_str());
  }
  bench::Banner("SLA tier: saturated cluster + failures (ROADMAP item 3)");
  {
    // The straggler section's FB-2010 trace on a deliberately undersized
    // cluster (saturation is where policy choice matters), with both
    // failure modes on: the scenario the ISSUE's acceptance criterion
    // names. Deadlines are ideal x4 (small) / x12 (large).
    sim::ReplayOptions base;
    base.cluster.nodes = 35;
    base.failures.task_failure_probability = 0.02;
    base.failures.node_loss_per_hour = 2.0;
    struct SlaCell {
      const char* label;
      const char* policy;
      int64_t preemption_budget;
      int tenants;
    };
    const SlaCell cells[] = {
        {"fifo", "fifo", 0, 0},
        {"fair", "fair", 0, 0},
        {"two-tier", "two-tier", 0, 0},
        {"srpt", "srpt", 0, 0},
        {"deadline", "deadline", 0, 0},
        {"srpt+preempt", "srpt", 20000, 0},
        {"deadline+pre+adm", "deadline", 20000, 12},
    };
    std::vector<sim::SweepConfig> sla_configs;
    for (const SlaCell& cell : cells) {
      sim::SweepConfig config;
      config.trace = &t;
      config.options = base;
      config.options.scheduler = cell.policy;
      config.options.sla.preemption_budget = cell.preemption_budget;
      config.options.sla.tenants = cell.tenants;
      config.label = cell.label;
      sla_configs.push_back(std::move(config));
    }
    std::vector<StatusOr<sim::ReplayResult>> sla_results =
        sim::RunSweep(sla_configs);
    std::printf("  %-16s %12s %12s %10s %10s %10s\n", "policy",
                "small p50", "small p99", "sla-miss", "preempted",
                "adm-park");
    double fifo_p99 = 0.0;
    double best_new_p99 = 0.0;
    for (size_t i = 0; i < sla_configs.size(); ++i) {
      SWIM_CHECK_OK(sla_results[i].status());
      const sim::ReplayResult& result = *sla_results[i];
      stats::SortedStats small_latencies = result.LatencyStats(true);
      const double p99 = small_latencies.Quantile(0.99);
      std::printf("  %-16s %12s %12s %9.1f%% %10lld %10lld\n",
                  sla_configs[i].label.c_str(),
                  FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                  FormatDuration(p99).c_str(),
                  100 * result.sla.MissFraction(true),
                  static_cast<long long>(result.sla.preempted_tasks),
                  static_cast<long long>(
                      result.sla.admission_parked_jobs));
      json.Add("sla_small_p99_seconds_" + sla_configs[i].label, p99, 1);
      json.Add("sla_small_miss_fraction_" + sla_configs[i].label,
               result.sla.MissFraction(true), 1);
      if (sla_configs[i].label == "fifo") fifo_p99 = p99;
      if (sla_configs[i].label == "srpt" ||
          sla_configs[i].label == "deadline") {
        best_new_p99 = best_new_p99 == 0.0 ? p99
                                           : std::min(best_new_p99, p99);
      }
    }
    // Informational gate: SRPT or deadline should beat FIFO on p99
    // interactive latency under saturation + failures. Recorded as a
    // speedup row (> 1 means beating); the bench does not hard-fail on
    // it.
    const double speedup =
        best_new_p99 > 0.0 ? fifo_p99 / best_new_p99 : 0.0;
    json.Add("sla_best_vs_fifo_p99_speedup", speedup, 1);
    std::printf("  best srpt/deadline p99 vs FIFO: %.2fx %s\n", speedup,
                speedup > 1.0 ? "(beats FIFO)"
                              : "(INFO: does not beat FIFO)");
  }

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  std::printf(
      "\nTakeaways vs paper: FIFO lets occasional huge jobs head-of-line\n"
      "block the >90%% small-job mass; fair sharing and the two-tier split\n"
      "restore interactive latency without starving the capacity tier.\n"
      "Stragglers hit small single-wave jobs directly (no other tasks to\n"
      "hide behind), inflating tail latency. Speculative execution only\n"
      "partially recovers the tail: single-task jobs have no sibling to\n"
      "compare against - the paper's re-assessment of straggler\n"
      "mitigation for small jobs.\n");
  return 0;
}

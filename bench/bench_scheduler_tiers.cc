// Ablation for section 6.2: the small-big job dichotomy implies splitting
// the cluster into a performance tier (interactive small jobs) and a
// capacity tier (batch). We replay a generated FB-2009-shaped workload
// under FIFO, fair, and two-tier scheduling and compare small-job latency
// ("interactive latency ... durations of less than a minute") against
// large-job completion.
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "sim/replay.h"

int main() {
  using namespace swim;
  bench::Banner("Scheduler ablation: protecting interactive jobs (sec. 6.2)");
  for (const auto& name : {"FB-2009", "CC-c"}) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/20000);
    auto spec = workloads::PaperWorkloadByName(name);
    // Shrink the cluster by the same factor the job count was scaled, so
    // load intensity matches the production deployment.
    int nodes = std::max<int>(
        10, static_cast<int>(static_cast<double>(spec->metadata.machines) *
                             static_cast<double>(t.size()) /
                             static_cast<double>(spec->total_jobs)));
    std::printf("%s (%zu jobs, cluster scaled to %d nodes):\n", name,
                t.size(), nodes);
    std::printf("  %-9s %14s %14s %14s %16s %12s\n", "policy",
                "small p50", "small p90", "small p99", "large p50",
                "utilization");
    for (const char* policy : {"fifo", "fair", "two-tier"}) {
      sim::ReplayOptions options;
      options.cluster.nodes = nodes;
      options.scheduler = policy;
      auto result = sim::ReplayTrace(t, options);
      SWIM_CHECK_OK(result.status());
      stats::SortedStats small_latencies = result->LatencyStats(true);
      std::printf("  %-9s %14s %14s %14s %16s %11.0f%%\n", policy,
                  FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.9)).c_str(),
                  FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                  FormatDuration(result->LatencyQuantile(false, 0.5)).c_str(),
                  100 * result->utilization);
    }
  }

  bench::Banner("Straggler sensitivity (sec. 6.2)");
  trace::Trace t = bench::BenchTrace("FB-2010", 15000);
  std::printf("  %-24s %14s %14s %16s\n", "straggler config", "small p50",
              "small p99", "p99+speculation");
  for (double p : {0.0, 0.05, 0.2}) {
    sim::ReplayOptions options;
    options.cluster.nodes = 60;  // 3000 nodes scaled by the 15k/1.17M cap
    options.scheduler = "fair";
    options.straggler_probability = p;
    options.straggler_factor = 8.0;
    auto result = sim::ReplayTrace(t, options);
    SWIM_CHECK_OK(result.status());
    options.speculative_execution = true;
    auto speculative = sim::ReplayTrace(t, options);
    SWIM_CHECK_OK(speculative.status());
    char label[32];
    std::snprintf(label, sizeof(label), "p=%.2f factor=8x", p);
    stats::SortedStats small_latencies = result->LatencyStats(true);
    std::printf("  %-24s %14s %14s %16s\n", label,
                FormatDuration(small_latencies.Quantile(0.5)).c_str(),
                FormatDuration(small_latencies.Quantile(0.99)).c_str(),
                FormatDuration(
                    speculative->LatencyQuantile(true, 0.99)).c_str());
  }
  std::printf(
      "\nTakeaways vs paper: FIFO lets occasional huge jobs head-of-line\n"
      "block the >90%% small-job mass; fair sharing and the two-tier split\n"
      "restore interactive latency without starving the capacity tier.\n"
      "Stragglers hit small single-wave jobs directly (no other tasks to\n"
      "hide behind), inflating tail latency. Speculative execution only\n"
      "partially recovers the tail: single-task jobs have no sibling to\n"
      "compare against - the paper's re-assessment of straggler\n"
      "mitigation for small jobs.\n");
  return 0;
}

// Reproduces Figure 2: log-log file access frequency vs rank, for input
// and output files. The paper's finding: all workloads follow a Zipf-like
// line with slope ~ 5/6 (0.83), for both inputs and outputs.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/data_access.h"

namespace {

void PrintRankRow(const swim::core::FilePopularity& pop) {
  std::printf("    rank:freq ");
  for (size_t rank : {0u, 9u, 99u, 999u, 9999u}) {
    if (rank < pop.frequencies.size()) {
      std::printf(" %zu:%.0f", rank + 1, pop.frequencies[rank]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 2: File access frequency vs rank (Zipf)");
  double slope_sum = 0.0;
  int slope_count = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::FilePopularity input = core::ComputeInputPopularity(t);
    core::FilePopularity output = core::ComputeOutputPopularity(t);
    std::printf("%s:\n", name.c_str());
    if (input.distinct_files == 0) {
      std::printf("  (no file paths in this trace - matches the paper: "
                  "FB-2009 and CC-a lack path columns)\n");
      continue;
    }
    std::printf("  input:  %7zu files, %8zu accesses, Zipf slope=%.2f "
                "(r2=%.2f)\n",
                input.distinct_files, input.total_accesses, input.zipf.slope,
                input.zipf.r_squared);
    PrintRankRow(input);
    slope_sum += input.zipf.slope;
    ++slope_count;
    if (output.distinct_files > 0) {
      std::printf("  output: %7zu files, %8zu accesses, Zipf slope=%.2f "
                  "(r2=%.2f)\n",
                  output.distinct_files, output.total_accesses,
                  output.zipf.slope, output.zipf.r_squared);
      PrintRankRow(output);
      slope_sum += output.zipf.slope;
      ++slope_count;
    }
  }

  bench::Banner("Paper comparison");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f (over %d curves)",
                slope_sum / slope_count, slope_count);
  bench::PaperVsMeasured("Zipf slope, all workloads & directions",
                         "~5/6 = 0.83", buffer);
  std::printf(
      "\nNote: measured rank-frequency slopes sit below the generative\n"
      "Zipf(5/6) exponent because recency-biased re-access and fresh-file\n"
      "traffic flatten the tail - the same effect real traces exhibit.\n");
  return 0;
}

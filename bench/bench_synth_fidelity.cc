// SWIM synthesis fidelity (section 7): fit a model to each generated
// workload, synthesize a replica, and measure per-dimension KS distance
// plus the temporal couplings. Includes the "empirical models" ablation:
// the paper argues closed-form distributions cannot represent these
// workloads, so we also synthesize with independent per-dimension
// lognormal fits and show the fidelity gap. Finally demonstrates
// scale-down (sec. 7 "scaled-down workloads").
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/synth/fidelity.h"
#include "core/synth/scale_down.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"

int main() {
  using namespace swim;
  bench::Banner("SWIM synthesis fidelity (empirical vs parametric models)");
  std::printf("%-9s %16s %16s %22s\n", "Trace", "KS(empirical)",
              "KS(lognormal)", "bytes-compute corr s/e/p");
  double worst_empirical = 0, best_parametric = 1;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace source = bench::BenchTrace(name, /*job_cap=*/30000);
    auto model = core::BuildModel(source);
    SWIM_CHECK_OK(model.status());

    core::SynthesisOptions empirical;
    empirical.job_count = source.size();
    core::SynthesisOptions parametric = empirical;
    parametric.method = core::SynthesisMethod::kParametricLognormal;

    auto synth_e = core::SynthesizeTrace(*model, empirical);
    auto synth_p = core::SynthesizeTrace(*model, parametric);
    SWIM_CHECK_OK(synth_e.status());
    SWIM_CHECK_OK(synth_p.status());
    core::FidelityReport fid_e = core::CompareTraces(source, *synth_e);
    core::FidelityReport fid_p = core::CompareTraces(source, *synth_p);
    std::printf("%-9s %16.3f %16.3f      %.2f / %.2f / %.2f\n", name.c_str(),
                fid_e.max_ks, fid_p.max_ks, fid_e.source_bytes_compute_corr,
                fid_e.synth_bytes_compute_corr,
                fid_p.synth_bytes_compute_corr);
    worst_empirical = std::max(worst_empirical, fid_e.max_ks);
    best_parametric = std::min(best_parametric, fid_p.max_ks);
  }

  bench::Banner("Scale-down fidelity (sec. 7)");
  trace::Trace source = bench::BenchTrace("CC-b");
  std::printf("  %-32s %10s\n", "operator", "max KS vs source");
  for (double fraction : {0.5, 0.1, 0.01}) {
    core::ScaleDownOptions options;
    options.job_fraction = fraction;
    auto scaled = core::ScaleDownTrace(source, options);
    SWIM_CHECK_OK(scaled.status());
    char label[48];
    std::snprintf(label, sizeof(label), "job sample %.0f%%", 100 * fraction);
    std::printf("  %-32s %10.3f\n", label,
                core::CompareTraces(source, *scaled).max_ks);
  }

  bench::Banner("Paper comparison");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f vs %.3f", worst_empirical,
                best_parametric);
  bench::PaperVsMeasured(
      "worst empirical KS vs best parametric KS",
      "empirical must win", buffer);
  std::printf(
      "\nTakeaway: resampling whole exemplar jobs (SWIM's empirical model)\n"
      "keeps every marginal within a few percent KS; independent lognormal\n"
      "fits lose the mixture structure (map-only zeros, small-big\n"
      "bimodality) exactly as section 7 argues.\n");
  return 0;
}

// Energy ablation (sec. 5.2): "conversely, mechanisms for conserving
// energy will be beneficial during periods of low utilization". Replays
// each workload on a Table-1-scaled cluster and compares an always-on
// fleet against an ideal power-proportional one - the burstier and more
// median-idle the workload, the larger the headroom.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/temporal.h"
#include "sim/energy.h"
#include "sim/replay.h"

int main() {
  using namespace swim;
  bench::Banner("Energy headroom under bursty load (sec. 5.2)");
  std::printf("%-9s %10s %12s %14s %16s %10s\n", "Trace", "mean occ",
              "p2m burst", "always-on", "proportional", "savings");
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/20000);
    auto spec = workloads::PaperWorkloadByName(name);
    sim::ReplayOptions options;
    options.cluster.nodes = std::max<int>(
        10, static_cast<int>(static_cast<double>(spec->metadata.machines) *
                             static_cast<double>(t.size()) /
                             static_cast<double>(spec->total_jobs)));
    options.scheduler = "fair";
    auto replay = sim::ReplayTrace(t, options);
    SWIM_CHECK_OK(replay.status());
    auto energy = sim::EstimateEnergy(*replay, options.cluster);
    SWIM_CHECK_OK(energy.status());
    double burst = core::ComputeBurstiness(t).task_seconds.PeakToMedian();
    std::printf("%-9s %9.0f%% %11.0f:1 %11.0f kWh %13.0f kWh %9.0f%%\n",
                name.c_str(), 100 * energy->mean_occupancy, burst,
                energy->always_on_kwh, energy->power_proportional_kwh,
                100 * energy->savings_fraction);
  }
  std::printf(
      "\nTakeaway: median occupancy sits far below peak in every\n"
      "workload (Figure 8's burstiness), so an always-on fleet burns\n"
      "most of its energy idling; power-proportional operation would\n"
      "cut 60-95%% - but batch placement and HDFS replication must\n"
      "cooperate to let nodes sleep, which is why the paper frames\n"
      "energy as a workload-management problem.\n");
  return 0;
}

// Energy ablation (sec. 5.2): "conversely, mechanisms for conserving
// energy will be beneficial during periods of low utilization". Replays
// each workload on a Table-1-scaled cluster and compares an always-on
// fleet against an ideal power-proportional one - the burstier and more
// median-idle the workload, the larger the headroom.
// The per-workload replays are independent, so they run concurrently
// through sim::RunSweep (results in configuration order, bit-identical at
// any SWIM_THREADS) and only the cheap energy/burstiness reporting stays
// serial.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

#include "bench_common.h"
#include "core/analysis/temporal.h"
#include "sim/energy.h"
#include "sim/sweep.h"

int main() {
  using namespace swim;
  bench::Banner("Energy headroom under bursty load (sec. 5.2)");
  std::printf("%-9s %10s %12s %14s %16s %10s\n", "Trace", "mean occ",
              "p2m burst", "always-on", "proportional", "savings");
  // deque: SweepConfig keeps pointers to the traces, so they must not move.
  std::deque<trace::Trace> traces;
  std::vector<sim::SweepConfig> configs;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    traces.push_back(bench::BenchTrace(name, /*job_cap=*/20000));
    auto spec = workloads::PaperWorkloadByName(name);
    sim::SweepConfig config;
    config.label = name;
    config.trace = &traces.back();
    config.options.cluster.nodes = std::max<int>(
        10,
        static_cast<int>(static_cast<double>(spec->metadata.machines) *
                         static_cast<double>(traces.back().size()) /
                         static_cast<double>(spec->total_jobs)));
    config.options.scheduler = "fair";
    configs.push_back(std::move(config));
  }
  std::vector<StatusOr<sim::ReplayResult>> results = sim::RunSweep(configs);
  for (size_t i = 0; i < configs.size(); ++i) {
    SWIM_CHECK_OK(results[i].status());
    auto energy = sim::EstimateEnergy(*results[i], configs[i].options.cluster);
    SWIM_CHECK_OK(energy.status());
    double burst =
        core::ComputeBurstiness(traces[i]).task_seconds.PeakToMedian();
    std::printf("%-9s %9.0f%% %11.0f:1 %11.0f kWh %13.0f kWh %9.0f%%\n",
                configs[i].label.c_str(), 100 * energy->mean_occupancy, burst,
                energy->always_on_kwh, energy->power_proportional_kwh,
                100 * energy->savings_fraction);
  }
  std::printf(
      "\nTakeaway: median occupancy sits far below peak in every\n"
      "workload (Figure 8's burstiness), so an always-on fleet burns\n"
      "most of its energy idling; power-proportional operation would\n"
      "cut 60-95%% - but batch placement and HDFS replication must\n"
      "cooperate to let nodes sleep, which is why the paper frames\n"
      "energy as a workload-management problem.\n");
  return 0;
}

// Library microbenchmarks (google-benchmark): throughput of the hot paths
// a downstream user exercises - trace generation, analysis kernels, cache
// simulation, k-means, and the replay engine.
#include <benchmark/benchmark.h>

#include "core/analysis/compute.h"
#include "frameworks/hive.h"
#include "frameworks/workflow.h"
#include "storage/tiered.h"
#include "stats/burstiness.h"
#include "core/analysis/data_access.h"
#include "core/analysis/temporal.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "sim/replay.h"
#include "stats/kmeans.h"
#include "stats/zipf.h"
#include "storage/access_stream.h"
#include "storage/cache.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace {

using namespace swim;

trace::Trace SharedTrace(size_t jobs) {
  auto spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions options;
  options.job_count_override = jobs;
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  return *std::move(trace);
}

void BM_GenerateTrace(benchmark::State& state) {
  auto spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions options;
  options.job_count_override = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto trace = workloads::GenerateTrace(*spec, options);
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTrace)->Arg(1000)->Arg(10000);

void BM_DataSizeCdfs(benchmark::State& state) {
  trace::Trace t = SharedTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto cdfs = core::ComputeDataSizeCdfs(t);
    benchmark::DoNotOptimize(cdfs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataSizeCdfs)->Arg(10000);

void BM_ReaccessAnalysis(benchmark::State& state) {
  trace::Trace t = SharedTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto intervals = core::ComputeReaccessIntervals(t);
    benchmark::DoNotOptimize(intervals);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReaccessAnalysis)->Arg(10000);

void BM_Burstiness(benchmark::State& state) {
  trace::Trace t = SharedTrace(10000);
  for (auto _ : state) {
    auto report = core::ComputeBurstiness(t);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Burstiness);

void BM_KMeansClassify(benchmark::State& state) {
  trace::Trace t = SharedTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = core::ClassifyJobs(t);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeansClassify)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ZipfSampler(benchmark::State& state) {
  stats::ZipfSampler sampler(100000, 5.0 / 6.0);
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSampler);

void BM_LruCacheReplay(benchmark::State& state) {
  trace::Trace t = SharedTrace(10000);
  auto accesses = storage::ExtractAccesses(t);
  for (auto _ : state) {
    storage::LruCache cache(1e13);
    storage::ReplayAccesses(accesses, cache);
    benchmark::DoNotOptimize(cache.stats().hits);
  }
  state.SetItemsProcessed(state.iterations() * accesses.size());
}
BENCHMARK(BM_LruCacheReplay);

void BM_BuildModel(benchmark::State& state) {
  trace::Trace t = SharedTrace(10000);
  for (auto _ : state) {
    auto model = core::BuildModel(t);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_BuildModel)->Unit(benchmark::kMillisecond);

void BM_Synthesize(benchmark::State& state) {
  trace::Trace t = SharedTrace(10000);
  auto model = core::BuildModel(t);
  SWIM_CHECK_OK(model.status());
  core::SynthesisOptions options;
  options.job_count = 10000;
  for (auto _ : state) {
    auto synth = core::SynthesizeTrace(*model, options);
    benchmark::DoNotOptimize(synth);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Synthesize)->Unit(benchmark::kMillisecond);

void BM_ReplaySimulation(benchmark::State& state) {
  trace::Trace t = SharedTrace(static_cast<size_t>(state.range(0)));
  sim::ReplayOptions options;
  options.cluster.nodes = 300;
  options.scheduler = "fair";
  for (auto _ : state) {
    auto result = sim::ReplayTrace(t, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReplaySimulation)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_HiveCompile(benchmark::State& state) {
  frameworks::HiveQuerySpec spec;
  spec.kind = frameworks::HiveQuerySpec::Kind::kInsert;
  spec.joins = 2;
  spec.group_by = true;
  for (auto _ : state) {
    auto chain = frameworks::CompileHiveQuery(spec);
    benchmark::DoNotOptimize(chain);
  }
}
BENCHMARK(BM_HiveCompile);

void BM_WorkflowGeneration(benchmark::State& state) {
  frameworks::WorkflowGeneratorOptions options;
  options.workflows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto wt = frameworks::GenerateWorkflowTrace(options);
    benchmark::DoNotOptimize(wt);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkflowGeneration)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_TieredReads(benchmark::State& state) {
  trace::Trace t = SharedTrace(10000);
  auto accesses = storage::ExtractAccesses(t);
  storage::TierConfig config;
  config.memory_capacity_bytes = 1e13;
  for (auto _ : state) {
    auto stats = storage::SimulateTieredReads(accesses, config);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * accesses.size());
}
BENCHMARK(BM_TieredReads);

void BM_BurstinessProfile(benchmark::State& state) {
  trace::Trace t = SharedTrace(20000);
  auto series = t.HourlyTaskSeconds();
  for (auto _ : state) {
    stats::BurstinessProfile profile(series);
    benchmark::DoNotOptimize(profile.PeakToMedian());
  }
}
BENCHMARK(BM_BurstinessProfile);

}  // namespace

BENCHMARK_MAIN();

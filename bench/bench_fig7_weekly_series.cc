// Reproduces Figure 7: one week of workload behavior in four dimensions -
// jobs submitted/hr, aggregate I/O/hr, task-time/hr, and cluster
// utilization in active slots. The first three come from the trace; the
// fourth from replaying the week on the discrete-event cluster simulator
// (the paper's traces report it only for CC-a, CC-b, CC-e, FB-2010).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/temporal.h"
#include "sim/replay.h"
#include "stats/descriptive.h"
#include "trace/filters.h"

namespace {

// Renders a series as a day-resolution sparkline (max per day) so weekly
// structure is visible in text output.
void PrintWeek(const char* label, const std::vector<double>& series,
               const char* unit) {
  std::printf("  %-22s", label);
  for (size_t day = 0; day * 24 < series.size() && day < 7; ++day) {
    double peak = 0;
    for (size_t h = day * 24; h < std::min(series.size(), (day + 1) * 24);
         ++h) {
      peak = std::max(peak, series[h]);
    }
    std::printf(" %9.3g", peak);
  }
  std::printf("  (%s, daily peaks Su..Sa)\n", unit);
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 7: Weekly time series (4 dimensions)");
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/50000);
    core::SubmissionSeries series = core::ComputeSubmissionSeries(t);
    std::printf("%s:\n", name.c_str());
    PrintWeek("jobs submitted/hr", core::WeekWindow(series.jobs_per_hour),
              "jobs");
    std::vector<double> tb_per_hour;
    for (double b : core::WeekWindow(series.bytes_per_hour)) {
      tb_per_hour.push_back(b / kTB);
    }
    PrintWeek("I/O TB/hr", tb_per_hour, "TB");
    std::vector<double> task_hrs;
    for (double s : core::WeekWindow(series.task_seconds_per_hour)) {
      task_hrs.push_back(s / kHour);
    }
    PrintWeek("compute task-hrs/hr", task_hrs, "task-hrs");

    // Utilization: replay the first week on a cluster sized per Table 1.
    auto spec = workloads::PaperWorkloadByName(name);
    trace::Trace week = trace::FilterByTimeRange(t, 0, kWeek);
    sim::ReplayOptions replay_options;
    // Cluster scaled by the same factor as the job count so occupancy is
    // representative of the production deployment.
    replay_options.cluster.nodes = std::max<int>(
        10, static_cast<int>(static_cast<double>(spec->metadata.machines) *
                             static_cast<double>(t.size()) /
                             static_cast<double>(spec->total_jobs)));
    replay_options.scheduler = "fair";
    auto replay = sim::ReplayTrace(week, replay_options);
    if (replay.ok()) {
      PrintWeek("utilization (slots)",
                core::WeekWindow(replay->hourly_occupancy), "slots");
    }
    std::printf("  diurnal strength of submissions: %.2f\n",
                core::DiurnalStrength(t));
  }

  bench::Banner("Paper comparison");
  trace::Trace fb2010 = bench::BenchTrace("FB-2010", 50000);
  trace::Trace cca = bench::BenchTrace("CC-a", 50000);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "FB-2010=%.2f vs CC-a=%.2f",
                core::DiurnalStrength(fb2010), core::DiurnalStrength(cca));
  bench::PaperVsMeasured("diurnal pattern visible for FB-2010",
                         "visually identifiable", buffer);
  std::printf("\nNote: all series show heavy hour-to-hour noise on top of\n"
              "any diurnal signal, matching the paper's observation that\n"
              "\"all workloads contain a high amount of noise\".\n");
  return 0;
}

// Reproduces Figure 5: distribution of data re-access intervals - time
// between consecutive reads of the same input (top) and between an output
// being written and re-read as input (bottom). Paper: 75% of re-accesses
// fall within ~6 hours.
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/data_access.h"

namespace {

void PrintIntervalCdf(const char* label,
                      const swim::stats::EmpiricalCdf& cdf) {
  if (cdf.empty()) {
    std::printf("  %-14s (none)\n", label);
    return;
  }
  std::printf("  %-14s n=%-8zu", label, cdf.size());
  for (double p : {0.25, 0.50, 0.75, 0.90}) {
    std::printf(" p%02.0f=%-9s", p * 100,
                swim::FormatDuration(cdf.Quantile(p)).c_str());
  }
  std::printf(" within6h=%.0f%%\n", 100 * cdf.Fraction(6 * swim::kHour));
}

}  // namespace

int main() {
  using namespace swim;
  bench::Banner("Figure 5: Data re-access intervals");
  double within_6h_sum = 0.0;
  int workload_count = 0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::ReaccessIntervals intervals = core::ComputeReaccessIntervals(t);
    std::printf("%s:\n", name.c_str());
    if (intervals.input_input.empty() && intervals.output_input.empty()) {
      std::printf("  (no file paths in this trace)\n");
      continue;
    }
    PrintIntervalCdf("input-input", intervals.input_input);
    PrintIntervalCdf("output-input", intervals.output_input);
    if (!intervals.input_input.empty()) {
      within_6h_sum += intervals.input_input.Fraction(6 * kHour);
      ++workload_count;
    }
  }

  bench::Banner("Paper comparison");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f%% (mean over %d workloads)",
                100 * within_6h_sum / workload_count, workload_count);
  bench::PaperVsMeasured("re-accesses within 6 hours", "~75%", buffer);
  return 0;
}

// Microbenchmark for the stats kernel layer: the FFT periodogram, the
// Walker/Vose alias samplers, and the sort-once quantile view, each against
// the implementation it replaced on the analysis/synthesis hot paths.
//
// Scenarios:
//   periodogram/fft:    O(n log n) FFT periodogram at n = 16384 (the
//                       minute-granularity multi-week series the diurnal
//                       analysis wants to handle)
//   periodogram/naive:  the pre-change O(n^2) direct DFT, run once
//   periodogram/bluestein: FFT at the composite length 10080 (a week of
//                       minutes) exercising the chirp-z path
//   sample/alias:       1M draws from 50k Zipf weights via AliasTable
//   sample/lower_bound: same draws via the cumulative-table binary search
//                       the synthesizer/trace-generator inner loops used
//   quantile/sorted_once: SortedStats built once, then p50/p90/p99 reads
//   quantile/per_call:  three stats::Quantile calls (copy + sort each)
//
// --json <path> emits {name, jobs_per_sec, threads, median_seconds,
// repeats, warmups} rows (ops/sec in the jobs_per_sec field, matching the
// repo's BENCH_*.json convention); timing is median-of-N after warm-up
// (bench_common.h MedianOpsPerSec) so the CI gates are not single-shot.
//
// Hard gates (ISSUE acceptance criteria): FFT >= 10x over the naive DFT at
// n = 16384, alias sampling >= 2x over lower_bound at 1M draws.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "stats/descriptive.h"
#include "stats/fourier.h"
#include "stats/sampling.h"

namespace {

double checksum_sink = 0.0;  // defeats dead-code elimination

/// Diurnal signal plus deterministic noise, like an hourly submit series.
std::vector<double> NoisySeries(size_t n, swim::Pcg32& rng) {
  std::vector<double> series(n);
  for (size_t t = 0; t < n; ++t) {
    series[t] = 10.0 + 3.0 * std::sin(2.0 * 3.14159265358979323846 *
                                      static_cast<double>(t) / 24.0) +
                rng.NextDouble(-1.0, 1.0);
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swim;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::BenchJsonWriter json;
  Pcg32 rng(bench::kBenchSeed, /*stream=*/0x57a7);

  // -- Periodogram: FFT vs direct DFT --
  constexpr size_t kFftLen = 16384;
  constexpr size_t kBluesteinLen = 10080;  // one week of minutes
  bench::Banner("Periodogram: FFT vs O(n^2) DFT");
  std::vector<double> series = NoisySeries(kFftLen, rng);
  std::vector<double> week = NoisySeries(kBluesteinLen, rng);
  bench::BenchTiming fft = bench::MedianOpsPerSec(1, 1, 5, [&] {
    checksum_sink += stats::Periodogram(series).front().power;
  });
  bench::BenchTiming bluestein = bench::MedianOpsPerSec(1, 1, 5, [&] {
    checksum_sink += stats::Periodogram(week).front().power;
  });
  // The naive DFT takes seconds per transform; one timed run (no warm-up)
  // is plenty - it is the baseline, not the gated side.
  bench::BenchTiming naive = bench::MedianOpsPerSec(1, 0, 1, [&] {
    checksum_sink += stats::NaivePeriodogram(series).front().power;
  });
  double fft_speedup = fft.ops_per_sec / naive.ops_per_sec;
  std::printf("  %-22s %12.2f transforms/s (n=%zu)\n", "periodogram/fft",
              fft.ops_per_sec, kFftLen);
  std::printf("  %-22s %12.2f transforms/s (n=%zu)\n", "periodogram/bluestein",
              bluestein.ops_per_sec, kBluesteinLen);
  std::printf("  %-22s %12.2f transforms/s (n=%zu)   fft: %.0fx\n",
              "periodogram/naive", naive.ops_per_sec, kFftLen, fft_speedup);
  json.Add("periodogram/fft", fft, 1);
  json.Add("periodogram/bluestein", bluestein, 1);
  json.Add("periodogram/naive", naive, 1);

  // -- Discrete sampling: alias table vs cumulative binary search --
  constexpr size_t kRanks = 50000;
  constexpr size_t kDraws = 1000000;
  constexpr int kRepeats = 5;
  bench::Banner("Discrete sampling: alias table vs lower_bound");
  std::printf(
      "  %zu draws over %zu Zipf(5/6) ranks, median of %d runs after "
      "1 warm-up\n",
      kDraws, kRanks, kRepeats);
  std::vector<double> weights(kRanks);
  for (size_t r = 0; r < kRanks; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -5.0 / 6.0);
  }
  std::vector<double> cumulative(kRanks);
  double total = 0.0;
  for (size_t r = 0; r < kRanks; ++r) cumulative[r] = total += weights[r];
  stats::AliasTable table(weights);
  bench::BenchTiming alias = bench::MedianOpsPerSec(kDraws, 1, kRepeats, [&] {
    Pcg32 draw_rng(bench::kBenchSeed, /*stream=*/0xa11a);
    size_t acc = 0;
    for (size_t i = 0; i < kDraws; ++i) acc += table.Sample(draw_rng);
    checksum_sink += static_cast<double>(acc);
  });
  bench::BenchTiming search = bench::MedianOpsPerSec(kDraws, 1, kRepeats, [&] {
    Pcg32 draw_rng(bench::kBenchSeed, /*stream=*/0xa11a);
    size_t acc = 0;
    for (size_t i = 0; i < kDraws; ++i) {
      double u = draw_rng.NextDouble() * total;
      size_t rank = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      acc += std::min(rank, kRanks - 1);
    }
    checksum_sink += static_cast<double>(acc);
  });
  double alias_speedup = alias.ops_per_sec / search.ops_per_sec;
  std::printf("  %-22s %12.0f draws/s\n", "sample/alias", alias.ops_per_sec);
  std::printf("  %-22s %12.0f draws/s   alias: %.2fx\n", "sample/lower_bound",
              search.ops_per_sec, alias_speedup);
  json.Add("sample/alias", alias, 1);
  json.Add("sample/lower_bound", search, 1);

  // -- Quantiles: sort-once view vs per-call copy+sort --
  constexpr size_t kLatencies = 1000000;
  bench::Banner("Quantiles: SortedStats vs per-call Quantile");
  std::vector<double> latencies(kLatencies);
  for (double& v : latencies) v = rng.NextLognormal(3.0, 1.5);
  bench::BenchTiming sorted_once = bench::MedianOpsPerSec(1, 1, 3, [&] {
    stats::SortedStats stats(latencies);
    checksum_sink +=
        stats.Quantile(0.5) + stats.Quantile(0.9) + stats.Quantile(0.99);
  });
  bench::BenchTiming per_call = bench::MedianOpsPerSec(1, 1, 3, [&] {
    checksum_sink += stats::Quantile(latencies, 0.5) +
                     stats::Quantile(latencies, 0.9) +
                     stats::Quantile(latencies, 0.99);
  });
  double quantile_speedup = sorted_once.ops_per_sec / per_call.ops_per_sec;
  std::printf("  %-22s %12.2f reports/s (n=%zu, 3 quantiles)\n",
              "quantile/sorted_once", sorted_once.ops_per_sec, kLatencies);
  std::printf("  %-22s %12.2f reports/s   sorted_once: %.2fx\n",
              "quantile/per_call", per_call.ops_per_sec, quantile_speedup);
  json.Add("quantile/sorted_once", sorted_once, 1);
  json.Add("quantile/per_call", per_call, 1);

  bench::Banner("Speedup summary");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0fx", fft_speedup);
  bench::PaperVsMeasured("FFT periodogram vs naive DFT (n=16384)", ">= 10x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", alias_speedup);
  bench::PaperVsMeasured("alias sampling vs lower_bound (1M draws)", ">= 2x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.2fx", quantile_speedup);
  bench::PaperVsMeasured("sort-once vs per-call quantiles (3 reads)", "> 1x",
                         buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // Hard gates: the ISSUE acceptance criteria.
  bool failed = false;
  if (fft_speedup < 10.0) {
    std::printf("\nFAIL: FFT speedup %.1fx below the 10x gate\n", fft_speedup);
    failed = true;
  }
  if (alias_speedup < 2.0) {
    std::printf("\nFAIL: alias speedup %.2fx below the 2x gate\n",
                alias_speedup);
    failed = true;
  }
  if (failed) return 1;
  std::printf("\n(checksum %.0f)\n", checksum_sink > 0 ? 1.0 : 0.0);
  return 0;
}

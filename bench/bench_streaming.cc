// bench_streaming: the zero-materialization analysis fast path and the
// follow-mode incremental tick.
//
//   bench_streaming [--jobs N] [--json out.json]
//
// Generates an FB-2010-shaped trace (default 1M jobs), writes it as STF1,
// and times:
//
//   materialize_analyze   LoadTraceColumnar + AnalyzeWorkload — the batch
//                         pipeline a streaming consumer would otherwise run
//   streaming_report      ColumnarTraceView::Open + ObserveColumns + Report
//                         — column spans consumed in place, no JobRecord
//                         ever built, no full-column sorts
//   full_reanalysis       one-shot streaming pass over the grown file (the
//                         work a naive follower redoes every tick)
//   follow_tick           TraceFollower::Poll + Report after the file grew
//                         by `kGrowth` jobs — O(new batch) work
//
// Hard gates (CI bench-smoke):
//   - streaming_report >= 3x faster than materialize_analyze;
//   - follow_tick >= 10x faster than full_reanalysis.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/analysis/follow.h"
#include "core/analysis/streaming.h"
#include "core/analysis/workload_report.h"
#include "trace/columnar.h"

namespace {

using namespace swim;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir && *dir ? dir : "/tmp";
  if (path.back() != '/') path.push_back('/');
  return path + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  SWIM_CHECK(out != nullptr);
  SWIM_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size());
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  size_t jobs = 1000000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  // The follow tick consumes the last 1% of the trace (at least one job).
  const size_t growth = std::max<size_t>(1, jobs / 100);
  const size_t prefix_jobs = jobs - growth;

  bench::Banner("Streaming: generating FB-2010 at " + std::to_string(jobs) +
                " jobs");
  trace::Trace full = bench::BenchTrace("FB-2010", jobs);
  (void)full.name_ids();
  (void)full.input_path_ids();

  const std::string full_path = TempPath("bench_streaming_full.stf1");
  const std::string grow_path = TempPath("bench_streaming_grow.stf1");
  SWIM_CHECK_OK(trace::WriteTraceColumnar(full, full_path));
  const std::string full_bytes = [&] {
    std::string bytes = trace::TraceToColumnarBytes(full);
    return bytes;
  }();
  const std::string prefix_bytes = [&] {
    trace::Trace prefix;
    prefix.mutable_metadata() = full.metadata();
    for (size_t i = 0; i < prefix_jobs; ++i) prefix.AddJob(full.jobs()[i]);
    return trace::TraceToColumnarBytes(prefix);
  }();

  bench::BenchJsonWriter json;
  char buffer[160];

  // --- Gate A: one-shot report, materialize vs streaming ------------------
  bench::Banner("One-shot report paths");
  auto materialize_analyze = bench::MedianOpsPerSec(jobs, 1, 3, [&] {
    auto trace = trace::LoadTraceColumnar(full_path);
    SWIM_CHECK_OK(trace.status());
    auto report = core::AnalyzeWorkload(*trace);
    SWIM_CHECK_OK(report.status());
  });
  json.Add("materialize_analyze", materialize_analyze, 0);
  std::printf("  materialize_analyze: %.3f s (%.0f jobs/s)\n",
              materialize_analyze.median_seconds,
              materialize_analyze.ops_per_sec);

  auto streaming_report = bench::MedianOpsPerSec(jobs, 1, 3, [&] {
    auto view = trace::ColumnarTraceView::Open(full_path);
    SWIM_CHECK_OK(view.status());
    core::StreamingAnalyzer analyzer;
    SWIM_CHECK_OK(analyzer.ObserveColumns(*view, 0, view->job_count()));
    auto report = analyzer.Report(&*view);
    SWIM_CHECK_OK(report.status());
  });
  json.Add("streaming_report", streaming_report, 0);
  std::printf("  streaming_report:    %.3f s (%.0f jobs/s)\n",
              streaming_report.median_seconds, streaming_report.ops_per_sec);

  // --- Gate B: follow tick vs full re-analysis ----------------------------
  bench::Banner("Follow tick (" + std::to_string(growth) + " new jobs)");
  auto full_reanalysis = bench::MedianOpsPerSec(jobs, 1, 3, [&] {
    auto view = trace::ColumnarTraceView::Open(full_path);
    SWIM_CHECK_OK(view.status());
    core::StreamingAnalyzer analyzer;
    SWIM_CHECK_OK(analyzer.ObserveColumns(*view, 0, view->job_count()));
    auto report = analyzer.Report(&*view);
    SWIM_CHECK_OK(report.status());
  });
  json.Add("full_reanalysis", full_reanalysis, 0);

  // A tick cannot be repeated in place (the poll consumes the growth), so
  // each measured run rebuilds the scenario untimed: seed the follower on
  // the prefix snapshot, grow the file, then time exactly Poll + Report.
  std::vector<double> tick_seconds;
  for (int run = 0; run < 3; ++run) {
    WriteFile(grow_path, prefix_bytes);
    auto follower = core::TraceFollower::Open(grow_path);
    SWIM_CHECK_OK(follower.status());
    auto seed = follower->Poll();
    SWIM_CHECK_OK(seed.status());
    SWIM_CHECK(seed->total_jobs == prefix_jobs);
    WriteFile(grow_path, full_bytes);
    const auto start = std::chrono::steady_clock::now();
    auto tick = follower->Poll();
    SWIM_CHECK_OK(tick.status());
    SWIM_CHECK(tick->new_jobs == growth);
    auto report = follower->Report();
    SWIM_CHECK_OK(report.status());
    tick_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  std::sort(tick_seconds.begin(), tick_seconds.end());
  bench::BenchTiming follow_tick;
  follow_tick.median_seconds = tick_seconds[(tick_seconds.size() - 1) / 2];
  follow_tick.ops_per_sec =
      static_cast<double>(growth) / std::max(follow_tick.median_seconds, 1e-12);
  follow_tick.repeats = 3;
  follow_tick.warmups = 0;
  json.Add("follow_tick", follow_tick, 0);
  std::printf("  full_reanalysis: %.3f s   follow_tick: %.4f s\n",
              full_reanalysis.median_seconds, follow_tick.median_seconds);

  // --- Ratios + gates -----------------------------------------------------
  const double stream_speedup =
      materialize_analyze.median_seconds /
      std::max(streaming_report.median_seconds, 1e-12);
  const double tick_speedup = full_reanalysis.median_seconds /
                              std::max(follow_tick.median_seconds, 1e-12);
  json.Add("streaming_speedup_vs_materialize", stream_speedup, 0);
  json.Add("follow_tick_speedup_vs_full", tick_speedup, 0);

  bench::Banner("Speedup summary");
  std::snprintf(buffer, sizeof(buffer), "%.1fx", stream_speedup);
  bench::PaperVsMeasured("streaming report vs materialize+analyze", ">= 3x",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), "%.0fx", tick_speedup);
  bench::PaperVsMeasured("follow tick vs full re-analysis", ">= 10x", buffer);

  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::remove(full_path.c_str());
  std::remove(grow_path.c_str());

  if (stream_speedup < 3.0) {
    std::printf("\nFAIL: streaming report %.2fx below the 3x gate vs "
                "materialize+analyze\n",
                stream_speedup);
    return 1;
  }
  if (tick_speedup < 10.0) {
    std::printf("\nFAIL: follow tick %.1fx below the 10x gate vs full "
                "re-analysis\n",
                tick_speedup);
    return 1;
  }
  return 0;
}

// Reproduces Table 2: k-means job classes per workload - cluster sizes,
// centroid medians across the six job dimensions, and auto-assigned
// labels. Paper headlines: jobs under 10 GB of total data are >= 92%
// everywhere; the "Small jobs" class dominates (> 90%) every workload;
// map-only classes appear in all but two workloads.
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/analysis/compute.h"

int main() {
  using namespace swim;
  bench::Banner("Table 2: Job types per workload (k-means)");
  double min_under10gb = 1.0;
  double min_small_label = 1.0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    auto result = core::ClassifyJobs(t);
    SWIM_CHECK_OK(result.status());
    std::printf("%s (k=%d chosen by diminishing residual variance):\n",
                name.c_str(), result->k);
    std::printf("  %9s %10s %10s %10s %9s %12s %12s  %s\n", "# jobs",
                "input", "shuffle", "output", "duration", "map t-s",
                "reduce t-s", "label");
    for (const auto& jc : result->classes) {
      std::printf("  %9zu %10s %10s %10s %9s %12.0f %12.0f  %s\n", jc.count,
                  FormatBytes(jc.input_bytes).c_str(),
                  FormatBytes(jc.shuffle_bytes).c_str(),
                  FormatBytes(jc.output_bytes).c_str(),
                  FormatDuration(jc.duration_seconds).c_str(),
                  jc.map_task_seconds, jc.reduce_task_seconds,
                  jc.label.c_str());
    }
    std::printf("  small-job classes: %.1f%% of jobs; jobs < 10GB total: "
                "%.1f%%\n",
                100 * result->small_label_fraction,
                100 * result->fraction_under_10gb);
    min_under10gb = std::min(min_under10gb, result->fraction_under_10gb);
    min_small_label = std::min(min_small_label, result->small_label_fraction);
  }

  bench::Banner("Paper comparison");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), ">= %.0f%%", 100 * min_under10gb);
  bench::PaperVsMeasured("jobs touching < 10GB total data", ">= 92%",
                         buffer);
  std::snprintf(buffer, sizeof(buffer), ">= %.0f%%", 100 * min_small_label);
  bench::PaperVsMeasured("share of jobs in small-job classes", "> 90%",
                         buffer);
  return 0;
}

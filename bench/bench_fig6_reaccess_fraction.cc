// Reproduces Figure 6: fraction of jobs whose input re-accesses a
// pre-existing input or a pre-existing output. Paper: up to 78% of jobs
// involve re-accesses (CC-c/CC-d/CC-e), lower elsewhere; FB-2010 lacks
// output path information.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis/data_access.h"

int main() {
  using namespace swim;
  bench::Banner("Figure 6: Jobs reading pre-existing paths");
  std::printf("%-9s %18s %18s %10s\n", "Trace", "reads prior input",
              "reads prior output", "combined");
  double max_combined = 0.0;
  for (const auto& name : workloads::PaperWorkloadNames()) {
    trace::Trace t = bench::BenchTrace(name);
    core::ReaccessFractions fractions = core::ComputeReaccessFractions(t);
    if (fractions.jobs_with_paths == 0) {
      std::printf("%-9s %18s %18s %10s\n", name.c_str(), "(no paths)", "-",
                  "-");
      continue;
    }
    double combined = fractions.input_reaccess + fractions.output_reaccess;
    max_combined = std::max(max_combined, combined);
    std::printf("%-9s %17.0f%% %17.0f%% %9.0f%%\n", name.c_str(),
                100 * fractions.input_reaccess,
                100 * fractions.output_reaccess, 100 * combined);
  }

  bench::Banner("Paper comparison");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f%%", 100 * max_combined);
  bench::PaperVsMeasured("max combined re-access fraction", "up to 78%",
                         buffer);
  return 0;
}

// Storage tiering ablation (sec. 4.2): "highly skewed data access
// frequencies suggest a tiered storage architecture should be explored" -
// the PACMan line of work the paper cites. We put a memory tier of
// varying size over disk and measure end-to-end read-time speedup on the
// generated access streams, comparing admission policies.
#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "storage/access_stream.h"
#include "storage/tiered.h"

int main() {
  using namespace swim;
  bench::Banner("Memory-over-disk tiering (sec. 4.2 claim)");
  for (const char* name : {"CC-c", "CC-e", "FB-2010"}) {
    trace::Trace t = bench::BenchTrace(name, /*job_cap=*/40000);
    auto accesses = storage::ExtractAccesses(t);
    double stored = 0.0;
    for (const auto& [path, bytes] : storage::ComputeFileSizes(accesses)) {
      stored += bytes;
    }
    std::printf("%s: %zu accesses over %s of distinct data\n", name,
                accesses.size(), FormatBytes(stored).c_str());
    std::printf("  %-16s %12s %10s %10s %11s %12s\n", "policy", "mem tier",
                "% of data", "hit rate", "bytes spd", "median spd");
    for (double fraction : {0.001, 0.01, 0.05}) {
      for (const char* policy : {"lru", "size-threshold"}) {
        storage::TierConfig config;
        config.memory_capacity_bytes = stored * fraction;
        config.policy = policy;
        config.size_threshold_bytes = config.memory_capacity_bytes / 20;
        auto stats = storage::SimulateTieredReads(accesses, config);
        SWIM_CHECK_OK(stats.status());
        std::printf("  %-16s %12s %9.1f%% %9.0f%% %10.1fx %11.0fx\n",
                    policy,
                    FormatBytes(config.memory_capacity_bytes).c_str(),
                    100 * fraction, 100 * stats->cache.HitRate(),
                    stats->Speedup(), stats->MedianSpeedup());
      }
    }
  }
  std::printf(
      "\nTakeaway: because accesses are Zipf-skewed toward small hot\n"
      "files (sec. 4.2), a memory tier holding ~1%% of stored bytes\n"
      "already serves most reads at memory speed (median speedup in the\n"
      "tens). Byte-weighted speedup stays near 1x - the rare cold TB\n"
      "scans dominate transfer time and are uncacheable, which is why\n"
      "the paper pairs tiering with a size-threshold admission policy.\n");
  return 0;
}

#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/units.h"
#include "gtest/gtest.h"

namespace swim {
namespace {

// --- Status / StatusOr ---------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

StatusOr<int> ParsePositive(int value) {
  if (value <= 0) return InvalidArgumentError("not positive");
  return value;
}

Status UsesReturnIfError(int value) {
  SWIM_RETURN_IF_ERROR(ParsePositive(value).status());
  return Status::Ok();
}

StatusOr<int> UsesAssignOrReturn(int value) {
  SWIM_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(42), 42);
}

TEST(StatusOrTest, MacrosPropagate) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_FALSE(UsesReturnIfError(0).ok());
  EXPECT_EQ(UsesAssignOrReturn(5).value(), 10);
  EXPECT_FALSE(UsesAssignOrReturn(-5).ok());
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_DEATH({ (void)result.value(); }, "errored StatusOr");
}

// --- Pcg32 ---------------------------------------------------------------

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123, 5);
  Pcg32 b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32Test, DifferentStreamsDiffer) {
  Pcg32 a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(42);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32Test, NextBoundedCoversRangeUniformly) {
  Pcg32 rng(7);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(Pcg32Test, NextIntInclusiveBounds) {
  Pcg32 rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32Test, GaussianMoments) {
  Pcg32 rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double z = rng.NextGaussian();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Pcg32Test, ExponentialMean) {
  Pcg32 rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Pcg32Test, LognormalMedian) {
  Pcg32 rng(15);
  std::vector<double> values;
  for (int i = 0; i < 50001; ++i) values.push_back(rng.NextLognormal(1.0, 0.7));
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[25000], std::exp(1.0), 0.1);
}

TEST(Pcg32Test, ParetoRespectsMinimum) {
  Pcg32 rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(3.0, 1.5), 3.0);
  }
}

TEST(Pcg32Test, BernoulliProbability) {
  Pcg32 rng(19);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Pcg32Test, DiscreteRespectsWeights) {
  Pcg32 rng(21);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Pcg32Test, ForkProducesIndependentStream) {
  Pcg32 parent(33);
  Pcg32 child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 4);
}

// --- Units ---------------------------------------------------------------

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1.5 * kKB), "1.50 KB");
  EXPECT_EQ(FormatBytes(80 * kTB), "80 TB");
  EXPECT_EQ(FormatBytes(1.6 * kEB), "1.60 EB");
}

TEST(UnitsTest, FormatBytesNegative) {
  EXPECT_EQ(FormatBytes(-2 * kMB), "-2 MB");
}

TEST(UnitsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(32), "32 sec");
  EXPECT_EQ(FormatDuration(4 * kMinute), "4 min");
  EXPECT_EQ(FormatDuration(2.5 * kHour), "2.50 hrs");
  EXPECT_EQ(FormatDuration(3 * kDay), "3 days");
}

TEST(UnitsTest, FormatCountThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1129193), "1,129,193");
}

// --- String utilities ----------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmptyString) {
  std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, ToLowerAndAffixes) {
  EXPECT_EQ(ToLower("InSeRt"), "insert");
  EXPECT_TRUE(StartsWith("oozie:launcher", "oozie"));
  EXPECT_FALSE(StartsWith("oozie", "oozie:launcher"));
  EXPECT_TRUE(EndsWith("report.pig", ".pig"));
}

TEST(StringUtilTest, FirstWordOfJobName) {
  // The paper's tokenization: first alphabetic word, lowercased, ignoring
  // capitalization, numbers, and symbols.
  EXPECT_EQ(FirstWordOfJobName("INSERT OVERWRITE TABLE x"), "insert");
  EXPECT_EQ(FirstWordOfJobName("PigLatin:report.pig"), "piglatin");
  EXPECT_EQ(FirstWordOfJobName("ad_hoc_417"), "ad");
  EXPECT_EQ(FirstWordOfJobName("20110401_etl_run"), "etl");
  EXPECT_EQ(FirstWordOfJobName("12345"), "");
  EXPECT_EQ(FirstWordOfJobName(""), "");
}

TEST(StringUtilTest, ParseDouble) {
  double value = 0;
  EXPECT_TRUE(ParseDouble("3.5", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &value));
  EXPECT_DOUBLE_EQ(value, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("", &value));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(ParseInt64("4.2", &value));
  EXPECT_FALSE(ParseInt64("", &value));
}

}  // namespace
}  // namespace swim

// Deterministic mutation fuzzing of the trace CSV parser: valid traces are
// corrupted by CsvMutator (truncation, bit flips, stray quotes, hostile
// numbers, line duplication/loss, CRLF damage) and fed to all three parse
// modes. The parser must never crash, and the ParseReport must obey its
// contracts on every input. Failures reproduce from (seed, iteration); the
// CI corpus driver (bench_fuzz_ingest) runs the same engine under
// ASan/UBSan for far more iterations.
#include <string>

#include "gtest/gtest.h"
#include "trace/csv_mutator.h"
#include "trace/job_record.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim::trace {
namespace {

constexpr uint64_t kSeed = 2012;
constexpr uint64_t kIterations = 2000;

/// A valid base trace exercising the parser's interesting surface: quoted
/// fields with commas / embedded newlines / escaped quotes, empty optional
/// strings, map-only jobs, and metadata comment lines.
std::string BaseCorpus() {
  Trace trace;
  trace.mutable_metadata().name = "FUZZ-1";
  trace.mutable_metadata().machines = 600;
  trace.mutable_metadata().year = 2009;
  for (uint64_t id = 1; id <= 24; ++id) {
    JobRecord job;
    job.job_id = id;
    switch (id % 4) {
      case 0:
        job.name = "pipeline,stage " + std::to_string(id);  // quoted comma
        break;
      case 1:
        job.name = "ad hoc \"select\"";  // escaped quotes
        break;
      case 2:
        job.name = "line1\nline2";  // embedded newline
        break;
      default:
        job.name = "";  // missing optional field
        break;
    }
    job.submit_time = static_cast<double>(id) * 10.0;
    job.duration = 30.0 + static_cast<double>(id);
    job.input_bytes = 1e6 * static_cast<double>(id);
    job.shuffle_bytes = id % 3 == 0 ? 0.0 : 5e5;
    job.output_bytes = 1e5;
    job.map_tasks = 2 + static_cast<int64_t>(id % 5);
    job.reduce_tasks = id % 3 == 0 ? 0 : 1;
    job.map_task_seconds = 40.0;
    job.reduce_task_seconds = id % 3 == 0 ? 0.0 : 10.0;
    job.input_path = "hdfs://warehouse/t" + std::to_string(id % 7) +
                     (id % 4 == 0 ? ",part=0" : "");
    job.output_path = id % 5 == 0 ? "" : "out/" + std::to_string(id);
    trace.AddJob(std::move(job));
  }
  return TraceToCsv(trace);
}

/// Report invariants that must hold for ANY input, valid or garbage.
void CheckReportContracts(const ParseReport& report, const Trace& trace) {
  ASSERT_EQ(report.accepted, trace.size());
  ASSERT_EQ(report.total_rows, report.accepted + report.skipped);
  size_t categorized = 0;
  for (size_t count : report.error_counts) categorized += count;
  ASSERT_EQ(categorized, report.flagged());
  ASSERT_EQ(report.skipped + report.repaired, report.flagged());
  ASSERT_LE(report.diagnostics.size(), size_t{64});
  ASSERT_EQ(report.diagnostics.size() + report.dropped_diagnostics,
            report.flagged());
  int last_line = 0;
  for (const ParseDiagnostic& diag : report.diagnostics) {
    ASSERT_GE(diag.line, last_line);  // line order
    last_line = diag.line;
  }
}

TEST(TraceFuzzTest, MutatedInputNeverCrashesAndReportsHold) {
  const std::string base = BaseCorpus();
  const CsvMutator mutator(kSeed);
  for (uint64_t iteration = 0; iteration < kIterations; ++iteration) {
    SCOPED_TRACE("seed=" + std::to_string(kSeed) +
                 " iteration=" + std::to_string(iteration));
    const std::string mutated = mutator.Mutate(base, iteration);

    // Strict: may fail, must not crash; success implies a clean report.
    ParseReport strict_report;
    auto strict = TraceFromCsv(
        mutated, ParseOptions{ParseMode::kStrict, 64, 0}, &strict_report);
    if (strict.ok()) {
      ASSERT_TRUE(strict_report.clean());
      ASSERT_EQ(strict_report.accepted, strict->size());
    }

    // Skip: drops bad rows; every accepted row is valid.
    ParseReport skip_report;
    auto skipped = TraceFromCsv(mutated, ParseOptions{ParseMode::kSkip, 64, 0},
                                &skip_report);
    if (skipped.ok()) {
      CheckReportContracts(skip_report, *skipped);
      ASSERT_EQ(skip_report.repaired, 0u);
      ASSERT_EQ(skip_report.skipped, skip_report.flagged());
      for (const JobRecord& job : skipped->jobs()) {
        ASSERT_EQ(ValidateJobRecord(job), "");
      }
      // Strict succeeding means skip sees the identical clean input.
      if (strict.ok()) ASSERT_EQ(skipped->size(), strict->size());
    } else {
      // Lenient modes only reject whole-file problems (missing header).
      ASSERT_FALSE(strict.ok());
    }

    // Repair: keeps at least as many rows as skip; output still validates.
    ParseReport repair_report;
    auto repaired = TraceFromCsv(
        mutated, ParseOptions{ParseMode::kRepair, 64, 0}, &repair_report);
    ASSERT_EQ(repaired.ok(), skipped.ok());
    if (repaired.ok()) {
      CheckReportContracts(repair_report, *repaired);
      ASSERT_GE(repaired->size(), skipped->size());
      for (const JobRecord& job : repaired->jobs()) {
        ASSERT_EQ(ValidateJobRecord(job), "");
      }
      // Round-trip: whatever survived repair must re-parse strictly.
      auto round = TraceFromCsv(TraceToCsv(*repaired));
      ASSERT_TRUE(round.ok());
      ASSERT_EQ(round->size(), repaired->size());
    }

    // Thread-count independence, spot-checked (expensive): parsed bytes
    // and report text identical serial vs 8-way.
    if (iteration % 250 == 0 && skipped.ok()) {
      ParseReport serial_report, wide_report;
      auto serial = TraceFromCsv(
          mutated, ParseOptions{ParseMode::kRepair, 64, 1}, &serial_report);
      auto wide = TraceFromCsv(
          mutated, ParseOptions{ParseMode::kRepair, 64, 8}, &wide_report);
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(wide.ok());
      ASSERT_EQ(TraceToCsv(*serial), TraceToCsv(*wide));
      ASSERT_EQ(serial_report.ToString(), wide_report.ToString());
    }
  }
}

TEST(TraceFuzzTest, MutatorIsDeterministicAndOrderIndependent) {
  const std::string base = BaseCorpus();
  const CsvMutator a(kSeed);
  const CsvMutator b(kSeed);
  // Same (seed, iteration) -> same bytes, regardless of call order.
  EXPECT_EQ(a.Mutate(base, 77), b.Mutate(base, 77));
  std::string late = a.Mutate(base, 500);
  a.Mutate(base, 3);
  EXPECT_EQ(a.Mutate(base, 500), late);
  // Different seeds diverge (sanity that the seed is actually used).
  EXPECT_NE(CsvMutator(kSeed + 1).Mutate(base, 77), late);
}

}  // namespace
}  // namespace swim::trace

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/spec_io.h"
#include "workloads/trace_generator.h"

namespace swim::workloads {
namespace {

TEST(SpecIoTest, RoundTripsEveryPaperWorkload) {
  for (const auto& source : AllPaperWorkloads()) {
    auto restored = SpecFromText(SpecToText(source));
    ASSERT_TRUE(restored.ok()) << source.metadata.name << ": "
                               << restored.status();
    EXPECT_EQ(restored->metadata.name, source.metadata.name);
    EXPECT_EQ(restored->metadata.machines, source.metadata.machines);
    EXPECT_EQ(restored->total_jobs, source.total_jobs);
    EXPECT_DOUBLE_EQ(restored->span_seconds, source.span_seconds);
    ASSERT_EQ(restored->job_types.size(), source.job_types.size());
    for (size_t i = 0; i < source.job_types.size(); ++i) {
      EXPECT_EQ(restored->job_types[i].label, source.job_types[i].label);
      EXPECT_DOUBLE_EQ(restored->job_types[i].input_bytes,
                       source.job_types[i].input_bytes);
      EXPECT_DOUBLE_EQ(restored->job_types[i].log_sigma,
                       source.job_types[i].log_sigma);
      EXPECT_EQ(restored->job_types[i].name_words.size(),
                source.job_types[i].name_words.size());
    }
    EXPECT_EQ(restored->columns.names, source.columns.names);
    EXPECT_DOUBLE_EQ(restored->files.zipf_slope, source.files.zipf_slope);
    EXPECT_DOUBLE_EQ(restored->arrival.burst_log_sigma,
                     source.arrival.burst_log_sigma);
  }
}

TEST(SpecIoTest, RoundTripGeneratesIdenticalTrace) {
  auto source = PaperWorkloadByName("CC-e");
  auto restored = SpecFromText(SpecToText(*source));
  ASSERT_TRUE(restored.ok());
  GeneratorOptions options;
  options.job_count_override = 500;
  auto a = GenerateTrace(*source, options);
  auto b = GenerateTrace(*restored, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(trace::TraceToCsv(*a), trace::TraceToCsv(*b));
}

TEST(SpecIoTest, FileRoundTrip) {
  auto source = PaperWorkloadByName("CC-b");
  std::string path = ::testing::TempDir() + "/swim_spec_test.spec";
  ASSERT_TRUE(SaveSpec(*source, path).ok());
  auto restored = LoadSpec(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->metadata.name, "CC-b");
  std::remove(path.c_str());
}

TEST(SpecIoTest, CommentsAndBlankLinesIgnored) {
  std::string text = SpecToText(*PaperWorkloadByName("CC-a"));
  text.insert(text.find('\n') + 1, "\n# a comment\n\n");
  auto restored = SpecFromText(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
}

TEST(SpecIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(SpecFromText("").ok());
  EXPECT_FALSE(SpecFromText("not a spec\n").ok());
  EXPECT_FALSE(SpecFromText("#swim-spec v1\nbogus_key=1\n").ok());
  EXPECT_FALSE(SpecFromText("#swim-spec v1\nname=x\njob_type=a|b\n").ok());
  // Structurally valid but semantically invalid (no job types).
  EXPECT_FALSE(SpecFromText("#swim-spec v1\nname=x\ntotal_jobs=10\n"
                            "span_seconds=100\n")
                   .ok());
  EXPECT_FALSE(LoadSpec("/nonexistent/x.spec").ok());
}

TEST(SpecIoTest, HandMadeMinimalSpecWorks) {
  std::string text =
      "#swim-spec v1\n"
      "name=custom\n"
      "total_jobs=100\n"
      "span_seconds=3600\n"
      "job_type=Small jobs|1|1000|0|100|10|5|0|0.5|ad:1\n";
  auto spec = SpecFromText(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto trace = GenerateTrace(*spec);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 100u);
}

}  // namespace
}  // namespace swim::workloads

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "trace/filters.h"
#include "trace/frameworks.h"
#include "trace/job_record.h"
#include "trace/summary.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim::trace {
namespace {

JobRecord MakeJob(uint64_t id, double submit, double input = 1e6,
                  double shuffle = 0.0, double output = 1e5) {
  JobRecord job;
  job.job_id = id;
  job.name = "job_" + std::to_string(id);
  job.submit_time = submit;
  job.duration = 30;
  job.input_bytes = input;
  job.shuffle_bytes = shuffle;
  job.output_bytes = output;
  job.map_tasks = 2;
  job.reduce_tasks = shuffle > 0 ? 1 : 0;
  job.map_task_seconds = 40;
  job.reduce_task_seconds = shuffle > 0 ? 10 : 0;
  job.input_path = "in/a";
  job.output_path = "out/" + std::to_string(id);
  return job;
}

// --- JobRecord ---------------------------------------------------------

TEST(JobRecordTest, TotalsAndMapOnly) {
  JobRecord job = MakeJob(1, 0, 100, 50, 25);
  EXPECT_DOUBLE_EQ(job.TotalBytes(), 175.0);
  EXPECT_DOUBLE_EQ(job.TotalTaskSeconds(), 50.0);
  EXPECT_FALSE(job.IsMapOnly());
  JobRecord map_only = MakeJob(2, 0, 100, 0, 25);
  EXPECT_TRUE(map_only.IsMapOnly());
}

TEST(JobRecordTest, ValidationCatchesNegatives) {
  JobRecord job = MakeJob(1, 0);
  EXPECT_EQ(ValidateJobRecord(job), "");
  job.input_bytes = -1;
  EXPECT_NE(ValidateJobRecord(job), "");
  job = MakeJob(1, 0);
  job.submit_time = -5;
  EXPECT_NE(ValidateJobRecord(job), "");
  job = MakeJob(1, 0);
  job.reduce_tasks = 0;
  job.reduce_task_seconds = 10;
  EXPECT_NE(ValidateJobRecord(job), "");
}

// --- Trace ----------------------------------------------------------------

TEST(TraceTest, MaintainsSubmitOrder) {
  Trace trace;
  trace.AddJob(MakeJob(1, 100));
  trace.AddJob(MakeJob(2, 50));
  trace.AddJob(MakeJob(3, 75));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.StartTime(), 50.0);
  EXPECT_EQ(trace.jobs()[0].job_id, 2u);
  EXPECT_EQ(trace.jobs()[2].job_id, 1u);
}

TEST(TraceTest, SpanCoversDurations) {
  Trace trace;
  JobRecord job = MakeJob(1, 100);
  job.duration = 500;
  trace.AddJob(job);
  trace.AddJob(MakeJob(2, 200));
  EXPECT_DOUBLE_EQ(trace.EndTime(), 600.0);
  EXPECT_DOUBLE_EQ(trace.Span(), 500.0);
}

TEST(TraceTest, EmptyTraceZeroes) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(trace.EndTime(), 0.0);
  EXPECT_TRUE(trace.HourlyJobCounts().empty());
}

TEST(TraceTest, HourlySeriesBucketsBySubmitHour) {
  Trace trace;
  trace.AddJob(MakeJob(1, 0));
  trace.AddJob(MakeJob(2, 1800));
  trace.AddJob(MakeJob(3, 3700));
  auto counts = trace.HourlyJobCounts();
  ASSERT_GE(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
}

TEST(TraceTest, HourlyBytesAndTaskSeconds) {
  Trace trace;
  trace.AddJob(MakeJob(1, 0, 100, 10, 1));
  auto bytes = trace.HourlyBytes();
  auto tasks = trace.HourlyTaskSeconds();
  EXPECT_DOUBLE_EQ(bytes[0], 111.0);
  EXPECT_DOUBLE_EQ(tasks[0], 50.0);
}

TEST(TraceTest, ValidateFindsBadJob) {
  Trace trace;
  trace.AddJob(MakeJob(1, 0));
  EXPECT_TRUE(trace.Validate().ok());
  JobRecord bad = MakeJob(2, 10);
  bad.duration = -1;
  trace.AddJob(bad);
  EXPECT_FALSE(trace.Validate().ok());
}

// --- CSV I/O -----------------------------------------------------------------

TEST(TraceIoTest, RoundTripsInMemory) {
  Trace trace;
  trace.mutable_metadata().name = "test";
  trace.mutable_metadata().machines = 42;
  trace.mutable_metadata().year = 2011;
  trace.AddJob(MakeJob(1, 0));
  trace.AddJob(MakeJob(2, 3600, 5e9, 1e9, 2e8));
  std::string csv = TraceToCsv(trace);
  auto parsed = TraceFromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->metadata().name, "test");
  EXPECT_EQ(parsed->metadata().machines, 42);
  EXPECT_EQ(parsed->metadata().year, 2011);
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->jobs()[0], trace.jobs()[0]);
  EXPECT_EQ(parsed->jobs()[1], trace.jobs()[1]);
}

TEST(TraceIoTest, QuotesCommasInNames) {
  Trace trace;
  JobRecord job = MakeJob(1, 0);
  job.name = "INSERT OVERWRITE TABLE a,b \"quoted\"";
  trace.AddJob(job);
  auto parsed = TraceFromCsv(TraceToCsv(trace));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->jobs()[0].name, job.name);
}

TEST(TraceIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(TraceFromCsv("1,2,3\n").ok());
  EXPECT_FALSE(TraceFromCsv("").ok());
}

TEST(TraceIoTest, RejectsBadFieldCount) {
  std::string csv = std::string(kTraceCsvHeader) + "\n1,name,0\n";
  auto parsed = TraceFromCsv(csv);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(TraceIoTest, RejectsNonNumeric) {
  std::string csv = std::string(kTraceCsvHeader) +
                    "\n1,n,zero,1,1,0,1,1,0,1,0,a,b\n";
  EXPECT_FALSE(TraceFromCsv(csv).ok());
}

TEST(TraceIoTest, RejectsInvalidRecord) {
  // Negative input bytes.
  std::string csv =
      std::string(kTraceCsvHeader) + "\n1,n,0,1,-5,0,1,1,0,1,0,a,b\n";
  EXPECT_FALSE(TraceFromCsv(csv).ok());
}

TEST(TraceIoTest, ExtremeDoublesRoundTripExactly) {
  // CSV serialization must round-trip doubles bit-exactly, including
  // subnormals, huge magnitudes, and values needing all 17 digits.
  const double extremes[] = {0.0,
                             1.0 / 3.0,
                             0.1,
                             3.141592653589793,
                             123456789.123456789,
                             9007199254740993.0,  // 2^53 + 1
                             1e-300,
                             5e-324,                  // smallest subnormal
                             2.2250738585072014e-308,  // smallest normal
                             1.7976931348623157e308,   // DBL_MAX
                             1e300};
  Trace trace;
  uint64_t id = 1;
  for (double v : extremes) {
    JobRecord job = MakeJob(id++, v);
    job.duration = v;
    job.input_bytes = v;
    job.map_task_seconds = v;
    trace.AddJob(job);
  }
  trace.StartTime();  // settle the submit-time sort before serializing
  auto parsed = TraceFromCsv(TraceToCsv(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed->jobs()[i], trace.jobs()[i]) << "job " << i;
  }
}

TEST(TraceIoTest, RandomDoublesRoundTripExactly) {
  // Property sweep: random finite non-negative bit patterns survive a CSV
  // round trip unchanged.
  Pcg32 rng(2012);
  Trace trace;
  uint64_t id = 1;
  while (trace.size() < 500) {
    uint64_t bits = (static_cast<uint64_t>(rng()) << 32) | rng();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v) || v < 0.0) continue;
    JobRecord job = MakeJob(id, static_cast<double>(id));
    job.input_bytes = v;
    job.output_bytes = v;
    trace.AddJob(job);
    ++id;
  }
  auto parsed = TraceFromCsv(TraceToCsv(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed->jobs()[i], trace.jobs()[i]) << "job " << i;
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace trace;
  trace.mutable_metadata().name = "file-test";
  trace.AddJob(MakeJob(1, 0));
  std::string path = ::testing::TempDir() + "/swim_trace_test.csv";
  ASSERT_TRUE(WriteTraceCsv(trace, path).ok());
  auto parsed = ReadTraceCsv(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadTraceCsv("/nonexistent/path.csv").ok());
}

// --- Filters ---------------------------------------------------------------

TEST(FiltersTest, TimeRangeSelectsHalfOpenInterval) {
  Trace trace;
  for (int i = 0; i < 10; ++i) trace.AddJob(MakeJob(i + 1, i * 100.0));
  Trace filtered = FilterByTimeRange(trace, 200, 500);
  EXPECT_EQ(filtered.size(), 3u);
  EXPECT_DOUBLE_EQ(filtered.StartTime(), 200.0);
}

TEST(FiltersTest, PredicateFilter) {
  Trace trace;
  trace.AddJob(MakeJob(1, 0, 1e3));
  trace.AddJob(MakeJob(2, 10, 1e12));
  Trace big = FilterByPredicate(
      trace, [](const JobRecord& j) { return j.input_bytes > 1e9; });
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big.jobs()[0].job_id, 2u);
}

TEST(FiltersTest, TakeFirstAndRebase) {
  Trace trace;
  for (int i = 0; i < 5; ++i) trace.AddJob(MakeJob(i + 1, 1000.0 + i));
  Trace head = TakeFirst(trace, 2);
  EXPECT_EQ(head.size(), 2u);
  Trace rebased = RebaseToZero(head);
  EXPECT_DOUBLE_EQ(rebased.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(rebased.jobs()[1].submit_time, 1.0);
}

// --- Summary -----------------------------------------------------------------

TEST(SummaryTest, ComputesTable1Row) {
  Trace trace;
  trace.mutable_metadata().name = "X";
  trace.mutable_metadata().machines = 10;
  trace.AddJob(MakeJob(1, 0, 100, 10, 1));
  trace.AddJob(MakeJob(2, 50, 200, 0, 2));  // map-only
  TraceSummary summary = Summarize(trace);
  EXPECT_EQ(summary.name, "X");
  EXPECT_EQ(summary.jobs, 2u);
  EXPECT_DOUBLE_EQ(summary.bytes_moved, 313.0);
  EXPECT_EQ(summary.map_only_jobs, 1u);
  EXPECT_DOUBLE_EQ(summary.median_duration, 30.0);
}

TEST(SummaryTest, TableFormatsTotals) {
  TraceSummary a;
  a.name = "A";
  a.jobs = 10;
  a.bytes_moved = 1e12;
  TraceSummary b;
  b.name = "B";
  b.jobs = 5;
  b.bytes_moved = 2e12;
  std::string table = FormatSummaryTable({a, b});
  EXPECT_NE(table.find("Total"), std::string::npos);
  EXPECT_NE(table.find("15"), std::string::npos);
  EXPECT_NE(table.find("3 TB"), std::string::npos);
}

// --- Frameworks -----------------------------------------------------------

TEST(FrameworksTest, ClassifiesKnownWords) {
  EXPECT_EQ(ClassifyFramework("insert"), Framework::kHive);
  EXPECT_EQ(ClassifyFramework("select"), Framework::kHive);
  EXPECT_EQ(ClassifyFramework("from"), Framework::kHive);
  EXPECT_EQ(ClassifyFramework("piglatin"), Framework::kPig);
  EXPECT_EQ(ClassifyFramework("oozie"), Framework::kOozie);
  EXPECT_EQ(ClassifyFramework("ad"), Framework::kNative);
  EXPECT_EQ(ClassifyFramework(""), Framework::kNative);
}

TEST(FrameworksTest, NamesAreStable) {
  EXPECT_EQ(FrameworkName(Framework::kHive), "Hive");
  EXPECT_EQ(FrameworkName(Framework::kPig), "Pig");
  EXPECT_EQ(FrameworkName(Framework::kOozie), "Oozie");
  EXPECT_EQ(FrameworkName(Framework::kNative), "Native");
}

// --- CSV dialect corners ------------------------------------------------

TEST(TraceIoTest, AcceptsCrlfLineEndings) {
  Trace trace;
  trace.AddJob(MakeJob(1, 0));
  trace.AddJob(MakeJob(2, 60));
  std::string csv = TraceToCsv(trace);
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  auto parsed = TraceFromCsv(crlf);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->jobs()[0], trace.jobs()[0]);
  EXPECT_EQ(parsed->jobs()[1], trace.jobs()[1]);
}

TEST(TraceIoTest, QuotedFieldsWithNewlinesAndEscapedQuotes) {
  Trace trace;
  JobRecord job = MakeJob(1, 0);
  job.name = "line one\nline two";
  job.input_path = "hdfs://a,\"b\"\npart=3";
  trace.AddJob(job);
  auto parsed = TraceFromCsv(TraceToCsv(trace));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->jobs()[0].name, job.name);
  EXPECT_EQ(parsed->jobs()[0].input_path, job.input_path);
}

TEST(TraceIoTest, MetadataCommentsAfterHeader) {
  // #key=value lines are honored anywhere, not just before the header.
  std::string csv = std::string(kTraceCsvHeader) +
                    "\n#name=LATE\n1,n,0,1,1,0,1,1,0,1,0,a,b\n#machines=64\n";
  auto parsed = TraceFromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->metadata().name, "LATE");
  EXPECT_EQ(parsed->metadata().machines, 64);
  ASSERT_EQ(parsed->size(), 1u);
}

TEST(TraceIoTest, RejectsMidFieldQuote) {
  // A quote opening mid-field (ab"cd) or junk after a closing quote
  // ("ab"cd) silently mis-parsed before; both must be malformed now.
  std::string mid = std::string(kTraceCsvHeader) +
                    "\n1,na\"me,0,1,1,0,1,1,0,1,0,a,b\n";
  auto parsed = TraceFromCsv(mid);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  std::string junk = std::string(kTraceCsvHeader) +
                     "\n1,\"na\"me,0,1,1,0,1,1,0,1,0,a,b\n";
  EXPECT_FALSE(TraceFromCsv(junk).ok());
}

// --- Lenient parse modes ------------------------------------------------

TEST(TraceIoTest, ParseModeNamesRoundTrip) {
  for (ParseMode mode :
       {ParseMode::kStrict, ParseMode::kSkip, ParseMode::kRepair}) {
    auto back = ParseModeFromName(ParseModeName(mode));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(ParseModeFromName("lenient").ok());
}

// One good row, then: bad field count (3), non-numeric input_bytes (4),
// negative duration (5), unbalanced quote (6), good (7).
std::string MessyCsv() {
  return std::string(kTraceCsvHeader) +
         "\n1,n,0,1,1,0,1,1,0,1,0,a,b\n"
         "2,n,0\n"
         "3,n,0,1,zero,0,1,1,0,1,0,a,b\n"
         "4,n,0,-9,1,0,1,1,0,1,0,a,b\n"
         "5,\"n,0,1,1,0,1,1,0,1,0,a,b\n"
         "6,n,6,1,1,0,1,1,0,1,0,a,b\n";
}

TEST(TraceIoTest, SkipModeCountsEachCategory) {
  ParseReport report;
  auto parsed =
      TraceFromCsv(MessyCsv(), ParseOptions{ParseMode::kSkip, 64, 0}, &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);  // jobs 1 and 6
  EXPECT_EQ(report.total_rows, 6u);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.skipped, 4u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.error_counts[size_t{0}], 1u);  // unbalanced quote
  EXPECT_EQ(
      report.error_counts[static_cast<size_t>(ParseErrorKind::kFieldCount)],
      1u);
  EXPECT_EQ(
      report.error_counts[static_cast<size_t>(ParseErrorKind::kBadNumber)],
      1u);
  EXPECT_EQ(
      report.error_counts[static_cast<size_t>(ParseErrorKind::kInvalidRecord)],
      1u);
  ASSERT_EQ(report.diagnostics.size(), 4u);
  EXPECT_EQ(report.diagnostics[0].line, 3);
  EXPECT_EQ(report.diagnostics[1].line, 4);
  EXPECT_EQ(report.diagnostics[1].field, "input_bytes");
  EXPECT_EQ(report.diagnostics[2].line, 5);
  EXPECT_EQ(report.diagnostics[3].line, 6);
}

TEST(TraceIoTest, RepairModePatchesValueProblems) {
  ParseReport report;
  auto parsed = TraceFromCsv(MessyCsv(),
                             ParseOptions{ParseMode::kRepair, 64, 0}, &report);
  ASSERT_TRUE(parsed.ok());
  // Value-level rows (3: bad number, 4: negative duration) are patched and
  // kept; structural rows (2, 5) stay skipped.
  EXPECT_EQ(parsed->size(), 4u);
  EXPECT_EQ(report.accepted, 4u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_EQ(report.skipped, 2u);
  for (const JobRecord& job : parsed->jobs()) {
    EXPECT_EQ(ValidateJobRecord(job), "");
  }
  // The patched fields land on the nearest valid value: zero.
  const JobRecord* three = nullptr;
  const JobRecord* four = nullptr;
  for (const JobRecord& job : parsed->jobs()) {
    if (job.job_id == 3) three = &job;
    if (job.job_id == 4) four = &job;
  }
  ASSERT_NE(three, nullptr);
  EXPECT_DOUBLE_EQ(three->input_bytes, 0.0);
  ASSERT_NE(four, nullptr);
  EXPECT_DOUBLE_EQ(four->duration, 0.0);
}

TEST(TraceIoTest, StrictModeReportsEarliestBadLine) {
  // Strict failure must name the first bad line even when later shards
  // (parallel parse) hit errors too.
  for (int threads : {1, 8}) {
    auto parsed = TraceFromCsv(MessyCsv(), threads);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
        << parsed.status().message();
  }
}

TEST(TraceIoTest, ReportIdenticalAtAnyThreadCount) {
  // Build a trace large enough to span several 4096-line parse shards,
  // with errors sprinkled in.
  std::string csv(kTraceCsvHeader);
  csv += "\n";
  for (int i = 1; i <= 10000; ++i) {
    if (i % 97 == 0) {
      csv += "bad line\n";
    } else if (i % 131 == 0) {
      csv += std::to_string(i) + ",n,0,1,nope,0,1,1,0,1,0,a,b\n";
    } else {
      csv += std::to_string(i) + ",n,0,1,1,0,1,1,0,1,0,a,b\n";
    }
  }
  ParseReport serial, wide;
  auto a = TraceFromCsv(csv, ParseOptions{ParseMode::kRepair, 32, 1}, &serial);
  auto b = TraceFromCsv(csv, ParseOptions{ParseMode::kRepair, 32, 8}, &wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(TraceToCsv(*a), TraceToCsv(*b));
  EXPECT_EQ(serial.ToString(), wide.ToString());
  EXPECT_GT(serial.dropped_diagnostics, 0u);  // cap respected, counts exact
  EXPECT_EQ(serial.diagnostics.size(), 32u);
}

TEST(TraceIoTest, NonFiniteNumbersAreBadNumbers) {
  // strtod happily parses "inf"/"nan"/"1e999"; the trace schema has no
  // meaning for them. Strict rejects; repair patches to 0 and keeps.
  for (const char* hostile : {"inf", "-inf", "nan", "1e999"}) {
    std::string csv = std::string(kTraceCsvHeader) + "\n1,n,0,1," + hostile +
                      ",0,1,1,0,1,0,a,b\n";
    EXPECT_FALSE(TraceFromCsv(csv).ok()) << hostile;
    ParseReport report;
    auto repaired =
        TraceFromCsv(csv, ParseOptions{ParseMode::kRepair, 64, 0}, &report);
    ASSERT_TRUE(repaired.ok()) << hostile;
    ASSERT_EQ(repaired->size(), 1u) << hostile;
    EXPECT_DOUBLE_EQ(repaired->jobs()[0].input_bytes, 0.0) << hostile;
    EXPECT_EQ(
        report.error_counts[static_cast<size_t>(ParseErrorKind::kBadNumber)],
        1u)
        << hostile;
  }
}

// --- Lazy index thread safety (regression: data race) -------------------

TEST(TraceTest, ConcurrentLazyIndexBuildIsSafe) {
  // EnsurePathIndex/EnsureNameIndex used to mutate mutable members from
  // const accessors with no synchronization; concurrent readers raced.
  // Run under TSan this test fails on the old code.
  Trace trace;
  for (uint64_t id = 1; id <= 500; ++id) {
    JobRecord job = MakeJob(id, static_cast<double>(500 - id));
    job.input_path = "in/" + std::to_string(id % 17);
    job.name = "name" + std::to_string(id % 11);
    trace.AddJob(std::move(job));
  }
  const Trace& shared = trace;
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int r = 0; r < 8; ++r) {
    readers.emplace_back([&shared, &failures, r] {
      // Mix of accessors that trigger sorting and both index builds.
      if (shared.input_path_ids().size() != 500) ++failures;
      if (shared.name_ids().size() != 500) ++failures;
      if (shared.output_path_ids().size() != 500) ++failures;
      if (shared.jobs().front().submit_time != 0.0) ++failures;
      (void)r;
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TraceTest, CopyAndMovePreserveJobsAndMetadata) {
  Trace trace;
  trace.mutable_metadata().name = "copy-src";
  trace.AddJob(MakeJob(2, 10));
  trace.AddJob(MakeJob(1, 0));
  (void)trace.input_path_ids();  // force lazy state before copying

  Trace copy = trace;
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.metadata().name, "copy-src");
  EXPECT_EQ(copy.jobs()[0].job_id, 1u);  // sortedness carried
  EXPECT_EQ(copy.input_path_ids().size(), 2u);  // indexes rebuilt on demand

  Trace moved = std::move(copy);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.metadata().name, "copy-src");
  EXPECT_EQ(moved.name_ids().size(), 2u);
}

}  // namespace
}  // namespace swim::trace
